"""Figure 4: TPC-C New Order (a) and Payment (b) throughput vs batch size.

Expected shape (paper): same baseline ordering as YCSB but at much lower
absolute Litmus numbers — "New Order transactions execute more queries,
leading to more cryptographic gates" (peak Litmus-DRM 280.6 txn/s); Payment
is lighter and behaves similarly.
"""

from __future__ import annotations

from repro.bench import fig4_tpcc_throughput, fig3_ycsb_throughput_latency, format_series

BATCHES = (320, 5_120, 81_920)
SCALE = 250


def test_fig4_tpcc(benchmark):
    rows = benchmark.pedantic(
        fig4_tpcc_throughput,
        kwargs={"batch_sizes": BATCHES, "scale": SCALE},
        iterations=1,
        rounds=1,
    )
    new_order = [r for r in rows if r["transaction"] == "new_order"]
    payment = [r for r in rows if r["transaction"] == "payment"]
    print("\nFigure 4a — TPC-C New Order throughput (txn/s)")
    print(format_series(new_order, x="batch_size", y="throughput"))
    print("\nFigure 4b — TPC-C Payment throughput (txn/s)")
    print(format_series(payment, x="batch_size", y="throughput"))

    def peak(rows, name):
        return max(r["throughput"] for r in rows if r["baseline"] == name)

    # New Order is far heavier than YCSB for every Litmus variant: compare
    # the two workloads' peak DRM configurations, as the paper does.
    ycsb_rows = fig3_ycsb_throughput_latency(batch_sizes=(2_621_440,), scale=400)
    ycsb_drm = peak(ycsb_rows, "Litmus-DRM")
    no_drm = peak(new_order, "Litmus-DRM")
    assert no_drm < ycsb_drm / 5, "New Order must be far slower than YCSB"
    # Payment is lighter than New Order (fewer accesses / gates).
    assert peak(payment, "Litmus-DRM") > no_drm
    # Ordering holds within each transaction type.
    for subset in (new_order, payment):
        assert peak(subset, "Litmus-DRM") > peak(subset, "Litmus-DR")
        assert peak(subset, "Litmus-DR") > peak(subset, "Litmus-2PL")
        assert peak(subset, "No-Verification-DR") > peak(subset, "Litmus-DRM")


# --- orchestrated trial (python -m repro --bench) ---------------------------

from repro.bench.experiment import TrialMeasurement, TrialSpec, register
from repro.bench.experiment.counts import tpcc_counts


def run_fig4_trial(config: dict, seed: int) -> TrialMeasurement:
    """Reduced-scale Fig 4; headline = peak New Order DRM throughput."""
    rows = fig4_tpcc_throughput(
        batch_sizes=tuple(config["batch_sizes"]), scale=config["scale"]
    )

    def peak(transaction: str) -> float:
        return max(
            row["throughput"]
            for row in rows
            if row["transaction"] == transaction
            and row["baseline"] == "Litmus-DRM"
        )

    metrics = {
        "throughput": peak("new_order"),
        "throughput_payment": peak("payment"),
    }
    counts = tpcc_counts("new_order", config["scale"])
    return TrialMeasurement(rows=tuple(rows), counts=counts, metrics=metrics)


FIG4_TRIAL = register(
    TrialSpec(
        name="figures/fig4_tpcc",
        area="figures",
        bench_file="bench_fig4_tpcc.py",
        runner=run_fig4_trial,
        config={"batch_sizes": [320, 5_120], "scale": 60},
        seed=13,
        headline=("throughput",),
        description="Fig 4 TPC-C: peak Litmus-DRM New Order throughput.",
    )
)
