"""Figure 8: throughput vs workload contention (Zipfian theta sweep).

Expected shape (paper): all three deterministic-reservation lines degrade
heavily as contention rises (smaller non-conflicting batches, more rounds);
the 2PL baselines are less sensitive; the interactive baselines *improve*
slightly (better cache utilization on hot keys); at high contention Litmus
approaches its no-verification bound because CC, not proving, dominates.
"""

from __future__ import annotations

from repro.bench import fig8_contention, format_series

THETAS = (0.0, 0.6, 1.0, 1.4)
NUM_TXNS = 163_840
SCALE = 900


def test_fig8_contention(benchmark):
    rows = benchmark.pedantic(
        fig8_contention,
        kwargs={"thetas": THETAS, "num_txns": NUM_TXNS, "scale": SCALE},
        iterations=1,
        rounds=1,
    )
    print("\nFigure 8 — throughput (txn/s) vs Zipfian theta")
    print(format_series(rows, x="theta", y="throughput"))

    def series(name):
        return [r["throughput"] for r in rows if r["baseline"] == name]

    dr_lines = {name: series(name) for name in ("No-Verification-DR", "Litmus-DRM", "Litmus-DR")}
    # DR-based lines degrade heavily with contention.
    for name, values in dr_lines.items():
        assert values[-1] < values[0] / 2, f"{name} should degrade with theta"
    # 2PL is less sensitive than DR (relative drop smaller).
    tpl = series("Litmus-2PL")
    drm = dr_lines["Litmus-DRM"]
    assert tpl[-1] / tpl[0] > drm[-1] / drm[0]
    # Interactive baselines improve slightly with contention (cache effect).
    interactive = series("AD-Interact-1ms")
    assert interactive[-1] >= interactive[0]


# --- orchestrated trial (python -m repro --bench) ---------------------------

from repro.bench.experiment import TrialMeasurement, TrialSpec, register
from repro.bench.experiment.counts import ycsb_counts


def run_fig8_trial(config: dict, seed: int) -> TrialMeasurement:
    """Reduced-scale Fig 8; headline = uniform-workload DRM throughput."""
    thetas = tuple(config["thetas"])
    rows = fig8_contention(
        thetas=thetas, num_txns=config["num_txns"], scale=config["scale"]
    )

    def drm(theta: float) -> float:
        return next(
            row["throughput"]
            for row in rows
            if row["baseline"] == "Litmus-DRM" and row["theta"] == theta
        )

    metrics = {
        "throughput": drm(thetas[0]),
        "throughput_contended": drm(thetas[-1]),
        "contention_retention": drm(thetas[-1]) / drm(thetas[0]),
    }
    counts = ycsb_counts(scale=config["scale"], theta=thetas[-1])
    return TrialMeasurement(rows=tuple(rows), counts=counts, metrics=metrics)


FIG8_TRIAL = register(
    TrialSpec(
        name="figures/fig8_contention",
        area="figures",
        bench_file="bench_fig8_contention.py",
        runner=run_fig8_trial,
        config={"thetas": [0.0, 0.8], "num_txns": 81_920, "scale": 160},
        seed=11,
        headline=("throughput",),
        description="Fig 8 contention sweep: DRM under uniform vs Zipf 0.8.",
    )
)
