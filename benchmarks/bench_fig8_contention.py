"""Figure 8: throughput vs workload contention (Zipfian theta sweep).

Expected shape (paper): all three deterministic-reservation lines degrade
heavily as contention rises (smaller non-conflicting batches, more rounds);
the 2PL baselines are less sensitive; the interactive baselines *improve*
slightly (better cache utilization on hot keys); at high contention Litmus
approaches its no-verification bound because CC, not proving, dominates.
"""

from __future__ import annotations

from repro.bench import fig8_contention, format_series

THETAS = (0.0, 0.6, 1.0, 1.4)
NUM_TXNS = 163_840
SCALE = 900


def test_fig8_contention(benchmark):
    rows = benchmark.pedantic(
        fig8_contention,
        kwargs={"thetas": THETAS, "num_txns": NUM_TXNS, "scale": SCALE},
        iterations=1,
        rounds=1,
    )
    print("\nFigure 8 — throughput (txn/s) vs Zipfian theta")
    print(format_series(rows, x="theta", y="throughput"))

    def series(name):
        return [r["throughput"] for r in rows if r["baseline"] == name]

    dr_lines = {name: series(name) for name in ("No-Verification-DR", "Litmus-DRM", "Litmus-DR")}
    # DR-based lines degrade heavily with contention.
    for name, values in dr_lines.items():
        assert values[-1] < values[0] / 2, f"{name} should degrade with theta"
    # 2PL is less sensitive than DR (relative drop smaller).
    tpl = series("Litmus-2PL")
    drm = dr_lines["Litmus-DRM"]
    assert tpl[-1] / tpl[0] > drm[-1] / drm[0]
    # Interactive baselines improve slightly with contention (cache effect).
    interactive = series("AD-Interact-1ms")
    assert interactive[-1] >= interactive[0]
