"""Figure 7: time breakdown vs number of prover threads.

Expected shape (paper): at the low end of the sweep runtime-trace
processing takes ~18% of the time; as prover threads increase, key
generation and proving grow to ~51% and ~38%; verification stays a modest,
stable share; circuit generation is negligible (hand-written circuits).
"""

from __future__ import annotations

import pytest

from repro.bench import fig7_time_breakdown, format_table

THREADS = (20, 40, 60, 80)
SCALE = 800


def test_fig7_breakdown(benchmark):
    rows = benchmark.pedantic(
        fig7_time_breakdown,
        kwargs={"thread_counts": THREADS, "scale": SCALE, "num_txns": 2_621_440},
        iterations=1,
        rounds=1,
    )
    print("\nFigure 7 — time breakdown (shares) vs prover threads")
    print(format_table(rows))

    low, high = rows[0], rows[-1]
    # Anchors from the paper's prose.
    assert low["process_traces"] == pytest.approx(0.18, abs=0.02)
    assert high["key_generation"] == pytest.approx(0.51, abs=0.02)
    assert high["proving"] == pytest.approx(0.38, abs=0.02)
    # Monotone evolution between the anchors.
    traces = [r["process_traces"] for r in rows]
    keygen = [r["key_generation"] for r in rows]
    assert all(b <= a for a, b in zip(traces, traces[1:]))
    assert all(b >= a for a, b in zip(keygen, keygen[1:]))
    # Circuit generation is negligible; every row sums to 1.
    for row in rows:
        assert row["circuit_generation"] < 0.01
        total = sum(v for k, v in row.items() if k != "prover_threads")
        assert total == pytest.approx(1.0, abs=1e-6)
