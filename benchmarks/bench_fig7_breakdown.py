"""Figure 7: time breakdown vs number of prover threads.

Expected shape (paper): at the low end of the sweep runtime-trace
processing takes ~18% of the time; as prover threads increase, key
generation and proving grow to ~51% and ~38%; verification stays a modest,
stable share; circuit generation is negligible (hand-written circuits).
"""

from __future__ import annotations

import pytest

from repro.bench import fig7_time_breakdown, format_table

THREADS = (20, 40, 60, 80)
SCALE = 800


def test_fig7_breakdown(benchmark):
    rows = benchmark.pedantic(
        fig7_time_breakdown,
        kwargs={"thread_counts": THREADS, "scale": SCALE, "num_txns": 2_621_440},
        iterations=1,
        rounds=1,
    )
    print("\nFigure 7 — time breakdown (shares) vs prover threads")
    print(format_table(rows))

    low, high = rows[0], rows[-1]
    # Anchors from the paper's prose.
    assert low["process_traces"] == pytest.approx(0.18, abs=0.02)
    assert high["key_generation"] == pytest.approx(0.51, abs=0.02)
    assert high["proving"] == pytest.approx(0.38, abs=0.02)
    # Monotone evolution between the anchors.
    traces = [r["process_traces"] for r in rows]
    keygen = [r["key_generation"] for r in rows]
    assert all(b <= a for a, b in zip(traces, traces[1:]))
    assert all(b >= a for a, b in zip(keygen, keygen[1:]))
    # Circuit generation is negligible; every row sums to 1.
    for row in rows:
        assert row["circuit_generation"] < 0.01
        total = sum(v for k, v in row.items() if k != "prover_threads")
        assert total == pytest.approx(1.0, abs=1e-6)


# --- orchestrated trial (python -m repro --bench) ---------------------------

from repro.bench.experiment import TrialMeasurement, TrialSpec, register
from repro.bench.experiment.counts import ycsb_counts


def run_fig7_trial(config: dict, seed: int) -> TrialMeasurement:
    """Reduced-scale Fig 7 breakdown; shares tracked, nothing gated."""
    rows = fig7_time_breakdown(
        thread_counts=tuple(config["threads"]),
        num_txns=config["num_txns"],
        scale=config["scale"],
    )
    low, high = rows[0], rows[-1]
    metrics = {
        "trace_share_low": low["process_traces"],
        "keygen_share_high": high["key_generation"],
        "proving_share_high": high["proving"],
    }
    counts = ycsb_counts(scale=config["scale"])
    return TrialMeasurement(rows=tuple(rows), counts=counts, metrics=metrics)


FIG7_TRIAL = register(
    TrialSpec(
        name="figures/fig7_breakdown",
        area="figures",
        bench_file="bench_fig7_breakdown.py",
        runner=run_fig7_trial,
        config={"threads": [20, 80], "num_txns": 2_621_440, "scale": 160},
        seed=11,
        headline=(),
        description="Fig 7 time-breakdown shares at low/high thread counts.",
    )
)
