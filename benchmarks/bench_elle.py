"""Section 8.3: comparison with Elle (trace-based serializability checking).

Expected shape (paper): Elle analyzes ~5.5k txn/s on their testbed and its
cost scales with the trace, while Litmus's client verifies one constant-
size proof in constant time; Elle requires the full (trusted) history.

This benchmark runs our real Elle reimplementation over a real executed
YCSB history (wall-clock measured, not modeled).
"""

from __future__ import annotations

from repro.bench import elle_comparison
from repro.bench.report import format_table


def test_elle_comparison(benchmark):
    result = benchmark.pedantic(
        elle_comparison, kwargs={"scale": 1500}, iterations=1, rounds=1
    )
    print("\nSection 8.3 — Elle vs Litmus")
    print(
        format_table(
            [
                {
                    "metric": "history serializable",
                    "value": result["serializable"],
                },
                {"metric": "txns analyzed", "value": result["num_txns"]},
                {
                    "metric": "our Elle analysis (s)",
                    "value": result["measured_analysis_seconds"],
                },
                {
                    "metric": "our Elle txn/s (real)",
                    "value": result["measured_txns_per_second"],
                },
                {
                    "metric": "paper Elle txn/s",
                    "value": result["paper_txns_per_second"],
                },
                {
                    "metric": "Litmus client verify (s, constant)",
                    "value": result["litmus_client_verify_seconds"],
                },
            ]
        )
    )
    # A healthy execution must be certified serializable.
    assert result["serializable"]
    # Elle's cost scales with the history; it processes the whole trace.
    assert result["measured_txns_per_second"] > 0
    # Litmus's client-side verification is constant regardless of scale.
    assert result["litmus_client_verify_seconds"] == 300.0


# --- orchestrated trial (python -m repro --bench) ---------------------------

from repro.bench.experiment import TrialMeasurement, TrialSpec, register


def run_elle_trial(config: dict, seed: int) -> TrialMeasurement:
    """Real Elle checker over a real scaled history; wall-clock, not gated."""
    result = elle_comparison(scale=config["scale"])
    rows = (
        {"metric": "serializable", "value": bool(result["serializable"])},
        {"metric": "txns_analyzed", "value": int(result["num_txns"])},
        {
            "metric": "litmus_verify_seconds",
            "value": float(result["litmus_client_verify_seconds"]),
        },
    )
    metrics = {
        "elle_txns_per_second": float(result["measured_txns_per_second"]),
        "elle_analysis_seconds": float(result["measured_analysis_seconds"]),
    }
    counts = {
        "txns": int(result["num_txns"]),
        "serializable": int(bool(result["serializable"])),
    }
    return TrialMeasurement(rows=rows, counts=counts, metrics=metrics)


ELLE_TRIAL = register(
    TrialSpec(
        name="figures/elle_checker",
        area="figures",
        bench_file="bench_elle.py",
        runner=run_elle_trial,
        config={"scale": 400},
        seed=11,
        headline=(),
        description="Section 8.3: real Elle analysis over a scaled history.",
    )
)
