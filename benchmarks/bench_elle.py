"""Section 8.3: comparison with Elle (trace-based serializability checking).

Expected shape (paper): Elle analyzes ~5.5k txn/s on their testbed and its
cost scales with the trace, while Litmus's client verifies one constant-
size proof in constant time; Elle requires the full (trusted) history.

This benchmark runs our real Elle reimplementation over a real executed
YCSB history (wall-clock measured, not modeled).
"""

from __future__ import annotations

from repro.bench import elle_comparison
from repro.bench.report import format_table


def test_elle_comparison(benchmark):
    result = benchmark.pedantic(
        elle_comparison, kwargs={"scale": 1500}, iterations=1, rounds=1
    )
    print("\nSection 8.3 — Elle vs Litmus")
    print(
        format_table(
            [
                {
                    "metric": "history serializable",
                    "value": result["serializable"],
                },
                {"metric": "txns analyzed", "value": result["num_txns"]},
                {
                    "metric": "our Elle analysis (s)",
                    "value": result["measured_analysis_seconds"],
                },
                {
                    "metric": "our Elle txn/s (real)",
                    "value": result["measured_txns_per_second"],
                },
                {
                    "metric": "paper Elle txn/s",
                    "value": result["paper_txns_per_second"],
                },
                {
                    "metric": "Litmus client verify (s, constant)",
                    "value": result["litmus_client_verify_seconds"],
                },
            ]
        )
    )
    # A healthy execution must be certified serializable.
    assert result["serializable"]
    # Elle's cost scales with the history; it processes the whole trace.
    assert result["measured_txns_per_second"] > 0
    # Litmus's client-side verification is constant regardless of scale.
    assert result["litmus_client_verify_seconds"] == 300.0
