"""Micro-benchmarks of the cryptographic substrate (real wall-clock).

Not a paper figure; quantifies the primitives the protocol is built from
(AD lookups/updates, aggregated proofs, Merkle paths, statement proving)
so regressions in the crypto layer are visible.
"""

from __future__ import annotations

import pytest

from repro.crypto.authdict import AuthenticatedDictionary
from repro.crypto.merkle import MerkleTree
from repro.crypto.poe import prove_exponentiation, verify_exponentiation
from repro.crypto.rsa_group import default_group

PRIME_BITS = 64


@pytest.fixture(scope="module")
def group():
    return default_group(bits=512)


@pytest.fixture(scope="module")
def ad(group):
    return AuthenticatedDictionary(
        group, initial={("row", i): i for i in range(64)}, prime_bits=PRIME_BITS
    )


def test_ad_single_lookup_prove_verify(benchmark, ad):
    def run():
        proof = ad.prove_lookup([("row", 3)])
        assert ad.ver_lookup(ad.digest, {("row", 3): 3}, proof)

    benchmark(run)


def test_ad_aggregated_lookup_16_keys(benchmark, ad):
    keys = [("row", i) for i in range(16)]
    values = {("row", i): i for i in range(16)}

    def run():
        proof = ad.prove_lookup(keys)
        assert ad.ver_lookup(ad.digest, values, proof)

    benchmark(run)


def test_ad_nonexistence_proof(benchmark, ad):
    def run():
        proof = ad.prove_no_key([("ghost", 1)])
        assert ad.ver_no_key(ad.digest, [("ghost", 1)], proof)

    benchmark(run)


def test_ad_update_roll_forward(benchmark, group):
    def run():
        fresh = AuthenticatedDictionary(
            group, initial={("row", i): i for i in range(16)}, prime_bits=PRIME_BITS
        )
        new_digest, proof = fresh.update({("row", 3): 99})
        assert fresh.digest_after_update(proof, {("row", 3): 99}) == new_digest

    benchmark(run)


def test_poe_prove_and_verify(benchmark, group):
    exponent = 1
    for i in range(16):
        exponent *= (1 << 63) + 2 * i + 1

    def run():
        result, proof = prove_exponentiation(group, group.generator, exponent)
        assert verify_exponentiation(group, group.generator, exponent, result, proof)

    benchmark(run)


def test_merkle_path_prove_verify(benchmark):
    tree = MerkleTree(1024, fill=0)
    tree.update(17, 42)

    def run():
        path = tree.prove(17)
        assert MerkleTree.verify(tree.root, path, 42)

    benchmark(run)


# --- orchestrated trial (python -m repro --bench) ---------------------------

from repro.bench.experiment import TrialMeasurement, TrialSpec, register


def run_crypto_trial(config: dict, seed: int) -> TrialMeasurement:
    """Seeded AD lookup prove/verify loop plus one PoE round (wall-clock)."""
    import random
    import time

    rng = random.Random(seed)
    grp = default_group(bits=config["group_bits"])
    table = {("row", i): i for i in range(config["rows"])}
    authdict = AuthenticatedDictionary(
        grp, initial=table, prime_bits=config["prime_bits"]
    )
    lookup_seconds = []
    for _ in range(config["ops"]):
        index = rng.randrange(config["rows"])
        start = time.perf_counter()
        proof = authdict.prove_lookup([("row", index)])
        accepted = authdict.ver_lookup(
            authdict.digest, {("row", index): index}, proof
        )
        lookup_seconds.append(time.perf_counter() - start)
        if not accepted:
            raise AssertionError("AD lookup proof rejected")

    exponent = 1
    for i in range(16):
        exponent *= (1 << 63) + 2 * i + 1
    start = time.perf_counter()
    result, proof = prove_exponentiation(grp, grp.generator, exponent)
    if not verify_exponentiation(grp, grp.generator, exponent, result, proof):
        raise AssertionError("PoE proof rejected")
    poe_seconds = time.perf_counter() - start

    ordered = sorted(lookup_seconds)
    p95 = ordered[min(len(ordered) - 1, int(0.95 * len(ordered)))]
    total = sum(lookup_seconds)
    rows = (
        {
            "op": "ad_lookup_prove_verify",
            "ops": config["ops"],
            "ops_per_s": round(config["ops"] / total, 1),
            "p95_ms": round(p95 * 1e3, 3),
        },
        {
            "op": "poe_prove_verify",
            "ops": 1,
            "ops_per_s": round(1 / poe_seconds, 1),
            "p95_ms": round(poe_seconds * 1e3, 3),
        },
    )
    metrics = {
        "throughput": config["ops"] / total,
        "latency_p95": p95,
        "poe_seconds": poe_seconds,
    }
    counts = {
        "lookups": config["ops"],
        "poe_proofs": 1,
        "table_rows": config["rows"],
    }
    return TrialMeasurement(rows=rows, counts=counts, metrics=metrics)


CRYPTO_TRIAL = register(
    TrialSpec(
        name="crypto/ad_poe_micro",
        area="crypto",
        bench_file="bench_crypto_micro.py",
        runner=run_crypto_trial,
        config={"ops": 12, "rows": 32, "prime_bits": PRIME_BITS, "group_bits": 512},
        seed=7,
        headline=("throughput", "latency_p95"),
        description="AD lookup prove/verify microbenchmark plus one PoE round.",
    )
)


def run_poe_batch_trial(config: dict, seed: int) -> TrialMeasurement:
    """Batched vs sequential PoE verification over one batch of instances.

    Proofs are minted outside the timed region — the comparison is pure
    verifier cost: k independent Wesolowski checks (one challenge prime and
    two exponentiations each) against ONE random-linear-combination check
    (one challenge prime and two multi-exponentiations total).  Runs on the
    pure-python backend so the numbers are comparable across machines with
    and without gmpy2.
    """
    import random
    import time

    from repro.crypto.backend import use_backend
    from repro.crypto.cache import prime_product
    from repro.crypto.poe import prove_poe_batch, verify_poe_batch
    from repro.crypto.primes import hash_to_prime

    rng = random.Random(seed)
    with use_backend("python"):
        grp = default_group(bits=config["group_bits"]).public_view()
        instances = []
        for i in range(config["batch_size"]):
            exponent = prime_product(
                hash_to_prime(b"bench-poe" + bytes([i, j]), 128)
                for j in range(config["primes_per_instance"])
            )
            base = grp.power(grp.generator, rng.randrange(3, 1 << 64))
            instances.append((base, exponent, grp.power(base, exponent)))

        sequential_proofs = [
            prove_exponentiation(grp, base, exponent)[1]
            for base, exponent, _result in instances
        ]
        batch_proof = prove_poe_batch(grp, instances)

        repeats = config["repeats"]
        start = time.perf_counter()
        for _ in range(repeats):
            ok = all(
                verify_exponentiation(grp, base, exponent, result, proof)
                for (base, exponent, result), proof in zip(
                    instances, sequential_proofs
                )
            )
            if not ok:
                raise AssertionError("sequential PoE verification rejected")
        sequential_seconds = (time.perf_counter() - start) / repeats

        start = time.perf_counter()
        for _ in range(repeats):
            if not verify_poe_batch(grp, instances, batch_proof):
                raise AssertionError("batched PoE verification rejected")
        batched_seconds = (time.perf_counter() - start) / repeats

    speedup = sequential_seconds / batched_seconds
    rows = (
        {
            "op": "poe_verify_sequential",
            "batch": config["batch_size"],
            "ms_per_batch": round(sequential_seconds * 1e3, 3),
        },
        {
            "op": "poe_verify_batched",
            "batch": config["batch_size"],
            "ms_per_batch": round(batched_seconds * 1e3, 3),
        },
        {"op": "speedup", "batch": config["batch_size"], "x": round(speedup, 2)},
    )
    metrics = {
        "sequential_seconds": sequential_seconds,
        "batched_seconds": batched_seconds,
        "speedup": speedup,
    }
    counts = {
        "instances": config["batch_size"],
        "primes_per_instance": config["primes_per_instance"],
    }
    return TrialMeasurement(rows=rows, counts=counts, metrics=metrics)


POE_BATCH_TRIAL = register(
    TrialSpec(
        name="crypto/poe_batch_verify",
        area="crypto",
        bench_file="bench_crypto_micro.py",
        runner=run_poe_batch_trial,
        config={
            "batch_size": 16,
            "primes_per_instance": 3,
            "repeats": 5,
            "group_bits": 512,
        },
        seed=11,
        headline=("speedup", "batched_seconds"),
        description=(
            "Batched (random-linear-combination) vs sequential Wesolowski PoE "
            "verification at batch 16, pure-python backend."
        ),
    )
)
