"""Micro-benchmarks of the cryptographic substrate (real wall-clock).

Not a paper figure; quantifies the primitives the protocol is built from
(AD lookups/updates, aggregated proofs, Merkle paths, statement proving)
so regressions in the crypto layer are visible.
"""

from __future__ import annotations

import pytest

from repro.crypto.authdict import AuthenticatedDictionary
from repro.crypto.merkle import MerkleTree
from repro.crypto.poe import prove_exponentiation, verify_exponentiation
from repro.crypto.rsa_group import default_group

PRIME_BITS = 64


@pytest.fixture(scope="module")
def group():
    return default_group(bits=512)


@pytest.fixture(scope="module")
def ad(group):
    return AuthenticatedDictionary(
        group, initial={("row", i): i for i in range(64)}, prime_bits=PRIME_BITS
    )


def test_ad_single_lookup_prove_verify(benchmark, ad):
    def run():
        proof = ad.prove_lookup([("row", 3)])
        assert ad.ver_lookup(ad.digest, {("row", 3): 3}, proof)

    benchmark(run)


def test_ad_aggregated_lookup_16_keys(benchmark, ad):
    keys = [("row", i) for i in range(16)]
    values = {("row", i): i for i in range(16)}

    def run():
        proof = ad.prove_lookup(keys)
        assert ad.ver_lookup(ad.digest, values, proof)

    benchmark(run)


def test_ad_nonexistence_proof(benchmark, ad):
    def run():
        proof = ad.prove_no_key([("ghost", 1)])
        assert ad.ver_no_key(ad.digest, [("ghost", 1)], proof)

    benchmark(run)


def test_ad_update_roll_forward(benchmark, group):
    def run():
        fresh = AuthenticatedDictionary(
            group, initial={("row", i): i for i in range(16)}, prime_bits=PRIME_BITS
        )
        new_digest, proof = fresh.update({("row", 3): 99})
        assert fresh.digest_after_update(proof, {("row", 3): 99}) == new_digest

    benchmark(run)


def test_poe_prove_and_verify(benchmark, group):
    exponent = 1
    for i in range(16):
        exponent *= (1 << 63) + 2 * i + 1

    def run():
        result, proof = prove_exponentiation(group, group.generator, exponent)
        assert verify_exponentiation(group, group.generator, exponent, result, proof)

    benchmark(run)


def test_merkle_path_prove_verify(benchmark):
    tree = MerkleTree(1024, fill=0)
    tree.update(17, 42)

    def run():
        path = tree.prove(17)
        assert MerkleTree.verify(tree.root, path, 42)

    benchmark(run)
