"""Backend comparison: Groth16 simulator vs Plonk simulator vs spot-check.

Real wall-clock of the three proof backends on an identical verified batch.
The Groth16/Plonk simulators do the same constraint evaluation (their cost
difference at paper scale is the trusted-setup story, not wall time here);
the spot-check backend is a complete argument system and pays for Merkle
commitment and openings — its proofs are also not constant-size.
"""

from __future__ import annotations

import time

from repro.core import LitmusClient, LitmusConfig, LitmusServer
from repro.crypto.rsa_group import default_group
from repro.db.txn import Transaction
from repro.bench.report import format_table
from repro.vc.program import (
    Add,
    Const,
    Emit,
    KeyTemplate,
    Param,
    Program,
    ReadStmt,
    ReadVal,
    WriteStmt,
)

INCREMENT = Program(
    name="bb_increment",
    params=("k",),
    statements=(
        ReadStmt("v", KeyTemplate(("row", Param("k")))),
        WriteStmt(KeyTemplate(("row", Param("k"))), Add(ReadVal("v"), Const(1))),
        Emit(ReadVal("v")),
    ),
)


def run_backend(backend: str, group) -> dict:
    config = LitmusConfig(
        cc="dr", processing_batch_size=8, batches_per_piece=2,
        prime_bits=64, backend=backend,
    )
    server = LitmusServer(initial={}, config=config, group=group)
    client = LitmusClient(group, server.digest, config=config)
    txns = [Transaction(i, INCREMENT, {"k": i % 5}) for i in range(1, 17)]
    started = time.perf_counter()
    response = server.execute_batch(txns)
    prove_seconds = time.perf_counter() - started
    started = time.perf_counter()
    verdict = client.verify_response(txns, response)
    verify_seconds = time.perf_counter() - started
    assert verdict.accepted, verdict.reason
    proof_bytes = sum(p.proof.size_bytes for p in response.pieces)
    return {
        "backend": backend,
        "server_seconds": prove_seconds,
        "client_seconds": verify_seconds,
        "proof_bytes": proof_bytes,
        "pieces": len(response.pieces),
    }


def test_backend_comparison(benchmark):
    group = default_group(bits=512)

    def run_all():
        return [run_backend(name, group) for name in ("groth16", "spotcheck")]

    rows = benchmark.pedantic(run_all, iterations=1, rounds=1)
    print("\nBackend comparison (real wall-clock, identical batch)")
    print(format_table(rows))
    groth16, spotcheck = rows
    # Constant-size vs opening-based proofs: the documented trade-off.
    assert groth16["proof_bytes"] == 312 * groth16["pieces"]
    assert spotcheck["proof_bytes"] > groth16["proof_bytes"]


# --- orchestrated trial (python -m repro --bench) ---------------------------

from repro.bench.experiment import TrialMeasurement, TrialSpec, register

TRIAL_TXNS = 16


def run_backends_trial(config: dict, seed: int) -> TrialMeasurement:
    """Real wall-clock backend comparison on one identical verified batch."""
    group = default_group(bits=512)
    rows = [run_backend(name, group) for name in config["backends"]]
    by_backend = {row["backend"]: row for row in rows}
    groth16 = by_backend["groth16"]
    metrics = {"latency_verify": groth16["client_seconds"]}
    for name, row in by_backend.items():
        metrics[f"throughput_{name}"] = TRIAL_TXNS / row["server_seconds"]
    metrics["throughput"] = metrics["throughput_groth16"]
    counts = {
        "txns": TRIAL_TXNS * len(rows),
        "pieces": sum(row["pieces"] for row in rows),
        "proof_bytes_groth16": groth16["proof_bytes"],
    }
    return TrialMeasurement(rows=tuple(rows), counts=counts, metrics=metrics)


BACKENDS_TRIAL = register(
    TrialSpec(
        name="crypto/backend_compare",
        area="crypto",
        bench_file="bench_backends.py",
        runner=run_backends_trial,
        config={"backends": ["groth16", "spotcheck"]},
        seed=7,
        headline=("throughput", "latency_verify"),
        description="Groth16 vs spot-check backends on one verified batch.",
    )
)
