"""Ablations of the co-design choices DESIGN.md calls out.

1. **Batching/aggregation** (Section 7.1a): merging a non-conflicting batch
   behind one aggregated MemCheck vs one gadget per access — the paper
   reports ~10x from batching.
2. **Multiple provers** (Section 7.2): pipelining across prover threads —
   the paper reports ~25x on top of batching.
3. **PoE compression** (Section 6.1.1): verifying an aggregated membership
   witness with a proof-of-exponentiation vs raising the witness to the
   full product (real measured crypto).
4. **Certified vs fast primes** (Section 5.3): hash-to-prime with vs
   without Pocklington certificate generation (real measured crypto).
"""

from __future__ import annotations

from repro.bench.figures import ycsb_profile
from repro.bench.model import LitmusModel
from repro.bench.report import format_table
from repro.crypto.accumulator import RSAAccumulator
from repro.crypto.categorization import (
    CATEGORY_KEY,
    sample_category_prime,
    sample_certified_category_prime,
)
from repro.crypto.primes import hash_to_prime
from repro.crypto.rsa_group import default_group

SCALE = 800
NUM_TXNS = 1_310_720


def test_ablation_batching_and_provers(benchmark):
    def run():
        from repro.bench.model import zipf_contention_scale

        model = LitmusModel(ycsb_profile(0.6, SCALE))
        scale_factor = zipf_contention_scale(0.6, 4096)
        aggregated_multi = model.litmus_run(
            NUM_TXNS, num_provers=75, cc="dr", processing_batch_size=81_920,
            contention_scale=scale_factor,
        )
        aggregated_single = model.litmus_run(
            NUM_TXNS, num_provers=1, cc="dr", processing_batch_size=81_920,
            contention_scale=scale_factor,
        )
        unbatched_single = model.litmus_run(NUM_TXNS, num_provers=1, cc="2pl")
        return aggregated_multi, aggregated_single, unbatched_single

    drm, dr, tpl = benchmark.pedantic(run, iterations=1, rounds=1)
    rows = [
        {"configuration": "aggregation + 75 provers (DRM)", "throughput": drm.throughput},
        {"configuration": "aggregation, 1 prover (DR)", "throughput": dr.throughput},
        {"configuration": "no aggregation, 1 prover (2PL)", "throughput": tpl.throughput},
    ]
    print("\nAblation — batching and prover pipelining")
    print(format_table(rows))
    batching_gain = dr.throughput / tpl.throughput
    prover_gain = drm.throughput / dr.throughput
    # Paper: "enabling batching yields a throughput gain of around 10x";
    # "enabling multiple provers yields an extra gain of around 25x".
    assert 5 < batching_gain < 30
    assert 8 < prover_gain < 50


def test_ablation_poe_verification(benchmark):
    """Real crypto: PoE-compressed vs raw aggregated membership checks."""
    import time

    group = default_group(bits=512)
    primes = [hash_to_prime(b"abl" + i.to_bytes(4, "big"), 64) for i in range(64)]
    accumulator = RSAAccumulator(group, primes)
    subset = primes[:32]

    def verify_both():
        witness, exponent, proof = accumulator.membership_witness_with_poe(subset)
        poe_seconds = raw_seconds = float("inf")
        for _ in range(7):  # best-of-N to shed scheduler jitter
            start = time.perf_counter()
            assert RSAAccumulator.verify_membership_with_poe(
                group, accumulator.value, witness, exponent, proof
            )
            poe_seconds = min(poe_seconds, time.perf_counter() - start)
            start = time.perf_counter()
            assert RSAAccumulator.verify_membership(
                group, accumulator.value, subset, witness
            )
            raw_seconds = min(raw_seconds, time.perf_counter() - start)
        return poe_seconds, raw_seconds

    poe_seconds, raw_seconds = benchmark.pedantic(verify_both, iterations=1, rounds=3)
    print("\nAblation — PoE verification vs raw exponentiation (best of 7)")
    print(
        format_table(
            [
                {"path": "PoE-compressed verify", "seconds": poe_seconds},
                {"path": "raw product verify", "seconds": raw_seconds},
            ]
        )
    )
    # The PoE verifier exponentiates by a 128-bit challenge (constant work);
    # the raw verifier's exponent is a product of 32 64-bit primes (~2 kb).
    # Allow slack: both are sub-millisecond and jitter-prone.
    assert poe_seconds < raw_seconds * 3


def test_ablation_certified_primes(benchmark):
    """Real crypto: Pocklington-certified sampling vs plain hash-to-prime."""
    import time

    def sample_both():
        start = time.perf_counter()
        for nonce in range(8):
            sample_category_prime(64, CATEGORY_KEY, ("fast", nonce))
        fast = time.perf_counter() - start
        start = time.perf_counter()
        for nonce in range(8):
            sample_certified_category_prime(64, CATEGORY_KEY, ("cert", nonce))
        certified = time.perf_counter() - start
        return fast, certified

    fast, certified = benchmark.pedantic(sample_both, iterations=1, rounds=1)
    print("\nAblation — prime sampling (8 primes, 64-bit)")
    print(
        format_table(
            [
                {"path": "hash-to-prime (Miller-Rabin)", "seconds": fast},
                {"path": "Pocklington-certified chain", "seconds": certified},
            ]
        )
    )
    # Certificates are the expensive path (the server pays; circuits verify).
    assert certified > fast


# --- orchestrated trial (python -m repro --bench) ---------------------------

from repro.bench.experiment import TrialMeasurement, TrialSpec, register
from repro.bench.experiment.counts import ycsb_counts


def run_ablation_trial(config: dict, seed: int) -> TrialMeasurement:
    """Reduced-scale batching/prover ablation; headline = full co-design."""
    from repro.bench.model import zipf_contention_scale

    model = LitmusModel(ycsb_profile(0.6, config["scale"]))
    scale_factor = zipf_contention_scale(0.6, 4096)
    drm = model.litmus_run(
        config["num_txns"], num_provers=75, cc="dr",
        processing_batch_size=81_920, contention_scale=scale_factor,
    )
    dr = model.litmus_run(
        config["num_txns"], num_provers=1, cc="dr",
        processing_batch_size=81_920, contention_scale=scale_factor,
    )
    tpl = model.litmus_run(config["num_txns"], num_provers=1, cc="2pl")
    rows = (
        {"configuration": "aggregation + 75 provers", "throughput": drm.throughput},
        {"configuration": "aggregation, 1 prover", "throughput": dr.throughput},
        {"configuration": "no aggregation, 1 prover", "throughput": tpl.throughput},
    )
    metrics = {
        "throughput": drm.throughput,
        "prover_gain": drm.throughput / dr.throughput,
        "batching_gain": dr.throughput / tpl.throughput,
    }
    counts = ycsb_counts(scale=config["scale"])
    return TrialMeasurement(rows=rows, counts=counts, metrics=metrics)


ABLATION_TRIAL = register(
    TrialSpec(
        name="figures/ablation_codesign",
        area="figures",
        bench_file="bench_ablation.py",
        runner=run_ablation_trial,
        config={"num_txns": 81_920, "scale": 160},
        seed=11,
        headline=("throughput",),
        description="Batching and multi-prover ablation of the co-design.",
    )
)
