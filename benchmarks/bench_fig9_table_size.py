"""Figure 9 (table): Litmus throughput vs YCSB table size.

Expected shape (paper): throughput decays slowly as the table doubles —
17,538 / 16,394 / 14,909 / 12,818 txn/s for 10G/20G/40G/80G — because the
witness-computation (trace) cost loses locality; proving cost itself is
data-size independent.
"""

from __future__ import annotations

import pytest

from repro.bench import fig9_table_size, format_table

SCALE = 800


def test_fig9_table_size(benchmark):
    rows = benchmark.pedantic(
        fig9_table_size, kwargs={"scale": SCALE}, iterations=1, rounds=1
    )
    print("\nFigure 9 — Litmus-DRM throughput vs table size (paper column shown)")
    print(format_table(rows))

    ours = [r["throughput"] for r in rows]
    paper = [r["paper"] for r in rows]
    # Strictly decaying, slowly (each doubling keeps > 75% of throughput).
    assert all(b < a for a, b in zip(ours, ours[1:]))
    for a, b in zip(ours, ours[1:]):
        assert b > 0.75 * a
    # The relative decay profile tracks the paper within 10%.
    for our_ratio, paper_ratio in zip(
        (o / ours[0] for o in ours), (p / paper[0] for p in paper)
    ):
        assert our_ratio == pytest.approx(paper_ratio, abs=0.10)


# --- orchestrated trial (python -m repro --bench) ---------------------------

from repro.bench.experiment import TrialMeasurement, TrialSpec, register
from repro.bench.experiment.counts import ycsb_counts


def run_fig9_trial(config: dict, seed: int) -> TrialMeasurement:
    """Reduced-scale Fig 9; headline = 10G-table DRM throughput."""
    rows = fig9_table_size(
        doublings=tuple(config["doublings"]),
        num_txns=config["num_txns"],
        scale=config["scale"],
    )
    metrics = {
        "throughput": rows[0]["throughput"],
        "decay_retention": rows[-1]["throughput"] / rows[0]["throughput"],
    }
    counts = ycsb_counts(scale=config["scale"])
    return TrialMeasurement(rows=tuple(rows), counts=counts, metrics=metrics)


FIG9_TRIAL = register(
    TrialSpec(
        name="figures/fig9_table_size",
        area="figures",
        bench_file="bench_fig9_table_size.py",
        runner=run_fig9_trial,
        config={"doublings": [0, 3], "num_txns": 81_920, "scale": 160},
        seed=11,
        headline=("throughput",),
        description="Fig 9 table-size decay: DRM throughput at 10G vs 80G.",
    )
)
