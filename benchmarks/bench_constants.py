"""Section 8 headline constants: paper vs this reproduction.

Covers the throughput anchors (17,638 / 714.2 txn/s and the 24.7x / 12.6x
gaps), the 312-byte per-prover proof (~30 kB per verification batch), the
300 s constant verification, and the PostgreSQL reference numbers.
"""

from __future__ import annotations

import pytest

from repro.bench import reference_constants
from repro.bench.report import format_table


def test_reference_constants(benchmark):
    ref = benchmark.pedantic(
        reference_constants, kwargs={"scale": 800}, iterations=1, rounds=1
    )
    rows = [
        {"metric": name, "ours": entry.get("ours", ""), "paper": entry.get("paper", "")}
        for name, entry in ref.items()
        if isinstance(entry, dict) and "ours" in entry
    ]
    print("\nSection 8 constants — paper vs reproduction")
    print(format_table(rows))

    assert ref["dr_peak"]["ours"] == pytest.approx(714.2, rel=0.05)
    assert ref["drm_peak"]["ours"] == pytest.approx(17_638, rel=0.35)
    assert ref["drm_over_dr"]["ours"] == pytest.approx(24.7, rel=0.35)
    assert ref["dr_over_2pl"]["ours"] == pytest.approx(12.6, rel=0.10)
    assert ref["verify_seconds"]["ours"] == 300.0
    assert ref["proof_bytes_per_prover"]["ours"] == 312
    # Total proof size lands in the paper's "about 30 kB" regime.
    assert 10_000 < ref["proof_bytes_total"]["ours"] < 40_000


# --- orchestrated trial (python -m repro --bench) ---------------------------

from repro.bench.experiment import TrialMeasurement, TrialSpec, register
from repro.bench.experiment.counts import ycsb_counts


def run_constants_trial(config: dict, seed: int) -> TrialMeasurement:
    """Section 8 headline constants; headline = modeled DRM peak."""
    ref = reference_constants(scale=config["scale"])
    rows = tuple(
        {"metric": name, "ours": float(entry["ours"]), "paper": float(entry["paper"])}
        for name, entry in ref.items()
        if isinstance(entry, dict) and "ours" in entry and "paper" in entry
    )
    metrics = {
        "throughput": float(ref["drm_peak"]["ours"]),
        "throughput_dr": float(ref["dr_peak"]["ours"]),
        "drm_over_dr": float(ref["drm_over_dr"]["ours"]),
        "dr_over_2pl": float(ref["dr_over_2pl"]["ours"]),
    }
    counts = ycsb_counts(scale=config["scale"])
    return TrialMeasurement(rows=rows, counts=counts, metrics=metrics)


CONSTANTS_TRIAL = register(
    TrialSpec(
        name="figures/constants_section8",
        area="figures",
        bench_file="bench_constants.py",
        runner=run_constants_trial,
        config={"scale": 160},
        seed=11,
        headline=("throughput",),
        description="Section 8 constants: modeled peaks vs paper anchors.",
    )
)
