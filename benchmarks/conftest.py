"""Benchmark-suite configuration.

Each ``bench_*`` file regenerates one table or figure of the paper: the
benchmarked callable performs the *real* scaled execution (CC runs, circuit
compilation, crypto), and the printed table shows the modeled paper-scale
numbers next to the expected shape.  Run with::

    pytest benchmarks/ --benchmark-only

pytest captures stdout, so every test's printed figure is also persisted
under ``benchmarks/results/<test-name>.txt`` by the autouse fixture below —
those files are the regenerated paper figures.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(autouse=True)
def persist_figure_output(request, capsys):
    """Save whatever a benchmark prints (the figure table) to results/."""
    yield
    captured = capsys.readouterr()
    if not captured.out.strip():
        return
    RESULTS_DIR.mkdir(exist_ok=True)
    name = request.node.name.replace("/", "_")
    (RESULTS_DIR / f"{name}.txt").write_text(captured.out)
    # Re-emit so `pytest -s` users still see it live.
    print(captured.out)
