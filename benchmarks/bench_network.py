"""Network service benchmark: RTT and flush throughput vs client count.

Not a paper figure — this pins the cost of the ``repro.net`` boundary
added around the verifying session.  A live :class:`~repro.net.LitmusService`
(threaded sockets on loopback, single verification worker) serves a swarm
of :class:`~repro.net.RemoteSession` clients.  For each swarm size it
reports ping round-trip latency (the pure wire + dispatch cost, no
verification) and end-to-end flush throughput (submit + flush + verify +
resolve across all clients), plus the admission-queue story: ops executed,
sheds, and queue-time percentiles from the server's own ``net.*`` metrics.
Throughput should stay roughly flat as clients grow — the single worker
serializes verification, so added clients buy concurrency of *waiting*,
not of proving — while RTT stays in the sub-millisecond loopback range.

Run under pytest like the figure benchmarks::

    pytest benchmarks/bench_network.py --benchmark-only

or standalone — CI does this so ``check_metrics_schema.py --require`` can
pin the net.* metric names against a real export::

    PYTHONPATH=src python benchmarks/bench_network.py --metrics-out net.jsonl
"""

from __future__ import annotations

import threading
import time

from repro.bench import format_table
from repro.core import LitmusConfig, LitmusSession, RetryPolicy
from repro.crypto.rsa_group import default_group
from repro.net import LitmusService, RemoteSession, ServiceConfig
from repro.obs.metrics import MetricsRegistry
from repro.vc.program import (
    Add,
    Emit,
    KeyTemplate,
    Param,
    Program,
    ReadStmt,
    ReadVal,
    Sub,
    WriteStmt,
)

NUM_ACCOUNTS = 8
PINGS = 50
ROUNDS = 3
TXNS_PER_ROUND = 2
CLIENT_COUNTS = (1, 2, 4)

TRANSFER = Program(
    name="bench-net-transfer",
    params=("src", "dst", "amount"),
    statements=(
        ReadStmt("s", KeyTemplate(("acct", Param("src")))),
        ReadStmt("d", KeyTemplate(("acct", Param("dst")))),
        WriteStmt(
            KeyTemplate(("acct", Param("src"))), Sub(ReadVal("s"), Param("amount"))
        ),
        WriteStmt(
            KeyTemplate(("acct", Param("dst"))), Add(ReadVal("d"), Param("amount"))
        ),
        Emit(Add(ReadVal("s"), ReadVal("d"))),
    ),
)

CONFIG = LitmusConfig(
    cc="dr", processing_batch_size=2, batches_per_piece=2, prime_bits=64
)


def _start_service(group, registry: MetricsRegistry) -> LitmusService:
    session = LitmusSession.create(
        initial={("acct", i): 100 for i in range(NUM_ACCOUNTS)},
        config=CONFIG,
        group=group,
        registry=registry,
    )
    service = LitmusService(
        session,
        programs=[TRANSFER],
        config=ServiceConfig(queue_limit=128),
        registry=registry,
    )
    service.start()
    return service


def _client_loop(client: RemoteSession, errors: list[BaseException]) -> None:
    try:
        for round_index in range(ROUNDS):
            for txn in range(TXNS_PER_ROUND):
                src = (round_index + txn) % NUM_ACCOUNTS
                client.submit(
                    "bench", "bench-net-transfer",
                    src=src, dst=(src + 1) % NUM_ACCOUNTS, amount=1,
                )
            result = client.flush(timeout=120.0)
            assert result.accepted, result.reason
    except BaseException as exc:  # noqa: BLE001 — surfaced by the caller
        errors.append(exc)


def run_network_bench(
    client_counts=CLIENT_COUNTS, group=None, registry: MetricsRegistry | None = None
) -> list[dict]:
    """One row per swarm size: ping RTT and end-to-end flush throughput."""
    group = group if group is not None else default_group(bits=512)
    rows = []
    for num_clients in client_counts:
        run_registry = registry if registry is not None else MetricsRegistry()
        service = _start_service(group, run_registry)
        host, port = service.address
        clients = [
            RemoteSession(
                host,
                port,
                client_id=f"bench-{i}",
                retry_policy=RetryPolicy(max_attempts=8, backoff=0.02),
                registry=run_registry,
            )
            for i in range(num_clients)
        ]
        try:
            # Pure wire + dispatch cost: median of PINGS round trips.
            rtts = []
            for _ in range(PINGS):
                start = time.perf_counter()
                clients[0].ping()
                rtts.append(time.perf_counter() - start)
            rtts.sort()

            errors: list[BaseException] = []
            threads = [
                threading.Thread(target=_client_loop, args=(client, errors))
                for client in clients
            ]
            start = time.perf_counter()
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            elapsed = time.perf_counter() - start
            if errors:
                raise errors[0]

            total_txns = num_clients * ROUNDS * TXNS_PER_ROUND
            op_seconds = run_registry.histogram("net.op_seconds")
            rows.append(
                {
                    "clients": num_clients,
                    "ping_p50_us": round(rtts[len(rtts) // 2] * 1e6),
                    "ping_p95_us": round(rtts[int(len(rtts) * 0.95)] * 1e6),
                    "txns": total_txns,
                    "txns_per_s": round(total_txns / elapsed, 1),
                    "ops": op_seconds.count,
                    "op_p95_ms": round(op_seconds.percentile(95) * 1e3, 2),
                    "sheds": run_registry.counter("net.sheds").value,
                    "replays": run_registry.counter("net.op_replays").value,
                }
            )
        finally:
            for client in clients:
                try:
                    client.close()
                except Exception:
                    pass
            service.shutdown()
    return rows


def test_network_throughput(benchmark):
    rows = benchmark.pedantic(run_network_bench, iterations=1, rounds=1)
    print("\nNetworked service: RTT and flush throughput vs client count")
    print(format_table(rows))
    for row in rows:
        # Loopback pings must be far below the verification timescale, and
        # every submitted transaction must have committed.
        assert row["ping_p50_us"] < 100_000
        assert row["txns"] == row["clients"] * ROUNDS * TXNS_PER_ROUND
        assert row["txns_per_s"] > 0


def main(argv: list[str] | None = None) -> int:
    import argparse
    import sys

    from repro.obs import JsonLinesExporter, get_metrics

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--clients",
        type=int,
        nargs="+",
        default=list(CLIENT_COUNTS),
        metavar="N",
    )
    parser.add_argument("--metrics-out", metavar="PATH", default=None)
    args = parser.parse_args(argv)

    if args.metrics_out:
        # Run against the process-global registry so the export pins the
        # net.* metric names for check_metrics_schema.py --require.
        rows = run_network_bench(client_counts=args.clients, registry=get_metrics())
    else:
        rows = run_network_bench(client_counts=args.clients)
    print("Networked service: RTT and flush throughput vs client count")
    print(format_table(rows))
    if args.metrics_out:
        JsonLinesExporter(args.metrics_out).export((), get_metrics().snapshot())
        print(f"[obs] metrics snapshot written to {args.metrics_out}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())


# --- orchestrated trial (python -m repro --bench) ---------------------------

from repro.bench.experiment import TrialMeasurement, TrialSpec, register


def run_network_trial(config: dict, seed: int) -> TrialMeasurement:
    """Loopback service swarm; headline = largest-swarm flush throughput."""
    rows = run_network_bench(client_counts=tuple(config["clients"]))
    top = rows[-1]
    metrics = {
        "throughput": float(top["txns_per_s"]),
        "latency_p95": top["op_p95_ms"] / 1e3,
        "rtt_p50_us": float(rows[0]["ping_p50_us"]),
    }
    counts = {
        "txns": sum(row["txns"] for row in rows),
        "clients_max": max(config["clients"]),
        "swarms": len(rows),
    }
    return TrialMeasurement(rows=tuple(rows), counts=counts, metrics=metrics)


NETWORK_TRIAL = register(
    TrialSpec(
        name="network/rtt_flush",
        area="network",
        bench_file="bench_network.py",
        runner=run_network_trial,
        config={"clients": [1, 2]},
        seed=7,
        # op_p95 on a shared CI box is too jittery to gate; it is still
        # recorded in metrics for trend inspection.
        headline=("throughput",),
        description="Networked service: RTT and flush throughput vs swarm size.",
    )
)
