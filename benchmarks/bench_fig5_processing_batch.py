"""Figure 5: throughput (a) and latency (b) vs DR processing batch size.

Expected shape (paper): the no-verification baseline is roughly flat (its
bottleneck is workload contention) with a latency that *grows* at very
large batches (waiting for the batch to fill/synchronize); the Litmus lines
rise with the processing batch (better aggregation and parallelism), then
fall once the prover is saturated and the oversized batch hurts CC; tiny
batches make latency explode (the scheduler degenerates to sequential).
"""

from __future__ import annotations

from repro.bench import fig5_processing_batch, format_series

SIZES = (32, 3_200, 320_000, 1_000_000)
NUM_TXNS = 1_310_720
SCALE = 800


def test_fig5_processing_batch(benchmark):
    rows = benchmark.pedantic(
        fig5_processing_batch,
        kwargs={
            "processing_batch_sizes": SIZES,
            "num_txns": NUM_TXNS,
            "scale": SCALE,
        },
        iterations=1,
        rounds=1,
    )
    print("\nFigure 5a — throughput (txn/s) vs DR processing batch size")
    print(format_series(rows, x="processing_batch", y="throughput"))
    print("\nFigure 5b — latency (s) vs DR processing batch size")
    print(format_series(rows, x="processing_batch", y="latency"))

    def series(name, metric):
        return [r[metric] for r in rows if r["baseline"] == name]

    drm = series("Litmus-DRM", "throughput")
    # Rise then fall: the peak is strictly inside the sweep.
    assert max(drm) > drm[0]
    assert max(drm) > drm[-1]
    # DRM above DR everywhere (pipelining gain).
    dr = series("Litmus-DR", "throughput")
    assert all(a >= b for a, b in zip(drm, dr))
    # Tiny processing batches give the worst Litmus latency.
    drm_latency = series("Litmus-DRM", "latency")
    assert drm_latency[0] > min(drm_latency)
    # The no-verification latency grows at very large batch sizes.
    noverif_latency = series("No-Verification-DR", "latency")
    assert noverif_latency[-1] > noverif_latency[0]


# --- orchestrated trial (python -m repro --bench) ---------------------------

from repro.bench.experiment import TrialMeasurement, TrialSpec, register
from repro.bench.experiment.counts import ycsb_counts


def run_fig5_trial(config: dict, seed: int) -> TrialMeasurement:
    """Reduced-scale Fig 5; headline = best DRM point across the sweep."""
    rows = fig5_processing_batch(
        processing_batch_sizes=tuple(config["processing"]),
        num_txns=config["num_txns"],
        scale=config["scale"],
    )
    drm = [row for row in rows if row["baseline"] == "Litmus-DRM"]
    metrics = {
        "throughput": max(row["throughput"] for row in drm),
        "latency": min(row["latency"] for row in drm),
    }
    counts = ycsb_counts(scale=config["scale"])
    return TrialMeasurement(rows=tuple(rows), counts=counts, metrics=metrics)


FIG5_TRIAL = register(
    TrialSpec(
        name="figures/fig5_processing_batch",
        area="figures",
        bench_file="bench_fig5_processing_batch.py",
        runner=run_fig5_trial,
        config={"processing": [32, 3_200, 320_000], "num_txns": 81_920, "scale": 160},
        seed=11,
        headline=("throughput", "latency"),
        description="Fig 5 DR processing-batch sweep: best Litmus-DRM point.",
    )
)
