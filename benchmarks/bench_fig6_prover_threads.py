"""Figure 6: Litmus-DRM throughput and latency vs number of prover threads.

Expected shape (paper): throughput scales well up to ~40 threads and
plateaus beyond ~60 (the serial trace-processing prefix bounds the
speedup); average latency drops steeply (514.3 s at few threads to ~100 s
past 40) and then flattens.

Two modes are exercised (see benchmarks/README.md, "Real vs. modeled
pipelining"):

- the **modeled** curve runs the calibrated cost model over real constraint
  counts at the paper's scale (``test_fig6_prover_threads``);
- the **real** curve runs the actual concurrent prover pool on a small
  batch and reports measured wall-clock per stage alongside the modeled
  schedule built from those same measured piece costs
  (``test_fig6_real_pipeline``).
"""

from __future__ import annotations

import os

from repro import LitmusClient, LitmusConfig, LitmusServer
from repro.bench import fig6_prover_threads, format_table
from repro.crypto import RSAGroup
from repro.db import Transaction
from repro.obs import ConsoleSummaryExporter, JsonLinesExporter, get_metrics, get_tracer
from repro.sim.scheduler import ProverTask, schedule_tasks, serial_seconds
from repro.vc import Program
from repro.vc.program import Add, Const, Emit, KeyTemplate, Param, ReadStmt, ReadVal, WriteStmt

THREADS = (1, 10, 20, 40, 60, 80)
NUM_TXNS = 2_621_440
SCALE = 800

REAL_THREADS = (1, 2, 4)
REAL_TXNS = 16  # -> 8 pieces at batches_per_piece=1, processing_batch_size=2

_INCREMENT = Program(
    name="fig6-increment",
    params=("k",),
    statements=(
        ReadStmt("v", KeyTemplate(("row", Param("k")))),
        WriteStmt(KeyTemplate(("row", Param("k"))), Add(ReadVal("v"), Const(1))),
        Emit(ReadVal("v")),
    ),
)


def test_fig6_prover_threads(benchmark):
    rows = benchmark.pedantic(
        fig6_prover_threads,
        kwargs={"thread_counts": THREADS, "num_txns": NUM_TXNS, "scale": SCALE},
        iterations=1,
        rounds=1,
    )
    print("\nFigure 6 — Litmus-DRM vs prover threads")
    print(format_table(rows))

    throughput = [r["throughput"] for r in rows]
    latency = [r["latency"] for r in rows]
    # Monotone scaling with diminishing returns.
    assert all(b >= a for a, b in zip(throughput, throughput[1:]))
    gain_low = throughput[2] / throughput[0]  # 1 -> 20 threads
    gain_high = throughput[-1] / throughput[-2]  # 60 -> 80 threads
    assert gain_low > 4, "early scaling should be near-linear"
    assert gain_high < 1.5, "the curve must plateau past ~60 threads"
    # Latency drops sharply and flattens.
    assert latency[0] > 3 * latency[-1]
    assert latency[-2] / latency[-1] < 1.8


def test_fig6_real_pipeline(benchmark):
    """Thread-scaling with the *real* concurrent prover pool.

    For each worker count the same batch is executed end to end; the table
    reports measured wall-clock of the prove stage, the summed per-piece
    prover work, the observed overlap factor, and the modeled makespan a
    list scheduler predicts from the *measured* per-piece costs.  On a
    multi-core box the measured prove wall-clock at 4 workers lands well
    under the 1-worker run; on a single core the observed overlap factor
    stays near 1 while the modeled column still shows the scaling the
    hardware would permit.
    """
    group = RSAGroup.generate(bits=512, seed=b"fig6-real")

    def run_all():
        rows = []
        for threads in REAL_THREADS:
            config = LitmusConfig(
                cc="dr",
                processing_batch_size=2,
                batches_per_piece=1,
                prime_bits=64,
                num_provers=threads,
            )
            server = LitmusServer(initial={}, config=config, group=group)
            client = LitmusClient(group, server.digest, config=config)
            txns = [
                Transaction(i, _INCREMENT, {"k": i}) for i in range(1, REAL_TXNS + 1)
            ]
            response = server.execute_batch(txns)
            verdict = client.verify_response(txns, response)
            assert verdict.accepted, verdict.reason
            timing = response.timing
            work = timing.measured_prover_work_seconds
            per_piece = work / max(1, timing.num_pieces)
            tasks = [
                ProverTask(cost_seconds=per_piece) for _ in range(timing.num_pieces)
            ]
            modeled = schedule_tasks(tasks, threads)
            rows.append(
                {
                    "prover_threads": threads,
                    "pieces": timing.num_pieces,
                    "prove_wall_s": round(timing.measured_prove_wall_seconds, 4),
                    "prover_work_s": round(work, 4),
                    "overlap": round(timing.measured_pipeline_speedup, 2),
                    "modeled_wall_s": round(modeled.makespan_seconds, 4),
                    "modeled_speedup": round(modeled.speedup_over_serial(tasks), 2),
                    "digest": response.final_digest % 100_000,
                }
            )
        return rows

    metrics_before = {
        name: snap.get("value", snap.get("count", 0))
        for name, snap in get_metrics().snapshot().items()
    }
    rows = benchmark.pedantic(run_all, iterations=1, rounds=1)
    print("\nFigure 6 (real) — measured vs modeled prover-pool scaling")
    print(format_table(rows))

    # Emit the observability layer's view of the same run: counter deltas
    # over the benchmark (cache behaviour, SNARK activity, CC outcomes) plus
    # the usual exporter summary.  LITMUS_METRICS_OUT=path.jsonl additionally
    # writes the full snapshot + span log as JSON lines.
    snapshot = get_metrics().snapshot()
    deltas = {
        name: snap.get("value", snap.get("count", 0)) - metrics_before.get(name, 0)
        for name, snap in snapshot.items()
    }
    interesting = {
        name: delta
        for name, delta in sorted(deltas.items())
        if delta and name.split(".")[0] in ("cache", "snark", "db", "server", "client")
    }
    print("\nFigure 6 (real) — metric deltas over this benchmark")
    print(format_table([{"metric": k, "delta": v} for k, v in interesting.items()]))
    ConsoleSummaryExporter().export((), snapshot)
    metrics_out = os.environ.get("LITMUS_METRICS_OUT")
    if metrics_out:
        JsonLinesExporter(metrics_out).export(get_tracer().finished(), snapshot)
        print(f"[obs] metrics + spans appended to {metrics_out}")
    # The SetupCache must have been exercised by the real pipeline runs.
    assert deltas.get("snark.setup_cache.hits", 0) > 0

    # Correctness invariants hold at every worker count...
    assert len({row["digest"] for row in rows}) == 1
    assert all(row["pieces"] >= 8 for row in rows)
    # ...the modeled schedule built from measured costs scales with threads...
    assert rows[-1]["modeled_speedup"] > rows[0]["modeled_speedup"]
    assert rows[0]["modeled_speedup"] == 1.0
    # ...and on a multi-core box the real prove wall-clock drops too.
    if os.cpu_count() and os.cpu_count() >= 4:
        assert rows[-1]["prove_wall_s"] < rows[0]["prove_wall_s"]


# --- orchestrated trial (python -m repro --bench) ---------------------------

from repro.bench.experiment import TrialMeasurement, TrialSpec, register
from repro.bench.experiment.counts import ycsb_counts


def run_fig6_trial(config: dict, seed: int) -> TrialMeasurement:
    """Reduced-scale Fig 6 sweep; headline = top-thread-count point."""
    threads = tuple(config["threads"])
    rows = fig6_prover_threads(
        thread_counts=threads, num_txns=config["num_txns"], scale=config["scale"]
    )
    by_threads = {row["prover_threads"]: row for row in rows}
    top, bottom = max(threads), min(threads)
    metrics = {
        "throughput": by_threads[top]["throughput"],
        "latency": by_threads[top]["latency"],
        "thread_speedup": by_threads[top]["throughput"]
        / by_threads[bottom]["throughput"],
    }
    counts = ycsb_counts(scale=config["scale"])
    return TrialMeasurement(rows=tuple(rows), counts=counts, metrics=metrics)


FIG6_TRIAL = register(
    TrialSpec(
        name="pipeline/fig6_prover_scaling",
        area="pipeline",
        bench_file="bench_fig6_prover_threads.py",
        runner=run_fig6_trial,
        config={"threads": [1, 4, 16, 64], "num_txns": 81_920, "scale": 160},
        seed=11,
        headline=("throughput", "latency"),
        description="Fig 6 prover-thread scaling: Litmus-DRM at 64 threads.",
    )
)
