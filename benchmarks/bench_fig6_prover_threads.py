"""Figure 6: Litmus-DRM throughput and latency vs number of prover threads.

Expected shape (paper): throughput scales well up to ~40 threads and
plateaus beyond ~60 (the serial trace-processing prefix bounds the
speedup); average latency drops steeply (514.3 s at few threads to ~100 s
past 40) and then flattens.
"""

from __future__ import annotations

from repro.bench import fig6_prover_threads, format_table

THREADS = (1, 10, 20, 40, 60, 80)
NUM_TXNS = 2_621_440
SCALE = 800


def test_fig6_prover_threads(benchmark):
    rows = benchmark.pedantic(
        fig6_prover_threads,
        kwargs={"thread_counts": THREADS, "num_txns": NUM_TXNS, "scale": SCALE},
        iterations=1,
        rounds=1,
    )
    print("\nFigure 6 — Litmus-DRM vs prover threads")
    print(format_table(rows))

    throughput = [r["throughput"] for r in rows]
    latency = [r["latency"] for r in rows]
    # Monotone scaling with diminishing returns.
    assert all(b >= a for a, b in zip(throughput, throughput[1:]))
    gain_low = throughput[2] / throughput[0]  # 1 -> 20 threads
    gain_high = throughput[-1] / throughput[-2]  # 60 -> 80 threads
    assert gain_low > 4, "early scaling should be near-linear"
    assert gain_high < 1.5, "the curve must plateau past ~60 threads"
    # Latency drops sharply and flattens.
    assert latency[0] > 3 * latency[-1]
    assert latency[-2] / latency[-1] < 1.8
