"""Figure 3: YCSB throughput (a) and latency (b) vs verification batch size.

Expected shape (paper): every Litmus line rises with the verification batch;
Litmus-DRM peaks near 17.6k txn/s at 2.6M transactions, ~25x above
Litmus-DR, which sits ~12.6x above Litmus-2PL; the interactive baselines
plateau after ~320 transactions (network-bound) and the 1 ms variant decays
at large counts (witness recomputation); Merkle is slowest; the
no-verification baselines bound everything from above.
"""

from __future__ import annotations

from repro.bench import fig3_ycsb_throughput_latency, format_series

BATCHES = (320, 5_120, 81_920, 1_310_720, 2_621_440)
SCALE = 800


def _by_baseline(rows, batch):
    return {
        row["baseline"]: row
        for row in rows
        if row["batch_size"] == batch
    }


def test_fig3_throughput_and_latency(benchmark):
    rows = benchmark.pedantic(
        fig3_ycsb_throughput_latency,
        kwargs={"batch_sizes": BATCHES, "scale": SCALE},
        iterations=1,
        rounds=1,
    )
    print("\nFigure 3a — YCSB throughput (txn/s) vs verification batch size")
    print(format_series(rows, x="batch_size", y="throughput"))
    print("\nFigure 3b — YCSB mean latency (s) vs verification batch size")
    print(format_series(rows, x="batch_size", y="latency"))

    peak = _by_baseline(rows, 2_621_440)
    small = _by_baseline(rows, 320)

    # Litmus lines rise with verification batch size.
    for name in ("Litmus-DRM", "Litmus-DR", "Litmus-2PL"):
        assert peak[name]["throughput"] > small[name]["throughput"]
    # Ordering at the peak: No-Verif >> DRM >> DR >> 2PL.
    assert peak["No-Verification-DR"]["throughput"] > peak["Litmus-DRM"]["throughput"]
    assert peak["Litmus-DRM"]["throughput"] > peak["Litmus-DR"]["throughput"]
    assert peak["Litmus-DR"]["throughput"] > peak["Litmus-2PL"]["throughput"]
    # Paper magnitudes (shape tolerance, not exact numbers).
    drm = peak["Litmus-DRM"]["throughput"]
    dr = peak["Litmus-DR"]["throughput"]
    assert 8_000 < drm < 40_000, f"DRM peak {drm} outside the paper's regime"
    assert 10 < drm / dr < 50, "multi-prover gain should be order ~25x"
    # Interactive baselines: 1 ms plateaus then decays with batch count.
    assert (
        _by_baseline(rows, 81_920)["AD-Interact-1ms"]["throughput"]
        < _by_baseline(rows, 5_120)["AD-Interact-1ms"]["throughput"]
    )
    # Merkle stays below ~20 txn/s.
    assert peak["Merkle-Tree"]["throughput"] < 25
    # Latency: Litmus-2PL (single deep proof) worse than Litmus-DRM.
    assert peak["Litmus-2PL"]["latency"] > peak["Litmus-DRM"]["latency"]
    # Interactive latency is roughly the round trip, far below Litmus's.
    assert small["AD-Interact-1ms"]["latency"] < 1.0


# --- orchestrated trial (python -m repro --bench) ---------------------------

from repro.bench.experiment import TrialMeasurement, TrialSpec, register
from repro.bench.experiment.counts import ycsb_counts


def run_fig3_trial(config: dict, seed: int) -> TrialMeasurement:
    """Reduced-scale Fig 3 sweep; headline = modeled DRM peak point."""
    batches = tuple(config["batch_sizes"])
    rows = fig3_ycsb_throughput_latency(batch_sizes=batches, scale=config["scale"])
    peak = _by_baseline(rows, batches[-1])
    metrics = {
        "throughput": peak["Litmus-DRM"]["throughput"],
        "latency": peak["Litmus-DRM"]["latency"],
        "drm_over_dr": peak["Litmus-DRM"]["throughput"]
        / peak["Litmus-DR"]["throughput"],
    }
    counts = ycsb_counts(scale=config["scale"], theta=config["theta"])
    return TrialMeasurement(rows=tuple(rows), counts=counts, metrics=metrics)


FIG3_TRIAL = register(
    TrialSpec(
        name="pipeline/fig3_ycsb",
        area="pipeline",
        bench_file="bench_fig3_ycsb.py",
        runner=run_fig3_trial,
        config={"batch_sizes": [320, 5_120, 81_920], "scale": 160, "theta": 0.6},
        seed=11,
        headline=("throughput", "latency"),
        description="Fig 3 YCSB sweep: Litmus-DRM peak throughput/latency.",
    )
)
