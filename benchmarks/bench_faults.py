"""Fault-injection matrix: detection and recovery cost per fault class.

Not a paper figure — this benchmark exercises the robustness layer wrapped
around the verification pipeline.  For every fault class in
:mod:`repro.faults` it runs one *real* verification round (CC, circuit
compilation, certification, proving, client verification) with a single
injected fault and a :class:`~repro.core.session.RetryPolicy`, then
reports the full desync story: how many rounds the client rejected, how
many resyncs re-derived the trusted digest from the command log, how many
attempts the batch took, and whether the final state verified (client and
server digests agree, total balance conserved).

Run under pytest like the figure benchmarks::

    pytest benchmarks/bench_faults.py --benchmark-only

or standalone — CI does this so ``check_metrics_schema.py --require`` can
pin the fault/rollback metric names against a real export::

    PYTHONPATH=src python benchmarks/bench_faults.py \
        --metrics-out faults-metrics.jsonl
"""

from __future__ import annotations

import time

from repro.core import LitmusConfig, LitmusSession, RetryPolicy
from repro.bench import format_table
from repro.crypto.rsa_group import default_group
from repro.faults import (
    BitFlipWitness,
    CorruptProofPiece,
    DropMessage,
    DropPiece,
    FaultPlan,
    KillProver,
    ReorderPieces,
    TamperEndDigest,
    TamperPublicStatement,
)
from repro.vc.program import (
    Add,
    Emit,
    KeyTemplate,
    Param,
    Program,
    ReadStmt,
    ReadVal,
    Sub,
    WriteStmt,
)

NUM_ACCOUNTS = 8
NUM_TXNS = 6
SEED = 7

FAULT_FACTORIES = {
    "corrupt_proof": lambda: CorruptProofPiece(piece=0),
    "tamper_statement": lambda: TamperPublicStatement(piece=0),
    "tamper_digest": lambda: TamperEndDigest(piece=0),
    "drop_piece": lambda: DropPiece(piece=0),
    "reorder_pieces": lambda: ReorderPieces(),
    "bitflip_witness": lambda: BitFlipWitness(unit=0, which="write"),
    "kill_prover": lambda: KillProver(piece=0),
    "drop_message": lambda: DropMessage(direction="response"),
}

_TRANSFER = Program(
    name="bench-faults-transfer",
    params=("src", "dst", "amount"),
    statements=(
        ReadStmt("s", KeyTemplate(("acct", Param("src")))),
        ReadStmt("d", KeyTemplate(("acct", Param("dst")))),
        WriteStmt(
            KeyTemplate(("acct", Param("src"))), Sub(ReadVal("s"), Param("amount"))
        ),
        WriteStmt(
            KeyTemplate(("acct", Param("dst"))), Add(ReadVal("d"), Param("amount"))
        ),
        Emit(Add(ReadVal("s"), ReadVal("d"))),
    ),
)


def _fresh_session(plan: FaultPlan, group) -> LitmusSession:
    return LitmusSession.create(
        initial={("acct", i): 100 for i in range(NUM_ACCOUNTS)},
        config=LitmusConfig(
            cc="dr", processing_batch_size=2, batches_per_piece=2, prime_bits=64
        ),
        group=group,
        retry_policy=RetryPolicy(max_attempts=3, backoff=0.0),
        fault_plan=plan,
    )


def run_fault_matrix(
    kinds=tuple(FAULT_FACTORIES), seed: int = SEED, group=None
) -> list[dict]:
    """One adversarial round per fault class; returns the report rows."""
    group = group if group is not None else default_group(bits=512)
    rows = []
    for kind in kinds:
        plan = FaultPlan(FAULT_FACTORIES[kind](), seed=seed)
        session = _fresh_session(plan, group)
        for i in range(NUM_TXNS):
            session.submit(
                f"user{i % 3}",
                _TRANSFER,
                src=i,
                dst=(i + 1) % NUM_ACCOUNTS,
                amount=5,
            )
        start = time.perf_counter()
        result = session.flush()
        elapsed = time.perf_counter() - start
        balance = sum(
            session.server.db.get(("acct", i)) for i in range(NUM_ACCOUNTS)
        )
        recovered = (
            result.accepted
            and session.digest == session.server.digest
            and balance == NUM_ACCOUNTS * 100
        )
        rows.append(
            {
                "fault": kind,
                "injected": plan.injected,
                "rejections": session.batches_rejected,
                "resyncs": session.resyncs,
                "attempts": result.attempts,
                "recovered": recovered,
                "seconds": round(elapsed, 3),
            }
        )
    return rows


def test_fault_recovery_matrix(benchmark):
    rows = benchmark.pedantic(run_fault_matrix, iterations=1, rounds=1)
    print("\nFault-injection matrix — detection and recovery per fault class")
    print(format_table(rows))
    # Every class must fire, be detected, and be recovered from.
    assert all(row["injected"] >= 1 for row in rows)
    assert all(row["attempts"] >= 2 for row in rows)
    assert all(row["recovered"] for row in rows)


def main(argv: list[str] | None = None) -> int:
    import argparse
    import sys

    from repro.obs import JsonLinesExporter, get_metrics, get_tracer

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=SEED)
    parser.add_argument("--metrics-out", metavar="PATH", default=None)
    parser.add_argument("--trace-out", metavar="PATH", default=None)
    args = parser.parse_args(argv)

    rows = run_fault_matrix(seed=args.seed)
    print("Fault-injection matrix — detection and recovery per fault class")
    print(format_table(rows))
    if args.metrics_out:
        JsonLinesExporter(args.metrics_out).export((), get_metrics().snapshot())
        print(f"[obs] metrics snapshot written to {args.metrics_out}", file=sys.stderr)
    if args.trace_out:
        JsonLinesExporter(args.trace_out).export(get_tracer().finished(), {})
        print(f"[obs] trace written to {args.trace_out}", file=sys.stderr)
    return 0 if all(row["recovered"] for row in rows) else 1


if __name__ == "__main__":
    import sys

    sys.exit(main())


# --- orchestrated trial (python -m repro --bench) ---------------------------

from repro.bench.experiment import TrialMeasurement, TrialSpec, register


def run_faults_trial(config: dict, seed: int) -> TrialMeasurement:
    """One adversarial verification round per fault class; not gated."""
    rows = run_fault_matrix(kinds=tuple(config["kinds"]), seed=seed)
    metrics = {"recovery_seconds_total": sum(row["seconds"] for row in rows)}
    counts = {
        "faults": len(rows),
        "injected": sum(row["injected"] for row in rows),
        "rejections": sum(row["rejections"] for row in rows),
        "recovered": sum(1 for row in rows if row["recovered"]),
    }
    return TrialMeasurement(rows=tuple(rows), counts=counts, metrics=metrics)


FAULTS_TRIAL = register(
    TrialSpec(
        name="faults/recovery_matrix",
        area="faults",
        bench_file="bench_faults.py",
        runner=run_faults_trial,
        config={"kinds": ["corrupt_proof", "tamper_digest", "drop_message"]},
        seed=SEED,
        headline=(),
        description="Fault-injection rounds: detection and recovery per class.",
    )
)


def run_nemesis_trial(config: dict, seed: int) -> TrialMeasurement:
    """Seeded chaos episodes against durable sharded sessions; not gated.

    Each configured seed generates its own schedule (crash steps targeting
    real cross-shard rounds, paired WAL corruption, retryable faults), runs
    it in a throwaway directory, and records the referee's verdict.  Every
    episode must end with ``ok=True`` — the sweep doubles as a slow-path
    atomicity/durability check inside the bench matrix.
    """
    import tempfile

    from repro.faults import generate_schedule, run_nemesis
    from repro.obs.metrics import MetricsRegistry

    rows = []
    for run_seed in config["seeds"]:
        registry = MetricsRegistry()
        with tempfile.TemporaryDirectory(prefix="bench-nemesis-") as directory:
            report = run_nemesis(
                generate_schedule(
                    seed=run_seed,
                    steps=config["steps"],
                    num_shards=config["shards"],
                ),
                directory=directory,
                seed=run_seed,
                num_shards=config["shards"],
                registry=registry,
            )
        rows.append(
            {
                "seed": run_seed,
                "ops": report.ops,
                "crashes": report.crashes,
                "recoveries": report.recoveries,
                "injected": report.injected,
                "in_doubt_resolved": report.in_doubt_resolved,
                "compensations": report.compensations,
                "ok": report.ok,
                "seconds": round(report.duration_seconds, 3),
            }
        )
    counts = {
        "seeds": len(rows),
        "ops": sum(row["ops"] for row in rows),
        "crashes": sum(row["crashes"] for row in rows),
        "recoveries": sum(row["recoveries"] for row in rows),
        "in_doubt_resolved": sum(row["in_doubt_resolved"] for row in rows),
        "clean": sum(1 for row in rows if row["ok"]),
    }
    metrics = {"chaos_seconds_total": sum(row["seconds"] for row in rows)}
    return TrialMeasurement(rows=tuple(rows), counts=counts, metrics=metrics)


NEMESIS_TRIAL = register(
    TrialSpec(
        name="faults/nemesis_chaos",
        area="faults",
        bench_file="bench_faults.py",
        runner=run_nemesis_trial,
        config={"seeds": [0, 1, 2], "steps": 8, "shards": 3},
        seed=SEED,
        headline=(),
        description=(
            "Seeded nemesis chaos episodes: shard-targeted crashes mid "
            "cross-shard round with in-doubt recovery after each."
        ),
    )
)


def run_disk_nemesis_trial(config: dict, seed: int) -> TrialMeasurement:
    """Chaos episodes where the disk misbehaves too; not gated.

    Same referee as ``faults/nemesis_chaos``, but the generated schedules
    interleave disk-fault steps (fsync failures that down the deployment,
    absorbed write EIO/ENOSPC/short writes) and checkpoint rot with the
    crash steps.  Every episode must still end with ``ok=True`` — zero
    acked-data loss with a hostile disk under the deployment.
    """
    import tempfile

    from repro.faults import generate_schedule, run_nemesis
    from repro.obs.metrics import MetricsRegistry

    rows = []
    for run_seed in config["seeds"]:
        registry = MetricsRegistry()
        with tempfile.TemporaryDirectory(prefix="bench-disknem-") as directory:
            report = run_nemesis(
                generate_schedule(
                    seed=run_seed,
                    steps=config["steps"],
                    num_shards=config["shards"],
                    disk_fault_fraction=config["disk_fault_fraction"],
                ),
                directory=directory,
                seed=run_seed,
                num_shards=config["shards"],
                registry=registry,
            )
        rows.append(
            {
                "seed": run_seed,
                "ops": report.ops,
                "crashes": report.crashes,
                "disk_faults": report.disk_faults,
                "recoveries": report.recoveries,
                "in_doubt_resolved": report.in_doubt_resolved,
                "ok": report.ok,
                "seconds": round(report.duration_seconds, 3),
            }
        )
    counts = {
        "seeds": len(rows),
        "ops": sum(row["ops"] for row in rows),
        "crashes": sum(row["crashes"] for row in rows),
        "disk_faults": sum(row["disk_faults"] for row in rows),
        "recoveries": sum(row["recoveries"] for row in rows),
        "clean": sum(1 for row in rows if row["ok"]),
    }
    metrics = {"disk_chaos_seconds_total": sum(row["seconds"] for row in rows)}
    return TrialMeasurement(rows=tuple(rows), counts=counts, metrics=metrics)


DISK_NEMESIS_TRIAL = register(
    TrialSpec(
        name="faults/disk_nemesis",
        area="faults",
        bench_file="bench_faults.py",
        runner=run_disk_nemesis_trial,
        config={
            "seeds": [3, 11],
            "steps": 10,
            "shards": 3,
            "disk_fault_fraction": 0.25,
        },
        seed=SEED,
        headline=(),
        description=(
            "Disk-fault nemesis: chaos schedules with injected fsync "
            "failures, write errors, and checkpoint rot; referee demands "
            "zero acked-data loss."
        ),
    )
)
