#!/usr/bin/env python3
"""Validate repro.obs JSON-lines exports against the documented schema.

Usage::

    python benchmarks/check_metrics_schema.py FILE [FILE ...] \
        [--require METRIC_NAME ...] [--bench BENCH_FILE ...]

Every line of every file must be a JSON object with ``kind`` either
``"span"`` or ``"metric"``:

- span lines need ``name`` (str), ``span_id`` (int), ``root_id`` (int),
  ``parent_id`` (int or null), ``start``/``end``/``duration`` (numbers,
  ``end >= start``), ``attrs`` (object), ``thread`` (str);
- metric lines need ``name`` (str) and ``type`` in
  {``counter``, ``gauge``, ``histogram``}; counters/gauges need a numeric
  ``value`` (counters non-negative integers), histograms need numeric
  ``count``/``sum``/``min``/``max``/``mean``/``p50``/``p95``/``p99``.

``--require NAME`` (repeatable) additionally demands that a metric with
that exact name appears somewhere in the inputs — CI uses it to pin the
documented metric families so a rename cannot slip through silently:
the fault/recovery names (``faults.injected``, ``server.rollbacks``,
``session.resyncs``, ...), the ``net.*`` service names, and the
``shard.*`` family of the sharded engine (``shard.single_txns``,
``shard.cross_txns``, ``shard.flush_fanout``, ``shard.flush_seconds``,
``shard.cross_rounds``, ``shard.reserve_conflicts``,
``shard.partial_releases``), the ``xshard.*`` family of the atomic
cross-shard commit protocol (``xshard.intents``, ``xshard.commits``,
``xshard.compensations``, ``xshard.in_doubt_resolved``), and the
``nemesis.*`` family of the seeded chaos harness (``nemesis.steps``,
``nemesis.ops``, ``nemesis.crashes``, ``nemesis.recoveries``,
``nemesis.disk_faults``, ``nemesis.invariant_failures``), the
``storage.*`` family of the hostile-disk survival layer
(``storage.write_errors``, ``storage.rescue_rotations``,
``storage.fsync_failures``, ``storage.mirror_writes``,
``storage.mirror_write_failures``, ``storage.mirror_repairs``), and the
``scrub.*`` family of the scrub/repair pass (``scrub.runs``,
``scrub.files_scanned``, ``scrub.records_verified``,
``scrub.damage_found``, ``scrub.repairs``, ``scrub.quarantined``).

``--bench PATH`` (repeatable) validates an orchestrated ``BENCH_<area>.json``
trajectory instead: the file is loaded through
``repro.bench.experiment.load_trajectory``, which re-checks every trial
record against the versioned schema (including the identity
``record_hash``) — CI runs it over every trajectory at the repo root after
``python -m repro --bench``.

Exit status 0 iff every line of every file validates and at least one
record was seen; CI runs this against the ``--metrics-out``/``--trace-out``
output of a figure command.  Hand-rolled on purpose: the repo takes no
jsonschema dependency.
"""

from __future__ import annotations

import json
import sys

METRIC_TYPES = {"counter", "gauge", "histogram"}
HISTOGRAM_FIELDS = ("count", "sum", "min", "max", "mean", "p50", "p95", "p99")


def _fail(path: str, lineno: int, message: str) -> str:
    return f"{path}:{lineno}: {message}"


def check_span(record: dict, path: str, lineno: int, errors: list[str]) -> None:
    if not isinstance(record.get("name"), str) or not record["name"]:
        errors.append(_fail(path, lineno, "span needs a non-empty string 'name'"))
    for field in ("span_id", "root_id"):
        if not isinstance(record.get(field), int):
            errors.append(_fail(path, lineno, f"span '{field}' must be an int"))
    parent = record.get("parent_id")
    if parent is not None and not isinstance(parent, int):
        errors.append(_fail(path, lineno, "span 'parent_id' must be int or null"))
    for field in ("start", "end", "duration"):
        if not isinstance(record.get(field), (int, float)):
            errors.append(_fail(path, lineno, f"span '{field}' must be a number"))
    if (
        isinstance(record.get("start"), (int, float))
        and isinstance(record.get("end"), (int, float))
        and record["end"] < record["start"]
    ):
        errors.append(_fail(path, lineno, "span ends before it starts"))
    if not isinstance(record.get("attrs"), dict):
        errors.append(_fail(path, lineno, "span 'attrs' must be an object"))
    if not isinstance(record.get("thread"), str):
        errors.append(_fail(path, lineno, "span 'thread' must be a string"))


def check_metric(record: dict, path: str, lineno: int, errors: list[str]) -> None:
    if not isinstance(record.get("name"), str) or not record["name"]:
        errors.append(_fail(path, lineno, "metric needs a non-empty string 'name'"))
    mtype = record.get("type")
    if mtype not in METRIC_TYPES:
        errors.append(
            _fail(path, lineno, f"metric 'type' must be one of {sorted(METRIC_TYPES)}")
        )
        return
    if mtype == "histogram":
        for field in HISTOGRAM_FIELDS:
            if not isinstance(record.get(field), (int, float)):
                errors.append(
                    _fail(path, lineno, f"histogram '{field}' must be a number")
                )
        return
    value = record.get("value")
    if not isinstance(value, (int, float)):
        errors.append(_fail(path, lineno, f"{mtype} 'value' must be a number"))
    elif mtype == "counter" and (not isinstance(value, int) or value < 0):
        errors.append(_fail(path, lineno, "counter 'value' must be a non-negative int"))


def check_file(path: str, errors: list[str], metric_names: set[str]) -> int:
    seen = 0
    try:
        with open(path, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
    except OSError as exc:
        errors.append(f"{path}: cannot read ({exc})")
        return 0
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            errors.append(_fail(path, lineno, f"not valid JSON ({exc})"))
            continue
        if not isinstance(record, dict):
            errors.append(_fail(path, lineno, "line is not a JSON object"))
            continue
        seen += 1
        kind = record.get("kind")
        if kind == "span":
            check_span(record, path, lineno, errors)
        elif kind == "metric":
            check_metric(record, path, lineno, errors)
            if isinstance(record.get("name"), str):
                metric_names.add(record["name"])
        else:
            errors.append(_fail(path, lineno, "'kind' must be 'span' or 'metric'"))
    return seen


def check_bench_trajectory(path: str, errors: list[str]) -> int:
    """Validate one BENCH_<area>.json through the experiment schema."""
    try:
        from repro.bench.experiment import load_trajectory
        from repro.errors import BenchError
    except ImportError:
        import pathlib

        sys.path.insert(
            0, str(pathlib.Path(__file__).resolve().parent.parent / "src")
        )
        from repro.bench.experiment import load_trajectory
        from repro.errors import BenchError
    try:
        doc = load_trajectory(path)
    except BenchError as exc:
        errors.append(f"{path}: {exc}")
        return 0
    if not doc["entries"]:
        errors.append(f"{path}: trajectory has no entries")
        return 0
    return sum(len(entry["trials"]) for entry in doc["entries"])


def main(argv: list[str]) -> int:
    paths: list[str] = []
    bench_paths: list[str] = []
    required: list[str] = []
    it = iter(argv)
    for arg in it:
        if arg == "--require":
            name = next(it, None)
            if name is None:
                print("SCHEMA ERROR: --require needs a metric name", file=sys.stderr)
                return 2
            required.append(name)
        elif arg == "--bench":
            name = next(it, None)
            if name is None:
                print("SCHEMA ERROR: --bench needs a file path", file=sys.stderr)
                return 2
            bench_paths.append(name)
        else:
            paths.append(arg)
    if not paths and not bench_paths:
        print(__doc__, file=sys.stderr)
        return 2
    errors: list[str] = []
    total = 0
    metric_names: set[str] = set()
    for path in paths:
        count = check_file(path, errors, metric_names)
        total += count
        print(f"{path}: {count} record(s)")
    for path in bench_paths:
        count = check_bench_trajectory(path, errors)
        total += count
        print(f"{path}: {count} trial record(s)")
    if total == 0:
        errors.append("no records found in any input file")
    for name in required:
        if name not in metric_names:
            errors.append(f"required metric {name!r} missing from the inputs")
    if errors:
        for message in errors:
            print(f"SCHEMA ERROR: {message}", file=sys.stderr)
        return 1
    print(f"OK: {total} record(s) validated")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
