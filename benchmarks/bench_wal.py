"""WAL micro-benchmark: append throughput per fsync policy + recovery scan.

Not a paper figure — this pins the cost of the durability layer's central
dial.  For each fsync policy (``always`` / ``batch`` / ``never``) it
appends a fixed count of realistic records (LCL1 command-log payloads) to a
fresh :class:`~repro.db.wal.WriteAheadLog` and reports records/s, MB/s and
the fsync count; then it times a full ``scan_wal`` read-back and an atomic
checkpoint write/load round trip.  The ordering ``never >= batch >=
always`` (throughput) is asserted only loosely — CI machines are noisy —
but the fsync *counts* are exact.

Run under pytest like the figure benchmarks::

    pytest benchmarks/bench_wal.py --benchmark-only

or standalone — CI does this so ``check_metrics_schema.py --require`` can
pin the WAL metric names against a real export::

    PYTHONPATH=src python benchmarks/bench_wal.py --metrics-out wal.jsonl
"""

from __future__ import annotations

import json
import tempfile
import time

from repro.bench import format_table
from repro.db.wal import (
    WriteAheadLog,
    load_latest_checkpoint,
    scan_wal,
    write_checkpoint,
)
from repro.obs.metrics import MetricsRegistry

NUM_RECORDS = 400
PAYLOAD_BYTES = 256


def _payload() -> bytes:
    """A realistic record body: LCL1 magic plus incompressible-ish bytes."""
    return b"LCL1" + bytes(range(256))[: PAYLOAD_BYTES - 4] * 1


def run_wal_bench(
    num_records: int = NUM_RECORDS, payload_bytes: int = PAYLOAD_BYTES
) -> list[dict]:
    """Append *num_records* per policy; returns the report rows."""
    payload = _payload()[:payload_bytes]
    rows = []
    for policy in ("always", "batch", "never"):
        registry = MetricsRegistry()
        with tempfile.TemporaryDirectory() as directory:
            wal = WriteAheadLog(
                directory,
                fsync=policy,
                sync_every=8,
                segment_max_bytes=1 << 18,
                registry=registry,
            )
            start = time.perf_counter()
            for seq in range(1, num_records + 1):
                wal.append(seq, 0xD1 << seq % 64, payload)
            wal.close()
            append_seconds = time.perf_counter() - start

            start = time.perf_counter()
            records, report = scan_wal(directory, registry=registry)
            scan_seconds = time.perf_counter() - start
            assert len(records) == num_records and report.status == "clean"

        total_bytes = registry.counter("wal.bytes").value
        rows.append(
            {
                "fsync": policy,
                "records": num_records,
                "records_per_s": round(num_records / append_seconds),
                "mb_per_s": round(total_bytes / append_seconds / 1e6, 2),
                "fsyncs": registry.counter("wal.fsyncs").value,
                "scan_records_per_s": round(num_records / max(scan_seconds, 1e-9)),
            }
        )
    return rows


def run_checkpoint_bench(num_rows: int = 2_000) -> dict:
    """Atomic checkpoint write + validated load for a num_rows-row store."""
    rows = {("acct", i): 100 + i for i in range(num_rows)}
    digest = 0xABCDEF
    with tempfile.TemporaryDirectory() as directory:
        start = time.perf_counter()
        write_checkpoint(
            directory,
            seq=1,
            digest=digest,
            rows=rows,
            provider_state=(rows, 12345, digest),
            next_txn_id=1,
            config={"cc": "dr"},
            group_modulus=0xC5,
            group_generator=0x04,
            durability={"fsync": "always"},
            digest_log_json=json.dumps(
                [
                    {
                        "sequence": 0,
                        "digest": hex(digest),
                        "num_txns": 0,
                        "entry_hash": "00" * 32,
                    }
                ]
            ),
        )
        write_seconds = time.perf_counter() - start
        start = time.perf_counter()
        loaded = load_latest_checkpoint(directory)
        load_seconds = time.perf_counter() - start
        assert loaded.rows == rows
    return {
        "rows": num_rows,
        "write_ms": round(write_seconds * 1e3, 2),
        "load_ms": round(load_seconds * 1e3, 2),
    }


def test_wal_throughput(benchmark):
    rows = benchmark.pedantic(run_wal_bench, iterations=1, rounds=1)
    print("\nWAL append throughput per fsync policy")
    print(format_table(rows))
    by_policy = {row["fsync"]: row for row in rows}
    # fsync counts are deterministic: every append / every window / only close
    assert by_policy["always"]["fsyncs"] >= NUM_RECORDS
    assert by_policy["batch"]["fsyncs"] < by_policy["always"]["fsyncs"]
    assert by_policy["never"]["fsyncs"] == 0
    ckpt = run_checkpoint_bench()
    print(format_table([ckpt]))
    assert ckpt["write_ms"] > 0 and ckpt["load_ms"] > 0


def main(argv: list[str] | None = None) -> int:
    import argparse
    import sys

    from repro.obs import JsonLinesExporter, get_metrics

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--records", type=int, default=NUM_RECORDS)
    parser.add_argument("--metrics-out", metavar="PATH", default=None)
    args = parser.parse_args(argv)

    rows = run_wal_bench(num_records=args.records)
    print("WAL append throughput per fsync policy")
    print(format_table(rows))
    print("\nAtomic checkpoint write/load")
    print(format_table([run_checkpoint_bench()]))
    if args.metrics_out:
        # The process-global registry carries nothing from the isolated
        # bench registries; re-run a small always-policy pass against it so
        # the export pins the wal.* metric names.
        with tempfile.TemporaryDirectory() as directory:
            wal = WriteAheadLog(directory, registry=get_metrics())
            for seq in range(1, 9):
                wal.append(seq, seq, b"LCL1-export-pass")
            wal.close()
            scan_wal(directory, registry=get_metrics())
        JsonLinesExporter(args.metrics_out).export((), get_metrics().snapshot())
        print(f"[obs] metrics snapshot written to {args.metrics_out}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())


# --- orchestrated trial (python -m repro --bench) ---------------------------

from repro.bench.experiment import TrialMeasurement, TrialSpec, register


def run_wal_trial(config: dict, seed: int) -> TrialMeasurement:
    """WAL appends per fsync policy + one checkpoint round trip."""
    rows = run_wal_bench(
        num_records=config["records"], payload_bytes=config["payload_bytes"]
    )
    by_policy = {row["fsync"]: row for row in rows}
    ckpt = run_checkpoint_bench(num_rows=config["checkpoint_rows"])
    metrics = {
        "throughput": float(by_policy["batch"]["records_per_s"]),
        "throughput_always": float(by_policy["always"]["records_per_s"]),
        "throughput_scan": float(by_policy["batch"]["scan_records_per_s"]),
        "latency_checkpoint_write": ckpt["write_ms"] / 1e3,
        "latency_checkpoint_load": ckpt["load_ms"] / 1e3,
    }
    counts = {
        "records": config["records"] * 3,
        "fsyncs_always": int(by_policy["always"]["fsyncs"]),
        "fsyncs_batch": int(by_policy["batch"]["fsyncs"]),
        "fsyncs_never": int(by_policy["never"]["fsyncs"]),
        "checkpoint_rows": config["checkpoint_rows"],
    }
    return TrialMeasurement(rows=tuple(rows), counts=counts, metrics=metrics)


WAL_TRIAL = register(
    TrialSpec(
        name="wal/append_fsync",
        area="wal",
        bench_file="bench_wal.py",
        runner=run_wal_trial,
        config={"records": 96, "payload_bytes": PAYLOAD_BYTES, "checkpoint_rows": 500},
        seed=7,
        headline=("throughput",),
        description="WAL append throughput per fsync policy + checkpoint cost.",
    )
)
