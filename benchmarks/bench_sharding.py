"""Sharded verification benchmark: flush throughput vs shard count.

Not a paper figure — this pins the scaling story of ``repro.core.sharding``
(DESIGN.md §14).  Two complementary measurements:

**Modeled scaling** prices the paper-scale workload on S independent
engines through the same calibrated cost model the figures use
(:mod:`repro.bench.model`): the single-shard fraction of a verification
batch splits evenly across shards and runs in parallel (wall-clock = the
slowest shard, i.e. one engine pricing ``ceil(n/S)`` transactions), while
the cross-shard fraction pays the serial coordinator path — each
cross-shard transaction's apply batch lands on both participant shards,
priced as one engine verifying ``2 * n_cross`` transactions after the
parallel phase.  At 0% cross-shard traffic S=4 must deliver at least
2.5x the S=1 flush throughput (the acceptance bar; sublinearity comes
from fixed per-batch overheads amortizing worse at ``n/S``).

**Live fan-out** runs a real :class:`~repro.core.ShardedSession` per shard
count on a mixed single/cross workload and reports wall-clock plus the
``shard.*`` metric family (``shard.single_txns``, ``shard.cross_txns``,
``shard.flush_fanout``, ``shard.cross_rounds``, ...) so CI can pin the
metric names against a real export.

Run under pytest like the figure benchmarks::

    pytest benchmarks/bench_sharding.py --benchmark-only

or standalone — CI does this so ``check_metrics_schema.py --require`` can
pin the shard.* metric names::

    PYTHONPATH=src python benchmarks/bench_sharding.py --metrics-out shard.jsonl
"""

from __future__ import annotations

import math
import time

from repro.bench import format_table
from repro.bench.figures import ycsb_profile
from repro.bench.model import LitmusModel, zipf_contention_scale
from repro.core import LitmusConfig, ShardedSession
from repro.obs.metrics import MetricsRegistry
from repro.vc.program import (
    Add,
    Emit,
    KeyTemplate,
    Param,
    Program,
    ReadStmt,
    ReadVal,
    Sub,
    WriteStmt,
)

SHARD_COUNTS = (1, 2, 4, 8)
CROSS_RATIOS = (0.0, 0.1)
NUM_TXNS = 1_310_720
PROCESSING_BATCH = 81_920
NUM_PROVERS = 8
MODEL_SCALE = 800

LIVE_SHARDS = (1, 2, 4)
LIVE_ACCOUNTS = 16
LIVE_TXNS = 12

TRANSFER = Program(
    name="bench-shard-transfer",
    params=("src", "dst", "amount"),
    statements=(
        ReadStmt("s", KeyTemplate(("acct", Param("src")))),
        ReadStmt("d", KeyTemplate(("acct", Param("dst")))),
        WriteStmt(
            KeyTemplate(("acct", Param("src"))), Sub(ReadVal("s"), Param("amount"))
        ),
        WriteStmt(
            KeyTemplate(("acct", Param("dst"))), Add(ReadVal("d"), Param("amount"))
        ),
        Emit(Add(ReadVal("s"), ReadVal("d"))),
    ),
)

CONFIG = LitmusConfig(
    cc="dr", processing_batch_size=2, batches_per_piece=2, prime_bits=64
)


def run_sharding_model(
    shard_counts=SHARD_COUNTS,
    cross_ratios=CROSS_RATIOS,
    num_txns=NUM_TXNS,
    scale=MODEL_SCALE,
) -> list[dict]:
    """One row per (shards, cross_ratio): modeled flush wall and throughput."""
    profile = ycsb_profile(0.6, scale)
    model = LitmusModel(profile)
    contention = zipf_contention_scale(0.6, 4096)
    rows = []
    for num_shards in shard_counts:
        for cross in cross_ratios:
            n_cross = round(num_txns * cross)
            n_single = num_txns - n_cross
            wall = 0.0
            if n_single:
                # Even partition: every shard prices ceil(n_single/S) and
                # they verify concurrently, so the parallel phase's wall is
                # one engine's run at the per-shard load.
                per_shard = math.ceil(n_single / num_shards)
                wall += model.litmus_run(
                    per_shard,
                    num_provers=NUM_PROVERS,
                    cc="dr",
                    processing_batch_size=PROCESSING_BATCH,
                    contention_scale=contention,
                ).total_seconds
            if n_cross:
                # Serial coordinator path: each cross-shard apply executes
                # on both participants, and the rank-ordered rounds do not
                # overlap the parallel phase.
                wall += model.litmus_run(
                    2 * n_cross,
                    num_provers=NUM_PROVERS,
                    cc="dr",
                    processing_batch_size=PROCESSING_BATCH,
                    contention_scale=contention,
                ).total_seconds
            rows.append(
                {
                    "shards": num_shards,
                    "cross_pct": round(cross * 100),
                    "wall_s": round(wall, 2),
                    "txns_per_s": round(num_txns / wall, 1),
                }
            )
    return rows


def scaling_ratio(rows: list[dict], shards: int = 4, cross_pct: int = 0) -> float:
    """Throughput ratio of *shards* over the single-engine row."""

    def tput(s: int) -> float:
        for row in rows:
            if row["shards"] == s and row["cross_pct"] == cross_pct:
                return row["txns_per_s"]
        raise ValueError(f"no row for shards={s} cross={cross_pct}")

    return tput(shards) / tput(1)


def run_live_sharding(
    shard_counts=LIVE_SHARDS, registry: MetricsRegistry | None = None
) -> list[dict]:
    """Real ShardedSession runs: one row per shard count, mixed workload."""
    counters = (
        "shard.single_txns",
        "shard.cross_txns",
        "shard.flush_fanout",
        "shard.cross_rounds",
        "shard.reserve_conflicts",
    )
    rows = []
    for num_shards in shard_counts:
        run_registry = registry if registry is not None else MetricsRegistry()
        # A shared registry (the --metrics-out path) accumulates across
        # shard counts; report per-run deltas either way.
        before = {name: run_registry.counter(name).value for name in counters}
        session = ShardedSession.create(
            initial={("acct", i): 100 for i in range(LIVE_ACCOUNTS)},
            config=CONFIG,
            num_shards=num_shards,
            registry=run_registry,
        )
        try:
            for i in range(LIVE_TXNS):
                session.submit(
                    f"bench{i % 3}",
                    TRANSFER,
                    src=i % LIVE_ACCOUNTS,
                    dst=(i + 3) % LIVE_ACCOUNTS,
                    amount=1,
                )
            start = time.perf_counter()
            result = session.flush()
            elapsed = time.perf_counter() - start
            assert result.accepted, result.reason
            total = sum(
                session.shards[session.shard_map.shard_of(("acct", i))].server.db.get(
                    ("acct", i)
                )
                for i in range(LIVE_ACCOUNTS)
            )
            assert total == 100 * LIVE_ACCOUNTS, "balance not conserved"
            delta = {
                name: run_registry.counter(name).value - before[name]
                for name in counters
            }
            rows.append(
                {
                    "shards": num_shards,
                    "txns": LIVE_TXNS,
                    "wall_ms": round(elapsed * 1e3, 1),
                    "single": delta["shard.single_txns"],
                    "cross": delta["shard.cross_txns"],
                    "fanout": delta["shard.flush_fanout"],
                    "cross_rounds": delta["shard.cross_rounds"],
                    "conflicts": delta["shard.reserve_conflicts"],
                }
            )
        finally:
            session.close()
    return rows


def test_sharding_scaling(benchmark):
    rows = benchmark.pedantic(run_sharding_model, iterations=1, rounds=1)
    print("\nSharded verification: modeled flush throughput vs shard count")
    print(format_table(rows))
    # The acceptance bar: 4 shards buy at least 2.5x at 0% cross-shard.
    ratio = scaling_ratio(rows, shards=4, cross_pct=0)
    assert ratio >= 2.5, f"S=4 scaling {ratio:.2f}x below the 2.5x bar"
    for row in rows:
        assert row["txns_per_s"] > 0
    # Cross-shard traffic must cost throughput, never gain it for free.
    for num_shards in SHARD_COUNTS:
        per_shard = [r for r in rows if r["shards"] == num_shards]
        by_cross = sorted(per_shard, key=lambda r: r["cross_pct"])
        for lower, higher in zip(by_cross, by_cross[1:]):
            assert higher["txns_per_s"] <= lower["txns_per_s"]


def test_sharding_live(benchmark):
    rows = benchmark.pedantic(run_live_sharding, iterations=1, rounds=1)
    print("\nSharded verification: live mixed-workload fan-out")
    print(format_table(rows))
    for row in rows:
        assert row["single"] + row["cross"] == LIVE_TXNS
        if row["shards"] == 1:
            assert row["cross"] == 0  # one shard: nothing can cross


def main(argv: list[str] | None = None) -> int:
    import argparse
    import sys

    from repro.obs import JsonLinesExporter, get_metrics

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--shards", type=int, nargs="+", default=list(SHARD_COUNTS), metavar="S"
    )
    parser.add_argument("--metrics-out", metavar="PATH", default=None)
    args = parser.parse_args(argv)

    model_rows = run_sharding_model(shard_counts=tuple(args.shards))
    print("Sharded verification: modeled flush throughput vs shard count")
    print(format_table(model_rows))
    if args.metrics_out:
        # The live runs go against the process-global registry so the
        # export pins the shard.* metric names for check_metrics_schema.py.
        live_rows = run_live_sharding(registry=get_metrics())
    else:
        live_rows = run_live_sharding()
    print("\nSharded verification: live mixed-workload fan-out")
    print(format_table(live_rows))
    if args.metrics_out:
        JsonLinesExporter(args.metrics_out).export((), get_metrics().snapshot())
        print(f"[obs] metrics snapshot written to {args.metrics_out}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())


# --- orchestrated trial (python -m repro --bench) ---------------------------

from repro.bench.experiment import TrialMeasurement, TrialSpec, register


def run_sharding_trial(config: dict, seed: int) -> TrialMeasurement:
    """Modeled scaling matrix; headline = S=4 throughput at 0% cross."""
    rows = run_sharding_model(
        shard_counts=tuple(config["shards"]),
        cross_ratios=tuple(config["cross_ratios"]),
    )
    top = next(r for r in rows if r["shards"] == 4 and r["cross_pct"] == 0)
    base = next(r for r in rows if r["shards"] == 1 and r["cross_pct"] == 0)
    live = run_live_sharding(shard_counts=tuple(config["live_shards"]))
    metrics = {
        "throughput": float(top["txns_per_s"]),
        "scaling_x": round(top["txns_per_s"] / base["txns_per_s"], 3),
        "live_wall_ms_s4": float(live[-1]["wall_ms"]),
    }
    counts = {
        "modeled_rows": len(rows),
        "live_rows": len(live),
        "live_cross_txns": sum(row["cross"] for row in live),
    }
    return TrialMeasurement(rows=tuple(rows + live), counts=counts, metrics=metrics)


SHARDING_TRIAL = register(
    TrialSpec(
        name="sharding/scaling",
        area="sharding",
        bench_file="bench_sharding.py",
        runner=run_sharding_trial,
        config={
            "shards": [1, 2, 4, 8],
            "cross_ratios": [0.0, 0.1],
            "live_shards": [1, 4],
        },
        seed=7,
        # live_wall_ms is wall-clock on a shared box — recorded, not gated.
        headline=("throughput",),
        description="Sharded engine: modeled scaling S=1..8 plus live fan-out.",
    )
)
