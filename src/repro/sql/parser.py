"""Tokenizer and recursive-descent parser for the SQL dialect.

Grammar (case-insensitive keywords)::

    script     := statement (';' statement)* ';'?
    statement  := select | update | insert
    select     := SELECT column (',' column)* FROM name WHERE keyconds
    update     := UPDATE name SET assignment (',' assignment)* WHERE keyconds
    insert     := INSERT INTO name '(' column (',' column)* ')'
                  VALUES '(' expr (',' expr)* ')' WHERE keyconds
    assignment := column '=' expr
    keyconds   := keycond (AND keycond)*
    keycond    := column '=' ':' name
    expr       := term (('+' | '-') term)*
    term       := factor ('*' factor)*
    factor     := INTEGER | ':' name | column | '(' expr ')' | case
    case       := CASE WHEN expr ('<' | '=') expr THEN expr ELSE expr END
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from .errors import SqlError

__all__ = [
    "Token",
    "tokenize",
    "ParsedStatement",
    "SelectStatement",
    "UpdateStatement",
    "InsertStatement",
    "parse_script",
    "SqlExpr",
    "SqlLiteral",
    "SqlParam",
    "SqlColumn",
    "SqlBinary",
    "SqlCase",
]

_KEYWORDS = {
    "select", "from", "where", "and", "update", "set", "insert", "into",
    "values", "case", "when", "then", "else", "end",
}

_TOKEN_RE = re.compile(
    r"\s*(?:"
    r"(?P<number>\d+)"
    r"|(?P<name>[A-Za-z_][A-Za-z_0-9]*)"
    r"|(?P<param>:[A-Za-z_][A-Za-z_0-9]*)"
    r"|(?P<symbol>[(),;=+\-*<])"
    r")"
)


@dataclass(frozen=True)
class Token:
    kind: str  # "number" | "name" | "keyword" | "param" | "symbol"
    text: str
    position: int


def tokenize(source: str) -> list[Token]:
    tokens: list[Token] = []
    position = 0
    while position < len(source):
        remainder = source[position:]
        if not remainder.strip():
            break
        match = _TOKEN_RE.match(source, position)
        if match is None:
            raise SqlError(f"cannot tokenize SQL at position {position}: "
                           f"{source[position:position + 20]!r}")
        position = match.end()
        if match.lastgroup == "number":
            tokens.append(Token("number", match.group("number"), match.start()))
        elif match.lastgroup == "name":
            text = match.group("name")
            kind = "keyword" if text.lower() in _KEYWORDS else "name"
            tokens.append(Token(kind, text.lower() if kind == "keyword" else text, match.start()))
        elif match.lastgroup == "param":
            tokens.append(Token("param", match.group("param")[1:], match.start()))
        else:
            tokens.append(Token("symbol", match.group("symbol"), match.start()))
    return tokens


# ---------------------------------------------------------------------------
# Expression AST (SQL level; compiled to the Program DSL separately)
# ---------------------------------------------------------------------------


class SqlExpr:
    """Base class of SQL expressions."""


@dataclass(frozen=True)
class SqlLiteral(SqlExpr):
    value: int


@dataclass(frozen=True)
class SqlParam(SqlExpr):
    name: str


@dataclass(frozen=True)
class SqlColumn(SqlExpr):
    name: str


@dataclass(frozen=True)
class SqlBinary(SqlExpr):
    op: str  # "+", "-", "*", "<", "="
    left: SqlExpr
    right: SqlExpr


@dataclass(frozen=True)
class SqlCase(SqlExpr):
    condition: SqlExpr  # a comparison
    if_true: SqlExpr
    if_false: SqlExpr


# ---------------------------------------------------------------------------
# Statement AST
# ---------------------------------------------------------------------------


class ParsedStatement:
    """Base class of parsed statements."""


@dataclass(frozen=True)
class SelectStatement(ParsedStatement):
    table: str
    columns: tuple[str, ...]
    key_params: dict[str, str] = field(hash=False, default_factory=dict)


@dataclass(frozen=True)
class UpdateStatement(ParsedStatement):
    table: str
    assignments: tuple[tuple[str, SqlExpr], ...]
    key_params: dict[str, str] = field(hash=False, default_factory=dict)


@dataclass(frozen=True)
class InsertStatement(ParsedStatement):
    table: str
    columns: tuple[str, ...]
    values: tuple[SqlExpr, ...]
    key_params: dict[str, str] = field(hash=False, default_factory=dict)


class _Parser:
    def __init__(self, tokens: list[Token], source: str):
        self.tokens = tokens
        self.source = source
        self.index = 0

    # -- token helpers --------------------------------------------------------

    def peek(self) -> Token | None:
        return self.tokens[self.index] if self.index < len(self.tokens) else None

    def advance(self) -> Token:
        token = self.peek()
        if token is None:
            raise SqlError("unexpected end of SQL input")
        self.index += 1
        return token

    def expect_keyword(self, word: str) -> None:
        token = self.advance()
        if token.kind != "keyword" or token.text != word:
            raise SqlError(f"expected {word.upper()!r} at position {token.position}, "
                           f"found {token.text!r}")

    def expect_symbol(self, symbol: str) -> None:
        token = self.advance()
        if token.kind != "symbol" or token.text != symbol:
            raise SqlError(f"expected {symbol!r} at position {token.position}, "
                           f"found {token.text!r}")

    def expect_name(self) -> str:
        token = self.advance()
        if token.kind != "name":
            raise SqlError(f"expected an identifier at position {token.position}, "
                           f"found {token.text!r}")
        return token.text

    def at_keyword(self, word: str) -> bool:
        token = self.peek()
        return token is not None and token.kind == "keyword" and token.text == word

    def at_symbol(self, symbol: str) -> bool:
        token = self.peek()
        return token is not None and token.kind == "symbol" and token.text == symbol

    # -- grammar ---------------------------------------------------------------

    def parse_script(self) -> list[ParsedStatement]:
        statements = []
        while self.peek() is not None:
            statements.append(self.parse_statement())
            if self.at_symbol(";"):
                self.advance()
        if not statements:
            raise SqlError("empty SQL script")
        return statements

    def parse_statement(self) -> ParsedStatement:
        token = self.peek()
        if token is None:
            raise SqlError("unexpected end of SQL input")
        if token.kind == "keyword" and token.text == "select":
            return self.parse_select()
        if token.kind == "keyword" and token.text == "update":
            return self.parse_update()
        if token.kind == "keyword" and token.text == "insert":
            return self.parse_insert()
        raise SqlError(f"expected a statement at position {token.position}, "
                       f"found {token.text!r}")

    def parse_select(self) -> SelectStatement:
        self.expect_keyword("select")
        columns = [self.expect_name()]
        while self.at_symbol(","):
            self.advance()
            columns.append(self.expect_name())
        self.expect_keyword("from")
        table = self.expect_name()
        key_params = self.parse_where()
        return SelectStatement(table=table, columns=tuple(columns), key_params=key_params)

    def parse_update(self) -> UpdateStatement:
        self.expect_keyword("update")
        table = self.expect_name()
        self.expect_keyword("set")
        assignments = [self.parse_assignment()]
        while self.at_symbol(","):
            self.advance()
            assignments.append(self.parse_assignment())
        key_params = self.parse_where()
        return UpdateStatement(
            table=table, assignments=tuple(assignments), key_params=key_params
        )

    def parse_insert(self) -> InsertStatement:
        self.expect_keyword("insert")
        self.expect_keyword("into")
        table = self.expect_name()
        self.expect_symbol("(")
        columns = [self.expect_name()]
        while self.at_symbol(","):
            self.advance()
            columns.append(self.expect_name())
        self.expect_symbol(")")
        self.expect_keyword("values")
        self.expect_symbol("(")
        values = [self.parse_expr()]
        while self.at_symbol(","):
            self.advance()
            values.append(self.parse_expr())
        self.expect_symbol(")")
        if len(values) != len(columns):
            raise SqlError(
                f"INSERT lists {len(columns)} column(s) but {len(values)} value(s)"
            )
        key_params = self.parse_where()
        return InsertStatement(
            table=table,
            columns=tuple(columns),
            values=tuple(values),
            key_params=key_params,
        )

    def parse_assignment(self) -> tuple[str, SqlExpr]:
        column = self.expect_name()
        self.expect_symbol("=")
        return column, self.parse_expr()

    def parse_where(self) -> dict[str, str]:
        self.expect_keyword("where")
        conditions: dict[str, str] = {}
        while True:
            column = self.expect_name()
            self.expect_symbol("=")
            token = self.advance()
            if token.kind != "param":
                raise SqlError(
                    "primary keys must be bound to :parameters (the paper's "
                    "deterministic-writeset restriction), found "
                    f"{token.text!r} at position {token.position}"
                )
            if column in conditions:
                raise SqlError(f"key column {column!r} bound twice")
            conditions[column] = token.text
            if self.at_keyword("and"):
                self.advance()
                continue
            return conditions

    # -- expressions ---------------------------------------------------------------

    def parse_expr(self) -> SqlExpr:
        left = self.parse_term()
        while self.at_symbol("+") or self.at_symbol("-"):
            op = self.advance().text
            left = SqlBinary(op=op, left=left, right=self.parse_term())
        return left

    def parse_term(self) -> SqlExpr:
        left = self.parse_factor()
        while self.at_symbol("*"):
            self.advance()
            left = SqlBinary(op="*", left=left, right=self.parse_factor())
        return left

    def parse_factor(self) -> SqlExpr:
        token = self.peek()
        if token is None:
            raise SqlError("unexpected end of expression")
        if token.kind == "number":
            self.advance()
            return SqlLiteral(int(token.text))
        if token.kind == "param":
            self.advance()
            return SqlParam(token.text)
        if token.kind == "name":
            self.advance()
            return SqlColumn(token.text)
        if token.kind == "symbol" and token.text == "(":
            self.advance()
            inner = self.parse_expr()
            self.expect_symbol(")")
            return inner
        if token.kind == "keyword" and token.text == "case":
            return self.parse_case()
        raise SqlError(f"unexpected token {token.text!r} at position {token.position}")

    def parse_case(self) -> SqlCase:
        self.expect_keyword("case")
        self.expect_keyword("when")
        left = self.parse_expr()
        op_token = self.advance()
        if op_token.kind != "symbol" or op_token.text not in ("<", "="):
            raise SqlError(
                f"CASE conditions support '<' and '=', found {op_token.text!r}"
            )
        right = self.parse_expr()
        condition = SqlBinary(op=op_token.text, left=left, right=right)
        self.expect_keyword("then")
        if_true = self.parse_expr()
        self.expect_keyword("else")
        if_false = self.parse_expr()
        self.expect_keyword("end")
        return SqlCase(condition=condition, if_true=if_true, if_false=if_false)


def parse_script(source: str) -> list[ParsedStatement]:
    """Parse a ``;``-separated script into statement ASTs."""
    return _Parser(tokenize(source), source).parse_script()
