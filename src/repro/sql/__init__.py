"""A SQL front-end for Litmus stored procedures.

The paper's client "has stored enough information to define a group of
transactions, e.g., a stored procedure with a set of input parameters", and
the related verifiable-database systems it compares against (vSQL,
IntegriDB) speak SQL.  This package closes that gap: a deliberately small
SQL dialect is parsed and compiled down to the circuit-ready
:class:`~repro.vc.program.Program` DSL.

Supported statements (one stored procedure = a ``;``-separated script):

- ``SELECT col[, col...] FROM table WHERE pk = :param [AND pk2 = :p2]``
- ``UPDATE table SET col = expr [, col = expr] WHERE pk = :param [AND ...]``
- ``INSERT INTO table (col[, col...]) VALUES (expr[, expr...])
  WHERE pk = :param [AND ...]`` (the WHERE clause names the new row's key)

Expressions: integer literals, ``:parameters``, column references (reading
the current row), ``+ - *``, parentheses, and
``CASE WHEN a < b THEN x ELSE y END`` / ``... WHEN a = b ...``.

Key restriction (inherited from the paper's evaluation): primary keys are
always bound to parameters, never to read values — which is what keeps
write sets deterministic and lets the client reproduce interleavings.

Example::

    from repro.sql import SqlCatalog, compile_procedure

    catalog = SqlCatalog()
    catalog.create_table("accounts", key=("id",), columns=("balance",))
    transfer = compile_procedure(
        "transfer",
        '''
        UPDATE accounts SET balance = balance - :amount WHERE id = :src;
        UPDATE accounts SET balance = balance + :amount WHERE id = :dst;
        SELECT balance FROM accounts WHERE id = :dst;
        ''',
        catalog,
    )
    # `transfer` is a repro.vc.program.Program: executable, compilable,
    # and usable in Transactions against LitmusServer.
"""

from .catalog import SqlCatalog, TableSchema
from .compiler import compile_procedure
from .parser import ParsedStatement, parse_script
from .errors import SqlError

__all__ = [
    "ParsedStatement",
    "SqlCatalog",
    "SqlError",
    "TableSchema",
    "compile_procedure",
    "parse_script",
]
