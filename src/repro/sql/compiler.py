"""Compile parsed SQL scripts into circuit-ready Programs.

Each statement lowers to the :mod:`repro.vc.program` DSL:

- ``SELECT`` becomes one :class:`ReadStmt` per column plus an :class:`Emit`
  of each value (the transaction's output);
- ``UPDATE`` reads every column referenced by the assignment expressions
  and writes the assigned cells;
- ``INSERT`` writes the new row's cells (reads only what its value
  expressions reference).

Column references inside expressions read *the addressed row of the same
statement* (the row named by the WHERE clause), which matches standard SQL
semantics for single-row statements.  Repeated reads of the same cell reuse
one read statement.
"""

from __future__ import annotations

from ..vc.program import (
    Add,
    Const,
    Emit,
    Eq,
    Expr,
    If,
    Lt,
    Mul,
    Param,
    Program,
    ReadStmt,
    ReadVal,
    Stmt,
    Sub,
    WriteStmt,
)
from .catalog import SqlCatalog
from .errors import SqlError
from .parser import (
    InsertStatement,
    ParsedStatement,
    SelectStatement,
    SqlBinary,
    SqlCase,
    SqlColumn,
    SqlExpr,
    SqlLiteral,
    SqlParam,
    UpdateStatement,
    parse_script,
)

__all__ = ["compile_procedure", "compile_statements"]


class _ProcedureBuilder:
    """Accumulates DSL statements while deduplicating cell reads."""

    def __init__(self, catalog: SqlCatalog):
        self.catalog = catalog
        self.statements: list[Stmt] = []
        self.params: list[str] = []
        self._param_set: set[str] = set()
        self._read_names: dict[tuple, str] = {}  # cell identity -> read name
        self._counter = 0

    def note_param(self, name: str) -> None:
        if name not in self._param_set:
            self._param_set.add(name)
            self.params.append(name)

    def read_cell(self, table: str, column: str, key_params: dict[str, str]) -> str:
        """Ensure the cell is read; returns the DSL read name."""
        schema = self.catalog.table(table)
        identity = (table, column, tuple(sorted(key_params.items())))
        if identity in self._read_names:
            return self._read_names[identity]
        name = f"r{self._counter}_{table}_{column}"
        self._counter += 1
        self.statements.append(
            ReadStmt(name, schema.cell_template(column, key_params))
        )
        self._read_names[identity] = name
        return name

    def invalidate_cell(self, table: str, column: str, key_params: dict[str, str]) -> None:
        """Drop the cached read of a just-written cell.

        A later statement referencing the column re-reads it and — because
        the interpreter serves reads of self-written keys from the write
        buffer — observes the updated value (standard read-your-writes SQL
        semantics across statements of one transaction).
        """
        identity = (table, column, tuple(sorted(key_params.items())))
        self._read_names.pop(identity, None)

    def lower_expr(
        self, expr: SqlExpr, table: str, key_params: dict[str, str]
    ) -> Expr:
        if isinstance(expr, SqlLiteral):
            return Const(expr.value)
        if isinstance(expr, SqlParam):
            self.note_param(expr.name)
            return Param(expr.name)
        if isinstance(expr, SqlColumn):
            name = self.read_cell(table, expr.name, key_params)
            return ReadVal(name)
        if isinstance(expr, SqlBinary):
            left = self.lower_expr(expr.left, table, key_params)
            right = self.lower_expr(expr.right, table, key_params)
            if expr.op == "+":
                return Add(left, right)
            if expr.op == "-":
                return Sub(left, right)
            if expr.op == "*":
                return Mul(left, right)
            if expr.op == "<":
                return Lt(left, right)
            if expr.op == "=":
                return Eq(left, right)
            raise SqlError(f"unsupported operator {expr.op!r}")
        if isinstance(expr, SqlCase):
            return If(
                self.lower_expr(expr.condition, table, key_params),
                self.lower_expr(expr.if_true, table, key_params),
                self.lower_expr(expr.if_false, table, key_params),
            )
        raise SqlError(f"cannot lower SQL expression {expr!r}")

    def note_key_params(self, key_params: dict[str, str]) -> None:
        for param in key_params.values():
            self.note_param(param)


def compile_statements(
    name: str, parsed: list[ParsedStatement], catalog: SqlCatalog
) -> Program:
    """Lower parsed statements into one stored-procedure Program."""
    builder = _ProcedureBuilder(catalog)
    for statement in parsed:
        schema = catalog.table(statement.table)
        builder.note_key_params(statement.key_params)
        if isinstance(statement, SelectStatement):
            for column in statement.columns:
                read_name = builder.read_cell(
                    statement.table, column, statement.key_params
                )
                builder.statements.append(Emit(ReadVal(read_name)))
        elif isinstance(statement, UpdateStatement):
            # Lower all expressions first so every referenced column is read
            # *before* the row changes (standard simultaneous-assignment SQL
            # semantics for a single UPDATE).
            lowered = [
                (column, builder.lower_expr(expr, statement.table, statement.key_params))
                for column, expr in statement.assignments
            ]
            for column, value in lowered:
                builder.statements.append(
                    WriteStmt(
                        schema.cell_template(column, statement.key_params), value
                    )
                )
                builder.invalidate_cell(statement.table, column, statement.key_params)
        elif isinstance(statement, InsertStatement):
            lowered = [
                builder.lower_expr(expr, statement.table, statement.key_params)
                for expr in statement.values
            ]
            for column, value in zip(statement.columns, lowered):
                builder.statements.append(
                    WriteStmt(
                        schema.cell_template(column, statement.key_params), value
                    )
                )
                builder.invalidate_cell(statement.table, column, statement.key_params)
        else:  # pragma: no cover - parser produces only the three kinds
            raise SqlError(f"unknown statement type {type(statement).__name__}")
    return Program(
        name=name,
        params=tuple(builder.params),
        statements=tuple(builder.statements),
    )


def compile_procedure(name: str, source: str, catalog: SqlCatalog) -> Program:
    """Parse and compile a SQL script into a stored procedure.

    The result plugs directly into :class:`repro.db.Transaction` and is
    compatible with the circuit compiler — the whole verifiable pipeline.
    """
    return compile_statements(name, parse_script(source), catalog)
