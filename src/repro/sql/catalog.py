"""Table schemas and the key encoding of rows.

Rows are decomposed column-wise: the cell ``table.col`` of the row with
primary key ``(v1, v2)`` lives at the database key
``("table.col", v1, v2)``.  This matches how the TPC-C workload lays out
its rows and keeps every stored value a single integer (the circuit's value
type).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..vc.program import KeyTemplate, Param
from .errors import SqlError

__all__ = ["TableSchema", "SqlCatalog"]


@dataclass(frozen=True)
class TableSchema:
    """One table: named primary-key columns plus named value columns."""

    name: str
    key_columns: tuple[str, ...]
    value_columns: tuple[str, ...]

    def __post_init__(self):
        if not self.key_columns:
            raise SqlError(f"table {self.name!r} needs at least one key column")
        if not self.value_columns:
            raise SqlError(f"table {self.name!r} needs at least one value column")
        overlap = set(self.key_columns) & set(self.value_columns)
        if overlap:
            raise SqlError(f"columns {sorted(overlap)} are both key and value")

    def has_column(self, column: str) -> bool:
        return column in self.value_columns or column in self.key_columns

    def cell_template(self, column: str, key_params: dict[str, str]) -> KeyTemplate:
        """The :class:`KeyTemplate` of one cell, keys bound to parameters.

        *key_params* maps each key column to the parameter name bound in the
        statement's WHERE clause.
        """
        if column not in self.value_columns:
            raise SqlError(f"{self.name}.{column} is not a value column")
        missing = [k for k in self.key_columns if k not in key_params]
        if missing:
            raise SqlError(
                f"statement on {self.name!r} does not bind key column(s) {missing}"
            )
        parts: list[object] = [f"{self.name}.{column}"]
        parts.extend(Param(key_params[k]) for k in self.key_columns)
        return KeyTemplate(tuple(parts))


class SqlCatalog:
    """The set of known tables."""

    def __init__(self):
        self._tables: dict[str, TableSchema] = {}

    def create_table(
        self, name: str, key: tuple[str, ...], columns: tuple[str, ...]
    ) -> TableSchema:
        if name in self._tables:
            raise SqlError(f"table {name!r} already exists")
        schema = TableSchema(name=name, key_columns=tuple(key), value_columns=tuple(columns))
        self._tables[name] = schema
        return schema

    def table(self, name: str) -> TableSchema:
        if name not in self._tables:
            raise SqlError(f"unknown table {name!r}")
        return self._tables[name]

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    def initial_row(
        self, table: str, key_values: tuple[int, ...], **cells: int
    ) -> dict[tuple, int]:
        """Key-value pairs pre-populating one row (for initial databases)."""
        schema = self.table(table)
        if len(key_values) != len(schema.key_columns):
            raise SqlError(
                f"table {table!r} has {len(schema.key_columns)} key column(s)"
            )
        out: dict[tuple, int] = {}
        for column, value in cells.items():
            if column not in schema.value_columns:
                raise SqlError(f"{table}.{column} is not a value column")
            out[(f"{table}.{column}", *key_values)] = value
        return out
