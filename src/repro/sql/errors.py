"""SQL front-end errors."""

from __future__ import annotations

from ..errors import ReproError

__all__ = ["SqlError"]


class SqlError(ReproError):
    """Parse, catalog, or compilation error in the SQL front-end."""
