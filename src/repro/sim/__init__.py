"""The simulated testbed (DESIGN.md substitution 2).

The paper evaluates on 2x Xeon 5218R (40 cores) with a libsnark prover.
Neither the hardware parallelism nor a native SNARK prover is reproducible
in pure Python, so timing is *modeled*: protocol code runs for real on
scaled-down data to produce exact counts (constraints, batches, rounds,
accesses), and this package converts counts into virtual seconds:

- :mod:`repro.sim.costmodel` — constants calibrated against the paper's
  reported numbers (17,638 txn/s DRM peak, 714.2 txn/s DR, 12.6x 2PL gap,
  312-byte proofs, 300 s verification, ...);
- :mod:`repro.sim.scheduler` — list-scheduling makespan of prover tasks
  over N prover threads, reproducing the pipelining of Figure 2;
- :mod:`repro.sim.clock` — named virtual-time segments for breakdowns;
- :mod:`repro.sim.network` — simulated round-trip latencies for the
  interactive baselines.
"""

from .clock import Clock, ManualClock, SystemClock, VirtualClock
from .costmodel import CostModel
from .network import NetworkModel, SimulatedChannel
from .scheduler import ProverTask, schedule_tasks

__all__ = [
    "Clock",
    "CostModel",
    "ManualClock",
    "NetworkModel",
    "ProverTask",
    "SimulatedChannel",
    "SystemClock",
    "VirtualClock",
    "schedule_tasks",
]
