"""Named virtual-time accounting."""

from __future__ import annotations

from collections import defaultdict

__all__ = ["VirtualClock"]


class VirtualClock:
    """Accumulates virtual seconds into named segments.

    Used to produce the time-breakdown figure (paper Figure 7): every
    pipeline stage charges its modeled cost to a named segment, and the
    breakdown is the normalized share of each segment.
    """

    def __init__(self):
        self._segments: dict[str, float] = defaultdict(float)

    def charge(self, segment: str, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("cannot charge negative time")
        self._segments[segment] += seconds

    def total(self) -> float:
        return sum(self._segments.values())

    def segments(self) -> dict[str, float]:
        return dict(self._segments)

    def breakdown(self) -> dict[str, float]:
        """Normalized shares (sums to 1.0 when any time was charged)."""
        total = self.total()
        if total == 0:
            return {}
        return {name: seconds / total for name, seconds in self._segments.items()}
