"""Named virtual-time accounting and injectable clocks.

Two related facilities live here:

- :class:`VirtualClock` — accumulates *modeled* seconds into named
  segments (the paper's Figure 7 time breakdown);
- the :class:`Clock` family — an injectable ``now()``/``sleep()`` pair so
  code that must actually *wait* (network latency injection, retry
  backoff, deadline checks) can run against real time in production
  (:class:`SystemClock`) and against deterministic fake time in tests
  (:class:`ManualClock`).  Anything that would call ``time.sleep`` or
  ``time.monotonic`` directly should take a :class:`Clock` instead; that
  is what keeps fault-plan tests with latency fast and replayable.
"""

from __future__ import annotations

import time
from collections import defaultdict

__all__ = ["Clock", "ManualClock", "SystemClock", "VirtualClock"]


class Clock:
    """Injectable time source: ``now()`` plus ``sleep(seconds)``.

    The interface mirrors ``time.monotonic``/``time.sleep`` so call sites
    read naturally; only the two implementations below exist on purpose
    (a third would usually mean a test is re-implementing
    :class:`ManualClock`).
    """

    def now(self) -> float:
        raise NotImplementedError

    def sleep(self, seconds: float) -> None:
        raise NotImplementedError


class SystemClock(Clock):
    """Real wall-clock time: ``time.monotonic`` + ``time.sleep``."""

    def now(self) -> float:
        return time.monotonic()

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            time.sleep(seconds)


class ManualClock(Clock):
    """Deterministic fake time for tests: sleeping just advances ``now``.

    Every sleep is recorded on :attr:`sleeps` so a test can assert the
    exact latency schedule a channel or retry loop produced without
    burning any wall-clock.  ``advance`` moves time without recording a
    sleep (an external event, not a wait).
    """

    def __init__(self, start: float = 0.0):
        self._now = start
        self.sleeps: list[float] = []

    def now(self) -> float:
        return self._now

    def sleep(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("cannot sleep a negative duration")
        self.sleeps.append(seconds)
        self._now += seconds

    def advance(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("cannot advance time backwards")
        self._now += seconds


class VirtualClock:
    """Accumulates virtual seconds into named segments.

    Used to produce the time-breakdown figure (paper Figure 7): every
    pipeline stage charges its modeled cost to a named segment, and the
    breakdown is the normalized share of each segment.
    """

    def __init__(self):
        self._segments: dict[str, float] = defaultdict(float)

    def charge(self, segment: str, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("cannot charge negative time")
        self._segments[segment] += seconds

    def total(self) -> float:
        return sum(self._segments.values())

    def segments(self) -> dict[str, float]:
        return dict(self._segments)

    def breakdown(self) -> dict[str, float]:
        """Normalized shares (sums to 1.0 when any time was charged)."""
        total = self.total()
        if total == 0:
            return {}
        return {name: seconds / total for name, seconds in self._segments.items()}
