"""The calibrated cost model (DESIGN.md substitutions 1-4).

Every constant is traceable to a number the paper reports:

===========================  =============================================
Paper datum                   Constant(s) derived from it
===========================  =============================================
Litmus-DR: 714.2 txn/s at     combined prover+keygen seconds/constraint
82k txns, single prover       (given the real compiled YCSB circuit size)
Fig 7 end state (51% keygen,  the 51:38 split of that combined rate
38% proving)
Litmus-DRM = 24.7x DR at 75   serial trace-processing cost of
provers                       ~38.6 microseconds per access-pair (Amdahl)
Litmus-2PL = DR/12.6          the per-access MemCheck gadget size
                              (unbatched circuits carry one per access)
No-verification DR/2PL        1.75M / 1.2M txn/s base rates at theta=0.6
"two orders of magnitude"
Verification constant         300 s per proof
Proof size                    312 B per prover thread
Fig 9 decay (17538 -> 12818   trace-cost locality factor
over 10G -> 80G)              (1 + 0.111 * doublings^1.25)
AD-Interact curves            per-element witness recomputation ~1 us,
                              0.3 s session setup, RTT 1 ms / 100 ms
Merkle < 20 txn/s             50 ms verified-path cost per transaction
===========================  =============================================

Timing is derived from *real* counts (constraints of actually-compiled
circuits, batches/rounds of actually-executed CC) so the benchmark harness
reproduces the paper's shapes; see EXPERIMENTS.md for the side-by-side.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["CostModel"]

# Fixed calibration targets from the paper (Section 8).
_DR_THROUGHPUT = 714.2  # txn/s, single prover, 82k verification batch
_DR_BATCH = 81_920
_TPL_THROUGHPUT = _DR_THROUGHPUT / 12.6  # Litmus-2PL peak
_TRACE_SECONDS_PER_ACCESS = 19.3e-6  # 38.6 us per 2-access YCSB txn
_KEYGEN_SHARE, _PROVE_SHARE = 51, 38  # Fig 7 end-state split


@dataclass(frozen=True)
class CostModel:
    """Virtual-time constants; construct via :meth:`calibrated`."""

    # Prover pipeline (seconds per R1CS constraint).
    keygen_per_constraint: float
    prove_per_constraint: float
    piece_fixed_seconds: float = 0.35  # per circuit piece (FFT/setup overhead)
    circuit_gen_per_constraint: float = 1e-9  # hand-written circuits: negligible

    # Memory integrity.
    memcheck_constraints: int = 600  # per-access check in unbatched circuits
    trace_seconds_per_access: float = _TRACE_SECONDS_PER_ACCESS

    # Normal-DBMS no-verification rates (txn/s at theta = 0.6, 64 threads).
    db_rate_dr: float = 1.75e6
    db_rate_2pl: float = 1.2e6

    # Client-side verification.
    verify_seconds: float = 300.0
    proof_bytes_per_prover: int = 312
    output_seconds: float = 1.0

    # Interactive (vSQL-style) baseline.
    interactive_setup_seconds: float = 0.3
    ad_witness_per_element: float = 5.0e-8  # fresh witness: one modmul/element
    ad_client_verify_seconds: float = 50e-6

    # Merkle baseline (folklore approach; [32] reports < 20 txn/s).
    merkle_txn_seconds: float = 0.05

    # Table-size locality decay (Fig 9): trace cost multiplier
    # 1 + alpha * d^beta where d = log2(table_size / 10G).
    tablesize_alpha: float = 0.111
    tablesize_beta: float = 1.25

    @classmethod
    def calibrated(cls, ycsb_logic_constraints: int) -> "CostModel":
        """Derive per-constraint rates from the paper's DR/2PL throughputs.

        *ycsb_logic_constraints* is the constraint count of the actually
        compiled YCSB transaction circuit; the paper's absolute throughputs
        then pin down the effective seconds-per-constraint of the libsnark
        prover on their testbed.
        """
        if ycsb_logic_constraints < 1:
            raise ValueError("need a positive circuit size")
        total_seconds = _DR_BATCH / _DR_THROUGHPUT
        trace_seconds = _DR_BATCH * 2 * _TRACE_SECONDS_PER_ACCESS
        db_seconds = _DR_BATCH / 1.75e6
        prover_seconds = total_seconds - trace_seconds - db_seconds
        combined = prover_seconds / (_DR_BATCH * ycsb_logic_constraints)
        keygen = combined * _KEYGEN_SHARE / (_KEYGEN_SHARE + _PROVE_SHARE)
        prove = combined * _PROVE_SHARE / (_KEYGEN_SHARE + _PROVE_SHARE)
        # Litmus-2PL: every transaction circuit carries one MemCheck gadget
        # per access (2 for YCSB); its peak throughput pins the gadget size.
        per_txn_seconds = 1.0 / _TPL_THROUGHPUT
        per_txn_constraints = per_txn_seconds / combined
        memcheck = max(1, int((per_txn_constraints - ycsb_logic_constraints) / 2))
        return cls(
            keygen_per_constraint=keygen,
            prove_per_constraint=prove,
            memcheck_constraints=memcheck,
        )

    # -- derived helpers -------------------------------------------------------

    @property
    def prover_seconds_per_constraint(self) -> float:
        return self.keygen_per_constraint + self.prove_per_constraint

    def piece_seconds(self, constraints: int) -> float:
        """Keygen + proving time of one circuit piece."""
        return (
            self.piece_fixed_seconds
            + constraints * self.prover_seconds_per_constraint
        )

    def trace_seconds(self, accesses: int, table_doublings: float = 0.0) -> float:
        """Witness-computation time for *accesses* memory operations.

        *table_doublings* applies the Fig 9 locality decay: log2 of the
        table size relative to the 10 GB baseline.
        """
        factor = 1.0
        if table_doublings > 0:
            factor += self.tablesize_alpha * table_doublings**self.tablesize_beta
        return accesses * self.trace_seconds_per_access * factor

    def db_seconds(self, num_txns: int, cc: str, contention_factor: float = 1.0) -> float:
        """Normal-DBMS execution time under the measured contention factor.

        *contention_factor* >= 1 scales the base rate down; the harness
        computes it from real CC runs (retry ratios / round counts).
        """
        rate = self.db_rate_dr if cc == "dr" else self.db_rate_2pl
        return num_txns * contention_factor / rate

    def with_overrides(self, **kwargs) -> "CostModel":
        """A copy with selected constants replaced (ablation support)."""
        return replace(self, **kwargs)

    def recalibrated_from_measured(self, timing) -> "CostModel":
        """A copy whose prover rates come from *measured* wall-clock.

        *timing* is any object carrying the ``measured_*`` stage fields and
        ``total_constraints`` of a real batch (duck-typed so the simulation
        layer does not import the wire protocol).  The per-constraint keygen
        rate is pinned by the measured trusted-setup seconds, the proving
        rate by measured witness generation (honest replay) plus proving,
        and the per-piece fixed cost by the measured circuit-build time.
        The result predicts *this machine's* pipeline instead of the
        paper's testbed — feeding real wall-clock back into the Fig 5/6
        models.
        """
        constraints = getattr(timing, "total_constraints", 0)
        if constraints < 1:
            return self
        setup = getattr(timing, "measured_setup_seconds", 0.0)
        prove = getattr(timing, "measured_prove_seconds", 0.0) + getattr(
            timing, "measured_replay_seconds", 0.0
        )
        if setup <= 0.0 and prove <= 0.0:
            return self
        pieces = max(1, getattr(timing, "num_pieces", 0))
        circuit_build = getattr(timing, "measured_circuit_seconds", 0.0)
        return replace(
            self,
            keygen_per_constraint=setup / constraints,
            prove_per_constraint=prove / constraints,
            piece_fixed_seconds=circuit_build / pieces,
            circuit_gen_per_constraint=circuit_build / constraints,
        )
