"""List-scheduling makespan model for prover pipelining (paper Fig 2).

The dispatcher releases circuit pieces as the normal DBMS finishes their
batches; each piece is proven by the first free prover thread.  The model
returns both the makespan (throughput) and per-task completion times
(latency).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Sequence

__all__ = ["ProverTask", "ScheduleResult", "schedule_tasks", "serial_seconds"]


@dataclass(frozen=True)
class ProverTask:
    """One circuit piece: ready when its traces exist, costs prover time."""

    cost_seconds: float
    release_seconds: float = 0.0
    txn_count: int = 0


@dataclass(frozen=True)
class ScheduleResult:
    makespan_seconds: float
    completion_times: tuple[float, ...]

    def mean_completion(self) -> float:
        if not self.completion_times:
            return 0.0
        return sum(self.completion_times) / len(self.completion_times)

    def speedup_over_serial(self, tasks: Sequence[ProverTask]) -> float:
        """Makespan compression vs a single prover (1.0 = no overlap).

        Compares against pure work time (ignoring releases): the same
        definition the measured pipeline uses, so modeled and real speedup
        are directly comparable in the Fig 6 harness.
        """
        if self.makespan_seconds <= 0:
            return 1.0
        return serial_seconds(tasks) / self.makespan_seconds

    def txn_weighted_mean_completion(self, tasks: Sequence[ProverTask]) -> float:
        """Average completion over transactions (latency per Fig 3b/6)."""
        total_txns = sum(task.txn_count for task in tasks)
        if total_txns == 0:
            return self.mean_completion()
        weighted = sum(
            task.txn_count * done
            for task, done in zip(tasks, self.completion_times)
        )
        return weighted / total_txns


def serial_seconds(tasks: Sequence[ProverTask]) -> float:
    """Total prover work: the wall-clock a single prover thread must pay."""
    return sum(task.cost_seconds for task in tasks)


def schedule_tasks(tasks: Sequence[ProverTask], num_workers: int) -> ScheduleResult:
    """Greedy list scheduling in release order over *num_workers* threads."""
    if num_workers < 1:
        raise ValueError("need at least one prover thread")
    if not tasks:
        return ScheduleResult(makespan_seconds=0.0, completion_times=())
    free_at = [0.0] * num_workers
    heapq.heapify(free_at)
    completions: list[float] = []
    for task in tasks:
        worker_free = heapq.heappop(free_at)
        start = max(worker_free, task.release_seconds)
        done = start + task.cost_seconds
        completions.append(done)
        heapq.heappush(free_at, done)
    return ScheduleResult(
        makespan_seconds=max(completions),
        completion_times=tuple(completions),
    )
