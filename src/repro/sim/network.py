"""Simulated client-server network latencies and message-level faults.

The paper simulates "a thread sleep of 1 ms or 100 ms" for the interactive
baselines; here the sleep is virtual time.  :class:`SimulatedChannel` adds
the message-level fault surface the robustness layer injects through:
deterministic, seedable drops and extra delays on top of a base
:class:`NetworkModel`.  Nothing actually sleeps — the channel *accounts*
for latency and *raises* :class:`~repro.errors.MessageDropped` for drops,
so tests and benchmarks stay fast and reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..errors import MessageDropped
from .clock import Clock

__all__ = ["NetworkModel", "SimulatedChannel", "LAN", "WAN"]


@dataclass(frozen=True)
class NetworkModel:
    """Round-trip latency plus (optional) per-byte transfer cost."""

    rtt_seconds: float
    seconds_per_byte: float = 0.0

    def roundtrip(self, payload_bytes: int = 0) -> float:
        return self.rtt_seconds + payload_bytes * self.seconds_per_byte


LAN = NetworkModel(rtt_seconds=1e-3)  # paper's 1 ms setting
WAN = NetworkModel(rtt_seconds=100e-3)  # paper's 100 ms setting (LA -> Tokyo)


class SimulatedChannel:
    """A lossy, delaying message channel over a :class:`NetworkModel`.

    Every :meth:`deliver` call charges the base round-trip cost, then —
    driven by a private ``random.Random(seed)`` stream, so a given seed
    always drops/delays the same message sequence —

    - raises :class:`~repro.errors.MessageDropped` with probability
      ``drop_probability`` (the message never arrives);
    - otherwise adds ``extra_delay_seconds`` with probability
      ``delay_probability``.

    The channel keeps running totals (``delivered``, ``dropped``,
    ``virtual_seconds``) so callers can report what the simulated network
    did to them.

    By default nothing waits — latency is pure accounting.  When the
    channel is attached to a *live* transport (:mod:`repro.net` proxy
    mode), pass a :class:`~repro.sim.clock.Clock`: every delivered latency
    is then spent through ``clock.sleep``, so a :class:`SystemClock` makes
    real connections genuinely slow while a
    :class:`~repro.sim.clock.ManualClock` keeps latency-heavy fault-plan
    tests deterministic and instant.  The seeded drop/delay stream is
    identical with or without a clock.
    """

    def __init__(
        self,
        model: NetworkModel = LAN,
        seed: int = 0,
        drop_probability: float = 0.0,
        delay_probability: float = 0.0,
        extra_delay_seconds: float = 0.0,
        clock: Clock | None = None,
    ):
        if not 0.0 <= drop_probability <= 1.0:
            raise ValueError("drop_probability must be in [0, 1]")
        if not 0.0 <= delay_probability <= 1.0:
            raise ValueError("delay_probability must be in [0, 1]")
        self.model = model
        self.drop_probability = drop_probability
        self.delay_probability = delay_probability
        self.extra_delay_seconds = extra_delay_seconds
        self.clock = clock
        self._rng = random.Random(seed)
        self.delivered = 0
        self.dropped = 0
        self.virtual_seconds = 0.0

    def deliver(self, payload_bytes: int = 0, label: str = "message") -> float:
        """Account one message; returns its virtual latency in seconds.

        Raises :class:`~repro.errors.MessageDropped` when the seeded stream
        decides this message is lost (the latency of the lost attempt is
        still charged to ``virtual_seconds`` — the sender waited for it).

        With a :attr:`clock` attached the latency is also *spent* via
        ``clock.sleep`` before the message is considered delivered (or the
        drop is surfaced), so live transports wrapped in this channel see
        real delays without the channel ever touching ``time.sleep``
        directly.
        """
        latency = self.model.roundtrip(payload_bytes)
        self.virtual_seconds += latency
        if self.drop_probability and self._rng.random() < self.drop_probability:
            self.dropped += 1
            if self.clock is not None:
                self.clock.sleep(latency)
            raise MessageDropped(f"simulated network dropped {label}")
        if self.delay_probability and self._rng.random() < self.delay_probability:
            latency += self.extra_delay_seconds
            self.virtual_seconds += self.extra_delay_seconds
        self.delivered += 1
        if self.clock is not None:
            self.clock.sleep(latency)
        return latency
