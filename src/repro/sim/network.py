"""Simulated client-server network latencies.

The paper simulates "a thread sleep of 1 ms or 100 ms" for the interactive
baselines; here the sleep is virtual time.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["NetworkModel", "LAN", "WAN"]


@dataclass(frozen=True)
class NetworkModel:
    """Round-trip latency plus (optional) per-byte transfer cost."""

    rtt_seconds: float
    seconds_per_byte: float = 0.0

    def roundtrip(self, payload_bytes: int = 0) -> float:
        return self.rtt_seconds + payload_bytes * self.seconds_per_byte


LAN = NetworkModel(rtt_seconds=1e-3)  # paper's 1 ms setting
WAN = NetworkModel(rtt_seconds=100e-3)  # paper's 100 ms setting (LA -> Tokyo)
