"""Merkle commitments to witness vectors (used by the spot-check backend).

A thin wrapper over :class:`repro.crypto.merkle.MerkleTree` specialised for
committing to a field-element vector and opening individual positions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..crypto.merkle import MerklePath, MerkleTree

__all__ = ["WitnessCommitment", "WitnessOpening"]


@dataclass(frozen=True)
class WitnessOpening:
    """One opened wire: (index, value) plus its authentication path."""

    index: int
    value: int
    path: MerklePath

    def verify(self, root: bytes) -> bool:
        if self.path.index != self.index:
            return False
        return MerkleTree.verify(root, self.path, self.value)

    @property
    def size_bytes(self) -> int:
        return 8 + 32 + 32 * len(self.path.siblings)


class WitnessCommitment:
    """Binding commitment to a full wire assignment."""

    def __init__(self, witness: Sequence[int]):
        self._witness = list(witness)
        self._tree = MerkleTree(max(1, len(witness)))
        for index, value in enumerate(witness):
            self._tree.update(index, value)

    @property
    def root(self) -> bytes:
        return self._tree.root

    def open(self, index: int) -> WitnessOpening:
        return WitnessOpening(
            index=index,
            value=self._witness[index],
            path=self._tree.prove(index),
        )
