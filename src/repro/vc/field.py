"""Arithmetic over the BN-128 scalar field.

The paper's proving system (libsnark's Pinocchio/Groth16 pipeline) works over
the scalar field of the BN-128 pairing curve; we use the same prime so
constraint counts and value ranges are faithful.
"""

from __future__ import annotations

__all__ = ["FIELD_PRIME", "normalize", "inv", "to_field"]

# Order of the BN-128 (alt_bn128) scalar field — the field libsnark uses.
FIELD_PRIME = (
    21888242871839275222246405745257275088548364400416034343698204186575808495617
)


def normalize(x: int) -> int:
    """Reduce *x* into canonical range [0, p)."""
    return x % FIELD_PRIME


def inv(x: int) -> int:
    """Multiplicative inverse in the field (raises ZeroDivisionError on 0)."""
    x = normalize(x)
    if x == 0:
        raise ZeroDivisionError("0 has no inverse in the field")
    return pow(x, -1, FIELD_PRIME)


def to_field(value: int) -> int:
    """Embed a (possibly negative) Python int into the field."""
    return value % FIELD_PRIME
