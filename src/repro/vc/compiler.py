"""The transaction circuit compiler (paper Section 6.1.3).

Compiles a :class:`~repro.vc.program.Program` (stored procedure) into an
R1CS :class:`~repro.vc.circuit.Circuit`.  The compiled layout is:

- public inputs: the procedure parameters, then one input per read
  statement (the values the memory-integrity provider supplies);
- public outputs: one variable per write statement (the value written) and
  one per ``Emit`` (the transaction's output value).

Compilation is cached per program template — the paper's observation that
transactions "generated from the same template" produce "parallel
repetitions of similar structures in the circuit" shows up here as a cache
hit, and on the client side as cheap circuit matching.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from ..errors import ConstraintViolation, TransactionError
from .circuit import Circuit, CircuitBuilder, LinearCombination
from .field import to_field
from .program import (
    Add,
    Const,
    Emit,
    Eq,
    Expr,
    If,
    Lt,
    Max,
    Min,
    Mul,
    Param,
    Program,
    ReadStmt,
    ReadVal,
    Sub,
    WriteStmt,
    VALUE_WIDTH,
)

__all__ = ["TransactionCircuit", "CircuitCompiler", "WitnessBinding"]


@dataclass(frozen=True)
class TransactionCircuit:
    """A compiled stored-procedure template."""

    program: Program
    circuit: Circuit
    param_labels: tuple[str, ...]
    read_labels: tuple[str, ...]
    write_output_indices: tuple[int, ...]
    emit_output_indices: tuple[int, ...]

    @property
    def structural_signature(self) -> bytes:
        return self.circuit.structural_hash()

    @property
    def total_constraints(self) -> int:
        return self.circuit.total_constraints


@dataclass(frozen=True)
class WitnessBinding:
    """A full witness for one execution of a template."""

    witness: tuple[int, ...]
    public_values: tuple[int, ...]
    write_values: tuple[int, ...]
    outputs: tuple[int, ...]


class _ExprCompiler:
    """Compiles expressions to linear combinations inside one builder."""

    def __init__(
        self,
        builder: CircuitBuilder,
        params: Mapping[str, LinearCombination],
        reads: Mapping[str, LinearCombination],
    ):
        self.builder = builder
        self.params = params
        self.reads = reads
        self._range_checked: set[int] = set()

    def compile(self, expr: Expr) -> LinearCombination:
        if isinstance(expr, Const):
            return self.builder.constant(to_field(expr.value))
        if isinstance(expr, Param):
            if expr.name not in self.params:
                raise TransactionError(f"unknown parameter {expr.name!r}")
            return self.params[expr.name]
        if isinstance(expr, ReadVal):
            if expr.name not in self.reads:
                raise TransactionError(f"read {expr.name!r} not declared before use")
            return self.reads[expr.name]
        if isinstance(expr, Add):
            return self.compile(expr.left) + self.compile(expr.right)
        if isinstance(expr, Sub):
            return self.compile(expr.left) - self.compile(expr.right)
        if isinstance(expr, Mul):
            return self.builder.mul(self.compile(expr.left), self.compile(expr.right))
        if isinstance(expr, Lt):
            left = self._ranged(self.compile(expr.left))
            right = self._ranged(self.compile(expr.right))
            return self.builder.less_than(left, right, width=VALUE_WIDTH)
        if isinstance(expr, Eq):
            return self.builder.is_zero(self.compile(expr.left) - self.compile(expr.right))
        if isinstance(expr, If):
            bit = self.as_bit(expr.condition)
            return self.builder.select(
                bit, self.compile(expr.if_true), self.compile(expr.if_false)
            )
        if isinstance(expr, (Max, Min)):
            left = self._ranged(self.compile(expr.left))
            right = self._ranged(self.compile(expr.right))
            left_smaller = self.builder.less_than(left, right, width=VALUE_WIDTH)
            if isinstance(expr, Max):
                return self.builder.select(left_smaller, right, left)
            return self.builder.select(left_smaller, left, right)
        raise TransactionError(f"cannot compile expression {expr!r}")

    def as_bit(self, expr: Expr) -> LinearCombination:
        """Coerce a condition to a boolean wire (non-zero means true)."""
        if isinstance(expr, (Lt, Eq)):
            return self.compile(expr)
        value = self.compile(expr)
        return LinearCombination.constant(1) - self.builder.is_zero(value)

    def _ranged(self, lc: LinearCombination) -> LinearCombination:
        """Range-check a comparison operand once per distinct wire set."""
        key = hash(lc.canonical())
        if key not in self._range_checked:
            self.builder.decompose_bits(lc, VALUE_WIDTH)
            self._range_checked.add(key)
        return lc


class CircuitCompiler:
    """Compiles and caches transaction circuit templates."""

    def __init__(self):
        self._cache: dict[str, TransactionCircuit] = {}

    def compile_program(self, program: Program) -> TransactionCircuit:
        """Compile *program*, reusing a cached template when available."""
        cached = self._cache.get(program.name)
        if cached is not None:
            if cached.program is not program and cached.program != program:
                raise ConstraintViolation(
                    f"two distinct programs share the template name {program.name!r}"
                )
            return cached
        compiled = self._compile(program)
        self._cache[program.name] = compiled
        return compiled

    def _compile(self, program: Program) -> TransactionCircuit:
        builder = CircuitBuilder(label=program.name)
        param_lcs = {name: builder.input(f"param:{name}") for name in program.params}
        read_lcs: dict[str, LinearCombination] = {}
        read_labels: list[str] = []
        for stmt in program.statements:
            if isinstance(stmt, ReadStmt):
                read_lcs[stmt.name] = builder.input(f"read:{stmt.name}")
                read_labels.append(stmt.name)
        expr_compiler = _ExprCompiler(builder, param_lcs, read_lcs)
        write_indices: list[int] = []
        emit_indices: list[int] = []
        for stmt in program.statements:
            if isinstance(stmt, WriteStmt):
                value = expr_compiler.compile(stmt.value)
                out = builder.aux(lambda w, _ctx, value=value: value.evaluate(w))
                builder.assert_eq(out, value)
                builder.make_public(out)
                write_indices.append(next(iter(out.terms)))
            elif isinstance(stmt, Emit):
                value = expr_compiler.compile(stmt.expr)
                out = builder.aux(lambda w, _ctx, value=value: value.evaluate(w))
                builder.assert_eq(out, value)
                builder.make_public(out)
                emit_indices.append(next(iter(out.terms)))
        return TransactionCircuit(
            program=program,
            circuit=builder.build(),
            param_labels=tuple(program.params),
            read_labels=tuple(read_labels),
            write_output_indices=tuple(write_indices),
            emit_output_indices=tuple(emit_indices),
        )

    def bind(
        self,
        compiled: TransactionCircuit,
        params: Mapping[str, int],
        read_values: Mapping[str, int],
    ) -> WitnessBinding:
        """Generate the witness for one execution of the template.

        Raises :class:`ConstraintViolation` if the inputs do not satisfy the
        template (e.g. a tampered read value that breaks an internal check).
        """
        inputs: dict[str, int] = {}
        for name in compiled.param_labels:
            if name not in params:
                raise TransactionError(f"missing parameter {name!r}")
            inputs[f"param:{name}"] = to_field(params[name])
        for name in compiled.read_labels:
            if name not in read_values:
                raise TransactionError(f"missing read value {name!r}")
            inputs[f"read:{name}"] = to_field(read_values[name])
        witness = compiled.circuit.generate_witness(inputs)
        public = tuple(witness[i] for i in compiled.circuit.public_indices)
        writes = tuple(witness[i] for i in compiled.write_output_indices)
        outputs = tuple(witness[i] for i in compiled.emit_output_indices)
        return WitnessBinding(
            witness=tuple(witness),
            public_values=public,
            write_values=writes,
            outputs=outputs,
        )
