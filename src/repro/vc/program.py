"""A tiny stored-procedure language with two faithful semantics.

The paper assumes the client "has stored enough information to define a
group of transactions, e.g., a stored procedure with a set of input
parameters".  This module is that stored-procedure language: a small,
loop-free expression/statement AST that can be

1. **interpreted** against a database (the normal-DBMS execution path), and
2. **compiled** to an R1CS circuit (the verifiable path),

with the two semantics provably agreeing (tested property-based).  Following
the paper's evaluation setup, write *keys* are functions of the parameters
only — "the writing targets of transactions do not depend on the read
values" — which is what lets the client reproduce the interleaving locally.

Loops are unrolled at template-construction time (e.g. one TPC-C New Order
template per order-line count), exactly like hand-written circuits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping

from ..errors import TransactionError

__all__ = [
    "Expr",
    "Const",
    "Param",
    "ReadVal",
    "Add",
    "Sub",
    "Mul",
    "Lt",
    "Eq",
    "If",
    "Max",
    "Min",
    "Clamp",
    "Stmt",
    "ReadStmt",
    "WriteStmt",
    "Emit",
    "Program",
    "KeyTemplate",
]

# Comparison operands are range-checked to this many bits in the circuit;
# workloads must keep compared values inside [0, 2^VALUE_WIDTH).  Arithmetic
# itself is exact (Python ints / field elements), so interpreter and circuit
# agree modulo the field prime.
VALUE_WIDTH = 32


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


class Expr:
    """Base class for expressions (integer-valued, 32-bit semantics)."""

    def eval(self, env: "Env") -> int:
        raise NotImplementedError


@dataclass(frozen=True)
class Const(Expr):
    value: int

    def eval(self, env: "Env") -> int:
        return self.value


@dataclass(frozen=True)
class Param(Expr):
    name: str

    def eval(self, env: "Env") -> int:
        if self.name not in env.params:
            raise TransactionError(f"unknown parameter {self.name!r}")
        return env.params[self.name]


@dataclass(frozen=True)
class ReadVal(Expr):
    """The value produced by a prior :class:`ReadStmt` with the same name."""

    name: str

    def eval(self, env: "Env") -> int:
        if self.name not in env.reads:
            raise TransactionError(f"read {self.name!r} not executed before use")
        return env.reads[self.name]


@dataclass(frozen=True)
class Add(Expr):
    left: Expr
    right: Expr

    def eval(self, env: "Env") -> int:
        return self.left.eval(env) + self.right.eval(env)


@dataclass(frozen=True)
class Sub(Expr):
    left: Expr
    right: Expr

    def eval(self, env: "Env") -> int:
        return self.left.eval(env) - self.right.eval(env)


@dataclass(frozen=True)
class Mul(Expr):
    left: Expr
    right: Expr

    def eval(self, env: "Env") -> int:
        return self.left.eval(env) * self.right.eval(env)


@dataclass(frozen=True)
class Lt(Expr):
    left: Expr
    right: Expr

    def eval(self, env: "Env") -> int:
        return 1 if self.left.eval(env) < self.right.eval(env) else 0


@dataclass(frozen=True)
class Eq(Expr):
    left: Expr
    right: Expr

    def eval(self, env: "Env") -> int:
        return 1 if self.left.eval(env) == self.right.eval(env) else 0


@dataclass(frozen=True)
class If(Expr):
    condition: Expr
    if_true: Expr
    if_false: Expr

    def eval(self, env: "Env") -> int:
        return self.if_true.eval(env) if self.condition.eval(env) else self.if_false.eval(env)


@dataclass(frozen=True)
class Max(Expr):
    """max(left, right); operands must satisfy the comparison range rules."""

    left: Expr
    right: Expr

    def eval(self, env: "Env") -> int:
        return max(self.left.eval(env), self.right.eval(env))


@dataclass(frozen=True)
class Min(Expr):
    """min(left, right); operands must satisfy the comparison range rules."""

    left: Expr
    right: Expr

    def eval(self, env: "Env") -> int:
        return min(self.left.eval(env), self.right.eval(env))


def Clamp(value: Expr, low: Expr, high: Expr) -> Expr:
    """Clamp *value* into [low, high] (sugar over Min/Max)."""
    return Min(Max(value, low), high)


# ---------------------------------------------------------------------------
# Keys and statements
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class KeyTemplate:
    """A database key computed from parameters only.

    ``parts`` mixes literal components with parameter references
    (``Param``); e.g. ``KeyTemplate(("stock", Param("w_id"), Param("i_id")))``.
    """

    parts: tuple[object, ...]

    def resolve(self, params: Mapping[str, int]) -> tuple:
        resolved = []
        for part in self.parts:
            if isinstance(part, Param):
                if part.name not in params:
                    raise TransactionError(f"unknown key parameter {part.name!r}")
                resolved.append(params[part.name])
            else:
                resolved.append(part)
        return tuple(resolved)


class Stmt:
    """Base class for statements."""


@dataclass(frozen=True)
class ReadStmt(Stmt):
    name: str
    key: KeyTemplate


@dataclass(frozen=True)
class WriteStmt(Stmt):
    key: KeyTemplate
    value: Expr


@dataclass(frozen=True)
class Emit(Stmt):
    """Append an expression to the transaction's output value list."""

    expr: Expr


@dataclass
class Env:
    """Interpreter environment: parameters plus values read so far."""

    params: Mapping[str, int]
    reads: dict[str, int] = field(default_factory=dict)


@dataclass(frozen=True)
class ExecutionResult:
    """The effect of one interpreted run.

    ``reads`` records every executed read statement (including those served
    from the transaction's own write buffer); ``store_reads`` records, per
    key and at most once, only the values actually fetched from the database
    — the set the memory-integrity layer must authenticate.
    """

    reads: tuple[tuple[str, tuple, int], ...]  # (name, key, value)
    writes: tuple[tuple[tuple, int], ...]  # (key, value) in statement order
    outputs: tuple[int, ...]
    store_reads: tuple[tuple[tuple, int], ...] = ()


@dataclass(frozen=True)
class Program:
    """A loop-free stored procedure: name + parameter list + statements."""

    name: str
    params: tuple[str, ...]
    statements: tuple[Stmt, ...]

    def read_statements(self) -> list[ReadStmt]:
        return [s for s in self.statements if isinstance(s, ReadStmt)]

    def write_statements(self) -> list[WriteStmt]:
        return [s for s in self.statements if isinstance(s, WriteStmt)]

    def read_keys(self, params: Mapping[str, int]) -> list[tuple]:
        return [s.key.resolve(params) for s in self.read_statements()]

    def write_keys(self, params: Mapping[str, int]) -> list[tuple]:
        return [s.key.resolve(params) for s in self.write_statements()]

    def execute(
        self,
        params: Mapping[str, int],
        read_fn: Callable[[tuple], int],
    ) -> ExecutionResult:
        """Reference interpreter.

        *read_fn* maps a resolved key to the current database value; reads
        observe earlier writes of the same transaction (read-your-writes),
        matching Algorithm 5's ``Reserve``.
        """
        env = Env(params=params)
        reads: list[tuple[str, tuple, int]] = []
        store_reads: dict[tuple, int] = {}
        writes: dict[tuple, int] = {}
        write_order: list[tuple] = []
        outputs: list[int] = []
        for stmt in self.statements:
            if isinstance(stmt, ReadStmt):
                key = stmt.key.resolve(params)
                if key in writes:
                    value = writes[key]
                else:
                    value = int(read_fn(key))
                    store_reads.setdefault(key, value)
                env.reads[stmt.name] = value
                reads.append((stmt.name, key, value))
            elif isinstance(stmt, WriteStmt):
                key = stmt.key.resolve(params)
                if key not in writes:
                    write_order.append(key)
                writes[key] = stmt.value.eval(env)
            elif isinstance(stmt, Emit):
                outputs.append(stmt.expr.eval(env))
            else:  # pragma: no cover - defensive
                raise TransactionError(f"unknown statement {stmt!r}")
        return ExecutionResult(
            reads=tuple(reads),
            writes=tuple((key, writes[key]) for key in write_order),
            outputs=tuple(outputs),
            store_reads=tuple(store_reads.items()),
        )
