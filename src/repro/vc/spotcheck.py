"""A real probabilistic argument backend: Merkle-committed spot checking.

Unlike the ideal-functionality Groth16 simulator, this backend is a complete,
honestly-implemented argument system with no process-local secrets:

1. the prover commits to the full wire assignment with a Merkle tree;
2. Fiat–Shamir over (circuit hash, root, public inputs) selects ``k``
   constraint indices;
3. the prover opens every variable appearing in the challenged constraints,
   plus all public wires, with authentication paths;
4. the verifier checks the paths, re-evaluates the challenged constraints on
   the opened values, and checks the public wires against the claimed
   public inputs.

If a fraction ``f`` of constraints is violated, a cheating prover survives
with probability ``(1 - f)^k``.  Proofs are ``O(k log n)`` rather than
constant-size — this is the documented trade-off against the simulator
backend, and it doubles as an ablation point in the benchmarks.

Foreign gadgets (the RSA memory-checker blocks) carry their own
self-verifying cryptographic material, so the prover executes them directly;
their soundness comes from the accumulator math, not from spot checking.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Mapping, Sequence

from ..errors import ProofError
from ..obs.metrics import get_metrics, timed
from ..serialization import encode
from .circuit import Circuit
from .field import FIELD_PRIME
from .merkle_commit import WitnessCommitment, WitnessOpening
from .snark import ProvingKey, VerificationKey
import itertools

__all__ = ["SpotCheckBackend", "SpotCheckProof", "DEFAULT_CHALLENGES"]

DEFAULT_CHALLENGES = 40

_key_counter = itertools.count(1_000_000)

# Same instrument names as the Groth16 simulator: get-or-create on the
# process-local registry hands back the shared handles, so "snark.*" metrics
# cover whichever backend the config selected.
_OBS = get_metrics()
_PROVE_SECONDS = _OBS.histogram("snark.prove_seconds")
_VERIFY_SECONDS = _OBS.histogram("snark.verify_seconds")
_PROOFS_MINTED = _OBS.counter("snark.proofs")
_PROOFS_VERIFIED = _OBS.counter("snark.verifies")


@dataclass(frozen=True)
class SpotCheckProof:
    """Commitment root + openings for challenged constraints and public wires."""

    root: bytes
    openings: tuple[WitnessOpening, ...]
    num_constraints: int
    key_id: int

    @property
    def size_bytes(self) -> int:
        return len(self.root) + sum(opening.size_bytes for opening in self.openings)


def _challenge_indices(
    circuit_hash: bytes,
    root: bytes,
    public_values: Sequence[int],
    num_constraints: int,
    count: int,
) -> list[int]:
    if num_constraints == 0:
        return []
    seed = hashlib.sha256(
        b"litmus-spotcheck" + circuit_hash + root + encode(tuple(public_values))
    ).digest()
    indices = []
    counter = 0
    while len(indices) < min(count, num_constraints):
        block = hashlib.sha256(seed + counter.to_bytes(4, "big")).digest()
        index = int.from_bytes(block[:8], "big") % num_constraints
        if index not in indices:
            indices.append(index)
        counter += 1
        if counter > 50 * count:  # all distinct indices found
            break
    return indices


class SpotCheckBackend:
    """Argument backend with genuine (probabilistic) soundness."""

    def __init__(self, challenges: int = DEFAULT_CHALLENGES):
        self.challenges = challenges

    def setup(self, circuit: Circuit) -> tuple[ProvingKey, VerificationKey]:
        """Transparent setup: keys are just circuit-hash handles."""
        key_id = next(_key_counter)
        circuit_hash = circuit.structural_hash()
        return (
            ProvingKey(key_id=key_id, circuit_hash=circuit_hash, size_bytes=64),
            VerificationKey(key_id=key_id, circuit_hash=circuit_hash),
        )

    def prove(
        self,
        proving_key: ProvingKey,
        circuit: Circuit,
        inputs: Mapping[str, int],
        context: dict | None = None,
    ) -> tuple[SpotCheckProof, Sequence[int]]:
        if proving_key.circuit_hash != circuit.structural_hash():
            raise ProofError("proving key was generated for a different circuit")
        with timed(_PROVE_SECONDS):
            return self._prove(proving_key, circuit, inputs, context)

    def _prove(
        self,
        proving_key: ProvingKey,
        circuit: Circuit,
        inputs: Mapping[str, int],
        context: dict | None = None,
    ) -> tuple[SpotCheckProof, Sequence[int]]:
        witness = circuit.generate_witness(inputs, context)
        public_values = [witness[i] for i in circuit.public_indices]
        commitment = WitnessCommitment(witness)
        circuit_hash = circuit.structural_hash()
        challenged = _challenge_indices(
            circuit_hash,
            commitment.root,
            public_values,
            len(circuit.r1cs.constraints),
            self.challenges,
        )
        needed: set[int] = set(circuit.public_indices)
        for index in challenged:
            constraint = circuit.r1cs.constraints[index]
            for lc in (constraint.a, constraint.b, constraint.c):
                needed.update(lc.terms)
        openings = tuple(commitment.open(i) for i in sorted(needed))
        proof = SpotCheckProof(
            root=commitment.root,
            openings=openings,
            num_constraints=len(circuit.r1cs.constraints),
            key_id=proving_key.key_id,
        )
        _PROOFS_MINTED.inc()
        return proof, public_values

    def verify(
        self,
        verification_key: VerificationKey,
        public_values: Sequence[int],
        proof: SpotCheckProof,
        circuit: Circuit | None = None,
    ) -> bool:
        """Verify openings and re-check the challenged constraints.

        The client holds the circuit (it compiled it locally / matched it),
        so passing it here costs nothing extra; without it only the binding
        of public values to the commitment can be checked.
        """
        if circuit is None:
            raise ProofError("spot-check verification requires the circuit")
        _PROOFS_VERIFIED.inc()
        with timed(_VERIFY_SECONDS):
            return self._verify(verification_key, public_values, proof, circuit)

    def _verify(
        self,
        verification_key: VerificationKey,
        public_values: Sequence[int],
        proof: SpotCheckProof,
        circuit: Circuit,
    ) -> bool:
        circuit_hash = circuit.structural_hash()
        if verification_key.circuit_hash != circuit_hash:
            return False
        opened: dict[int, int] = {}
        for opening in proof.openings:
            if not opening.verify(proof.root):
                return False
            opened[opening.index] = opening.value
        # Public wires must match the claimed public inputs.
        if len(public_values) != len(circuit.public_indices):
            return False
        for index, claimed in zip(circuit.public_indices, public_values):
            if index not in opened or opened[index] != claimed % FIELD_PRIME:
                return False
        challenged = _challenge_indices(
            circuit_hash,
            proof.root,
            public_values,
            proof.num_constraints,
            self.challenges,
        )
        if proof.num_constraints != len(circuit.r1cs.constraints):
            return False
        for index in challenged:
            constraint = circuit.r1cs.constraints[index]
            try:
                a = _eval_opened(constraint.a, opened)
                b = _eval_opened(constraint.b, opened)
                c = _eval_opened(constraint.c, opened)
            except KeyError:
                return False  # prover failed to open a needed wire
            if (a * b - c) % FIELD_PRIME != 0:
                return False
        return True


def _eval_opened(lc, opened: dict[int, int]) -> int:
    total = 0
    for var, coeff in lc.terms.items():
        total += coeff * opened[var]
    return total % FIELD_PRIME
