"""Proof backends for the VC layer.

The paper instantiates the prover with Pequin's libsnark backend (an
optimized Pinocchio / Groth16 over BN-128).  Running a real pairing-based
prover over millions of constraints is outside what pure Python can do, and
the reproduction band explicitly flags proof performance as unrealistic to
measure natively — so this module provides a **sound-by-construction
ideal-functionality simulation** of Groth16 (see DESIGN.md, substitution 1):

- ``setup`` registers the circuit with a process-local *authority* holding a
  secret MAC key (standing in for the structured reference string of the
  trusted setup);
- ``prove`` first **really evaluates every constraint and foreign gadget**
  on the witness — an unsatisfied statement raises
  :class:`~repro.errors.ConstraintViolation`, mirroring the fact that no
  real prover can produce a proof for a false statement — and only then asks
  the authority to authenticate the statement hash;
- ``verify`` is a constant-time check of the 312-byte payload (the exact
  proof size the paper reports per prover).

A malicious server in our tests cannot forge proofs: it does not hold the
authority secret, and the honest proving path refuses unsatisfied witnesses.
For a proof backend that is *actually* sound without a process-local
authority, see :mod:`repro.vc.spotcheck`.
"""

from __future__ import annotations

import hashlib
import hmac
import itertools
import os
import threading
from dataclasses import dataclass
from typing import Mapping, Protocol, Sequence

from ..errors import ProofError
from ..obs.metrics import get_metrics, timed
from ..serialization import encode
from .circuit import Circuit

__all__ = [
    "Proof",
    "ProvingKey",
    "VerificationKey",
    "SnarkBackend",
    "Groth16Simulator",
    "SetupCache",
    "PROOF_SIZE_BYTES",
]

# Per-prover proof size reported by the paper (Section 8.2).
PROOF_SIZE_BYTES = 312

_key_counter = itertools.count()
# Authority registry: key id -> (mac secret, circuit structural hash).
# Holding this dict plays the role of the trusted setup's toxic waste; no
# object handed to server code references the secrets.  Guarded by a lock:
# the concurrent prover pool runs setup/prove/verify from worker threads.
_AUTHORITY: dict[int, tuple[bytes, bytes]] = {}
_AUTHORITY_LOCK = threading.Lock()

# Observability handles (repro.obs): every backend reports through these, so
# exporters see SNARK activity regardless of which backend a config picks.
_OBS = get_metrics()
_SETUP_SECONDS = _OBS.histogram("snark.setup_seconds")
_PROVE_SECONDS = _OBS.histogram("snark.prove_seconds")
_VERIFY_SECONDS = _OBS.histogram("snark.verify_seconds")
_PROOFS_MINTED = _OBS.counter("snark.proofs")
_PROOFS_VERIFIED = _OBS.counter("snark.verifies")
_SETUP_CACHE_HITS = _OBS.counter("snark.setup_cache.hits")
_SETUP_CACHE_MISSES = _OBS.counter("snark.setup_cache.misses")


@dataclass(frozen=True)
class ProvingKey:
    """Handle the server uses to produce proofs (no secret material)."""

    key_id: int
    circuit_hash: bytes
    size_bytes: int  # modeled SRS size; grows with the circuit


@dataclass(frozen=True)
class VerificationKey:
    """Handle the client uses to verify proofs."""

    key_id: int
    circuit_hash: bytes


@dataclass(frozen=True)
class Proof:
    """A constant-size proof bound to (circuit, public inputs)."""

    payload: bytes
    key_id: int

    @property
    def size_bytes(self) -> int:
        return len(self.payload)


class SnarkBackend(Protocol):
    """The interface both backends implement."""

    def setup(self, circuit: Circuit) -> tuple[ProvingKey, VerificationKey]: ...

    def prove(
        self,
        proving_key: ProvingKey,
        circuit: Circuit,
        inputs: Mapping[str, int],
        context: dict | None = None,
    ) -> tuple[Proof, Sequence[int]]: ...

    def verify(
        self,
        verification_key: VerificationKey,
        public_values: Sequence[int],
        proof: Proof,
    ) -> bool: ...


def _statement_hash(circuit_hash: bytes, public_values: Sequence[int]) -> bytes:
    return hashlib.sha256(
        b"litmus-statement" + circuit_hash + encode(tuple(public_values))
    ).digest()


def _expand_mac(secret: bytes, statement: bytes, size: int) -> bytes:
    """Expand an HMAC into a *size*-byte payload (constant-size 'proof')."""
    out = b""
    counter = 0
    while len(out) < size:
        out += hmac.new(
            secret, statement + counter.to_bytes(4, "big"), hashlib.sha256
        ).digest()
        counter += 1
    return out[:size]


class Groth16Simulator:
    """Ideal-functionality simulation of the Groth16 pipeline."""

    proof_size = PROOF_SIZE_BYTES

    def setup(self, circuit: Circuit) -> tuple[ProvingKey, VerificationKey]:
        """Trusted setup: register the circuit, mint proving/verification keys.

        The modeled proving-key size grows linearly with the constraint
        count, matching the paper's note that "the key pair has a large
        size".
        """
        with timed(_SETUP_SECONDS):
            key_id = next(_key_counter)
            secret = os.urandom(32)
            circuit_hash = circuit.structural_hash()
            with _AUTHORITY_LOCK:
                _AUTHORITY[key_id] = (secret, circuit_hash)
        proving_key = ProvingKey(
            key_id=key_id,
            circuit_hash=circuit_hash,
            size_bytes=160 * max(1, circuit.total_constraints),
        )
        return proving_key, VerificationKey(key_id=key_id, circuit_hash=circuit_hash)

    def prove(
        self,
        proving_key: ProvingKey,
        circuit: Circuit,
        inputs: Mapping[str, int],
        context: dict | None = None,
    ) -> tuple[Proof, Sequence[int]]:
        """Produce a proof for ``circuit(inputs)``.

        Every R1CS constraint and every foreign gadget is genuinely
        evaluated; a false statement raises instead of proving — the
        simulation-level guarantee of soundness.
        """
        if proving_key.circuit_hash != circuit.structural_hash():
            raise ProofError("proving key was generated for a different circuit")
        with timed(_PROVE_SECONDS):
            witness = circuit.generate_witness(inputs, context)
            public_values = [witness[i] for i in circuit.public_indices]
            with _AUTHORITY_LOCK:
                entry = _AUTHORITY.get(proving_key.key_id)
            if entry is None:
                raise ProofError("unknown proving key (no trusted setup ran)")
            secret, registered_hash = entry
            statement = _statement_hash(registered_hash, public_values)
            payload = _expand_mac(secret, statement, self.proof_size)
        _PROOFS_MINTED.inc()
        return Proof(payload=payload, key_id=proving_key.key_id), public_values

    def verify(
        self,
        verification_key: VerificationKey,
        public_values: Sequence[int],
        proof: Proof,
    ) -> bool:
        """Constant-time verification of the 312-byte payload."""
        _PROOFS_VERIFIED.inc()
        with timed(_VERIFY_SECONDS):
            with _AUTHORITY_LOCK:
                entry = _AUTHORITY.get(verification_key.key_id)
            if entry is None or proof.key_id != verification_key.key_id:
                return False
            secret, circuit_hash = entry
            if circuit_hash != verification_key.circuit_hash:
                return False
            statement = _statement_hash(circuit_hash, public_values)
            expected = _expand_mac(secret, statement, len(proof.payload))
            return hmac.compare_digest(expected, proof.payload)


class SetupCache:
    """Reuses key pairs across circuits with identical structural hashes.

    Trusted setup (key generation) is ~51% of the serial pipeline per Fig 7,
    yet pieces generated from the same transaction templates compile to
    byte-identical circuit *structures* — the paper's "parallel repetitions
    of similar structures" observation.  Running setup once per structure
    and reusing the key pair is sound: keys are bound to the structural
    hash, and every proof additionally commits to its own public statement
    (piece index, digest endpoints, outputs), so proofs minted under a
    shared key still cannot be transplanted between pieces.

    Thread-safe: prover workers race on the same structural hash, and the
    loser of the race adopts the winner's key pair.
    """

    def __init__(self, backend: "SnarkBackend"):
        self._backend = backend
        self._keys: dict[bytes, tuple[ProvingKey, VerificationKey]] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def setup(self, circuit: Circuit) -> tuple[ProvingKey, VerificationKey]:
        structural = circuit.structural_hash()
        with self._lock:
            cached = self._keys.get(structural)
            if cached is not None:
                self.hits += 1
                _SETUP_CACHE_HITS.inc()
                return cached
        pair = self._backend.setup(circuit)
        with self._lock:
            winner = self._keys.setdefault(structural, pair)
            if winner is pair:
                self.misses += 1
                _SETUP_CACHE_MISSES.inc()
            else:
                self.hits += 1
                _SETUP_CACHE_HITS.inc()
        return winner

    def clear(self) -> None:
        with self._lock:
            self._keys.clear()

    def __getattr__(self, name: str):
        # Delegate prove/verify (and anything else) to the wrapped backend.
        return getattr(self._backend, name)
