"""Verifiable computation substrate.

The paper instantiates its VC framework with Pequin/libsnark (a Groth16-style
zk-SNARK over BN-128).  This package provides:

- a prime-field arithmetic layer over the BN-128 scalar field
  (:mod:`repro.vc.field`);
- a circuit builder producing Rank-1 Constraint Systems with witness hints
  (:mod:`repro.vc.circuit`, :mod:`repro.vc.r1cs`, :mod:`repro.vc.gadgets`);
- a tiny stored-procedure DSL and the transaction circuit compiler
  (:mod:`repro.vc.program`, :mod:`repro.vc.compiler`);
- two proof backends (:mod:`repro.vc.snark`):
  * :class:`~repro.vc.snark.Groth16Simulator` — an ideal-functionality
    simulation of Groth16 with the paper-calibrated cost model (see
    DESIGN.md, substitution 1);
  * :class:`~repro.vc.spotcheck.SpotCheckBackend` — a *real* probabilistic
    argument (Merkle-committed witness + Fiat-Shamir constraint sampling).
"""

from .circuit import Circuit, CircuitBuilder, LinearCombination
from .compiler import CircuitCompiler, TransactionCircuit
from .field import FIELD_PRIME, inv, normalize
from .program import (
    Add,
    Const,
    Emit,
    Eq,
    If,
    Lt,
    Mul,
    Param,
    Program,
    ReadStmt,
    ReadVal,
    Sub,
    WriteStmt,
)
from .r1cs import R1CS
from .snark import Groth16Simulator, Proof, ProvingKey, SnarkBackend, VerificationKey
from .spotcheck import SpotCheckBackend, SpotCheckProof
from .universal import PlonkSimulator, UniversalSetup

__all__ = [
    "Add",
    "Circuit",
    "CircuitBuilder",
    "CircuitCompiler",
    "Const",
    "Emit",
    "Eq",
    "FIELD_PRIME",
    "Groth16Simulator",
    "If",
    "LinearCombination",
    "Lt",
    "Mul",
    "Param",
    "PlonkSimulator",
    "Program",
    "Proof",
    "ProvingKey",
    "R1CS",
    "ReadStmt",
    "ReadVal",
    "SnarkBackend",
    "SpotCheckBackend",
    "SpotCheckProof",
    "Sub",
    "TransactionCircuit",
    "UniversalSetup",
    "VerificationKey",
    "WriteStmt",
    "inv",
    "normalize",
]
