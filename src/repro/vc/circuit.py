"""Circuit builder producing Rank-1 Constraint Systems.

This is the "cryptographic circuit" formalism of paper Section 2.2 in the
concrete shape modern SNARK toolchains use: every gate becomes a rank-1
constraint ``<A, w> * <B, w> = <C, w>`` over the witness vector ``w`` (whose
0-th entry is the constant 1).

Two features matter for Litmus specifically:

- **witness hints** — every auxiliary variable records how to compute itself
  from earlier values, so the prover derives the full assignment from the
  inputs alone (the paper's "auxiliary inputs supplied by the server");
- **foreign gadgets** — the memory-integrity checker performs RSA-group
  arithmetic that would unfold into a *fixed* number of gates (the paper:
  "exactly three exponentiations, two multiplications, three comparisons and
  two boolean operations per request").  We represent such a block as an
  opaque gadget carrying (a) a real Python evaluator that performs the actual
  group math during witness generation, and (b) its gate-count contribution
  for the cost model.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable, Mapping

from ..errors import ConstraintViolation
from .field import FIELD_PRIME, inv, to_field
from .r1cs import R1CS, Constraint

__all__ = ["LinearCombination", "ForeignGadget", "Circuit", "CircuitBuilder"]


class LinearCombination:
    """A sparse linear combination of witness variables."""

    __slots__ = ("terms",)

    def __init__(self, terms: Mapping[int, int] | None = None):
        self.terms: dict[int, int] = {}
        if terms:
            for var, coeff in terms.items():
                coeff = to_field(coeff)
                if coeff:
                    self.terms[var] = coeff

    @classmethod
    def variable(cls, index: int, coeff: int = 1) -> "LinearCombination":
        return cls({index: coeff})

    @classmethod
    def constant(cls, value: int) -> "LinearCombination":
        return cls({0: value})

    def __add__(self, other: "LinearCombination") -> "LinearCombination":
        merged = dict(self.terms)
        for var, coeff in other.terms.items():
            merged[var] = to_field(merged.get(var, 0) + coeff)
        return LinearCombination(merged)

    def __sub__(self, other: "LinearCombination") -> "LinearCombination":
        return self + other.scale(-1)

    def scale(self, scalar: int) -> "LinearCombination":
        return LinearCombination(
            {var: to_field(coeff * scalar) for var, coeff in self.terms.items()}
        )

    def evaluate(self, assignment: list[int]) -> int:
        total = 0
        for var, coeff in self.terms.items():
            total += coeff * assignment[var]
        return total % FIELD_PRIME

    def canonical(self) -> tuple[tuple[int, int], ...]:
        return tuple(sorted(self.terms.items()))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LC({self.terms})"


@dataclass(frozen=True)
class ForeignGadget:
    """An opaque fixed-cost block of crypto gates (e.g. one MemCheck call).

    *evaluator* receives the full witness context dictionary the builder
    threads through witness generation and must return True iff the gadget's
    semantic check passes (real RSA math happens inside).
    """

    name: str
    constraint_count: int
    evaluator: Callable[[dict], bool]


@dataclass
class Circuit:
    """An immutable compiled circuit: R1CS + hints + foreign gadgets."""

    r1cs: R1CS
    num_variables: int
    public_indices: tuple[int, ...]
    input_labels: tuple[str, ...]
    hints: tuple[tuple[int, Callable[[list[int], dict], int]], ...]
    gadgets: tuple[ForeignGadget, ...] = ()
    label: str = ""

    @property
    def field_constraints(self) -> int:
        return len(self.r1cs.constraints)

    @property
    def foreign_constraints(self) -> int:
        return sum(g.constraint_count for g in self.gadgets)

    @property
    def total_constraints(self) -> int:
        """Total gate count, the quantity the cost model charges for."""
        return self.field_constraints + self.foreign_constraints

    def structural_hash(self) -> bytes:
        """A hash of the circuit *structure* (not of any particular witness).

        This is what the client's circuit matcher compares: identical
        transaction logic compiles to an identical structure, while any
        tampering with constraints or gadget layout changes the hash.
        """
        h = hashlib.sha256()
        h.update(self.label.encode())
        h.update(len(self.r1cs.constraints).to_bytes(8, "big"))
        for constraint in self.r1cs.constraints:
            for lc in (constraint.a, constraint.b, constraint.c):
                for var, coeff in lc.canonical():
                    h.update(var.to_bytes(8, "big"))
                    h.update(coeff.to_bytes(32, "big"))
                h.update(b"|")
        for gadget in self.gadgets:
            h.update(gadget.name.encode())
            h.update(gadget.constraint_count.to_bytes(8, "big"))
        h.update(bytes(str(self.public_indices), "ascii"))
        return h.digest()

    def generate_witness(self, inputs: Mapping[str, int], context: dict | None = None) -> list[int]:
        """Derive the full assignment from named inputs via the hints.

        Raises :class:`ConstraintViolation` if any constraint or foreign
        gadget fails — the prover-side enforcement of soundness.
        """
        context = context if context is not None else {}
        assignment = [0] * self.num_variables
        assignment[0] = 1
        for label, index in zip(self.input_labels, range(1, len(self.input_labels) + 1)):
            if label not in inputs:
                raise ConstraintViolation(f"missing circuit input {label!r}")
            assignment[index] = to_field(inputs[label])
        for index, hint in self.hints:
            assignment[index] = to_field(hint(assignment, context))
        self.check_satisfied(assignment, context)
        return assignment

    def check_satisfied(self, assignment: list[int], context: dict | None = None) -> None:
        """Evaluate every constraint and gadget; raise on the first failure."""
        failure = self.r1cs.first_violation(assignment)
        if failure is not None:
            raise ConstraintViolation(
                f"constraint {failure} unsatisfied in circuit {self.label!r}"
            )
        for gadget in self.gadgets:
            if not gadget.evaluator(context if context is not None else {}):
                raise ConstraintViolation(
                    f"foreign gadget {gadget.name!r} failed in circuit {self.label!r}"
                )


class CircuitBuilder:
    """Imperative construction of a :class:`Circuit`.

    Variables are referenced by :class:`LinearCombination`; inputs are
    declared first (they occupy the low indices, making them the public part
    of the witness).
    """

    def __init__(self, label: str = ""):
        self.label = label
        self._num_vars = 1  # index 0 is the constant ONE
        self._input_labels: list[str] = []
        self._public: list[int] = [0]
        self._constraints: list[Constraint] = []
        self._hints: list[tuple[int, Callable[[list[int], dict], int]]] = []
        self._gadgets: list[ForeignGadget] = []
        self._inputs_frozen = False

    # -- variables -----------------------------------------------------------

    def input(self, label: str, public: bool = True) -> LinearCombination:
        """Declare a named input variable (must precede any aux variable)."""
        if self._inputs_frozen:
            raise ConstraintViolation("inputs must be declared before aux variables")
        index = self._num_vars
        self._num_vars += 1
        self._input_labels.append(label)
        if public:
            self._public.append(index)
        return LinearCombination.variable(index)

    def aux(self, hint: Callable[[list[int], dict], int]) -> LinearCombination:
        """Allocate an auxiliary variable computed by *hint* at proving time."""
        self._inputs_frozen = True
        index = self._num_vars
        self._num_vars += 1
        self._hints.append((index, hint))
        return LinearCombination.variable(index)

    def constant(self, value: int) -> LinearCombination:
        return LinearCombination.constant(value)

    # -- constraints -----------------------------------------------------------

    def enforce(
        self, a: LinearCombination, b: LinearCombination, c: LinearCombination
    ) -> None:
        """Add the rank-1 constraint ``a * b = c``."""
        self._constraints.append(Constraint(a, b, c))

    def assert_eq(self, a: LinearCombination, b: LinearCombination) -> None:
        self.enforce(a - b, LinearCombination.constant(1), LinearCombination.constant(0))

    def assert_bool(self, x: LinearCombination) -> None:
        """x * (x - 1) = 0."""
        self.enforce(x, x - LinearCombination.constant(1), LinearCombination.constant(0))

    # -- derived operations --------------------------------------------------------

    def mul(self, a: LinearCombination, b: LinearCombination) -> LinearCombination:
        out = self.aux(lambda w, _ctx, a=a, b=b: a.evaluate(w) * b.evaluate(w))
        self.enforce(a, b, out)
        return out

    def is_zero(self, x: LinearCombination) -> LinearCombination:
        """Return a bit that is 1 iff x == 0 (classic inverse-hint gadget)."""
        inverse = self.aux(
            lambda w, _ctx, x=x: inv(x.evaluate(w)) if x.evaluate(w) % FIELD_PRIME else 0
        )
        bit = self.aux(lambda w, _ctx, x=x: 0 if x.evaluate(w) % FIELD_PRIME else 1)
        # bit = 1 - x * inverse ; x * bit = 0.
        self.enforce(x, inverse, LinearCombination.constant(1) - bit)
        self.enforce(x, bit, LinearCombination.constant(0))
        return bit

    def assert_nonzero(self, x: LinearCombination) -> None:
        """The paper's trick (Sec 7.1): aux z with z * x = 1 proves x != 0."""
        z = self.aux(lambda w, _ctx, x=x: inv(x.evaluate(w)))
        self.enforce(z, x, LinearCombination.constant(1))

    def assert_all_distinct(self, values: list[LinearCombination]) -> None:
        """Prove pairwise distinctness of *values* (Section 7.1).

        "We can encode the non-conflicting property as a check in the
        circuit.  Given two variables X and Y, the relationship X != Y can
        be encoded using an auxiliary input Z provided by the server s.t.
        Z * (X - Y) = 1."  Applied to the accessed keys of a claimed
        non-conflicting batch, this lets the server *prove* batch
        disjointness when write sets depend on read values and the client
        cannot reproduce the interleaving locally.
        """
        for i in range(len(values)):
            for j in range(i + 1, len(values)):
                self.assert_nonzero(values[i] - values[j])

    def select(
        self,
        bit: LinearCombination,
        if_true: LinearCombination,
        if_false: LinearCombination,
    ) -> LinearCombination:
        """out = bit ? if_true : if_false (bit must be boolean-constrained)."""
        # out = if_false + bit * (if_true - if_false)
        delta = self.mul(bit, if_true - if_false)
        return if_false + delta

    def decompose_bits(self, x: LinearCombination, width: int) -> list[LinearCombination]:
        """Constrain x to *width* bits and return them (range-check gadget)."""
        bits: list[LinearCombination] = []
        for position in range(width):
            bit = self.aux(
                lambda w, _ctx, x=x, p=position: (x.evaluate(w) >> p) & 1
            )
            self.assert_bool(bit)
            bits.append(bit)
        recomposed = LinearCombination.constant(0)
        for position, bit in enumerate(bits):
            recomposed = recomposed + bit.scale(1 << position)
        self.assert_eq(x, recomposed)
        return bits

    def less_than(
        self, a: LinearCombination, b: LinearCombination, width: int = 32
    ) -> LinearCombination:
        """Return a bit: a < b.

        Both operands must already be range-constrained to *width* bits by
        the caller (inputs should be decomposed once on entry).  The shifted
        difference ``b - a - 1 + 2^width`` is a non-negative integer below
        ``2^(width+1)`` exactly under that precondition, and its top bit is 1
        iff ``a < b``.
        """
        shifted = (
            b - a - LinearCombination.constant(1) + LinearCombination.constant(1 << width)
        )
        bits = self.decompose_bits(shifted, width + 1)
        return bits[width]

    def add_gadget(self, gadget: ForeignGadget) -> None:
        self._gadgets.append(gadget)

    def make_public(self, lc: LinearCombination) -> None:
        """Expose a single-variable combination as a public output."""
        if len(lc.terms) != 1:
            raise ConstraintViolation("only plain variables can be made public")
        index = next(iter(lc.terms))
        if index not in self._public:
            self._public.append(index)

    def output(self, lc: LinearCombination) -> LinearCombination:
        """Bind *lc* to a fresh public output variable and return it."""
        out = self.aux(lambda w, _ctx, lc=lc: lc.evaluate(w))
        self.assert_eq(out, lc)
        self.make_public(out)
        return out

    # -- finalize -------------------------------------------------------------------

    def build(self) -> Circuit:
        return Circuit(
            r1cs=R1CS(tuple(self._constraints)),
            num_variables=self._num_vars,
            public_indices=tuple(self._public),
            input_labels=tuple(self._input_labels),
            hints=tuple(self._hints),
            gadgets=tuple(self._gadgets),
            label=self.label,
        )
