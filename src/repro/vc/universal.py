"""Universal-setup backend (paper Section 9).

Groth16's trusted setup is circuit-specific: "if the transactions are not
generated from a fixed template, the client has to generate the setup for
every new circuit ...  A better alternative is to replace the instantiation
with a universal verifiable computation framework like Plonk, whose setup
is circuit-independent."

:class:`PlonkSimulator` models exactly that: one global structured
reference string (per maximum circuit size) is minted once; per-circuit
"key derivation" is untrusted preprocessing that anyone can redo, so fresh
circuits never re-enter a trusted ceremony.  Proof semantics match the
Groth16 simulator (real constraint evaluation before authentication); the
cost difference shows up in the pipeline: key generation leaves the
critical path.
"""

from __future__ import annotations

import hashlib
import hmac
import itertools
import os
from dataclasses import dataclass
from typing import Mapping, Sequence

from ..errors import ProofError
from .circuit import Circuit
from .snark import (
    PROOF_SIZE_BYTES,
    Proof,
    ProvingKey,
    VerificationKey,
    _expand_mac,
    _statement_hash,
)

__all__ = ["UniversalSetup", "PlonkSimulator"]

_setup_counter = itertools.count(5_000_000)


@dataclass(frozen=True)
class UniversalSetup:
    """One circuit-independent SRS (the one-time ceremony)."""

    setup_id: int
    max_constraints: int


class PlonkSimulator:
    """Universal-setup analogue of :class:`~repro.vc.snark.Groth16Simulator`.

    ``universal_setup`` runs once; ``setup(circuit)`` is untrusted
    preprocessing (instant in the simulation, and — crucially — requiring no
    fresh randomness ceremony per circuit).
    """

    proof_size = PROOF_SIZE_BYTES

    def __init__(self):
        self._srs: UniversalSetup | None = None
        self._secret: bytes | None = None

    def universal_setup(self, max_constraints: int = 1 << 28) -> UniversalSetup:
        """The one-time ceremony; idempotent per simulator instance."""
        if self._srs is None:
            self._srs = UniversalSetup(
                setup_id=next(_setup_counter), max_constraints=max_constraints
            )
            self._secret = os.urandom(32)
        return self._srs

    # -- SnarkBackend interface ------------------------------------------------

    def setup(self, circuit: Circuit) -> tuple[ProvingKey, VerificationKey]:
        """Derive circuit keys from the universal SRS (no trusted ceremony)."""
        srs = self.universal_setup()
        if circuit.total_constraints > srs.max_constraints:
            raise ProofError("circuit exceeds the universal setup's size bound")
        circuit_hash = circuit.structural_hash()
        return (
            ProvingKey(key_id=srs.setup_id, circuit_hash=circuit_hash, size_bytes=64),
            VerificationKey(key_id=srs.setup_id, circuit_hash=circuit_hash),
        )

    def prove(
        self,
        proving_key: ProvingKey,
        circuit: Circuit,
        inputs: Mapping[str, int],
        context: dict | None = None,
    ) -> tuple[Proof, Sequence[int]]:
        if self._srs is None or proving_key.key_id != self._srs.setup_id:
            raise ProofError("proving key does not descend from this universal setup")
        if proving_key.circuit_hash != circuit.structural_hash():
            raise ProofError("proving key was derived for a different circuit")
        witness = circuit.generate_witness(inputs, context)
        public_values = [witness[i] for i in circuit.public_indices]
        statement = self._bind(proving_key.circuit_hash, public_values)
        payload = _expand_mac(self._secret, statement, self.proof_size)
        return Proof(payload=payload, key_id=proving_key.key_id), public_values

    def verify(
        self,
        verification_key: VerificationKey,
        public_values: Sequence[int],
        proof: Proof,
    ) -> bool:
        if self._srs is None or verification_key.key_id != self._srs.setup_id:
            return False
        if proof.key_id != verification_key.key_id:
            return False
        statement = self._bind(verification_key.circuit_hash, public_values)
        expected = _expand_mac(self._secret, statement, len(proof.payload))
        return hmac.compare_digest(expected, proof.payload)

    def _bind(self, circuit_hash: bytes, public_values: Sequence[int]) -> bytes:
        # The universal secret is shared across circuits, so the statement
        # must bind the circuit hash explicitly (Plonk binds the circuit's
        # preprocessed polynomials the same way).
        return hashlib.sha256(
            b"litmus-plonk" + circuit_hash + _statement_hash(circuit_hash, public_values)
        ).digest()
