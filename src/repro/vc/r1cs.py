"""Rank-1 Constraint Systems.

The circuit compiler "converts the description of the wrapped transaction
... into a Rank-1 Constraint System" (paper Section 6.1.3).  A constraint is
``<A, w> * <B, w> = <C, w>`` for sparse linear combinations A, B, C over the
witness vector w.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from .field import FIELD_PRIME

if TYPE_CHECKING:  # pragma: no cover
    from .circuit import LinearCombination

__all__ = ["Constraint", "R1CS"]


@dataclass(frozen=True)
class Constraint:
    a: "LinearCombination"
    b: "LinearCombination"
    c: "LinearCombination"

    def holds(self, assignment: list[int]) -> bool:
        return (
            self.a.evaluate(assignment) * self.b.evaluate(assignment)
            - self.c.evaluate(assignment)
        ) % FIELD_PRIME == 0


@dataclass(frozen=True)
class R1CS:
    """An immutable list of rank-1 constraints."""

    constraints: tuple[Constraint, ...]

    def __len__(self) -> int:
        return len(self.constraints)

    def is_satisfied(self, assignment: Sequence[int]) -> bool:
        return self.first_violation(list(assignment)) is None

    def first_violation(self, assignment: list[int]) -> int | None:
        """Index of the first violated constraint, or None if all hold."""
        for index, constraint in enumerate(self.constraints):
            if not constraint.holds(assignment):
                return index
        return None

    def violated_indices(self, assignment: list[int]) -> list[int]:
        """All violated constraint indices (used by the spot-check backend)."""
        return [
            index
            for index, constraint in enumerate(self.constraints)
            if not constraint.holds(assignment)
        ]
