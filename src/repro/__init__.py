"""Litmus: a verifiable DBMS with provable ACID properties.

Reproduction of Xia, Yu, Butrovich, Pavlo & Devadas,
"Litmus: Towards a Practical Database Management System with Verifiable
ACID Properties and Transaction Correctness" (SIGMOD 2022).

Quickstart::

    from repro import LitmusServer, LitmusClient, LitmusConfig, YCSBWorkload
    from repro.crypto import RSAGroup

    group = RSAGroup.generate(bits=512, seed=b"demo")
    workload = YCSBWorkload(num_rows=1000)
    server = LitmusServer(initial=workload.initial_data(), group=group)
    client = LitmusClient(group, server.digest)

    txns = workload.generate(100)
    response = server.execute_batch(txns)
    verdict = client.verify_response(txns, response)
    assert verdict.accepted

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
paper-versus-measured comparison of every table and figure.
"""

from .core import (
    ClientVerdict,
    HybridLitmus,
    InteractiveServerClient,
    LitmusClient,
    LitmusConfig,
    LitmusServer,
    MerkleServerClient,
    ServerResponse,
    SumInvariant,
)
from .crypto import AuthenticatedDictionary, MerkleTree, RSAGroup
from .db import Database, Transaction, TxnResult
from .sim import CostModel
from .sql import SqlCatalog, compile_procedure
from .vc import (
    CircuitCompiler,
    Groth16Simulator,
    Program,
    SpotCheckBackend,
)
from .verify import ElleChecker, history_from_execution
from .workloads import TPCCWorkload, YCSBWorkload, ZipfSampler

__version__ = "1.0.0"

__all__ = [
    "AuthenticatedDictionary",
    "CircuitCompiler",
    "ClientVerdict",
    "CostModel",
    "Database",
    "ElleChecker",
    "Groth16Simulator",
    "HybridLitmus",
    "InteractiveServerClient",
    "LitmusClient",
    "LitmusConfig",
    "LitmusServer",
    "MerkleServerClient",
    "MerkleTree",
    "Program",
    "RSAGroup",
    "ServerResponse",
    "SpotCheckBackend",
    "SqlCatalog",
    "compile_procedure",
    "SumInvariant",
    "TPCCWorkload",
    "Transaction",
    "TxnResult",
    "YCSBWorkload",
    "ZipfSampler",
    "history_from_execution",
    "__version__",
]
