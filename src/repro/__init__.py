"""Litmus: a verifiable DBMS with provable ACID properties.

Reproduction of Xia, Yu, Butrovich, Pavlo & Devadas,
"Litmus: Towards a Practical Database Management System with Verifiable
ACID Properties and Transaction Correctness" (SIGMOD 2022).

Quickstart (the session facade)::

    from repro import LitmusSession, YCSBWorkload
    from repro.crypto import RSAGroup

    group = RSAGroup.generate(bits=512, seed=b"demo")
    workload = YCSBWorkload(num_rows=1000)
    session = LitmusSession.create(
        initial=workload.initial_data(), group=group
    )
    ticket = session.submit("alice", INCREMENT, k=7)
    result = session.flush()          # typed BatchResult
    assert result.accepted and ticket.outputs is not None

The lower-level server/client pair (``LitmusServer.execute_batch`` /
``LitmusClient.verify_response``) stays available for protocol-level work,
and :mod:`repro.obs` carries tracing + metrics for the whole pipeline.

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
paper-versus-measured comparison of every table and figure.
"""

from .core import (
    BatchResult,
    ClientVerdict,
    DigestVector,
    HybridLitmus,
    InteractiveServerClient,
    LitmusClient,
    LitmusConfig,
    LitmusServer,
    LitmusSession,
    MerkleServerClient,
    ServerResponse,
    ShardMap,
    ShardedSession,
    SumInvariant,
    UserTicket,
    VerifiedSession,
)
from .crypto import AuthenticatedDictionary, MerkleTree, RSAGroup
from .db import Database, Transaction, TxnResult
from .sim import CostModel
from .sql import SqlCatalog, compile_procedure
from .vc import (
    CircuitCompiler,
    Groth16Simulator,
    Program,
    SpotCheckBackend,
)
from .verify import ElleChecker, history_from_execution
from .workloads import TPCCWorkload, YCSBWorkload, ZipfSampler

__version__ = "1.0.0"

__all__ = [
    "AuthenticatedDictionary",
    "CircuitCompiler",
    "ClientVerdict",
    "CostModel",
    "Database",
    "DigestVector",
    "ElleChecker",
    "Groth16Simulator",
    "HybridLitmus",
    "InteractiveServerClient",
    "LitmusClient",
    "LitmusConfig",
    "LitmusServer",
    "MerkleServerClient",
    "MerkleTree",
    "Program",
    "RSAGroup",
    "ServerResponse",
    "ShardMap",
    "ShardedSession",
    "SpotCheckBackend",
    "SqlCatalog",
    "compile_procedure",
    "SumInvariant",
    "TPCCWorkload",
    "Transaction",
    "VerifiedSession",
    "TxnResult",
    "YCSBWorkload",
    "ZipfSampler",
    "history_from_execution",
    "__version__",
]
