"""Wesolowski proofs of exponentiation (PoE).

The memory-integrity checker must validate equations of the form
``u^x = w (mod N)`` where ``x`` can be an enormous product of primes.  Raw
verification would cost ``O(|x|)`` group operations — far too many gates.
The paper (Section 6.1.1, citing Boneh–Bünz–Fisch) lets the server attach a
*proof of exponentiation*: the verifier's work collapses to two small
exponentiations, independent of ``|x|``.

Protocol (Fiat–Shamir, non-interactive):

1. prover and verifier derive a random 128-bit prime ``l`` from
   ``(u, w, x)``;
2. the prover sends ``Q = u^(x div l)``;
3. the verifier accepts iff ``Q^l * u^(x mod l) == w``.

Soundness rests on the adaptive root assumption in groups of unknown order.

Batched variant (:func:`prove_poe_batch` / :func:`verify_poe_batch`): ``k``
instances ``u_i^(x_i) = w_i`` are folded into a *single* Wesolowski check of
the random linear combination ``prod u_i^(c_i * x_i) == prod w_i^(c_i)``,
with 128-bit coefficients ``c_i`` and one shared challenge prime ``l``
derived from the full transcript.  The prover sends one group element
``Q = prod u_i^((c_i * x_i) div l)``; the verifier recomputes
``Q^l * prod u_i^((c_i * x_i) mod l)`` and ``prod w_i^(c_i)`` as two
multi-exponentiations over 128-bit exponents (shared squaring chain — see
:mod:`repro.crypto.multiexp`), instead of ``k`` challenge primes and ``2k``
independent exponentiations.  A cheater must break some individual equation,
and the random ``c_i`` make any non-trivial combination collapse to a
fresh adaptive-root instance (Boneh–Bünz–Fisch batching).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..serialization import encode
from .hashing import hash_bytes_to_int, sha256
from .multiexp import multiexp
from .primes import hash_to_prime
from .rsa_group import RSAGroup

__all__ = [
    "PoEProof",
    "PoEBatchProof",
    "prove_exponentiation",
    "verify_exponentiation",
    "prove_poe_batch",
    "verify_poe_batch",
]

_CHALLENGE_BITS = 128


def _canonical(group: RSAGroup, element: int) -> bool:
    """True iff *element* is a canonical representative in ``[1, N)``.

    Verifiers must reject anything else: accepting ``x >= N`` (silently
    reduced) or ``x <= 0`` lets a malicious prover ship the same group
    element under distinct encodings — or degenerate non-elements like 0 —
    past checks that compare encodings elsewhere.
    """
    return 0 < element < group.modulus


@dataclass(frozen=True)
class PoEProof:
    """The single group element ``Q`` sent by the prover."""

    quotient_power: int


def _challenge_prime(group: RSAGroup, base: int, result: int, exponent: int) -> int:
    transcript = sha256(encode((group.modulus, base, result, exponent)))
    return hash_to_prime(b"litmus-poe" + transcript, _CHALLENGE_BITS)


def prove_exponentiation(group: RSAGroup, base: int, exponent: int) -> tuple[int, PoEProof]:
    """Compute ``w = base^exponent`` and a PoE proof for it.

    This is server-side work: cost is linear in ``|exponent|``, as in the
    paper (the server "provides the result directly with a Proof-of-Exponent").
    """
    result = group.power(base, exponent)
    challenge = _challenge_prime(group, base, result, exponent)
    quotient = exponent // challenge
    return result, PoEProof(quotient_power=group.power(base, quotient))


def verify_exponentiation(
    group: RSAGroup, base: int, exponent: int, result: int, proof: PoEProof
) -> bool:
    """Verify ``base^exponent == result`` using constant group work.

    The verifier only computes ``exponent mod l`` (cheap on integers) and two
    small exponentiations — this is the constant-gate-count path the memory
    integrity checker relies on.

    All group elements must arrive in canonical form (``1 <= x < N``) and
    the exponent must be positive; malformed proofs are rejected outright
    rather than silently reduced into range.
    """
    if exponent < 1:
        return False
    if not (
        _canonical(group, base)
        and _canonical(group, result)
        and _canonical(group, proof.quotient_power)
    ):
        return False
    challenge = _challenge_prime(group, base, result, exponent)
    remainder = exponent % challenge
    lhs = group.mul(
        group.power(proof.quotient_power, challenge),
        group.power(base, remainder),
    )
    return lhs == result


# -- batched verification ------------------------------------------------------


@dataclass(frozen=True)
class PoEBatchProof:
    """One group element covering a whole batch of PoE instances."""

    quotient_power: int
    count: int


def _batch_transcript(
    group: RSAGroup, instances: Sequence[tuple[int, int, int]]
) -> bytes:
    return sha256(
        encode(
            (
                group.modulus,
                tuple((base, exponent, result) for base, exponent, result in instances),
            )
        )
    )


def _batch_coefficients(transcript: bytes, count: int) -> list[int]:
    """The 128-bit random-linear-combination coefficients ``c_i``.

    The top bit is pinned so every coefficient is non-zero (a zero
    coefficient would drop its instance from the combination entirely).
    """
    top = 1 << (_CHALLENGE_BITS - 1)
    return [
        hash_bytes_to_int(
            transcript + b"litmus-poe-coeff" + index.to_bytes(4, "big"),
            _CHALLENGE_BITS,
        )
        | top
        for index in range(count)
    ]


def _batch_challenge_prime(transcript: bytes) -> int:
    return hash_to_prime(b"litmus-poe-batch" + transcript, _CHALLENGE_BITS)


def prove_poe_batch(
    group: RSAGroup, instances: Sequence[tuple[int, int, int]]
) -> PoEBatchProof:
    """Aggregate PoE proof for ``(base, exponent, result)`` *instances*.

    Server-side cost is one full-length exponentiation per instance (same
    order as proving each individually), but the proof is a single group
    element and the verifier's work becomes two small multi-exponentiations
    regardless of batch size.
    """
    if not instances:
        raise ValueError("cannot prove an empty PoE batch")
    transcript = _batch_transcript(group, instances)
    coefficients = _batch_coefficients(transcript, len(instances))
    challenge = _batch_challenge_prime(transcript)
    quotient_power = 1
    for (base, exponent, _result), coefficient in zip(instances, coefficients):
        quotient = (coefficient * exponent) // challenge
        quotient_power = group.mul(quotient_power, group.power(base, quotient))
    if quotient_power == 0:  # pragma: no cover - requires a non-unit base
        raise ValueError("degenerate PoE batch (base not a unit)")
    return PoEBatchProof(quotient_power=quotient_power, count=len(instances))


def verify_poe_batch(
    group: RSAGroup,
    instances: Sequence[tuple[int, int, int]],
    proof: PoEBatchProof,
) -> bool:
    """Verify every ``base^exponent == result`` instance with one check.

    Accepts iff ``Q^l * prod u_i^((c_i x_i) mod l) == prod w_i^(c_i)``
    where ``l`` and the ``c_i`` are Fiat–Shamir challenges over the full
    batch transcript.  Both sides are 128-bit multi-exponentiations with a
    shared squaring chain, so verification cost grows only in the cheap
    table-multiply term as the batch widens.
    """
    if not instances:
        return False
    if proof.count != len(instances):
        return False
    if not _canonical(group, proof.quotient_power):
        return False
    for base, exponent, result in instances:
        if exponent < 1:
            return False
        if not (_canonical(group, base) and _canonical(group, result)):
            return False
    transcript = _batch_transcript(group, instances)
    coefficients = _batch_coefficients(transcript, len(instances))
    challenge = _batch_challenge_prime(transcript)
    lhs_pairs: list[tuple[int, int]] = [(proof.quotient_power, challenge)]
    rhs_pairs: list[tuple[int, int]] = []
    for (base, exponent, result), coefficient in zip(instances, coefficients):
        # (c * x) mod l via per-factor reduction — never materializes c*x.
        remainder = (coefficient % challenge) * (exponent % challenge) % challenge
        lhs_pairs.append((base, remainder))
        rhs_pairs.append((result, coefficient))
    lhs = multiexp(lhs_pairs, group.modulus)
    rhs = multiexp(rhs_pairs, group.modulus)
    return lhs == rhs
