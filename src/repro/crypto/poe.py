"""Wesolowski proofs of exponentiation (PoE).

The memory-integrity checker must validate equations of the form
``u^x = w (mod N)`` where ``x`` can be an enormous product of primes.  Raw
verification would cost ``O(|x|)`` group operations — far too many gates.
The paper (Section 6.1.1, citing Boneh–Bünz–Fisch) lets the server attach a
*proof of exponentiation*: the verifier's work collapses to two small
exponentiations, independent of ``|x|``.

Protocol (Fiat–Shamir, non-interactive):

1. prover and verifier derive a random 128-bit prime ``l`` from
   ``(u, w, x)``;
2. the prover sends ``Q = u^(x div l)``;
3. the verifier accepts iff ``Q^l * u^(x mod l) == w``.

Soundness rests on the adaptive root assumption in groups of unknown order.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..serialization import encode
from .hashing import sha256
from .primes import hash_to_prime
from .rsa_group import RSAGroup

__all__ = ["PoEProof", "prove_exponentiation", "verify_exponentiation"]

_CHALLENGE_BITS = 128


@dataclass(frozen=True)
class PoEProof:
    """The single group element ``Q`` sent by the prover."""

    quotient_power: int


def _challenge_prime(group: RSAGroup, base: int, result: int, exponent: int) -> int:
    transcript = sha256(encode((group.modulus, base, result, exponent)))
    return hash_to_prime(b"litmus-poe" + transcript, _CHALLENGE_BITS)


def prove_exponentiation(group: RSAGroup, base: int, exponent: int) -> tuple[int, PoEProof]:
    """Compute ``w = base^exponent`` and a PoE proof for it.

    This is server-side work: cost is linear in ``|exponent|``, as in the
    paper (the server "provides the result directly with a Proof-of-Exponent").
    """
    result = group.power(base, exponent)
    challenge = _challenge_prime(group, base, result, exponent)
    quotient = exponent // challenge
    return result, PoEProof(quotient_power=group.power(base, quotient))


def verify_exponentiation(
    group: RSAGroup, base: int, exponent: int, result: int, proof: PoEProof
) -> bool:
    """Verify ``base^exponent == result`` using constant group work.

    The verifier only computes ``exponent mod l`` (cheap on integers) and two
    small exponentiations — this is the constant-gate-count path the memory
    integrity checker relies on.
    """
    challenge = _challenge_prime(group, base, result, exponent)
    remainder = exponent % challenge
    lhs = group.mul(
        group.power(proof.quotient_power, challenge),
        group.power(base, remainder),
    )
    return lhs == result % group.modulus
