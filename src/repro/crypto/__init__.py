"""Cryptographic substrate for Litmus.

This package provides every primitive the paper's design relies on:

- deterministic hash-to-prime sampling with Pocklington primality
  certificates (:mod:`repro.crypto.primes`, :mod:`repro.crypto.pocklington`);
- the three-way *prime categorization* of Section 5.1
  (:mod:`repro.crypto.categorization`);
- RSA groups of unknown order with an optional trapdoor for honest parties
  (:mod:`repro.crypto.rsa_group`);
- Wesolowski proofs of exponentiation used to keep the in-circuit memory
  checker constant-size (:mod:`repro.crypto.poe`);
- a dynamic universal RSA accumulator (:mod:`repro.crypto.accumulator`);
- the weakly-binding authenticated dictionary of Section 5.3
  (:mod:`repro.crypto.authdict`);
- a Merkle-tree authenticated store used as the folklore baseline
  (:mod:`repro.crypto.merkle`);
- thread-safe hot-path memoization (prime sampling, Pocklington chains,
  pair representatives) and product-tree exponent helpers
  (:mod:`repro.crypto.cache`).
"""

from .accumulator import RSAAccumulator
from .authdict import AuthenticatedDictionary, LookupProof, NonMembershipProof
from .backend import (
    CryptoBackend,
    Gmpy2Backend,
    PurePythonBackend,
    available_backends,
    get_backend,
    set_backend,
    use_backend,
)
from .cache import (
    LRUCache,
    bump_prime_cache_epoch,
    clear_prime_caches,
    prime_cache_stats,
    prime_product,
    product_tree,
)
from .categorization import (
    CATEGORY_KEY,
    CATEGORY_RELATION,
    CATEGORY_VALUE,
    sample_category_prime,
    verify_category,
)
from .merkle import MerkleTree
from .multiexp import FixedBaseWindow, multiexp
from .multiset_hash import MultisetHash
from .poe import (
    PoEBatchProof,
    PoEProof,
    prove_exponentiation,
    prove_poe_batch,
    verify_exponentiation,
    verify_poe_batch,
)
from .pocklington import PocklingtonCertificate, build_certified_prime
from .rsa_group import RSAGroup, bezout

__all__ = [
    "AuthenticatedDictionary",
    "CATEGORY_KEY",
    "CATEGORY_RELATION",
    "CATEGORY_VALUE",
    "CryptoBackend",
    "FixedBaseWindow",
    "Gmpy2Backend",
    "LRUCache",
    "LookupProof",
    "MerkleTree",
    "MultisetHash",
    "NonMembershipProof",
    "PocklingtonCertificate",
    "PoEBatchProof",
    "PoEProof",
    "PurePythonBackend",
    "RSAAccumulator",
    "RSAGroup",
    "available_backends",
    "bezout",
    "build_certified_prime",
    "bump_prime_cache_epoch",
    "clear_prime_caches",
    "get_backend",
    "multiexp",
    "prime_cache_stats",
    "prime_product",
    "product_tree",
    "prove_exponentiation",
    "prove_poe_batch",
    "sample_category_prime",
    "set_backend",
    "use_backend",
    "verify_category",
    "verify_exponentiation",
    "verify_poe_batch",
]
