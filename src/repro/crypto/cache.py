"""Crypto hot-path caches (prover pipelining support, Section 7.2).

Every verification batch pays for the same expensive derivations over and
over: ``hash_to_prime`` for each (key, value) pair the batch touches,
Pocklington certificate chains for circuit-facing primes, and linear-time
products of many primes inside witness/verification exponents.  All of them
are *pure* functions of their inputs, so the server (and the honest replay
running inside every prover worker) can memoize them:

- :class:`LRUCache` — a small thread-safe LRU map with hit/miss statistics;
  the prover pool hits these caches from many threads at once, so every
  cache in this module takes a lock around its bookkeeping;
- :func:`cached_hash_to_prime` / :func:`cached_certified_prime` — memoized
  prime sampling and Pocklington chains, keyed by the deterministic seed
  plus a global *epoch* (bump the epoch to invalidate, e.g. when a test
  rebinds the security parameter);
- :func:`cached_pair_representative` / :func:`cached_key_prime` — the
  authenticated dictionary's ``H(k, v)`` products keyed by
  ``(key, value, epoch)``;
- :func:`product_tree` / :func:`prime_product` — balanced product trees for
  the multi-prime exponents of aggregated witnesses, turning the quadratic
  big-int cost of a left-to-right fold into the classic
  ``O(M(n) log n)`` product tree.

The caches never change *what* is computed — every entry is a deterministic
function of its key — so cached and uncached runs produce byte-identical
certificates, digests, and proofs.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Hashable, Iterable, Sequence

from ..obs.metrics import get_metrics
from ..serialization import encode
from .pocklington import PocklingtonCertificate, build_certified_prime
from .primes import hash_to_prime

__all__ = [
    "CacheStats",
    "LRUCache",
    "product_tree",
    "prime_product",
    "cached_hash_to_prime",
    "cached_certified_prime",
    "cached_pair_representative",
    "cached_key_prime",
    "generator_fixed_base",
    "prime_cache_epoch",
    "bump_prime_cache_epoch",
    "clear_prime_caches",
    "prime_cache_stats",
]


@dataclass
class CacheStats:
    """Hit/miss counters exposed to the benchmarks and tests."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict[str, int | float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }


class LRUCache:
    """A bounded, thread-safe least-recently-used map.

    ``functools.lru_cache`` is almost what we need, but it cannot be
    invalidated by key-space epoch, offers no eviction statistics, and hides
    its lock.  This explicit version is shared by every crypto hot path.
    """

    def __init__(self, maxsize: int = 4096, name: str = ""):
        if maxsize < 1:
            raise ValueError("cache size must be positive")
        self.maxsize = maxsize
        self.name = name
        self.stats = CacheStats()
        self._data: OrderedDict[Hashable, object] = OrderedDict()
        self._lock = threading.Lock()
        # Mirror the per-cache stats into the process-local metrics registry
        # (repro.obs) so exporters see cache behaviour without reaching into
        # this module.  Handles are bound once; they survive registry resets.
        metric = f"cache.{name or 'anonymous'}"
        registry = get_metrics()
        self._hits_counter = registry.counter(f"{metric}.hits")
        self._misses_counter = registry.counter(f"{metric}.misses")
        self._evictions_counter = registry.counter(f"{metric}.evictions")

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def get_or_compute(self, key: Hashable, compute: Callable[[], object]) -> object:
        """Return the cached value for *key*, computing (and storing) on miss.

        The computation runs outside the lock: concurrent misses on the same
        key may compute twice, but the functions cached here are pure, so
        both threads arrive at the same value and correctness is unaffected.
        """
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
                self.stats.hits += 1
                self._hits_counter.inc()
                return self._data[key]
            self.stats.misses += 1
        self._misses_counter.inc()
        value = compute()
        evicted = 0
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            while len(self._data) > self.maxsize:
                self._data.popitem(last=False)
                self.stats.evictions += 1
                evicted += 1
        if evicted:
            self._evictions_counter.inc(evicted)
        return value

    def clear(self) -> None:
        with self._lock:
            self._data.clear()


# -- product trees ------------------------------------------------------------


def product_tree(values: Sequence[int]) -> int:
    """Product of *values* via a balanced tree.

    Pairing similarly-sized factors keeps both operands of every big-int
    multiplication balanced, which is asymptotically (and practically, for
    the hundreds of 64-to-128-bit primes an aggregated witness multiplies)
    faster than folding a huge accumulator against one small prime at a
    time.
    """
    leaves = list(values)
    if not leaves:
        return 1
    while len(leaves) > 1:
        paired = [
            leaves[i] * leaves[i + 1] for i in range(0, len(leaves) - 1, 2)
        ]
        if len(leaves) % 2:
            paired.append(leaves[-1])
        leaves = paired
    return leaves[0]


def prime_product(primes: Iterable[int]) -> int:
    """The exponent product of an aggregated witness (product-tree backed)."""
    return product_tree(list(primes))


# -- epoch-keyed memoization of the prime samplers -----------------------------

_EPOCH = 0
_EPOCH_LOCK = threading.Lock()

_HASH_TO_PRIME_CACHE = LRUCache(maxsize=1 << 16, name="hash_to_prime")
_CERTIFIED_PRIME_CACHE = LRUCache(maxsize=1 << 12, name="pocklington")
_PAIR_CACHE = LRUCache(maxsize=1 << 16, name="pair_representative")
_KEY_PRIME_CACHE = LRUCache(maxsize=1 << 16, name="key_prime")

_ALL_CACHES = (
    _HASH_TO_PRIME_CACHE,
    _CERTIFIED_PRIME_CACHE,
    _PAIR_CACHE,
    _KEY_PRIME_CACHE,
)


def _current_epoch() -> int:
    """The cache-key epoch, read under the epoch lock.

    Every cache key must embed an epoch observed *under the lock*: an
    unlocked read racing :func:`bump_prime_cache_epoch` could tear between
    the bump and the insert, filing a fresh computation under a dead epoch
    (or a stale value under the new one).
    """
    with _EPOCH_LOCK:
        return _EPOCH


def prime_cache_epoch() -> int:
    return _current_epoch()


def bump_prime_cache_epoch() -> int:
    """Invalidate every memoized prime by moving to a fresh key epoch.

    All caches are also *cleared*: stale-epoch entries can never be hit
    again (their keys embed the dead epoch), so leaving them resident only
    lets garbage evict live entries under memory pressure.
    """
    global _EPOCH
    with _EPOCH_LOCK:
        _EPOCH += 1
        epoch = _EPOCH
    clear_prime_caches()
    return epoch


def clear_prime_caches() -> None:
    for cache in _ALL_CACHES:
        cache.clear()
    with _FIXED_BASE_LOCK:
        _FIXED_BASE_REGISTRY.clear()


def prime_cache_stats() -> dict[str, dict[str, int | float]]:
    return {cache.name: cache.stats.as_dict() for cache in _ALL_CACHES}


def cached_hash_to_prime(
    seed: bytes, bits: int, residue: int | None = None, modulus: int = 8
) -> int:
    """Memoized :func:`repro.crypto.primes.hash_to_prime`."""
    key = (_current_epoch(), seed, bits, residue, modulus)
    return _HASH_TO_PRIME_CACHE.get_or_compute(
        key, lambda: hash_to_prime(seed, bits, residue=residue, modulus=modulus)
    )


def cached_certified_prime(
    bits: int, seed: bytes, residue: int | None = None
) -> PocklingtonCertificate:
    """Memoized Pocklington chain for circuit-facing primes.

    Building a chain is several orders of magnitude more expensive than
    plain ``hash_to_prime`` (hundreds of Miller–Rabin rounds across the
    boosting steps), and the same (key, value) pair recurs in every batch
    that touches it — the single most profitable memo in the pipeline.
    """
    key = (_current_epoch(), bits, seed, residue)
    return _CERTIFIED_PRIME_CACHE.get_or_compute(
        key, lambda: build_certified_prime(bits, seed, residue=residue)
    )


def cached_pair_representative(
    key: object,
    value: object,
    bits: int,
    compute: Callable[[], int],
) -> int:
    """Memoized ``H(k, v)`` keyed by ``(key, value, epoch)``.

    The caller supplies *compute* (the uncached sampler) so this module does
    not need to import the authenticated-dictionary encoding — keeping the
    dependency arrow pointing from ``authdict`` down to ``cache``.
    """
    cache_key = (_current_epoch(), bits, encode(key), encode(value))
    return _PAIR_CACHE.get_or_compute(cache_key, compute)


def cached_key_prime(key: object, bits: int, compute: Callable[[], int]) -> int:
    """Memoized category-0 key prime keyed by ``(key, epoch)``."""
    cache_key = (_current_epoch(), bits, encode(key))
    return _KEY_PRIME_CACHE.get_or_compute(cache_key, compute)


# -- fixed-base window tables (one per RSA group generator) --------------------
#
# The generator's windowed-precomputation table (see
# :class:`repro.crypto.multiexp.FixedBaseWindow`) is pure state derived from
# (modulus, generator), shared by every group handle over the same modulus
# (trapdoor holders and public views alike).  It lives here so the epoch
# machinery can drop the tables together with every other derived artifact.

_FIXED_BASE_REGISTRY: OrderedDict[tuple[int, int], object] = OrderedDict()
_FIXED_BASE_LOCK = threading.Lock()
_FIXED_BASE_MAX_GROUPS = 16


def generator_fixed_base(
    modulus: int, generator: int, factory: Callable[[], object]
) -> object:
    """The cached fixed-base window for ``generator`` mod ``modulus``.

    *factory* builds the table on first use (the caller supplies it so this
    module does not import :mod:`repro.crypto.multiexp`).  At most
    ``_FIXED_BASE_MAX_GROUPS`` groups are retained (LRU); tables are cleared
    on epoch bumps alongside the prime caches.
    """
    key = (modulus, generator)
    with _FIXED_BASE_LOCK:
        window = _FIXED_BASE_REGISTRY.get(key)
        if window is not None:
            _FIXED_BASE_REGISTRY.move_to_end(key)
            return window
    window = factory()
    with _FIXED_BASE_LOCK:
        # Two threads may race the build; first insert wins so both use one
        # table (the loser's build is discarded, not wrong — pure function).
        existing = _FIXED_BASE_REGISTRY.get(key)
        if existing is not None:
            return existing
        _FIXED_BASE_REGISTRY[key] = window
        while len(_FIXED_BASE_REGISTRY) > _FIXED_BASE_MAX_GROUPS:
            _FIXED_BASE_REGISTRY.popitem(last=False)
        return window
