"""Pluggable bignum backends for the crypto hot path.

Every expensive integer operation in the substrate — modular
exponentiation in :class:`repro.crypto.rsa_group.RSAGroup`, the modular
multiplications of the multi-exponentiation kernels, the Miller–Rabin
rounds and gcd prefilters of :mod:`repro.crypto.primes` — dispatches
through one process-wide :class:`CryptoBackend`.  Two implementations
exist:

- :class:`PurePythonBackend` — CPython's built-in big integers.  Always
  available; the reference implementation.
- :class:`Gmpy2Backend` — the optional `gmpy2`_ bindings to GMP, which
  accelerate 2048-bit exponentiation by roughly an order of magnitude.
  Only constructed when ``gmpy2`` imports; otherwise selection falls
  back to pure python.

Backends implement the *same algorithms over the same operand streams* —
they differ only in who multiplies the big integers — so primes, digests,
certificates, and proofs are byte-identical across backends (pinned by
the backend-equivalence property suite).

Selection, in priority order:

1. an explicit :func:`set_backend` / :func:`use_backend` call (tests,
   embedding applications);
2. the ``REPRO_CRYPTO_BACKEND`` environment variable (``auto``,
   ``python``, or ``gmpy2``), read once on first use;
3. the default ``auto``: gmpy2 when importable, pure python otherwise.

.. _gmpy2: https://gmpy2.readthedocs.io/
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from typing import Iterator

from ..errors import CryptoError

__all__ = [
    "CryptoBackend",
    "PurePythonBackend",
    "Gmpy2Backend",
    "available_backends",
    "get_backend",
    "set_backend",
    "use_backend",
    "BACKEND_ENV_VAR",
]

BACKEND_ENV_VAR = "REPRO_CRYPTO_BACKEND"


class CryptoBackend:
    """The integer kernel interface the crypto layer dispatches through.

    All methods take and return built-in ``int`` — backends that compute
    in a foreign representation (``gmpy2.mpz``) convert at the boundary,
    so every caller sees identical Python objects regardless of backend.
    """

    name: str = "abstract"

    def powmod(self, base: int, exponent: int, modulus: int) -> int:
        """``base ** exponent % modulus`` (exponent >= 0)."""
        raise NotImplementedError

    def mulmod(self, a: int, b: int, modulus: int) -> int:
        """``a * b % modulus``."""
        raise NotImplementedError

    def invert(self, a: int, modulus: int) -> int:
        """The modular inverse of *a*; raises :class:`CryptoError` if none."""
        raise NotImplementedError

    def gcd(self, a: int, b: int) -> int:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<crypto backend {self.name!r}>"


class PurePythonBackend(CryptoBackend):
    """CPython big integers — the always-available reference kernel."""

    name = "python"

    def powmod(self, base: int, exponent: int, modulus: int) -> int:
        return pow(base, exponent, modulus)

    def mulmod(self, a: int, b: int, modulus: int) -> int:
        return a * b % modulus

    def invert(self, a: int, modulus: int) -> int:
        try:
            return pow(a, -1, modulus)
        except ValueError as exc:
            raise CryptoError(f"{a} is not invertible mod {modulus}") from exc

    def gcd(self, a: int, b: int) -> int:
        import math

        return math.gcd(a, b)


class Gmpy2Backend(CryptoBackend):
    """GMP-backed kernel via ``gmpy2``; construction fails if absent."""

    name = "gmpy2"

    def __init__(self):
        import gmpy2  # raises ImportError when the extra is not installed

        self._gmpy2 = gmpy2
        self._mpz = gmpy2.mpz

    def powmod(self, base: int, exponent: int, modulus: int) -> int:
        return int(self._gmpy2.powmod(self._mpz(base), self._mpz(exponent), self._mpz(modulus)))

    def mulmod(self, a: int, b: int, modulus: int) -> int:
        return int(self._mpz(a) * self._mpz(b) % self._mpz(modulus))

    def invert(self, a: int, modulus: int) -> int:
        try:
            return int(self._gmpy2.invert(self._mpz(a), self._mpz(modulus)))
        except ZeroDivisionError as exc:
            raise CryptoError(f"{a} is not invertible mod {modulus}") from exc

    def gcd(self, a: int, b: int) -> int:
        return int(self._gmpy2.gcd(self._mpz(a), self._mpz(b)))


def _gmpy2_importable() -> bool:
    try:
        import gmpy2  # noqa: F401
    except ImportError:
        return False
    return True


def available_backends() -> dict[str, bool]:
    """Which backend names :func:`set_backend` would accept right now."""
    return {"python": True, "gmpy2": _gmpy2_importable()}


_LOCK = threading.Lock()
_ACTIVE: CryptoBackend | None = None


def _resolve(name: str) -> CryptoBackend:
    if name == "python":
        return PurePythonBackend()
    if name == "gmpy2":
        try:
            return Gmpy2Backend()
        except ImportError as exc:
            raise CryptoError(
                "crypto backend 'gmpy2' requested but gmpy2 is not installed "
                "(pip install 'repro[native]')"
            ) from exc
    if name == "auto":
        return Gmpy2Backend() if _gmpy2_importable() else PurePythonBackend()
    raise CryptoError(
        f"unknown crypto backend {name!r} (choose 'auto', 'python', or 'gmpy2')"
    )


def get_backend() -> CryptoBackend:
    """The process-wide active backend, resolving the environment on first use."""
    global _ACTIVE
    backend = _ACTIVE
    if backend is not None:
        return backend
    with _LOCK:
        if _ACTIVE is None:
            _ACTIVE = _resolve(os.environ.get(BACKEND_ENV_VAR, "auto").strip().lower())
        return _ACTIVE


def set_backend(backend: str | CryptoBackend | None) -> CryptoBackend | None:
    """Install *backend* (a name or an instance); returns the previous one.

    ``None`` resets to unresolved, so the next :func:`get_backend` re-reads
    the environment — the hook test fixtures use to restore isolation.
    Switching backends invalidates nothing: all backends compute identical
    values, so caches and precomputed tables stay valid.
    """
    global _ACTIVE
    with _LOCK:
        previous = _ACTIVE
        if backend is None:
            _ACTIVE = None
        elif isinstance(backend, CryptoBackend):
            _ACTIVE = backend
        else:
            _ACTIVE = _resolve(str(backend).strip().lower())
        return previous


@contextmanager
def use_backend(backend: str | CryptoBackend) -> Iterator[CryptoBackend]:
    """Temporarily switch the active backend (tests, micro-benchmarks)."""
    previous = set_backend(backend)
    try:
        yield get_backend()
    finally:
        set_backend(previous)
