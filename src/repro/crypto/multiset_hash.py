"""Incremental multiset hashes (Clarke et al., cited as paper ref [20]).

An order-independent, incrementally updatable hash of a multiset: the
classic tool for memory-integrity checking that predates accumulator-based
designs.  We provide the additive construction (MSet-Add-Hash over a large
prime field): each element hashes to a field element and the digest is
their sum, so insertion and deletion are O(1).

Included for two reasons: the paper positions its AD scheme against exactly
this line of work (a multiset hash supports no *lookup proofs* at all — the
verifier must track the whole multiset itself), and the comparison makes a
good unit-level ablation of why Litmus needs the accumulator.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from ..serialization import encode

__all__ = ["MultisetHash"]

# A 256-bit prime (2^256 - 189) — addition hides nothing, but collisions
# require finding additive relations over random field elements.
_FIELD = 2**256 - 189


def _element_hash(value: object) -> int:
    return int.from_bytes(
        hashlib.sha256(b"litmus-mset" + encode(value)).digest(), "big"
    ) % _FIELD


@dataclass(frozen=True)
class MultisetHash:
    """An immutable multiset digest; operations return new digests."""

    value: int = 0

    @classmethod
    def of(cls, elements) -> "MultisetHash":
        digest = cls()
        for element in elements:
            digest = digest.add(element)
        return digest

    def add(self, element: object) -> "MultisetHash":
        return MultisetHash((self.value + _element_hash(element)) % _FIELD)

    def remove(self, element: object) -> "MultisetHash":
        return MultisetHash((self.value - _element_hash(element)) % _FIELD)

    def union(self, other: "MultisetHash") -> "MultisetHash":
        return MultisetHash((self.value + other.value) % _FIELD)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, MultisetHash) and self.value == other.value

    def __hash__(self) -> int:
        return hash(self.value)
