"""Primality testing and deterministic hash-to-prime sampling.

Three layers of assurance are provided:

1. :func:`is_prime_trial` — *provable* primality by trial division, suitable
   for the small base primes that anchor a Pocklington certificate chain;
2. :func:`is_probable_prime` — deterministic Miller–Rabin: the fixed base set
   is provably correct for all n < 3.3 * 10^24 and overwhelmingly reliable
   beyond (error < 2^-128 with the extended base schedule);
3. Pocklington certificates (see :mod:`repro.crypto.pocklington`) — fully
   verifiable primality proofs, as required by the paper for primes supplied
   to the circuit as auxiliary inputs.
"""

from __future__ import annotations

import math

from ..errors import PrimalityError
from .backend import get_backend
from .hashing import expand_stream

__all__ = [
    "SMALL_PRIMES",
    "is_prime_trial",
    "miller_rabin_round",
    "is_probable_prime",
    "next_probable_prime",
    "hash_to_prime",
]


def _sieve(limit: int) -> list[int]:
    """Primes below *limit* via the sieve of Eratosthenes."""
    flags = bytearray([1]) * limit
    flags[0:2] = b"\x00\x00"
    for candidate in range(2, int(limit**0.5) + 1):
        if flags[candidate]:
            flags[candidate * candidate :: candidate] = bytearray(
                len(flags[candidate * candidate :: candidate])
            )
    return [index for index, flag in enumerate(flags) if flag]


SMALL_PRIMES: list[int] = _sieve(10_000)

# Bases making Miller-Rabin deterministic for n < 3,317,044,064,679,887,385,961,981
# (Sorenson & Webster 2015).
_DETERMINISTIC_BASES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41)
# Extra fixed bases used above that bound; 40 rounds gives error < 4^-40.
_EXTRA_BASES = tuple(SMALL_PRIMES[13:53])
_DETERMINISTIC_BOUND = 3_317_044_064_679_887_385_961_981

# Product of the trial-division prefilter primes: one gcd against this
# rejects ~88% of odd candidates in a single big-int operation, instead of
# 64 separate modular reductions per hash-to-prime attempt.
_PREFILTER_PRIMES = SMALL_PRIMES[:64]
_PREFILTER_PRODUCT = 1
for _p in _PREFILTER_PRIMES:
    _PREFILTER_PRODUCT *= _p
_PREFILTER_BOUND = _PREFILTER_PRIMES[-1]
_PREFILTER_SET = frozenset(_PREFILTER_PRIMES)
del _p

# Wheel-sieve extension of the prefilter: the remaining sieve primes, in
# ascending chunks whose products are matched against the candidate by gcd.
# Ordering matters — small factors are far more likely, so the first chunk
# rejects most composites and the later (larger) products are rarely touched.
# Only sound for candidates above every wheel prime: a smaller candidate
# could *be* one of the chunk primes and would divide the product.
_WHEEL_CHUNKS = tuple(
    math.prod(SMALL_PRIMES[start:stop])
    for start, stop in ((64, 256), (256, len(SMALL_PRIMES)))
)
_WHEEL_BOUND = SMALL_PRIMES[-1]


def is_prime_trial(n: int) -> bool:
    """Provable primality by trial division (only sensible for n < ~10^12)."""
    if n < 2:
        return False
    divisor = 2
    while divisor * divisor <= n:
        if n % divisor == 0:
            return False
        divisor += 1 if divisor == 2 else 2
    return True


def miller_rabin_round(n: int, base: int) -> bool:
    """One Miller-Rabin round: returns False iff *base* witnesses n composite."""
    if n % base == 0:
        return n == base
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    backend = get_backend()
    x = backend.powmod(base, d, n)
    if x in (1, n - 1):
        return True
    for _ in range(r - 1):
        x = backend.mulmod(x, x, n)
        if x == n - 1:
            return True
    return False


def is_probable_prime(n: int) -> bool:
    """Deterministic Miller-Rabin (provably correct below ~3.3 * 10^24)."""
    if n < 2:
        return False
    if n <= _PREFILTER_BOUND:
        # The prefilter primes are exactly the primes up to the bound.
        return n in _PREFILTER_SET
    gcd = get_backend().gcd
    if gcd(n, _PREFILTER_PRODUCT) != 1:
        return False
    if n > _WHEEL_BOUND:
        # Wheel fast path: one gcd per chunk rejects any candidate sharing a
        # factor below 10^4 before the (much costlier) Miller–Rabin rounds.
        # A hit is always a true composite — n exceeds every wheel prime, so
        # a non-trivial gcd exhibits a proper factor — hence outputs are
        # bit-identical with and without the wheel.
        for chunk in _WHEEL_CHUNKS:
            if gcd(n, chunk) != 1:
                return False
    return _miller_rabin_all(n)


def _miller_rabin_all(n: int) -> bool:
    bases = _DETERMINISTIC_BASES
    if n >= _DETERMINISTIC_BOUND:
        bases = _DETERMINISTIC_BASES + _EXTRA_BASES
    return all(miller_rabin_round(n, base) for base in bases)


def next_probable_prime(n: int) -> int:
    """Smallest probable prime strictly greater than *n*."""
    candidate = n + 1
    if candidate <= 2:
        return 2
    if candidate % 2 == 0:
        candidate += 1
    while not is_probable_prime(candidate):
        candidate += 2
    return candidate


def hash_to_prime(
    seed: bytes,
    bits: int,
    residue: int | None = None,
    modulus: int = 8,
    max_attempts: int = 100_000,
) -> int:
    """Deterministically map *seed* to a *bits*-bit probable prime.

    If *residue* is given, the output additionally satisfies
    ``prime % modulus == residue`` — this implements the ``Sample`` algorithm
    of the categorization scheme (Section 5.1): candidates are drawn from a
    deterministic stream and the first prime in the right residue class wins.
    """
    if residue is not None and residue % 2 == 0:
        raise PrimalityError("prime residue class must be odd")
    for attempt in range(max_attempts):
        block = b""
        needed = (bits + 7) // 8 + 8
        index = 0
        while len(block) < needed:
            block += expand_stream(seed + attempt.to_bytes(4, "big"), index)
            index += 1
        candidate = int.from_bytes(block, "big")
        candidate &= (1 << bits) - 1
        candidate |= 1 << (bits - 1)  # exact bit length
        candidate |= 1  # odd
        if residue is not None:
            candidate += (residue - candidate) % modulus
            if candidate.bit_length() != bits:
                continue
        if is_probable_prime(candidate):
            return candidate
    raise PrimalityError(f"no prime found for seed after {max_attempts} attempts")
