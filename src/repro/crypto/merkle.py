"""Merkle tree authenticated storage — the folklore baseline of Section 8.

A fixed-capacity binary SHA-256 Merkle tree.  Every lookup or update ships an
``O(log n)`` authentication path, and the client holds only the root.  The
evaluation uses this as the ``Merkle-Tree`` baseline: correct, simple, and —
as the paper observes — slow, because every access costs a full path of
hashes on both sides and proofs cannot be aggregated.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import CryptoError
from ..serialization import encode
from .hashing import sha256

__all__ = ["MerkleTree", "MerklePath"]

_EMPTY_LEAF = sha256(b"litmus-merkle-empty")
_SENTINEL_EMPTY = object()


@dataclass(frozen=True)
class MerklePath:
    """Authentication path: sibling hashes bottom-up plus the leaf index."""

    index: int
    siblings: tuple[bytes, ...]

    @property
    def hash_count(self) -> int:
        """Number of hash evaluations a verifier performs (cost accounting)."""
        return len(self.siblings) + 1


def _leaf_hash(value: object) -> bytes:
    return sha256(b"litmus-merkle-leaf" + encode(value))


def _node_hash(left: bytes, right: bytes) -> bytes:
    return sha256(b"litmus-merkle-node" + left + right)


class MerkleTree:
    """A dense Merkle tree over ``capacity`` slots (rounded up to a power of 2)."""

    def __init__(self, capacity: int, fill: object = _SENTINEL_EMPTY):
        """*fill* pre-populates every leaf with a default value (e.g. the
        agreed initial 0 of the database), so lookups of untouched slots
        still verify; without it, untouched leaves hold a distinguished
        empty marker that no value hashes to."""
        if capacity < 1:
            raise CryptoError("capacity must be positive")
        size = 1
        while size < capacity:
            size *= 2
        self.capacity = size
        self.depth = size.bit_length() - 1
        self._fill = fill
        base = _EMPTY_LEAF if fill is _SENTINEL_EMPTY else _leaf_hash(fill)
        # nodes[0] is the root level; nodes[depth] are the leaves.
        self._levels: list[list[bytes]] = []
        level = [base] * size
        self._levels.append(level)
        while len(level) > 1:
            level = [
                _node_hash(level[i], level[i + 1]) for i in range(0, len(level), 2)
            ]
            self._levels.append(level)
        self._levels.reverse()
        self._values: dict[int, object] = {}

    # -- state ---------------------------------------------------------------

    @property
    def root(self) -> bytes:
        return self._levels[0][0]

    def get(self, index: int, default: object = None) -> object:
        if index in self._values:
            return self._values[index]
        if self._fill is not _SENTINEL_EMPTY:
            return self._fill
        return default

    # -- operations -------------------------------------------------------------

    def update(self, index: int, value: object) -> bytes:
        """Set leaf *index* to *value*; returns the new root.

        Recomputes exactly one path of hashes (``depth`` node hashes).
        """
        self._check_index(index)
        self._values[index] = value
        node = _leaf_hash(value)
        self._levels[self.depth][index] = node
        position = index
        for level in range(self.depth, 0, -1):
            position //= 2
            left = self._levels[level][2 * position]
            right = self._levels[level][2 * position + 1]
            self._levels[level - 1][position] = _node_hash(left, right)
        return self.root

    def prove(self, index: int) -> MerklePath:
        """Authentication path for leaf *index*."""
        self._check_index(index)
        siblings = []
        position = index
        for level in range(self.depth, 0, -1):
            siblings.append(self._levels[level][position ^ 1])
            position //= 2
        return MerklePath(index=index, siblings=tuple(siblings))

    @staticmethod
    def verify(root: bytes, path: MerklePath, value: object) -> bool:
        """Check that *value* sits at ``path.index`` under *root*."""
        node = _leaf_hash(value)
        position = path.index
        for sibling in path.siblings:
            if position % 2 == 0:
                node = _node_hash(node, sibling)
            else:
                node = _node_hash(sibling, node)
            position //= 2
        return node == root

    @staticmethod
    def root_after_update(path: MerklePath, new_value: object) -> bytes:
        """Client-side roll-forward: the root once the leaf becomes *new_value*."""
        node = _leaf_hash(new_value)
        position = path.index
        for sibling in path.siblings:
            if position % 2 == 0:
                node = _node_hash(node, sibling)
            else:
                node = _node_hash(sibling, node)
            position //= 2
        return node

    def _check_index(self, index: int) -> None:
        if not 0 <= index < self.capacity:
            raise CryptoError(f"leaf index {index} out of range [0, {self.capacity})")
