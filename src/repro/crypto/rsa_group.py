"""RSA groups of unknown order.

The authenticated dictionary lives in an RSA group ``Z_N^*`` whose order is
unknown to the (untrusted) server — that is what makes the Strong RSA
assumption bite.  In this reproduction we generate the modulus ourselves, so
the *trapdoor* (the group order) exists in-process; it is kept on a private
attribute and is only ever used by explicitly "honest" code paths (test
fixtures, client-side recomputation) via :meth:`RSAGroup.trapdoor_power`.
Untrusted-path code uses :meth:`RSAGroup.power`, which performs the full
exponentiation.

The module also provides :func:`bezout` (extended Euclid), used by the key
non-existence proofs of Section 5.3.
"""

from __future__ import annotations

from functools import lru_cache

from ..errors import CryptoError
from .backend import get_backend
from .cache import generator_fixed_base
from .hashing import expand_stream, hash_bytes_to_int
from .multiexp import FixedBaseWindow
from .primes import is_probable_prime

__all__ = ["RSAGroup", "bezout", "default_group"]

# Below this exponent size the plain backend powmod wins: the fixed-base
# bucket evaluation only amortizes once the exponent is long enough that
# skipping the squaring chain pays for the bucket bookkeeping.
_FIXED_BASE_MIN_BITS = 192


def bezout(x: int, y: int) -> tuple[int, int, int]:
    """Extended Euclid: returns ``(a, b, g)`` with ``a*x + b*y == g == gcd(x, y)``."""
    old_r, r = x, y
    old_a, a = 1, 0
    old_b, b = 0, 1
    while r:
        q = old_r // r
        old_r, r = r, old_r - q * r
        old_a, a = a, old_a - q * a
        old_b, b = b, old_b - q * b
    return old_a, old_b, old_r


def _derive_prime(seed: bytes, bits: int, tag: bytes) -> int:
    """Deterministically derive a *bits*-bit prime ~ 3 (mod 4) from *seed*."""
    attempt = 0
    while True:
        block = b""
        index = 0
        needed = (bits + 7) // 8 + 8
        while len(block) < needed:
            block += expand_stream(seed + tag + attempt.to_bytes(4, "big"), index)
            index += 1
        candidate = int.from_bytes(block, "big")
        candidate &= (1 << bits) - 1
        candidate |= (1 << (bits - 1)) | 3  # exact length, = 3 (mod 4)
        if is_probable_prime(candidate):
            return candidate
        attempt += 1


class RSAGroup:
    """An RSA group with generator, plus an optional honest-party trapdoor."""

    def __init__(self, modulus: int, generator: int, _factors: tuple[int, int] | None = None):
        if modulus < 15 or modulus % 2 == 0:
            raise CryptoError("invalid RSA modulus")
        if not 1 < generator < modulus:
            raise CryptoError("generator out of range")
        self.modulus = modulus
        self.generator = generator
        self._factors = _factors

    @classmethod
    def generate(cls, bits: int = 2048, seed: bytes = b"litmus-default") -> "RSAGroup":
        """Deterministically generate a *bits*-bit RSA group from *seed*.

        The generator is a quadratic residue derived from the seed (squaring
        avoids the order-2 subgroup).
        """
        half = bits // 2
        p = _derive_prime(seed, half, b"p")
        q = _derive_prime(seed, half, b"q")
        if p == q:  # astronomically unlikely, but cheap to guard
            q = _derive_prime(seed, half, b"q2")
        n = p * q
        g = hash_bytes_to_int(seed + b"generator", bits - 2) % n
        g = g * g % n
        if g in (0, 1):
            raise CryptoError("degenerate generator")
        return cls(modulus=n, generator=g, _factors=(p, q))

    # -- untrusted-path operations ------------------------------------------

    def power(self, base: int, exponent: int) -> int:
        """``base^exponent mod N`` without using the trapdoor.

        Negative exponents are supported via modular inversion (the bases we
        use are units with overwhelming probability).  Exponentiations of the
        group generator route through a cached fixed-base window table (see
        :mod:`repro.crypto.multiexp`) once the exponent is large enough for
        the table to pay off; the result is bit-for-bit identical.
        """
        backend = get_backend()
        if exponent < 0:
            return backend.powmod(
                backend.invert(base, self.modulus), -exponent, self.modulus
            )
        if (
            base == self.generator
            and exponent.bit_length() >= _FIXED_BASE_MIN_BITS
        ):
            return self._generator_window().power(exponent)
        return backend.powmod(base, exponent, self.modulus)

    def _generator_window(self) -> FixedBaseWindow:
        """The epoch-aware shared precomputation table for the generator."""
        window = generator_fixed_base(
            self.modulus,
            self.generator,
            lambda: FixedBaseWindow(self.generator, self.modulus),
        )
        assert isinstance(window, FixedBaseWindow)
        return window

    def mul(self, a: int, b: int) -> int:
        return get_backend().mulmod(a, b, self.modulus)

    def inv(self, a: int) -> int:
        return get_backend().invert(a, self.modulus)

    # -- honest-party trapdoor ------------------------------------------------

    @property
    def has_trapdoor(self) -> bool:
        return self._factors is not None

    def _order_hint(self) -> int:
        if self._factors is None:
            raise CryptoError("this group handle carries no trapdoor")
        p, q = self._factors
        return (p - 1) * (q - 1)

    def trapdoor_power(self, base: int, exponent: int) -> int:
        """Fast exponentiation reducing the exponent modulo the group order.

        Only honest parties (who generated the modulus) may call this; the
        result is identical to :meth:`power` for bases coprime to N.
        """
        phi = self._order_hint()
        return get_backend().powmod(base, exponent % phi, self.modulus)

    def public_view(self) -> "RSAGroup":
        """A handle without the trapdoor — what the untrusted server holds."""
        return RSAGroup(self.modulus, self.generator, _factors=None)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RSAGroup(bits={self.modulus.bit_length()}, trapdoor={self.has_trapdoor})"


@lru_cache(maxsize=8)
def default_group(bits: int = 512, seed: bytes = b"litmus-test-group") -> RSAGroup:
    """A process-wide cached group, sized for tests (generation is slow)."""
    return RSAGroup.generate(bits=bits, seed=seed)
