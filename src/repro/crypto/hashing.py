"""Collision-resistant hashing helpers.

All hashing in the library goes through SHA-256 over the canonical encoding
from :mod:`repro.serialization`.  Two utilities matter most:

- :func:`hash_to_int` — map arbitrary data to an integer of a requested bit
  length (used as the starting point of hash-to-prime sampling);
- :func:`hash_pair` — the collision-resistant ``h(k, v)`` from Section 5.3
  that ties a key and a value together inside the authenticated dictionary.
"""

from __future__ import annotations

import hashlib

from ..serialization import encode

__all__ = [
    "sha256",
    "hash_to_int",
    "hash_bytes_to_int",
    "hash_pair",
    "expand_stream",
]


def sha256(data: bytes) -> bytes:
    """SHA-256 of *data*."""
    return hashlib.sha256(data).digest()


def hash_bytes_to_int(data: bytes, bits: int) -> int:
    """Map *data* to an integer with exactly *bits* bits (top bit forced).

    The output is derived from a counter-mode expansion of SHA-256, so bit
    lengths beyond 256 are supported.  The top bit is set to guarantee the
    exact bit length; the result is always odd-ranged in [2^(bits-1), 2^bits).
    """
    if bits < 2:
        raise ValueError("bit length must be at least 2")
    out = b""
    counter = 0
    while len(out) * 8 < bits:
        out += hashlib.sha256(counter.to_bytes(8, "big") + data).digest()
        counter += 1
    value = int.from_bytes(out, "big") >> (len(out) * 8 - bits)
    return value | (1 << (bits - 1))


def hash_to_int(value: object, bits: int, domain: bytes = b"") -> int:
    """Hash an arbitrary (canonically encodable) value to a *bits*-bit int."""
    return hash_bytes_to_int(domain + encode(value), bits)


def hash_pair(key: object, value: object) -> int:
    """The collision-resistant ``h(k, v)`` of Section 5.3 (a 256-bit int)."""
    return int.from_bytes(sha256(b"litmus-h(k,v)" + encode((key, value))), "big")


def expand_stream(seed: bytes, index: int) -> bytes:
    """Deterministic pseudo-random 32-byte block *index* of a seed stream.

    Used wherever the paper requires a deterministic choice "depending on the
    nonce" (e.g. Pocklington certificate search, prime candidate streams).
    """
    return hashlib.sha256(seed + index.to_bytes(8, "big")).digest()
