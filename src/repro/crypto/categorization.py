"""Prime categorization (paper Section 5.1).

The authenticated dictionary accumulates three kinds of information at once:
keys, values, and key-value relationships.  To keep them from colliding, the
primes encoding them are drawn from three *disjoint* categories defined by
residues modulo 8:

- category 0 (**keys**):       p = +-1 (mod 8)
- category 1 (**values**):     p = 3 (mod 8)
- category 2 (**relations**):  p = 5 (mod 8)

Every odd prime > 2 falls into exactly one category, each category contains
infinitely many primes (Dirichlet), and membership is checkable with a single
modular reduction — the paper's trick of exposing the residue on dedicated
circuit wires.

``Sample`` is deterministic in the nonce, and optionally returns a
Pocklington certificate chain so an untrusting circuit can check primality.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import CategoryError
from ..serialization import encode
from .cache import cached_certified_prime, cached_hash_to_prime
from .pocklington import PocklingtonCertificate
from .primes import is_probable_prime

__all__ = [
    "CATEGORY_KEY",
    "CATEGORY_VALUE",
    "CATEGORY_RELATION",
    "CATEGORY_RESIDUES",
    "CertifiedPrime",
    "sample_category_prime",
    "sample_certified_category_prime",
    "verify_category",
    "category_of",
]

CATEGORY_KEY = 0
CATEGORY_VALUE = 1
CATEGORY_RELATION = 2

# Residues modulo 8 for each category; the sampler always targets the first.
CATEGORY_RESIDUES: dict[int, tuple[int, ...]] = {
    CATEGORY_KEY: (7, 1),
    CATEGORY_VALUE: (3,),
    CATEGORY_RELATION: (5,),
}


@dataclass(frozen=True)
class CertifiedPrime:
    """A category prime together with its Pocklington certificate."""

    prime: int
    certificate: PocklingtonCertificate

    def verify(self, category: int) -> bool:
        return self.certificate.verify() and verify_category(self.prime, category)


def _seed(bits: int, category: int, nonce: object) -> bytes:
    return (
        b"litmus-category"
        + bits.to_bytes(4, "big")
        + category.to_bytes(1, "big")
        + encode(nonce)
    )


def _sample_cached(bits: int, category: int, nonce_bytes: bytes) -> int:
    # Memoized in the shared crypto hot-path cache (epoch-invalidatable,
    # shared by every prover worker thread).
    residue = CATEGORY_RESIDUES[category][0]
    return cached_hash_to_prime(nonce_bytes, bits, residue=residue, modulus=8)


def sample_category_prime(bits: int, category: int, nonce: object) -> int:
    """``Sample(lambda, i, nonce)``: a deterministic *bits*-bit category prime."""
    if category not in CATEGORY_RESIDUES:
        raise CategoryError(f"unknown prime category {category}")
    return _sample_cached(bits, category, _seed(bits, category, nonce))


def _sample_certified_cached(bits: int, category: int, nonce_bytes: bytes) -> CertifiedPrime:
    residue = CATEGORY_RESIDUES[category][0]
    certificate = cached_certified_prime(bits, nonce_bytes, residue=residue)
    return CertifiedPrime(prime=certificate.prime, certificate=certificate)


def sample_certified_category_prime(bits: int, category: int, nonce: object) -> CertifiedPrime:
    """Like :func:`sample_category_prime` but carrying a primality certificate.

    This is what the server hands the circuit as an auxiliary input; the
    circuit re-verifies the certificate (Pocklington) and the residue class.
    """
    if category not in CATEGORY_RESIDUES:
        raise CategoryError(f"unknown prime category {category}")
    return _sample_certified_cached(bits, category, _seed(bits, category, nonce))


def verify_category(p: int, category: int) -> bool:
    """``Verify(p, i)``: is *p* a prime of category *category*?

    Matches Definition 3/4: sound (never accepts a non-member) and correct
    (always accepts sampler outputs).
    """
    if category not in CATEGORY_RESIDUES:
        raise CategoryError(f"unknown prime category {category}")
    if p % 8 not in CATEGORY_RESIDUES[category]:
        return False
    return is_probable_prime(p)


def category_of(p: int) -> int | None:
    """Return the category containing prime *p*, or None for 2 / non-primes."""
    if not is_probable_prime(p) or p == 2:
        return None
    residue = p % 8
    for category, residues in CATEGORY_RESIDUES.items():
        if residue in residues:
            return category
    return None
