"""Multi-exponentiation kernels for batch verification and fixed bases.

Two classic algorithms, both dispatching their modular multiplications
through the active :mod:`repro.crypto.backend`:

- :func:`multiexp` — simultaneous multi-exponentiation (Straus's
  interleaved windowed method): ``prod base_i ^ exp_i mod N`` with the
  squaring chain *shared* across every base.  For the batched-PoE check
  (k bases, 128-bit exponents) this replaces ``k`` independent
  exponentiations (``~128·k`` squarings) with 128 shared squarings plus
  one table multiply per non-zero window.
- :class:`FixedBaseWindow` — fixed-base windowed precomputation
  (Brickell et al. / Pippenger bucket evaluation).  The RSA group
  generator is raised to *enormous* exponents (the accumulator product
  over the whole dictionary) on every lookup-witness mint; caching
  ``g^(2^(w·i))`` once per group turns each such exponentiation from
  ``|e|`` squarings + ``|e|/5`` multiplies into ``~|e|/w`` multiplies
  with **no** squarings at all.

Both kernels are exact — they compute the same integer ``pow`` would —
so digests and certificates are unchanged no matter which path runs.
"""

from __future__ import annotations

import threading
from typing import Sequence

from .backend import get_backend

__all__ = ["multiexp", "FixedBaseWindow"]

_WINDOW_BITS = 4
_WINDOW_MASK = (1 << _WINDOW_BITS) - 1

# A FixedBaseWindow stops extending its squaring table past this many
# windows (2^20 exponent bits); higher bits fall back to one backend
# powmod over the table's top element, keeping memory bounded while the
# low, hot section of the exponent still hits the table.
_MAX_TABLE_WINDOWS = 1 << 18


def multiexp(pairs: Sequence[tuple[int, int]], modulus: int) -> int:
    """``prod base^exponent mod modulus`` with one shared squaring chain.

    Exponents must be non-negative.  Bases are reduced mod *modulus*;
    zero exponents contribute nothing.
    """
    backend = get_backend()
    live = [(base % modulus, exponent) for base, exponent in pairs if exponent > 0]
    if not live:
        return 1 % modulus
    if len(live) == 1:
        base, exponent = live[0]
        return backend.powmod(base, exponent, modulus)
    mulmod = backend.mulmod
    # Per-base tables of base^1 .. base^(2^w - 1).
    tables: list[list[int]] = []
    for base, _exponent in live:
        table = [1, base]
        for _ in range(_WINDOW_MASK - 1):
            table.append(mulmod(table[-1], base, modulus))
        tables.append(table)
    max_bits = max(exponent.bit_length() for _base, exponent in live)
    num_windows = -(-max_bits // _WINDOW_BITS)
    acc = 1
    for window in reversed(range(num_windows)):
        if acc != 1:
            for _ in range(_WINDOW_BITS):
                acc = mulmod(acc, acc, modulus)
        shift = window * _WINDOW_BITS
        for (_base, exponent), table in zip(live, tables):
            digit = (exponent >> shift) & _WINDOW_MASK
            if digit:
                acc = mulmod(acc, table[digit], modulus)
    return acc


class FixedBaseWindow:
    """Precomputed powers ``base^(2^(w·i))`` with bucketed evaluation.

    The table grows lazily to the largest exponent seen (bounded by
    ``_MAX_TABLE_WINDOWS``) and is safe to share across threads: growth
    happens under a lock, evaluation reads an immutable prefix.
    """

    def __init__(self, base: int, modulus: int):
        self.modulus = modulus
        self.base = base % modulus
        self._powers: list[int] = [self.base]  # powers[i] = base^(2^(w*i))
        self._lock = threading.Lock()

    def _ensure(self, num_windows: int) -> list[int]:
        """Grow the table to *num_windows* entries; returns the live list."""
        powers = self._powers
        if len(powers) >= num_windows:
            return powers
        backend = get_backend()
        with self._lock:
            powers = self._powers
            while len(powers) < num_windows:
                top = powers[-1]
                for _ in range(_WINDOW_BITS):
                    top = backend.mulmod(top, top, self.modulus)
                powers.append(top)
            return powers

    @property
    def table_entries(self) -> int:
        return len(self._powers)

    def power(self, exponent: int) -> int:
        """``base^exponent mod modulus`` — identical to ``pow``, fewer ops."""
        backend = get_backend()
        if exponent < 0:
            return backend.invert(self.power(-exponent), self.modulus)
        if exponent == 0:
            return 1 % self.modulus
        modulus = self.modulus
        mulmod = backend.mulmod
        num_windows = -(-exponent.bit_length() // _WINDOW_BITS)
        high = 1
        if num_windows > _MAX_TABLE_WINDOWS:
            # Split: the table covers the low 2^20 bits; the remainder is
            # one backend exponentiation over the table's top power.
            powers = self._ensure(_MAX_TABLE_WINDOWS + 1)
            split = _MAX_TABLE_WINDOWS * _WINDOW_BITS
            high = backend.powmod(powers[_MAX_TABLE_WINDOWS], exponent >> split, modulus)
            exponent &= (1 << split) - 1
            num_windows = _MAX_TABLE_WINDOWS
        powers = self._ensure(num_windows)
        # Bucket the window digits by value (Pippenger): buckets[v] holds
        # the product of every table power whose digit equals v; the final
        # result is prod buckets[v]^v, folded with the running-sum trick.
        buckets = [1] * (_WINDOW_MASK + 1)
        for index in range(num_windows):
            digit = (exponent >> (index * _WINDOW_BITS)) & _WINDOW_MASK
            if digit:
                if buckets[digit] == 1:
                    buckets[digit] = powers[index]
                else:
                    buckets[digit] = mulmod(buckets[digit], powers[index], modulus)
        acc = 1
        running = 1
        for value in range(_WINDOW_MASK, 0, -1):
            bucket = buckets[value]
            if bucket != 1:
                running = bucket if running == 1 else mulmod(running, bucket, modulus)
            if running != 1:
                acc = running if acc == 1 else mulmod(acc, running, modulus)
        if high != 1:
            acc = mulmod(acc, high, modulus)
        return acc
