"""Dynamic universal RSA accumulator.

The building block of the authenticated dictionary (paper Section 5): a
constant-sized commitment ``A = g^(prod of elements)`` to a multiset of prime
representatives, supporting

- *membership witnesses* ``w = g^(S / p)`` verified by ``w^p == A`` —
  naturally **aggregatable**: one witness covers a whole set of primes at
  once (``w^(p1*p2*...) == A``), which is exactly the property Litmus uses to
  merge the proofs of a non-conflicting transaction batch;
- *non-membership witnesses* from Bezout coefficients ``a*S + b*p = 1``
  verified by ``A^a * g^(b*p) == g`` (universal accumulator);
- optional PoE compression of verification (see :mod:`repro.crypto.poe`).

This class tracks the exponent product ``S`` explicitly — the same
bookkeeping Algorithm 1 of the paper performs on the server.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from ..errors import CryptoError, ProofError
from ..obs.metrics import get_metrics, timed
from .cache import prime_product
from .poe import PoEProof, prove_exponentiation, verify_exponentiation
from .rsa_group import RSAGroup, bezout

__all__ = ["RSAAccumulator", "NonMembershipWitness"]

_WITNESS_SECONDS = get_metrics().histogram("accumulator.witness_seconds")
_WITNESSES = get_metrics().counter("accumulator.witnesses")


@dataclass(frozen=True)
class NonMembershipWitness:
    """Bezout coefficients proving a prime (product) is outside the set."""

    a: int
    b: int


def _canonical(group: RSAGroup, element: int) -> bool:
    """True iff *element* is a canonical group element in ``[1, N)``.

    Verifiers reject anything else instead of silently reducing it into
    range — an out-of-range or zero witness/digest is a malformed proof.
    """
    return 0 < element < group.modulus


class RSAAccumulator:
    """Server-side accumulator state over prime representatives."""

    def __init__(self, group: RSAGroup, elements: Iterable[int] = ()):
        self.group = group
        self._product = 1
        self._value = group.generator
        for element in elements:
            self.add(element)

    # -- state ---------------------------------------------------------------

    @property
    def value(self) -> int:
        """The current accumulator digest ``g^S``."""
        return self._value

    @property
    def product(self) -> int:
        """The exponent product ``S`` (server bookkeeping, never sent)."""
        return self._product

    def add(self, prime: int) -> int:
        """Accumulate *prime*; returns the new digest."""
        if prime < 3:
            raise CryptoError("accumulator elements must be odd primes")
        self._value = self.group.power(self._value, prime)
        self._product *= prime
        return self._value

    def remove(self, prime: int) -> int:
        """Remove one occurrence of *prime* (server recomputes from g)."""
        if self._product % prime != 0:
            raise CryptoError("cannot remove a prime that was never accumulated")
        self._product //= prime
        self._value = self.group.power(self.group.generator, self._product)
        return self._value

    # -- membership ------------------------------------------------------------

    def membership_witness(self, primes: Iterable[int]) -> int:
        """Aggregated witness for all *primes* at once: ``g^(S / prod)``.

        The queried primes are multiplied with a product tree and divided
        out of ``S`` in one step — one big division instead of one per
        element (with multiplicity respected: a prime queried twice must be
        accumulated at least twice).
        """
        _WITNESSES.inc()
        with timed(_WITNESS_SECONDS):
            prime_list = list(primes)
            if not prime_list:
                # An empty query has exponent 1, making witness == digest a
                # trivially "valid" proof of nothing — never mint one.
                raise CryptoError("cannot build a membership witness for an empty set")
            total = prime_product(prime_list)
            if total < 1 or self._product % total != 0:
                raise CryptoError("a queried prime is not in the accumulator")
            return self.group.power(self.group.generator, self._product // total)

    @staticmethod
    def verify_membership(
        group: RSAGroup, digest: int, primes: Iterable[int], witness: int
    ) -> bool:
        """Check ``witness^(prod primes) == digest`` — one proof, many elements.

        Rejects empty query sets (exponent 1 would accept any
        ``witness == digest``) and non-canonical witness/digest encodings.
        """
        prime_list = list(primes)
        if not prime_list:
            return False
        if not (_canonical(group, witness) and _canonical(group, digest)):
            return False
        return group.power(witness, prime_product(prime_list)) == digest

    # -- non-membership ---------------------------------------------------------

    def nonmembership_witness(self, prime_product: int) -> NonMembershipWitness:
        """Bezout witness that no prime dividing *prime_product* is accumulated."""
        _WITNESSES.inc()
        with timed(_WITNESS_SECONDS):
            a, b, g = bezout(self._product, prime_product)
            if g != 1:
                raise CryptoError(
                    "an element of the queried set is in the accumulator"
                )
            return NonMembershipWitness(a=a, b=b)

    @staticmethod
    def verify_nonmembership(
        group: RSAGroup,
        digest: int,
        prime_product: int,
        witness: NonMembershipWitness,
    ) -> bool:
        """Check ``digest^a * g^(b * prod) == g`` (paper's VerNoKey)."""
        if not _canonical(group, digest) or prime_product < 2:
            return False
        lhs = group.mul(
            group.power(digest, witness.a),
            group.power(group.generator, witness.b * prime_product),
        )
        return lhs == group.generator

    # -- PoE-compressed paths ----------------------------------------------------

    def membership_witness_with_poe(
        self, primes: Iterable[int]
    ) -> tuple[int, int, PoEProof]:
        """Witness plus a PoE so the checker verifies in constant work.

        Returns ``(witness, exponent, proof)`` where ``exponent`` is the
        product of the queried primes.
        """
        prime_list = list(primes)
        witness = self.membership_witness(prime_list)
        exponent = prime_product(prime_list)
        result, proof = prove_exponentiation(self.group, witness, exponent)
        if result != self._value:
            raise ProofError("internal error: PoE result disagrees with digest")
        return witness, exponent, proof

    @staticmethod
    def verify_membership_with_poe(
        group: RSAGroup,
        digest: int,
        witness: int,
        exponent: int,
        proof: PoEProof,
    ) -> bool:
        # exponent == 1 is the empty query set in disguise: witness == digest
        # would "verify" vacuously.  Accumulated primes are odd and >= 3, so
        # any legitimate exponent is >= 3.
        if exponent < 2:
            return False
        return verify_exponentiation(group, witness, exponent, digest, proof)
