"""Weakly-binding authenticated dictionary from RSA accumulators (Section 5.3).

Each key-value pair ``(k, v)`` is encoded as the product of **three** category
primes:

    H(k, v) = Sample(lambda, 0, k) * Sample(lambda, 1, v) * Sample(lambda, 2, h(k, v))

where ``h`` is a collision-resistant hash.  The digest of a dictionary ``D``
is ``g^(prod H(k, v))``.  Because the *key* primes live in their own residue
class, the scheme supports efficient **key non-existence proofs** — the
feature the naive accumulator-of-pairs construction lacks, and the reason
the client never has to pre-populate the digest with every possible memory
address.

The API mirrors the paper exactly: ``Setup``, ``Commit``, ``Update``,
``ProveLookup`` / ``VerLookup`` (aggregatable over key sets), and
``ProveNoKey`` / ``VerNoKey`` (Bezout witnesses).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from ..errors import CryptoError, ProofError
from ..obs.metrics import get_metrics, timed
from ..serialization import encode
from .cache import cached_key_prime, cached_pair_representative, prime_product
from .categorization import (
    CATEGORY_KEY,
    CATEGORY_RELATION,
    CATEGORY_VALUE,
    sample_category_prime,
)
from .hashing import hash_pair
from .poe import PoEProof, prove_exponentiation, verify_exponentiation
from .rsa_group import RSAGroup, bezout

__all__ = [
    "AuthenticatedDictionary",
    "LookupProof",
    "NonMembershipProof",
    "pair_representative",
    "key_prime",
]

DEFAULT_PRIME_BITS = 128

_LOOKUP_SECONDS = get_metrics().histogram("authdict.lookup_seconds")
_UPDATE_SECONDS = get_metrics().histogram("authdict.update_seconds")
_LOOKUPS = get_metrics().counter("authdict.lookups")
_UPDATES = get_metrics().counter("authdict.updates")


@dataclass(frozen=True)
class LookupProof:
    """Aggregated lookup proof: the digest of the dictionary minus the pairs."""

    witness: int


@dataclass(frozen=True)
class NonMembershipProof:
    """Bezout coefficients ``(a, b)`` with ``a*S + b*(prod key primes) = 1``."""

    a: int
    b: int


def key_prime(key: object, bits: int = DEFAULT_PRIME_BITS) -> int:
    """The category-0 prime encoding *key*."""
    return sample_category_prime(bits, CATEGORY_KEY, encode(key))


def pair_representative(key: object, value: object, bits: int = DEFAULT_PRIME_BITS) -> int:
    """``H(k, v)``: the product of the key, value, and relation primes."""
    kp = sample_category_prime(bits, CATEGORY_KEY, encode(key))
    vp = sample_category_prime(bits, CATEGORY_VALUE, encode(value))
    rp = sample_category_prime(bits, CATEGORY_RELATION, hash_pair(key, value))
    return kp * vp * rp


class AuthenticatedDictionary:
    """The weakly-binding AD scheme; also usable as incremental server state.

    The *stateless* verification methods (``ver_lookup``, ``ver_no_key``,
    ``digest_after_update``) are what the client / circuit run; the stateful
    methods maintain the server's copy of the dictionary, its exponent
    product ``S``, and the latest digest ``acc`` (the bookkeeping of
    Algorithm 1).
    """

    def __init__(
        self,
        group: RSAGroup,
        initial: Mapping[object, object] | None = None,
        prime_bits: int = DEFAULT_PRIME_BITS,
    ):
        self.group = group
        self.prime_bits = prime_bits
        self._store: dict[object, object] = {}
        self._product = 1
        self._digest = group.generator
        if initial:
            for key, value in initial.items():
                self._insert(key, value)

    # -- internal helpers ---------------------------------------------------
    #
    # Both samplers go through the crypto hot-path memo (keyed by key, value
    # and the global cache epoch): every batch that re-touches a pair would
    # otherwise re-run three hash-to-prime searches per access.

    def _h(self, key: object, value: object) -> int:
        return cached_pair_representative(
            key,
            value,
            self.prime_bits,
            lambda: pair_representative(key, value, self.prime_bits),
        )

    def _kp(self, key: object) -> int:
        return cached_key_prime(
            key, self.prime_bits, lambda: key_prime(key, self.prime_bits)
        )

    def _insert(self, key: object, value: object) -> None:
        h = self._h(key, value)
        self._product *= h
        self._digest = self.group.power(self._digest, h)
        self._store[key] = value

    # -- state accessors ------------------------------------------------------

    @property
    def digest(self) -> int:
        """``Commit(pk, D)`` of the current contents."""
        return self._digest

    @property
    def product(self) -> int:
        """The exponent product ``S`` (server-side only)."""
        return self._product

    def __contains__(self, key: object) -> bool:
        return key in self._store

    def __len__(self) -> int:
        return len(self._store)

    def get(self, key: object, default: object = None) -> object:
        return self._store.get(key, default)

    def snapshot(self) -> dict[object, object]:
        return dict(self._store)

    def state(self) -> tuple[dict[object, object], int, int]:
        """The complete mutable state ``(store, product, digest)``.

        Cheap to take (one dict copy, two int references); feeding it back
        to :meth:`restore` rewinds the dictionary exactly — the rollback
        primitive the server's pre-batch snapshots are built on.
        """
        return dict(self._store), self._product, self._digest

    def restore(self, state: tuple[dict[object, object], int, int]) -> None:
        """Rewind to a state previously captured with :meth:`state`."""
        store, product, digest = state
        self._store = dict(store)
        self._product = product
        self._digest = digest

    # -- Commit (stateless) ------------------------------------------------------

    @classmethod
    def commit(
        cls,
        group: RSAGroup,
        contents: Mapping[object, object],
        prime_bits: int = DEFAULT_PRIME_BITS,
    ) -> int:
        """``Commit(pk, D)``: digest of a dictionary from scratch."""
        exponent = prime_product(
            pair_representative(key, value, prime_bits)
            for key, value in contents.items()
        )
        return group.power(group.generator, exponent)

    # -- ProveLookup / VerLookup ---------------------------------------------------

    def prove_lookup(self, keys: Iterable[object]) -> LookupProof:
        """Aggregated proof that each queried key holds its current value."""
        _LOOKUPS.inc()
        with timed(_LOOKUP_SECONDS):
            remaining = self._product
            for key in keys:
                if key not in self._store:
                    raise CryptoError(f"key {key!r} is not in the dictionary")
                h = self._h(key, self._store[key])
                if remaining % h != 0:
                    raise CryptoError("internal state corrupt: product mismatch")
                remaining //= h
            return LookupProof(
                witness=self.group.power(self.group.generator, remaining)
            )

    def lookup_exponent(self, pairs: Mapping[object, object]) -> int:
        """The aggregated exponent ``prod H(k, v)`` a lookup proof is checked
        against — exposed so batch verifiers (the deferred-PoE path of the
        memory-integrity checker) can restate ``VerLookup`` as the PoE
        instance ``witness^exponent == digest``."""
        return prime_product(self._h(key, value) for key, value in pairs.items())

    def ver_lookup(
        self,
        digest: int,
        pairs: Mapping[object, object],
        proof: LookupProof,
    ) -> bool:
        """``VerLookup``: check ``witness^(prod H(k,v)) == digest``.

        Witness and digest must be canonical group elements in ``[1, N)`` —
        out-of-range encodings are rejected, not reduced.  An empty *pairs*
        mapping is legal (exponent 1): it asserts ``witness == digest``,
        which is exactly the insert-only update case where no old pair is
        removed from the digest.
        """
        if not 0 < proof.witness < self.group.modulus:
            return False
        if not 0 < digest < self.group.modulus:
            return False
        return self.group.power(proof.witness, self.lookup_exponent(pairs)) == digest

    # -- PoE-compressed lookup path (Section 6.1.1) -------------------------------

    def prove_lookup_with_poe(
        self, keys: Iterable[object]
    ) -> tuple[LookupProof, PoEProof]:
        """Aggregated lookup proof plus a proof-of-exponentiation.

        The PoE lets the in-circuit checker verify
        ``witness^(prod H(k,v)) == digest`` with a *constant* number of
        group operations regardless of how many pairs were aggregated — the
        paper's trick for keeping the memory checker's gate count constant.
        """
        key_list = list(keys)
        proof = self.prove_lookup(key_list)
        exponent = prime_product(
            self._h(key, self._store[key]) for key in key_list
        )
        result, poe = prove_exponentiation(self.group, proof.witness, exponent)
        if result != self._digest:
            raise ProofError("internal error: PoE result disagrees with digest")
        return proof, poe

    def ver_lookup_with_poe(
        self,
        digest: int,
        pairs: Mapping[object, object],
        proof: LookupProof,
        poe: PoEProof,
    ) -> bool:
        """Constant-work ``VerLookup`` via the Wesolowski proof."""
        exponent = self.lookup_exponent(pairs)
        return verify_exponentiation(self.group, proof.witness, exponent, digest, poe)

    # -- Update -----------------------------------------------------------------

    def update(self, changes: Mapping[object, object]) -> tuple[int, LookupProof]:
        """Set each key in *changes* to its new value.

        Returns ``(new_digest, proof)`` where *proof* is the lookup proof of
        the **old** pairs — exactly the witness the paper's ``Update`` builds
        the new digest from (``d' = pi^(prod H(k, v_new))``), and the same
        object the memory-integrity checker consumes to validate the write.

        Keys not currently present are inserted (their old pair contributes
        nothing to the proof exponent, matching the agreed-initial-value
        semantics of Section 6.1.1).
        """
        _UPDATES.inc()
        with timed(_UPDATE_SECONDS):
            existing = [key for key in changes if key in self._store]
            proof = self.prove_lookup(existing)
            for key in existing:
                h_old = self._h(key, self._store[key])
                self._product //= h_old
            new_representatives = []
            for key, value in changes.items():
                new_representatives.append(self._h(key, value))
                self._store[key] = value
            roll_forward = prime_product(new_representatives)
            self._product *= roll_forward
            # d' = pi^(prod H(k, v_new)): the witness excludes exactly the old
            # pairs of the changed keys, so raising it by the new pairs lands
            # on g^S' without touching the rest of the dictionary.
            self._digest = self.group.power(proof.witness, roll_forward)
            return self._digest, proof

    def digest_after_update(
        self,
        proof: LookupProof,
        new_pairs: Mapping[object, object],
    ) -> int:
        """Client-side digest roll-forward: ``d' = witness^(prod H(k, v_new))``."""
        return self.group.power(proof.witness, self.lookup_exponent(new_pairs))

    # -- ProveNoKey / VerNoKey ------------------------------------------------------

    def prove_no_key(self, keys: Iterable[object]) -> NonMembershipProof:
        """Prove that none of *keys* has ever been written."""
        primes = []
        for key in keys:
            if key in self._store:
                raise CryptoError(f"key {key!r} exists; cannot prove non-membership")
            primes.append(self._kp(key))
        exponent = prime_product(primes)
        a, b, g = bezout(self._product, exponent)
        if g != 1:
            raise ProofError("gcd(S, key primes) != 1: state corrupt or key present")
        return NonMembershipProof(a=a, b=b)

    def ver_no_key(
        self,
        digest: int,
        keys: Iterable[object],
        proof: NonMembershipProof,
    ) -> bool:
        """``VerNoKey``: check ``digest^a * g^(b * prod key primes) == g``."""
        exponent = prime_product(self._kp(key) for key in keys)
        lhs = self.group.mul(
            self.group.power(digest, proof.a),
            self.group.power(self.group.generator, proof.b * exponent),
        )
        return lhs == self.group.generator
