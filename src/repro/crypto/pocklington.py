"""Pocklington primality certificates (paper Section 5.3).

The circuit cannot sample primes itself, so the server supplies each prime
along with a *verifiable certificate* of primality.  The paper uses the
Pocklington criterion: if ``N = r * p + 1`` for a certified prime ``p`` with
``p > sqrt(N) - 1``, and there is a witness ``a`` with

    a^(N-1) = 1 (mod N)    and    gcd(a^((N-1)/p) - 1, N) = 1,

then ``N`` is prime.  A certificate is therefore a small provable base prime
(checked by trial division) plus a chain of ``(r, a)`` steps that roughly
doubles the bit length each time — ``O(lambda)`` steps for a ``lambda``-bit
prime, exactly as the paper notes.

The search for ``r`` and ``a`` is driven by a deterministic stream derived
from the caller's nonce, making ``Sample`` deterministic end to end.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache

from ..errors import CertificateError
from .hashing import expand_stream
from .primes import is_prime_trial, is_probable_prime

__all__ = ["PocklingtonStep", "PocklingtonCertificate", "build_certified_prime"]

# The base of a chain must be provable by (cheap) trial division.
_MAX_BASE_BITS = 34


@dataclass(frozen=True)
class PocklingtonStep:
    """One boosting step: extends certified prime ``p`` to ``r * p + 1``."""

    r: int
    witness: int


@dataclass(frozen=True)
class PocklingtonCertificate:
    """A full certificate chain for :attr:`prime`."""

    base_prime: int
    steps: tuple[PocklingtonStep, ...]
    prime: int

    def verify(self) -> bool:
        """Check the whole chain; True iff :attr:`prime` is provably prime."""
        try:
            self.check()
        except CertificateError:
            return False
        return True

    def check(self) -> None:
        """Like :meth:`verify` but raises :class:`CertificateError` on failure."""
        if self.base_prime.bit_length() > _MAX_BASE_BITS:
            raise CertificateError("certificate base prime too large to trial-divide")
        if not is_prime_trial(self.base_prime):
            raise CertificateError("certificate base is not prime")
        p = self.base_prime
        for step in self.steps:
            n = step.r * p + 1
            # p > sqrt(n) - 1  <=>  (p + 1)^2 > n.
            if (p + 1) * (p + 1) <= n:
                raise CertificateError("Pocklington step size condition violated")
            if pow(step.witness, n - 1, n) != 1:
                raise CertificateError("Fermat condition failed (composite)")
            if math.gcd(pow(step.witness, (n - 1) // p, n) - 1, n) != 1:
                raise CertificateError("Pocklington gcd condition failed")
            p = n
        if p != self.prime:
            raise CertificateError("certificate chain does not end at claimed prime")


@lru_cache(maxsize=1 << 12)
def _base_prime_from_seed(seed: bytes, bits: int = 30) -> int:
    """Deterministically derive a small trial-division-provable prime."""
    attempt = 0
    while True:
        block = expand_stream(seed + b"base", attempt)
        candidate = int.from_bytes(block[:8], "big")
        candidate &= (1 << bits) - 1
        candidate |= (1 << (bits - 1)) | 1
        if is_prime_trial(candidate):
            return candidate
        attempt += 1


def _find_witness(n: int, p: int) -> int | None:
    """Find a Pocklington witness for ``n = r * p + 1``, or None if composite."""
    for a in (2, 3, 5, 7, 11, 13, 17, 19, 23, 29):
        if pow(a, n - 1, n) != 1:
            return None  # Fermat liar-free for our purposes: treat as composite
        if math.gcd(pow(a, (n - 1) // p, n) - 1, n) == 1:
            return a
    return None


def _boost(p: int, target_bits: int, seed: bytes, residue: int | None) -> PocklingtonStep:
    """Find ``(r, a)`` such that ``r * p + 1`` is a certified *target_bits* prime.

    When *residue* is given, the resulting prime additionally satisfies
    ``N % 8 == residue`` (used by the final categorization step).

    The caller must leave a wide search window (``target_bits`` well above
    ``p.bit_length()``): a window of only a handful of candidate ``r``
    values may contain no prime at all, and the deterministic search would
    spin forever.  A hard attempt bound turns that into an error.
    """
    low = ((1 << (target_bits - 1)) - 1) // p + 1
    high = min(p, ((1 << target_bits) - 2) // p)
    if high < low:
        raise CertificateError("cannot boost: target bit length out of reach")
    span = high - low + 1
    for attempt in range(200_000):
        block = expand_stream(seed + b"boost" + target_bits.to_bytes(4, "big"), attempt)
        r = low + int.from_bytes(block[:16], "big") % span
        if r % 2 == 1:
            r += 1  # keep N = r*p + 1 odd
        if residue is not None:
            # Solve r = (residue - 1) * p^{-1} (mod 8); the shift keeps r even.
            want = (residue - 1) * pow(p, -1, 8) % 8
            r += (want - r) % 8
        if r < low or r > high:
            continue
        n = r * p + 1
        if n.bit_length() != target_bits:
            continue
        if not is_probable_prime(n):
            continue
        witness = _find_witness(n, p)
        if witness is not None:
            return PocklingtonStep(r=r, witness=witness)
    raise CertificateError(
        f"no Pocklington step found boosting {p.bit_length()} -> {target_bits} bits"
    )


def build_certified_prime(
    bits: int,
    seed: bytes,
    residue: int | None = None,
    modulus: int = 8,
) -> PocklingtonCertificate:
    """Deterministically build a *bits*-bit prime with a verifiable certificate.

    The optional *residue* (mod 8) steers the final prime into one of the
    categorization classes of Section 5.1.  The whole search is a function of
    *seed*, so repeated calls agree — the determinism the circuit needs.
    """
    if modulus != 8:
        raise CertificateError("categorization is defined modulo 8")
    if bits < 32:
        raise CertificateError("certified primes smaller than 32 bits are pointless")
    # Every boost (including the final one) needs a wide `r` window: target
    # at least ~12 bits above the current prime, so thousands of candidates
    # exist and one of them is prime with overwhelming probability.  The
    # chain therefore tops out at bits - 13 before the final exact-size step.
    margin = 13
    cap = bits - margin
    base = _base_prime_from_seed(seed, bits=max(16, min(30, cap)))
    p = base
    steps: list[PocklingtonStep] = []
    # Pocklington needs the pre-final prime above ~sqrt(final).
    threshold = bits // 2 + 2
    while p.bit_length() < threshold:
        target = min(2 * p.bit_length() - 2, cap)
        if target < p.bit_length() + margin - 1:
            raise CertificateError(f"cannot grow a certificate chain to {bits} bits")
        step = _boost(p, target, seed, residue=None)
        steps.append(step)
        p = step.r * p + 1
    final = _boost(p, bits, seed, residue=residue)
    steps.append(final)
    p = final.r * p + 1
    return PocklingtonCertificate(base_prime=base, steps=tuple(steps), prime=p)
