"""Canonical, injective serialization of Python values to bytes.

The cryptographic layers (hash-to-prime, accumulator representatives, Merkle
leaves, proof transcripts) must agree on a single byte representation of keys
and values.  The encoding here is *canonical* (equal values encode equally)
and *injective* (distinct values encode distinctly), which is what
collision-resistance arguments require.

Supported types: ``bytes``, ``str``, ``int`` (arbitrary precision, signed),
``bool``, ``None``, and (nested) tuples/lists of those.  Dictionaries are
intentionally unsupported: composite database keys should be tuples.
"""

from __future__ import annotations

from .errors import ReproError

# One-byte type tags keep encodings of different types disjoint.
_TAG_BYTES = b"\x01"
_TAG_STR = b"\x02"
_TAG_INT_POS = b"\x03"
_TAG_INT_NEG = b"\x04"
_TAG_TUPLE = b"\x05"
_TAG_NONE = b"\x06"
_TAG_BOOL = b"\x07"


def _with_length(payload: bytes) -> bytes:
    """Prefix *payload* with its length so concatenations stay injective."""
    return len(payload).to_bytes(8, "big") + payload


def encode(value: object) -> bytes:
    """Encode *value* canonically.

    Raises :class:`ReproError` for unsupported types.

    >>> encode(0) != encode(b"")
    True
    >>> encode((1, 2)) != encode((12,))
    True
    """
    if value is None:
        return _TAG_NONE
    # bool must be tested before int (bool is an int subclass).
    if isinstance(value, bool):
        return _TAG_BOOL + (b"\x01" if value else b"\x00")
    if isinstance(value, bytes):
        return _TAG_BYTES + _with_length(value)
    if isinstance(value, str):
        return _TAG_STR + _with_length(value.encode("utf-8"))
    if isinstance(value, int):
        magnitude = abs(value)
        payload = magnitude.to_bytes((magnitude.bit_length() + 7) // 8 or 1, "big")
        tag = _TAG_INT_NEG if value < 0 else _TAG_INT_POS
        return tag + _with_length(payload)
    if isinstance(value, (tuple, list)):
        parts = [encode(item) for item in value]
        body = b"".join(_with_length(part) for part in parts)
        return _TAG_TUPLE + len(parts).to_bytes(8, "big") + body
    raise ReproError(f"cannot canonically encode value of type {type(value).__name__}")


def encode_pair(key: object, value: object) -> bytes:
    """Encode a key-value pair as a single canonical byte string."""
    return encode((key, value))
