"""One function per paper table/figure (see DESIGN.md's experiment index).

Every function returns plain data (lists of dicts) so that the pytest
benchmarks, the examples, and EXPERIMENTS.md generation all share one code
path.  Scaled *real* executions feed the model; paper-scale numbers come
out.  ``scale`` controls the size of the real runs (bigger = slower, more
accurate conflict statistics).
"""

from __future__ import annotations

import math
from functools import lru_cache

from ..sim.costmodel import CostModel
from ..sim.network import LAN, WAN
from ..workloads.tpcc import TPCCWorkload
from ..workloads.ycsb import YCSBWorkload
from .model import (
    LitmusModel,
    WorkloadProfile,
    zipf_contention_scale,
    zipf_top_mass,
)

__all__ = [
    "ycsb_profile",
    "tpcc_profile",
    "fig3_ycsb_throughput_latency",
    "fig4_tpcc_throughput",
    "fig5_processing_batch",
    "fig6_prover_threads",
    "fig7_time_breakdown",
    "fig8_contention",
    "fig9_table_size",
    "elle_comparison",
    "reference_constants",
]

# Paper-side reference numbers used in the side-by-side reports.
PAPER = {
    "drm_peak_ycsb": 17_638.0,
    "dr_peak_ycsb": 714.2,
    "drm_peak_new_order": 280.6,
    "postgres_ycsb": 5_759.0,
    "postgres_new_order": 506.0,
    "postgres_payment": 1_337.0,
    "verify_seconds": 300.0,
    "proof_bytes_per_prover": 312,
    "proof_bytes_total": 30_000,
    "elle_txns_per_second": 5_500.0,
    "fig9_table": {"10G": 17_538, "20G": 16_394, "40G": 14_909, "80G": 12_818},
}

_DEFAULT_PROVERS_DRM = 75
_PAPER_PROCESSING_BATCH = 81_920
_SCALED_ROWS = 4096  # row count of the real scaled YCSB executions


@lru_cache(maxsize=16)
def ycsb_profile(theta: float = 0.6, scale: int = 1500, rows: int = 4096) -> WorkloadProfile:
    """Measure YCSB on a real scaled run (cached per theta)."""
    workload = YCSBWorkload(num_rows=rows, theta=theta, seed=11)
    txns = workload.generate(scale)
    return WorkloadProfile.measure(
        f"ycsb-theta{theta}",
        txns,
        workload.initial_data(),
        cc="dr",
        processing_batch_size=max(64, scale // 4),
    )


@lru_cache(maxsize=4)
def tpcc_profile(kind: str = "new_order", scale: int = 300) -> WorkloadProfile:
    """Measure TPC-C New Order or Payment on a real scaled run."""
    workload = TPCCWorkload(num_warehouses=8, num_items=200, order_lines=10, seed=13)
    if kind == "new_order":
        txns = workload.generate_new_orders(scale)
    else:
        txns = workload.generate_payments(scale)
    return WorkloadProfile.measure(
        f"tpcc-{kind}",
        txns,
        workload.initial_data(),
        cc="dr",
        processing_batch_size=max(32, scale // 4),
    )


def _standard_baselines(
    model: LitmusModel,
    num_txns: int,
    contention_scale: float = 1.0,
    cache_bonus: float = 0.0,
) -> list[dict]:
    """The eight Fig 3/4 baselines at one verification batch size."""
    rows: list[dict] = []

    def add(name: str, run) -> None:
        rows.append(
            {
                "baseline": name,
                "batch_size": num_txns,
                "throughput": run.throughput,
                "latency": run.mean_latency_seconds,
            }
        )

    add(
        "No-Verification-2PL",
        model.no_verification_run(num_txns, "2pl", contention_scale=contention_scale),
    )
    add(
        "No-Verification-DR",
        model.no_verification_run(
            num_txns,
            "dr",
            contention_scale=contention_scale,
            processing_batch_size=_PAPER_PROCESSING_BATCH,
        ),
    )
    add(
        "Litmus-DRM",
        model.litmus_run(
            num_txns,
            num_provers=_DEFAULT_PROVERS_DRM,
            cc="dr",
            contention_scale=contention_scale,
            processing_batch_size=_PAPER_PROCESSING_BATCH,
        ),
    )
    add(
        "Litmus-DR",
        model.litmus_run(
            num_txns,
            num_provers=1,
            cc="dr",
            contention_scale=contention_scale,
            processing_batch_size=_PAPER_PROCESSING_BATCH,
        ),
    )
    add("AD-Interact-1ms", model.interactive_run(num_txns, LAN, cache_bonus=cache_bonus))
    add("AD-Interact-100ms", model.interactive_run(num_txns, WAN, cache_bonus=cache_bonus))
    add("Litmus-2PL", model.litmus_run(num_txns, num_provers=1, cc="2pl"))
    add("Merkle-Tree", model.merkle_run(num_txns, LAN))
    return rows


def fig3_ycsb_throughput_latency(
    batch_sizes: tuple[int, ...] = (320, 1_280, 5_120, 20_480, 81_920, 327_680, 1_310_720, 2_621_440),
    scale: int = 1500,
) -> list[dict]:
    """Figure 3 (a+b): YCSB throughput and latency vs verification batch."""
    profile = ycsb_profile(0.6, scale)
    model = LitmusModel(profile)
    scale_factor = zipf_contention_scale(0.6, _SCALED_ROWS)
    rows: list[dict] = []
    for batch in batch_sizes:
        rows.extend(_standard_baselines(model, batch, contention_scale=scale_factor))
    return rows


def fig4_tpcc_throughput(
    batch_sizes: tuple[int, ...] = (320, 1_280, 5_120, 20_480, 81_920),
    scale: int = 300,
) -> list[dict]:
    """Figure 4 (a+b): TPC-C New Order / Payment throughput vs batch."""
    rows: list[dict] = []
    # District/stock hot spots scale with warehouse count: the scaled run
    # simulates 8 warehouses vs the paper's 64.
    contention_scale = 8 / 64
    for kind in ("new_order", "payment"):
        profile = tpcc_profile(kind, scale)
        # "A smaller processing batch is preferable for both TPC-C
        # transactions" — the paper scanned and picked it; we use 4096.
        model = LitmusModel(profile)
        for batch in batch_sizes:
            for row in _standard_baselines(
                model, batch, contention_scale=contention_scale
            ):
                row["transaction"] = kind
                rows.append(row)
    return rows


def fig5_processing_batch(
    processing_batch_sizes: tuple[int, ...] = (32, 320, 3_200, 32_000, 320_000, 1_000_000),
    num_txns: int = 2_621_440,
    scale: int = 1500,
) -> list[dict]:
    """Figure 5 (a+b): throughput & latency vs DR processing batch size."""
    rows: list[dict] = []
    scale_factor = zipf_contention_scale(0.6, _SCALED_ROWS)
    for m in processing_batch_sizes:
        # Conflict pressure grows with the in-flight batch: measure the real
        # round structure at a proportionally scaled m.
        scaled_m = max(2, min(scale, round(m * scale / num_txns) or 2))
        workload = YCSBWorkload(num_rows=_SCALED_ROWS, theta=0.6, seed=11)
        txns = workload.generate(scale)
        measured = WorkloadProfile.measure(
            f"ycsb-m{m}", txns, workload.initial_data(), cc="dr",
            processing_batch_size=scaled_m,
        )
        model = LitmusModel(measured)
        for name, run in (
            (
                "No-Verification-DR",
                model.no_verification_run(
                    num_txns,
                    "dr",
                    contention_scale=scale_factor,
                    processing_batch_size=m,
                ),
            ),
            (
                "Litmus-DRM",
                model.litmus_run(
                    num_txns,
                    num_provers=_DEFAULT_PROVERS_DRM,
                    cc="dr",
                    processing_batch_size=m,
                    contention_scale=scale_factor,
                ),
            ),
            (
                "Litmus-DR",
                model.litmus_run(
                    num_txns,
                    num_provers=1,
                    cc="dr",
                    processing_batch_size=m,
                    contention_scale=scale_factor,
                ),
            ),
        ):
            rows.append(
                {
                    "baseline": name,
                    "processing_batch": m,
                    "throughput": run.throughput,
                    "latency": run.mean_latency_seconds,
                }
            )
    return rows


def fig6_prover_threads(
    thread_counts: tuple[int, ...] = (1, 10, 20, 30, 40, 50, 60, 70, 80),
    num_txns: int = 2_621_440,
    scale: int = 1500,
) -> list[dict]:
    """Figure 6: Litmus-DRM throughput & latency vs prover threads."""
    model = LitmusModel(ycsb_profile(0.6, scale))
    scale_factor = zipf_contention_scale(0.6, _SCALED_ROWS)
    rows = []
    for threads in thread_counts:
        run = model.litmus_run(
            num_txns,
            num_provers=threads,
            cc="dr",
            contention_scale=scale_factor,
            processing_batch_size=_PAPER_PROCESSING_BATCH,
        )
        rows.append(
            {
                "prover_threads": threads,
                "throughput": run.throughput,
                # The paper's latency curve (514.3 s -> ~100 s) tracks proof
                # completion; client verification is constant on top.
                "latency": run.mean_latency_seconds - run.verify_seconds,
            }
        )
    return rows


def fig7_time_breakdown(
    thread_counts: tuple[int, ...] = (20, 40, 60, 80),
    num_txns: int = 2_621_440,
    scale: int = 1500,
) -> list[dict]:
    """Figure 7: component time shares vs prover threads.

    Keygen and proving are total CPU seconds from the real constraint
    counts; verification and proof output are the constant client costs.
    Trace processing (witness computation) parallelizes across the prover
    threads with a fitted cache-efficiency exponent, anchored to the paper's
    stated endpoints (~18% at the low end; keygen 51% / proving 38% at the
    high end).  See EXPERIMENTS.md for why Fig 7's exact instrumentation is
    underdetermined.
    """
    model = LitmusModel(ycsb_profile(0.6, scale))
    run = model.litmus_run(
        num_txns, num_provers=_DEFAULT_PROVERS_DRM, cc="dr",
        contention_scale=zipf_contention_scale(0.6, _SCALED_ROWS),
        processing_batch_size=_PAPER_PROCESSING_BATCH,
    )
    keygen, prove = run.keygen_seconds, run.prove_seconds
    verify, output = run.verify_seconds * 0.92, run.verify_seconds * 0.08
    # Anchor: at the highest thread count keygen is 51% of the total.
    p_max = max(thread_counts)
    p_min = min(thread_counts)
    total_high = keygen / 0.51
    residual_high = max(1e-9, total_high - keygen - prove - verify - output)
    # Anchor: at the lowest thread count trace processing is 18%.
    # trace(P) = residual_high * (p_max / P)^gamma; solve gamma.
    target_low = 0.18
    cpu_fixed = keygen + prove + verify + output

    def low_share(gamma: float) -> float:
        trace_low = residual_high * (p_max / p_min) ** gamma
        return trace_low / (trace_low + cpu_fixed)

    lo, hi = 0.0, 6.0
    for _ in range(60):
        mid = (lo + hi) / 2
        if low_share(mid) < target_low:
            lo = mid
        else:
            hi = mid
    gamma = (lo + hi) / 2

    rows = []
    for threads in thread_counts:
        trace = residual_high * (p_max / threads) ** gamma
        total = trace + cpu_fixed
        rows.append(
            {
                "prover_threads": threads,
                "process_traces": trace / total,
                "circuit_generation": 0.0,  # hand-written circuits
                "key_generation": keygen / total,
                "proving": prove / total,
                "verification": verify / total,
                "proof_output": output / total,
            }
        )
    return rows


def fig8_contention(
    thetas: tuple[float, ...] = (0.0, 0.2, 0.4, 0.6, 0.8, 1.0, 1.2, 1.4, 1.6),
    num_txns: int = 327_680,
    scale: int = 1200,
) -> list[dict]:
    """Figure 8: throughput vs Zipfian contention level."""
    rows: list[dict] = []
    for theta in thetas:
        profile = ycsb_profile(theta, scale)
        model = LitmusModel(profile)
        scale_factor = zipf_contention_scale(theta, _SCALED_ROWS)
        cache_bonus = min(0.5, 0.6 * zipf_top_mass(10_000_000, theta, top=64))
        for row in _standard_baselines(
            model,
            num_txns,
            contention_scale=scale_factor,
            cache_bonus=cache_bonus,
        ):
            rows.append(
                {
                    "baseline": row["baseline"],
                    "theta": theta,
                    "throughput": row["throughput"],
                }
            )
    return rows


def fig9_table_size(
    doublings: tuple[int, ...] = (0, 1, 2, 3),
    num_txns: int = 2_621_440,
    scale: int = 1500,
) -> list[dict]:
    """Figure 9 (table): Litmus-DRM throughput vs YCSB table size."""
    model = LitmusModel(ycsb_profile(0.6, scale))
    scale_factor = zipf_contention_scale(0.6, _SCALED_ROWS)
    rows = []
    for d in doublings:
        run = model.litmus_run(
            num_txns,
            num_provers=_DEFAULT_PROVERS_DRM,
            cc="dr",
            contention_scale=scale_factor,
            processing_batch_size=_PAPER_PROCESSING_BATCH,
            table_doublings=float(d),
        )
        size = f"{10 * 2 ** d}G"
        rows.append(
            {
                "table_size": size,
                "throughput": run.throughput,
                "paper": PAPER["fig9_table"][size],
            }
        )
    return rows


def elle_comparison(scale: int = 2000, paper_scale: int = 3_500_000) -> dict:
    """Section 8.3: run the real Elle checker on a real scaled trace."""
    from ..db.database import Database
    from ..verify.elle import ElleChecker, history_from_execution

    workload = YCSBWorkload(num_rows=4096, theta=0.6, seed=11)
    txns = workload.generate(scale)
    db = Database(
        initial=workload.initial_data(), cc="dr", processing_batch_size=scale // 4
    )
    report = db.run(txns)
    history = history_from_execution(report, txns)
    verdict = ElleChecker().check(history)
    return {
        "serializable": verdict.serializable,
        "num_txns": verdict.num_txns,
        "measured_analysis_seconds": verdict.analysis_seconds,
        "measured_txns_per_second": verdict.txns_per_second,
        "paper_txns_per_second": PAPER["elle_txns_per_second"],
        "paper_scale": paper_scale,
        # Litmus's client verifies a constant-size proof in constant time;
        # Elle's analyzer scales with the trace.
        "litmus_client_verify_seconds": PAPER["verify_seconds"],
    }


def reference_constants(scale: int = 1500) -> dict:
    """Section 8's reported constants next to our modeled equivalents."""
    profile = ycsb_profile(0.6, scale)
    model = LitmusModel(profile)
    scale_factor = zipf_contention_scale(0.6, _SCALED_ROWS)
    drm = model.litmus_run(
        2_621_440, num_provers=_DEFAULT_PROVERS_DRM, cc="dr",
        contention_scale=scale_factor,
        processing_batch_size=_PAPER_PROCESSING_BATCH,
    )
    dr = model.litmus_run(
        81_920, num_provers=1, cc="dr", contention_scale=scale_factor,
        processing_batch_size=_PAPER_PROCESSING_BATCH,
    )
    tpl = model.litmus_run(81_920, num_provers=1, cc="2pl")
    return {
        "drm_peak": {"ours": drm.throughput, "paper": PAPER["drm_peak_ycsb"]},
        "dr_peak": {"ours": dr.throughput, "paper": PAPER["dr_peak_ycsb"]},
        "drm_over_dr": {
            "ours": drm.throughput / dr.throughput,
            "paper": 24.7,
        },
        "dr_over_2pl": {"ours": dr.throughput / tpl.throughput, "paper": 12.6},
        "verify_seconds": {
            "ours": model.cost_model.verify_seconds,
            "paper": PAPER["verify_seconds"],
        },
        "proof_bytes_per_prover": {
            "ours": model.cost_model.proof_bytes_per_prover,
            "paper": PAPER["proof_bytes_per_prover"],
        },
        "proof_bytes_total": {"ours": drm.proof_bytes, "paper": PAPER["proof_bytes_total"]},
        "postgres_reference": {
            "ycsb": PAPER["postgres_ycsb"],
            "new_order": PAPER["postgres_new_order"],
            "payment": PAPER["postgres_payment"],
        },
    }
