"""The trial runner: seeded, bounded, environment-stamped executions.

``run_trial`` executes one :class:`~.spec.TrialSpec`: *warmup* discarded
executions, then *repeats* measured ones, each bounded by the spec's
timeout.  The deterministic counters must agree across repeats (else
:class:`~repro.errors.TrialNondeterminism`); timing metrics are the
per-key median across repeats.  The finished record carries the captured
environment (python version, host, git sha) and the identity hash of
:mod:`.schema`.

``run_areas`` is what ``python -m repro --bench`` calls: it runs every
registered trial of the selected areas, writes the legacy
``benchmarks/results/orchestrated_*.txt`` report and the JSON trial record
from the same in-memory rows, and appends one entry per area to the
``BENCH_<area>.json`` trajectory.
"""

from __future__ import annotations

import datetime as _dt
import os
import platform
import socket
import statistics
import subprocess
import sys
import threading
import time
from pathlib import Path
from typing import Callable, Iterable, Mapping

from ...errors import (
    BenchError,
    TrialExecutionError,
    TrialNondeterminism,
    TrialTimeout,
)
from ..report import format_table
from .schema import SCHEMA_VERSION, finalize_record
from .spec import TrialMatrix, TrialMeasurement, TrialSpec, bench_dir, discover
from .trajectory import append_entry, trajectory_path

__all__ = [
    "capture_environment",
    "git_sha",
    "render_trial_report",
    "results_dir",
    "run_areas",
    "run_trial",
]


def git_sha(root: Path | str | None = None) -> str:
    """HEAD of the repo the trajectory lives in; 'unknown' off-repo."""
    override = os.environ.get("REPRO_BENCH_GIT_SHA")
    if override:
        return override
    cwd = Path(root) if root is not None else Path(__file__).resolve().parents[4]
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=10,
            check=False,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


def capture_environment() -> dict[str, str]:
    """Host facts stamped onto every record (excluded from the hash)."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "host": socket.gethostname(),
        "git_sha": git_sha(),
    }


def _utc_now() -> str:
    return _dt.datetime.now(_dt.timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ")


def _call_bounded(fn: Callable[[], TrialMeasurement], spec: TrialSpec) -> TrialMeasurement:
    """Run one trial execution on a daemon thread with a hard deadline.

    A timed-out trial thread is abandoned (daemon), never joined — the
    orchestrator reports the timeout and moves on.
    """
    box: dict[str, object] = {}

    def target() -> None:
        try:
            box["value"] = fn()
        except BaseException as exc:  # noqa: BLE001 — re-raised on the caller
            box["error"] = exc

    thread = threading.Thread(
        target=target, daemon=True, name=f"trial-{spec.name.replace('/', '-')}"
    )
    thread.start()
    thread.join(spec.timeout_seconds)
    if thread.is_alive():
        raise TrialTimeout(
            f"trial {spec.name!r} exceeded its {spec.timeout_seconds:g}s timeout"
        )
    if "error" in box:
        error = box["error"]
        if isinstance(error, BenchError):
            raise error
        raise TrialExecutionError(f"trial {spec.name!r} failed: {error!r}") from error
    value = box["value"]
    if not isinstance(value, TrialMeasurement):
        raise TrialExecutionError(
            f"trial {spec.name!r} runner returned {type(value).__name__}, "
            "expected TrialMeasurement"
        )
    return value


def run_trial(spec: TrialSpec) -> dict:
    """Execute one spec end to end and return the finalized record."""
    started_at = _utc_now()
    start = time.perf_counter()

    def once() -> TrialMeasurement:
        return _call_bounded(
            lambda: spec.runner(config=dict(spec.config), seed=spec.seed), spec
        )

    for _ in range(spec.warmup):
        once()

    measurements = [once() for _ in range(spec.repeats)]
    elapsed = time.perf_counter() - start

    counts = dict(measurements[0].counts)
    for index, measurement in enumerate(measurements[1:], start=2):
        if dict(measurement.counts) != counts:
            raise TrialNondeterminism(
                f"trial {spec.name!r}: repeat {index} produced counts "
                f"{dict(measurement.counts)} != repeat 1 counts {counts} "
                f"(seed {spec.seed})"
            )

    metric_keys = set(measurements[0].metrics)
    for index, measurement in enumerate(measurements[1:], start=2):
        if set(measurement.metrics) != metric_keys:
            raise TrialExecutionError(
                f"trial {spec.name!r}: repeat {index} reported different "
                f"metric names than repeat 1"
            )
    metrics = {
        key: float(statistics.median(float(m.metrics[key]) for m in measurements))
        for key in sorted(metric_keys)
    }

    return finalize_record(
        {
            "schema_version": SCHEMA_VERSION,
            "trial": spec.name,
            "area": spec.area,
            "bench_file": spec.bench_file,
            "seed": spec.seed,
            "config": dict(spec.config),
            "warmup": spec.warmup,
            "repeats": spec.repeats,
            "headline": list(spec.headline),
            "counts": counts,
            "metrics": metrics,
            "rows": [dict(row) for row in measurements[-1].rows],
            "env": capture_environment(),
            "started_at": started_at,
            "elapsed_seconds": round(elapsed, 6),
        }
    )


def render_trial_report(record: Mapping) -> str:
    """The legacy text report, derived *only* from the JSON record.

    Both the orchestrator's ``.txt`` output and the txt/JSON agreement test
    call this, so the two artifacts cannot drift: they are renderings of
    the same rows.
    """
    header = (
        f"{record['trial']} — orchestrated trial "
        f"(seed {record['seed']}, repeats {record['repeats']})"
    )
    metrics = record["metrics"]
    metric_lines = [
        f"  {name}: {metrics[name]:.6g}"
        + ("  [headline]" if name in record["headline"] else "")
        for name in sorted(metrics)
    ]
    counts = record["counts"]
    count_line = "  " + "  ".join(f"{k}={counts[k]}" for k in sorted(counts))
    if record["rows"]:
        # Canonical column order: the trajectory file stores rows with
        # sorted keys, so the rendering must not depend on dict order.
        columns = sorted({key for row in record["rows"] for key in row})
        body = format_table(record["rows"], columns=columns)
    else:
        body = "(no rows)"
    return "\n".join([header, body, "", "metrics:", *metric_lines, "counts:", count_line, ""])


def results_dir() -> Path:
    """Where the legacy per-trial text reports go."""
    override = os.environ.get("REPRO_BENCH_RESULTS")
    if override:
        return Path(override)
    return bench_dir() / "results"


def run_areas(
    areas: Iterable[str] | None = None,
    *,
    matrix: TrialMatrix | None = None,
    root: Path | str | None = None,
    results: Path | str | None = None,
    bless: bool = False,
    echo: Callable[[str], None] | None = None,
) -> dict[str, list[dict]]:
    """Run the matrix for *areas* (default: every registered area).

    Per area: every trial runs, the text report and the trajectory entry
    are written from the same in-memory records, and the appended entry is
    stamped with the current git sha.  Returns ``{area: [records]}``.
    """
    say = echo if echo is not None else (lambda message: None)
    matrix = matrix if matrix is not None else discover()
    chosen = tuple(areas) if areas is not None else matrix.areas()
    out_results = Path(results) if results is not None else results_dir()
    out_results.mkdir(parents=True, exist_ok=True)
    sha = git_sha(root)
    recorded: dict[str, list[dict]] = {}
    for area in chosen:
        records: list[dict] = []
        for spec in matrix.for_area(area):
            say(f"[bench] {spec.name} (seed {spec.seed}, config {dict(spec.config)})")
            record = run_trial(spec)
            records.append(record)
            txt_path = out_results / (
                "orchestrated_" + spec.name.replace("/", "_") + ".txt"
            )
            txt_path.write_text(render_trial_report(record), encoding="utf-8")
            say(
                f"[bench]   {record['elapsed_seconds']:.2f}s; report {txt_path}"
            )
        entry = append_entry(
            area,
            records,
            git_sha=sha,
            recorded_at=_utc_now(),
            blessed=bless,
            root=root,
        )
        say(
            f"[bench] {trajectory_path(area, root)}: appended entry for "
            f"{entry['git_sha'][:12]} ({len(records)} trial(s)"
            + (", blessed)" if bless else ")")
        )
        recorded[area] = records
    return recorded
