"""Experiment orchestrator: the trial matrix behind ``python -m repro --bench``.

The 16 ad-hoc ``benchmarks/bench_*.py`` scripts each register one (or more)
:class:`TrialSpec` — workload × backend × configuration declared as *data*
— into a process-wide registry.  The orchestrator (:mod:`.runner`) executes
registered trials with fixed seeds, per-trial timeouts, and warmup/repeat
counts, captures the environment (python version, host, git sha), and
persists schema-validated records (:mod:`.schema`) to append-only
``BENCH_<area>.json`` trajectories at the repo root (:mod:`.trajectory`).
:mod:`repro.bench.gate` then compares the newest trajectory entry against
the baseline and fails CI on headline perf regressions.

Orchestrated and ad-hoc paths share one code path: every registered runner
reuses the same functions the pytest benchmarks call, and each orchestrated
run writes both the legacy ``benchmarks/results/*.txt`` report and the JSON
trial record from the same in-memory rows.
"""

from .spec import (
    TrialMatrix,
    TrialMeasurement,
    TrialSpec,
    bench_dir,
    discover,
    register,
    repo_root,
    trial_matrix,
)
from .schema import (
    SCHEMA_VERSION,
    decode_record,
    encode_record,
    finalize_record,
    record_hash,
    validate_record,
)
from .trajectory import (
    append_entry,
    load_trajectory,
    trajectory_areas,
    trajectory_path,
    validate_trajectory,
)
from .runner import (
    capture_environment,
    render_trial_report,
    run_areas,
    run_trial,
)
from .counts import tpcc_counts, ycsb_counts

__all__ = [
    "SCHEMA_VERSION",
    "TrialMatrix",
    "TrialMeasurement",
    "TrialSpec",
    "append_entry",
    "bench_dir",
    "capture_environment",
    "decode_record",
    "discover",
    "encode_record",
    "finalize_record",
    "load_trajectory",
    "record_hash",
    "register",
    "render_trial_report",
    "repo_root",
    "run_areas",
    "run_trial",
    "tpcc_counts",
    "trajectory_areas",
    "trajectory_path",
    "trial_matrix",
    "validate_record",
    "validate_trajectory",
    "ycsb_counts",
]
