"""Deterministic execution counters for workload-driven trials.

The figure benchmarks model paper-scale *timing*, but the underlying
scaled executions are real and seeded — the committed-transaction, batch
(schedule round), and conflict counts they produce are exactly
reproducible.  Trials store these counters in ``counts`` (part of the
record identity hash), which is what makes the determinism contract of
:mod:`.runner` checkable at all.
"""

from __future__ import annotations

from ...db.database import Database
from ...workloads.tpcc import TPCCWorkload
from ...workloads.ycsb import YCSBWorkload

__all__ = ["tpcc_counts", "ycsb_counts"]


def _run_counts(txns, initial, processing_batch_size: int) -> dict[str, int]:
    db = Database(
        initial=dict(initial),
        cc="dr",
        processing_batch_size=processing_batch_size,
        num_threads=4,
    )
    report = db.run(list(txns))
    return {
        "txns": int(report.stats.committed),
        "batches": int(len(report.schedule)),
        "conflicts": int(report.stats.aborted_retries),
    }


def ycsb_counts(
    scale: int, theta: float = 0.6, rows: int = 4096, seed: int = 11
) -> dict[str, int]:
    """Counters of the same seeded YCSB run the figure profiles measure."""
    workload = YCSBWorkload(num_rows=rows, theta=theta, seed=seed)
    txns = workload.generate(scale)
    return _run_counts(txns, workload.initial_data(), max(64, scale // 4))


def tpcc_counts(kind: str, scale: int, seed: int = 13) -> dict[str, int]:
    """Counters of the seeded TPC-C run behind the Fig 4 trials."""
    workload = TPCCWorkload(
        num_warehouses=8, num_items=200, order_lines=10, seed=seed
    )
    if kind == "new_order":
        txns = workload.generate_new_orders(scale)
    else:
        txns = workload.generate_payments(scale)
    return _run_counts(txns, workload.initial_data(), max(32, scale // 4))
