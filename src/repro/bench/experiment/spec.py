"""Trial declarations: benchmarks as data (after benchalot's ``Benchmark``).

A :class:`TrialSpec` names one orchestrated benchmark run — which
``benchmarks/bench_*.py`` file owns it, the configuration point of the
workload × backend × knob matrix it pins (provers, fsync policy, batch
size, scale), the seed, the warmup/repeat counts, the timeout, and which
metrics are *headline* (gated by :mod:`repro.bench.gate`).  The runner
callable reuses the exact functions the pytest benchmark in the same file
calls, so the orchestrated and ad-hoc paths cannot drift apart.

Registration happens at import time of the bench file; :func:`discover`
imports every ``benchmarks/bench_*.py`` so the matrix is always complete —
a bench file that forgets to register fails the registry-completeness test
by name.
"""

from __future__ import annotations

import importlib.util
import json
import os
import re
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterator, Mapping

from ...errors import TrialSpecError

__all__ = [
    "TrialMatrix",
    "TrialMeasurement",
    "TrialSpec",
    "bench_dir",
    "discover",
    "register",
    "repo_root",
    "trial_matrix",
]

_NAME_RE = re.compile(r"^[a-z0-9_]+/[a-z0-9_]+$")
_AREA_RE = re.compile(r"^[a-z0-9_]+$")

# Bench modules are imported under this synthetic package prefix so a second
# discovery (or a discovery racing a pytest collection of benchmarks/) never
# executes the same file twice under the orchestrator's name.
_MODULE_PREFIX = "litmus_bench_targets"


@dataclass(frozen=True)
class TrialMeasurement:
    """What one execution of a trial runner returns.

    ``rows`` are the report rows (the same in-memory rows the legacy
    ``benchmarks/results/*.txt`` table is rendered from); ``counts`` are
    the deterministic counters of the seeded run (txns, batches,
    conflicts, fsyncs, ...) — identical across repeats by contract;
    ``metrics`` are the timing-derived numbers (throughput, latency_*)
    that the gate compares but the identity hash ignores.
    """

    rows: tuple[Mapping[str, Any], ...]
    counts: Mapping[str, int]
    metrics: Mapping[str, float]


@dataclass(frozen=True)
class TrialSpec:
    """One declared point of the experiment matrix."""

    name: str  # "<area>/<slug>", e.g. "wal/append_fsync"
    area: str  # trajectory file: BENCH_<area>.json
    bench_file: str  # owning benchmarks/bench_*.py file name
    runner: Callable[..., TrialMeasurement] = field(compare=False)
    config: Mapping[str, Any] = field(default_factory=dict)
    seed: int = 7
    warmup: int = 0
    repeats: int = 1
    timeout_seconds: float = 300.0
    headline: tuple[str, ...] = ()
    description: str = ""

    def __post_init__(self) -> None:
        if not _NAME_RE.match(self.name):
            raise TrialSpecError(
                f"trial name {self.name!r} must look like '<area>/<slug>' "
                "(lowercase, digits, underscores)"
            )
        if not _AREA_RE.match(self.area):
            raise TrialSpecError(f"trial area {self.area!r} is not a valid slug")
        if not self.name.startswith(self.area + "/"):
            raise TrialSpecError(
                f"trial {self.name!r} must be prefixed by its area {self.area!r}"
            )
        if not self.bench_file.startswith("bench_") or not self.bench_file.endswith(
            ".py"
        ):
            raise TrialSpecError(
                f"trial {self.name!r}: bench_file {self.bench_file!r} must be a "
                "benchmarks/bench_*.py file name"
            )
        if self.repeats < 1:
            raise TrialSpecError(f"trial {self.name!r}: repeats must be >= 1")
        if self.warmup < 0:
            raise TrialSpecError(f"trial {self.name!r}: warmup must be >= 0")
        if self.timeout_seconds <= 0:
            raise TrialSpecError(f"trial {self.name!r}: timeout must be positive")

    def identity(self) -> tuple:
        """Everything that defines the trial except the runner callable.

        Re-importing a bench file under a second module name (pytest and the
        orchestrator use different ones) produces a *different* function
        object for the same trial; identity is what must not conflict.
        """
        return (
            self.name,
            self.area,
            self.bench_file,
            json.dumps(dict(self.config), sort_keys=True, default=str),
            self.seed,
            self.warmup,
            self.repeats,
            self.timeout_seconds,
            tuple(self.headline),
        )


_REGISTRY: dict[str, TrialSpec] = {}


def register(spec: TrialSpec) -> TrialSpec:
    """Add *spec* to the process-wide matrix (idempotent per identity).

    A re-registration with the same identity (the same bench file imported
    again under another module name) refreshes the runner callable; a
    conflicting one raises :class:`TrialSpecError` naming the trial.
    """
    existing = _REGISTRY.get(spec.name)
    if existing is not None and existing.identity() != spec.identity():
        raise TrialSpecError(
            f"trial {spec.name!r} already registered by {existing.bench_file} "
            "with different parameters"
        )
    _REGISTRY[spec.name] = spec
    return spec


@dataclass(frozen=True)
class TrialMatrix:
    """An immutable snapshot of registered trials."""

    specs: tuple[TrialSpec, ...]

    def __iter__(self) -> Iterator[TrialSpec]:
        return iter(self.specs)

    def __len__(self) -> int:
        return len(self.specs)

    def areas(self) -> tuple[str, ...]:
        return tuple(sorted({spec.area for spec in self.specs}))

    def for_area(self, area: str) -> tuple[TrialSpec, ...]:
        chosen = tuple(s for s in self.specs if s.area == area)
        if not chosen:
            raise TrialSpecError(
                f"no trials registered for area {area!r} "
                f"(known areas: {', '.join(self.areas()) or 'none'})"
            )
        return chosen

    def get(self, name: str) -> TrialSpec:
        for spec in self.specs:
            if spec.name == name:
                return spec
        raise TrialSpecError(f"unknown trial {name!r}")

    def bench_files(self) -> tuple[str, ...]:
        return tuple(sorted({spec.bench_file for spec in self.specs}))


def trial_matrix() -> TrialMatrix:
    """Snapshot of everything registered so far (without discovery)."""
    return TrialMatrix(specs=tuple(sorted(_REGISTRY.values(), key=lambda s: s.name)))


def repo_root() -> Path:
    """The repository root (where ``BENCH_<area>.json`` files live).

    ``REPRO_BENCH_ROOT`` overrides the layout-derived default — tests and
    scratch runs point it at a temporary directory.
    """
    override = os.environ.get("REPRO_BENCH_ROOT")
    if override:
        return Path(override)
    # src/repro/bench/experiment/spec.py -> repo root is four levels up.
    return Path(__file__).resolve().parents[4]


def bench_dir() -> Path:
    """Where the registered bench files live (``<repo>/benchmarks``)."""
    override = os.environ.get("REPRO_BENCH_DIR")
    if override:
        return Path(override)
    return Path(__file__).resolve().parents[4] / "benchmarks"


def _import_bench_module(path: Path):
    module_name = f"{_MODULE_PREFIX}.{path.stem}"
    if module_name in sys.modules:
        return sys.modules[module_name]
    module_spec = importlib.util.spec_from_file_location(module_name, path)
    if module_spec is None or module_spec.loader is None:
        raise TrialSpecError(f"cannot load bench target {path}")
    module = importlib.util.module_from_spec(module_spec)
    sys.modules[module_name] = module
    try:
        module_spec.loader.exec_module(module)
    except TrialSpecError:
        sys.modules.pop(module_name, None)
        raise
    except Exception as exc:
        sys.modules.pop(module_name, None)
        raise TrialSpecError(f"bench target {path.name} failed to import: {exc}") from exc
    return module


def discover(directory: Path | str | None = None) -> TrialMatrix:
    """Import every ``bench_*.py`` under *directory* and return the matrix.

    Import is what registers trials, so after discovery the matrix is the
    ground truth of what the orchestrator can run — and the completeness
    test can diff it against the file listing.
    """
    directory = Path(directory) if directory is not None else bench_dir()
    if not directory.is_dir():
        raise TrialSpecError(f"bench directory {directory} does not exist")
    for path in sorted(directory.glob("bench_*.py")):
        _import_bench_module(path)
    return trial_matrix()
