"""Append-only ``BENCH_<area>.json`` trajectories at the repo root.

Each trajectory holds the per-commit history of one benchmark area: an
ordered list of entries, each keyed by the git sha it was recorded at and
carrying the schema-validated trial records of that run.  The file is
never rewritten in place except to append (plus the ``blessed`` flag an
operator sets to pin an intentional baseline) — the gate walks the entry
list newest-first.

Every read path raises typed errors: a damaged file is a
:class:`~repro.errors.TrajectoryError`, a future format is a
:class:`~repro.errors.SchemaVersionError` — callers never see raw
``json``/``KeyError`` internals.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Iterable, Mapping

from ...errors import BenchSchemaError, SchemaVersionError, TrajectoryError
from .schema import SCHEMA_VERSION, validate_record
from .spec import repo_root

__all__ = [
    "append_entry",
    "baseline_entry",
    "load_trajectory",
    "new_trajectory",
    "trajectory_areas",
    "trajectory_path",
    "validate_trajectory",
    "write_trajectory",
]

_ENTRY_FIELDS = {"git_sha", "recorded_at", "blessed", "trials"}


def trajectory_path(area: str, root: Path | str | None = None) -> Path:
    base = Path(root) if root is not None else repo_root()
    return base / f"BENCH_{area}.json"


def trajectory_areas(root: Path | str | None = None) -> tuple[str, ...]:
    """Areas that have a trajectory file at *root*, by file listing."""
    base = Path(root) if root is not None else repo_root()
    return tuple(
        sorted(path.name[len("BENCH_") : -len(".json")] for path in base.glob("BENCH_*.json"))
    )


def new_trajectory(area: str) -> dict:
    return {"schema_version": SCHEMA_VERSION, "area": area, "entries": []}


def validate_trajectory(doc: Any, *, path: str = "<trajectory>") -> None:
    """Validate a whole trajectory document, including every record."""
    if not isinstance(doc, dict):
        raise TrajectoryError(f"{path}: trajectory must be a JSON object")
    unknown = set(doc) - {"schema_version", "area", "entries"}
    if unknown:
        raise TrajectoryError(
            f"{path}: unknown trajectory field(s): {', '.join(sorted(unknown))}"
        )
    version = doc.get("schema_version")
    if not isinstance(version, int) or isinstance(version, bool) or version != SCHEMA_VERSION:
        raise SchemaVersionError(
            f"{path}: trajectory schema_version {version!r} != supported {SCHEMA_VERSION}",
            found=version,
            expected=SCHEMA_VERSION,
        )
    area = doc.get("area")
    if not isinstance(area, str) or not area:
        raise TrajectoryError(f"{path}: 'area' must be a non-empty string")
    entries = doc.get("entries")
    if not isinstance(entries, list):
        raise TrajectoryError(f"{path}: 'entries' must be a list")
    for index, entry in enumerate(entries):
        label = f"{path}: entries[{index}]"
        if not isinstance(entry, dict):
            raise TrajectoryError(f"{label} must be a JSON object")
        if set(entry) != _ENTRY_FIELDS:
            raise TrajectoryError(
                f"{label} must have exactly the fields "
                f"{', '.join(sorted(_ENTRY_FIELDS))}"
            )
        if not isinstance(entry["git_sha"], str) or not entry["git_sha"]:
            raise TrajectoryError(f"{label}: 'git_sha' must be a non-empty string")
        if not isinstance(entry["recorded_at"], str) or not entry["recorded_at"]:
            raise TrajectoryError(f"{label}: 'recorded_at' must be a non-empty string")
        if not isinstance(entry["blessed"], bool):
            raise TrajectoryError(f"{label}: 'blessed' must be a boolean")
        trials = entry["trials"]
        if not isinstance(trials, dict) or not trials:
            raise TrajectoryError(f"{label}: 'trials' must be a non-empty object")
        for name, record in trials.items():
            try:
                validate_record(record)
            except SchemaVersionError:
                raise
            except BenchSchemaError as exc:
                raise TrajectoryError(f"{label}: trial {name!r}: {exc}") from exc
            if record["trial"] != name:
                raise TrajectoryError(
                    f"{label}: trial keyed {name!r} but record says "
                    f"{record['trial']!r}"
                )
            if record["area"] != area:
                raise TrajectoryError(
                    f"{label}: trial {name!r} belongs to area "
                    f"{record['area']!r}, not {area!r}"
                )


def load_trajectory(path: Path | str) -> dict:
    """Read and fully validate one trajectory file."""
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise TrajectoryError(f"cannot read trajectory {path}: {exc}") from exc
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        raise TrajectoryError(f"trajectory {path} is not valid JSON: {exc}") from exc
    validate_trajectory(doc, path=str(path))
    return doc


def write_trajectory(path: Path | str, doc: Mapping[str, Any]) -> None:
    """Validate and atomically replace the trajectory file."""
    path = Path(path)
    validate_trajectory(dict(doc), path=str(path))
    text = json.dumps(doc, indent=1, sort_keys=True) + "\n"
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(text, encoding="utf-8")
    os.replace(tmp, path)


def append_entry(
    area: str,
    records: Iterable[Mapping[str, Any]],
    *,
    git_sha: str,
    recorded_at: str,
    blessed: bool = False,
    root: Path | str | None = None,
) -> dict:
    """Append one run's records as a new trajectory entry; returns the entry.

    A missing trajectory file starts a fresh one; an existing file is fully
    validated before the append so a corrupt trajectory can never be
    silently extended.
    """
    path = trajectory_path(area, root)
    doc = load_trajectory(path) if path.exists() else new_trajectory(area)
    if doc["area"] != area:
        raise TrajectoryError(
            f"trajectory {path} is for area {doc['area']!r}, not {area!r}"
        )
    trials = {record["trial"]: dict(record) for record in records}
    if not trials:
        raise TrajectoryError(f"refusing to append an empty entry to {path}")
    entry = {
        "git_sha": git_sha,
        "recorded_at": recorded_at,
        "blessed": bool(blessed),
        "trials": trials,
    }
    doc["entries"].append(entry)
    write_trajectory(path, doc)
    return entry


def baseline_entry(doc: Mapping[str, Any]) -> Mapping[str, Any] | None:
    """The entry the newest one is gated against.

    The latest *blessed* entry among the predecessors wins (that is what
    blessing an intentional regression means); with no blessed entry the
    immediate predecessor is the baseline; with fewer than two entries
    there is no baseline at all.
    """
    entries = doc["entries"]
    if len(entries) < 2:
        return None
    for entry in reversed(entries[:-1]):
        if entry["blessed"]:
            return entry
    return entries[-2]
