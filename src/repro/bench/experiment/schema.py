"""Versioned trial-record schema: validation, canonical encoding, hashing.

A trial record is a flat JSON object with a fixed field set (unknown fields
are rejected — a renamed metric cannot slip into a trajectory silently).
The schema is hand-rolled as data + checks, like
``benchmarks/check_metrics_schema.py``: the repo takes no jsonschema
dependency on purpose.

Fields split into two classes:

- **identity fields** (``schema_version``, ``trial``, ``area``,
  ``bench_file``, ``seed``, ``config``, ``warmup``, ``repeats``,
  ``headline``, ``counts``) — deterministic for a seeded trial; their
  canonical JSON is hashed into ``record_hash``, so two runs of the same
  :class:`~.spec.TrialSpec` produce the *same* hash;
- **timing fields** (``metrics``, ``rows``, ``env``, ``started_at``,
  ``elapsed_seconds``) — wall-clock- and host-dependent; excluded from the
  hash but still type-checked.

``decode_record`` re-derives the hash and rejects records whose identity
fields were tampered with, with typed errors throughout
(:class:`~repro.errors.BenchSchemaError`,
:class:`~repro.errors.SchemaVersionError`) — never a raw ``KeyError``.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Mapping

from ...errors import BenchSchemaError, SchemaVersionError

__all__ = [
    "HASH_FIELDS",
    "RECORD_FIELDS",
    "SCHEMA_VERSION",
    "TIMING_FIELDS",
    "canonical_json",
    "decode_record",
    "encode_record",
    "finalize_record",
    "record_hash",
    "validate_record",
]

SCHEMA_VERSION = 1

# Identity fields, in canonical (hash) order.
HASH_FIELDS = (
    "schema_version",
    "trial",
    "area",
    "bench_file",
    "seed",
    "config",
    "warmup",
    "repeats",
    "headline",
    "counts",
)

# Host/wall-clock dependent fields: type-checked, never hashed.
TIMING_FIELDS = ("metrics", "rows", "env", "started_at", "elapsed_seconds")

RECORD_FIELDS = HASH_FIELDS + TIMING_FIELDS + ("record_hash",)

_SCALAR_TYPES = (str, int, float, bool)


def canonical_json(value: Any) -> str:
    """Deterministic JSON: sorted keys, no whitespace, no NaN."""
    try:
        return json.dumps(
            value, sort_keys=True, separators=(",", ":"), allow_nan=False
        )
    except (TypeError, ValueError) as exc:
        raise BenchSchemaError(f"value is not canonically JSON-encodable: {exc}") from exc


def record_hash(record: Mapping[str, Any]) -> str:
    """SHA-256 over the canonical JSON of the identity fields only."""
    try:
        identity = {name: record[name] for name in HASH_FIELDS}
    except KeyError as exc:
        raise BenchSchemaError(f"record is missing identity field {exc.args[0]!r}") from exc
    digest = hashlib.sha256(canonical_json(identity).encode("utf-8")).hexdigest()
    return f"sha256:{digest}"


def _expect(condition: bool, message: str) -> None:
    if not condition:
        raise BenchSchemaError(message)


def _check_config_value(value: Any, label: str) -> None:
    if isinstance(value, list):
        for index, item in enumerate(value):
            _check_config_value(item, f"{label}[{index}]")
        return
    _expect(
        value is None or isinstance(value, _SCALAR_TYPES),
        f"{label} must be a JSON scalar or a list of scalars",
    )


def validate_record(record: Any) -> None:
    """Typed validation of one trial record; raises on the first defect."""
    _expect(isinstance(record, dict), "trial record must be a JSON object")
    unknown = set(record) - set(RECORD_FIELDS)
    _expect(not unknown, f"unknown record field(s): {', '.join(sorted(unknown))}")
    missing = set(RECORD_FIELDS) - set(record)
    _expect(not missing, f"missing record field(s): {', '.join(sorted(missing))}")

    version = record["schema_version"]
    if not isinstance(version, int) or isinstance(version, bool) or version != SCHEMA_VERSION:
        raise SchemaVersionError(
            f"record schema_version {version!r} != supported {SCHEMA_VERSION}",
            found=version,
            expected=SCHEMA_VERSION,
        )

    for name in ("trial", "area", "bench_file", "started_at"):
        _expect(
            isinstance(record[name], str) and record[name],
            f"{name!r} must be a non-empty string",
        )
    _expect("/" in record["trial"], "'trial' must be '<area>/<slug>'")
    _expect(
        record["trial"].split("/", 1)[0] == record["area"],
        f"trial {record['trial']!r} is not in area {record['area']!r}",
    )

    for name in ("seed", "warmup", "repeats"):
        value = record[name]
        _expect(
            isinstance(value, int) and not isinstance(value, bool),
            f"{name!r} must be an integer",
        )
    _expect(record["warmup"] >= 0, "'warmup' must be >= 0")
    _expect(record["repeats"] >= 1, "'repeats' must be >= 1")

    _expect(isinstance(record["config"], dict), "'config' must be a JSON object")
    for key, value in record["config"].items():
        _expect(isinstance(key, str) and key, "'config' keys must be non-empty strings")
        _check_config_value(value, f"config[{key!r}]")

    counts = record["counts"]
    _expect(isinstance(counts, dict) and counts, "'counts' must be a non-empty object")
    for key, value in counts.items():
        _expect(isinstance(key, str) and key, "'counts' keys must be non-empty strings")
        _expect(
            isinstance(value, int) and not isinstance(value, bool) and value >= 0,
            f"counts[{key!r}] must be a non-negative integer",
        )

    metrics = record["metrics"]
    _expect(isinstance(metrics, dict), "'metrics' must be a JSON object")
    for key, value in metrics.items():
        _expect(isinstance(key, str) and key, "'metrics' keys must be non-empty strings")
        _expect(
            isinstance(value, (int, float)) and not isinstance(value, bool),
            f"metrics[{key!r}] must be a number",
        )

    headline = record["headline"]
    _expect(
        isinstance(headline, list)
        and all(isinstance(name, str) and name for name in headline),
        "'headline' must be a list of metric names",
    )
    for name in headline:
        _expect(name in metrics, f"headline metric {name!r} is not in 'metrics'")

    rows = record["rows"]
    _expect(isinstance(rows, list), "'rows' must be a list of objects")
    for index, row in enumerate(rows):
        _expect(isinstance(row, dict) and row, f"rows[{index}] must be a non-empty object")
        for key, value in row.items():
            _expect(
                isinstance(key, str) and key,
                f"rows[{index}] keys must be non-empty strings",
            )
            _expect(
                isinstance(value, _SCALAR_TYPES),
                f"rows[{index}][{key!r}] must be a JSON scalar",
            )

    env = record["env"]
    _expect(isinstance(env, dict) and env, "'env' must be a non-empty object")
    for key, value in env.items():
        _expect(
            isinstance(key, str) and key and isinstance(value, str),
            "'env' must map non-empty strings to strings",
        )

    elapsed = record["elapsed_seconds"]
    _expect(
        isinstance(elapsed, (int, float))
        and not isinstance(elapsed, bool)
        and elapsed >= 0,
        "'elapsed_seconds' must be a non-negative number",
    )

    stated = record["record_hash"]
    _expect(
        isinstance(stated, str) and stated.startswith("sha256:"),
        "'record_hash' must be a 'sha256:...' string",
    )
    expected = record_hash(record)
    _expect(
        stated == expected,
        f"record_hash mismatch: stated {stated}, identity fields hash to {expected}",
    )


def finalize_record(partial: Mapping[str, Any]) -> dict:
    """Stamp ``record_hash`` onto an un-hashed record and validate it."""
    record = dict(partial)
    record["record_hash"] = record_hash(record)
    validate_record(record)
    return record


def encode_record(record: Mapping[str, Any]) -> str:
    """Validate and render one record as canonical JSON."""
    record = dict(record)
    validate_record(record)
    return canonical_json(record)


def decode_record(text: str) -> dict:
    """Parse and validate one record; every failure mode is typed."""
    try:
        record = json.loads(text)
    except json.JSONDecodeError as exc:
        raise BenchSchemaError(f"trial record is not valid JSON: {exc}") from exc
    validate_record(record)
    return record
