"""Perf-regression gate over the ``BENCH_<area>.json`` trajectories.

The gate loads each area's trajectory, picks the baseline entry (latest
*blessed* predecessor, else the immediate predecessor — see
:func:`~repro.bench.experiment.trajectory.baseline_entry`), and compares
every *headline* metric of the newest entry against it:

- throughput-style metrics (higher is better) fail on a drop of more than
  15%;
- ``latency*`` metrics (lower is better) fail on a rise of more than 20%.

Within the noise band a change is OK; beyond the band in the *good*
direction it is reported as an improvement.  A trajectory with fewer than
two entries has no baseline and passes with a note — the first recorded
run can never fail its own gate.

Run it standalone (CI does)::

    PYTHONPATH=src python -m repro.bench.gate [--area wal ...] \
        [--mode report|enforce] [--root DIR]

or through the main CLI as ``python -m repro --bench-gate``.  Enforcing
mode exits 1 with a human-readable diff report when any regression is
found; report mode prints the same report but always exits 0 (CI uses it
on pull requests, enforcing on main).

To bless an intentional regression, re-record with
``python -m repro --bench --bless``: the blessed entry becomes the pinned
baseline for every later gate run.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping, Sequence

from ..errors import BenchError, TrajectoryError
from .experiment.trajectory import (
    baseline_entry,
    load_trajectory,
    trajectory_areas,
    trajectory_path,
)

__all__ = [
    "GateReport",
    "GateThresholds",
    "MetricCheck",
    "compare_entries",
    "format_report",
    "gate_areas",
    "gate_trajectory",
    "main",
    "metric_direction",
]

THROUGHPUT_DROP_LIMIT = 0.15
LATENCY_RISE_LIMIT = 0.20


@dataclass(frozen=True)
class GateThresholds:
    """Relative regression limits on the headline metrics."""

    throughput_drop: float = THROUGHPUT_DROP_LIMIT
    latency_rise: float = LATENCY_RISE_LIMIT


def metric_direction(name: str) -> str:
    """'lower' for latency-style metrics, 'higher' for everything else."""
    return "lower" if name.startswith("latency") else "higher"


@dataclass(frozen=True)
class MetricCheck:
    """One gated (area, trial, metric) comparison."""

    area: str
    trial: str
    metric: str
    baseline: float
    current: float
    change: float  # relative: (current - baseline) / baseline
    limit: float  # the relative threshold that applied
    status: str  # "ok" | "regression" | "improvement"

    @property
    def direction(self) -> str:
        return metric_direction(self.metric)


@dataclass
class GateReport:
    """Everything one gate run decided."""

    checks: list[MetricCheck] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    @property
    def regressions(self) -> list[MetricCheck]:
        return [check for check in self.checks if check.status == "regression"]

    @property
    def failed(self) -> bool:
        return bool(self.regressions)


def _check_metric(
    area: str,
    trial: str,
    metric: str,
    baseline: float,
    current: float,
    thresholds: GateThresholds,
) -> MetricCheck:
    change = (current - baseline) / baseline
    if metric_direction(metric) == "lower":
        limit = thresholds.latency_rise
        if change > limit:
            status = "regression"
        elif change < -limit:
            status = "improvement"
        else:
            status = "ok"
    else:
        limit = thresholds.throughput_drop
        if change < -limit:
            status = "regression"
        elif change > limit:
            status = "improvement"
        else:
            status = "ok"
    return MetricCheck(
        area=area,
        trial=trial,
        metric=metric,
        baseline=baseline,
        current=current,
        change=change,
        limit=limit,
        status=status,
    )


def compare_entries(
    area: str,
    baseline: Mapping,
    current: Mapping,
    thresholds: GateThresholds,
    report: GateReport,
) -> None:
    """Append the checks for one (baseline entry, current entry) pair."""
    for name, record in sorted(current["trials"].items()):
        base_record = baseline["trials"].get(name)
        if base_record is None:
            report.notes.append(
                f"{area}: trial {name!r} is new (not in baseline entry "
                f"{baseline['git_sha'][:12]}) — not gated"
            )
            continue
        for metric in record["headline"]:
            if metric not in base_record["metrics"]:
                report.notes.append(
                    f"{area}: {name} headline metric {metric!r} missing from "
                    "the baseline record — not gated"
                )
                continue
            base_value = float(base_record["metrics"][metric])
            value = float(record["metrics"][metric])
            if base_value <= 0:
                report.notes.append(
                    f"{area}: {name} {metric} baseline is {base_value:g} — "
                    "not gated"
                )
                continue
            report.checks.append(
                _check_metric(area, name, metric, base_value, value, thresholds)
            )
    for name in sorted(set(baseline["trials"]) - set(current["trials"])):
        report.notes.append(
            f"{area}: trial {name!r} present in the baseline but missing from "
            "the newest entry"
        )


def gate_trajectory(
    doc: Mapping, thresholds: GateThresholds, report: GateReport
) -> None:
    """Gate one loaded trajectory document into *report*."""
    area = doc["area"]
    entries = doc["entries"]
    if not entries:
        report.notes.append(f"{area}: trajectory has no entries — nothing to gate")
        return
    baseline = baseline_entry(doc)
    if baseline is None:
        report.notes.append(
            f"{area}: no baseline yet (single entry "
            f"{entries[-1]['git_sha'][:12]}) — PASS by default"
        )
        return
    current = entries[-1]
    report.notes.append(
        f"{area}: gating {current['git_sha'][:12]} against "
        f"{baseline['git_sha'][:12]}"
        + (" (blessed baseline)" if baseline["blessed"] else "")
    )
    compare_entries(area, baseline, current, thresholds, report)


def gate_areas(
    areas: Sequence[str] | None = None,
    *,
    root: Path | str | None = None,
    thresholds: GateThresholds | None = None,
) -> GateReport:
    """Gate the trajectories of *areas* (default: every BENCH_*.json)."""
    thresholds = thresholds or GateThresholds()
    chosen = tuple(areas) if areas else trajectory_areas(root)
    if not chosen:
        raise TrajectoryError(
            "no BENCH_*.json trajectories found — run `python -m repro --bench` first"
        )
    report = GateReport()
    for area in chosen:
        doc = load_trajectory(trajectory_path(area, root))
        gate_trajectory(doc, thresholds, report)
    return report


def format_report(report: GateReport) -> str:
    """Human-readable gate verdict: one line per check, notes, summary."""
    lines = ["Perf gate — newest trajectory entry vs baseline"]
    for note in report.notes:
        lines.append(f"  note: {note}")
    if report.checks:
        lines.append(
            f"  {'verdict':<12} {'trial':<28} {'metric':<18} "
            f"{'baseline':>12} {'current':>12} {'change':>8}"
        )
    for check in report.checks:
        limit_label = (
            f"drop > {check.limit:.0%}"
            if check.direction == "higher"
            else f"rise > {check.limit:.0%}"
        )
        lines.append(
            f"  {check.status.upper():<12} {check.trial:<28} "
            f"{check.metric:<18} {check.baseline:>12.4g} {check.current:>12.4g} "
            f"{check.change:>+7.1%}"
            + (
                f"  (limit: {limit_label})"
                if check.status == "regression"
                else ""
            )
        )
    if report.failed:
        worst = max(report.regressions, key=lambda c: abs(c.change))
        lines.append(
            f"GATE FAILED: {len(report.regressions)} headline regression(s); "
            f"worst: {worst.trial} {worst.metric} {worst.change:+.1%} "
            f"(limit {worst.limit:.0%}). To accept intentionally, re-record "
            "with `python -m repro --bench --bless`."
        )
    else:
        lines.append(
            f"GATE OK: {len(report.checks)} headline metric(s) within the "
            "noise band"
        )
    return "\n".join(lines)


def main(argv: Sequence[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro.bench.gate",
        description="Compare the newest BENCH_*.json entries against their baselines.",
    )
    parser.add_argument(
        "--area",
        action="append",
        default=None,
        metavar="AREA",
        help="gate only this area (repeatable; default: every BENCH_*.json)",
    )
    parser.add_argument(
        "--root",
        default=None,
        metavar="DIR",
        help="directory holding the BENCH_*.json trajectories (default: repo root)",
    )
    parser.add_argument(
        "--mode",
        choices=("report", "enforce"),
        default="enforce",
        help="'enforce' exits 1 on a regression; 'report' always exits 0",
    )
    parser.add_argument(
        "--throughput-limit",
        type=float,
        default=THROUGHPUT_DROP_LIMIT,
        metavar="FRAC",
        help="maximum tolerated relative throughput drop (default 0.15)",
    )
    parser.add_argument(
        "--latency-limit",
        type=float,
        default=LATENCY_RISE_LIMIT,
        metavar="FRAC",
        help="maximum tolerated relative latency rise (default 0.20)",
    )
    args = parser.parse_args(argv)
    try:
        report = gate_areas(
            args.area,
            root=args.root,
            thresholds=GateThresholds(
                throughput_drop=args.throughput_limit,
                latency_rise=args.latency_limit,
            ),
        )
    except BenchError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(format_report(report))
    if args.mode == "enforce" and report.failed:
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
