"""Terminal formatting of benchmark results."""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["format_table", "format_series", "format_number"]


def format_number(value: object) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.1f}"
        return f"{value:.4g}"
    return str(value)


def format_table(rows: Sequence[Mapping], columns: Sequence[str] | None = None) -> str:
    """Render rows of dicts as an aligned text table."""
    if not rows:
        return "(no data)"
    columns = list(columns) if columns else list(rows[0].keys())
    rendered = [[format_number(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(line[i]) for line in rendered))
        for i, col in enumerate(columns)
    ]
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    separator = "  ".join("-" * widths[i] for i in range(len(columns)))
    body = "\n".join(
        "  ".join(line[i].rjust(widths[i]) for i in range(len(columns)))
        for line in rendered
    )
    return f"{header}\n{separator}\n{body}"


def format_series(
    rows: Sequence[Mapping],
    x: str,
    y: str,
    series: str = "baseline",
) -> str:
    """Pivot long-form rows into one column per series (paper-figure style)."""
    if not rows:
        return "(no data)"
    xs: list = []
    names: list = []
    table: dict = {}
    for row in rows:
        if row[x] not in xs:
            xs.append(row[x])
        if row[series] not in names:
            names.append(row[series])
        table[(row[x], row[series])] = row[y]
    pivoted = [
        {x: value, **{name: table.get((value, name), "") for name in names}}
        for value in xs
    ]
    return format_table(pivoted, columns=[x] + names)
