"""The paper-scale performance model, driven by real scaled measurements.

:class:`WorkloadProfile` runs the *actual* CC algorithm on a scaled-down
instance of the workload and extracts the quantities that determine
performance at any scale:

- the compiled per-transaction circuit size (real R1CS constraint counts);
- memory accesses per transaction;
- the per-round commit fraction of deterministic reservation (conflicts);
- the CC retry overhead (the contention factor).

:class:`LitmusModel` then prices a full-scale run: circuit piece costs from
the calibrated per-constraint rates, serial trace/DB time, and a
list-scheduling makespan over N prover threads (the Fig 2 pipeline).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from ..db.database import Database
from ..db.txn import Transaction
from ..obs.spans import get_tracer
from ..sim.costmodel import CostModel
from ..sim.network import NetworkModel
from ..sim.scheduler import ProverTask, schedule_tasks
from ..vc.compiler import CircuitCompiler

__all__ = [
    "WorkloadProfile",
    "LitmusModel",
    "ModeledRun",
    "zipf_contention_scale",
    "zipf_top_mass",
]


def _zeta(n: int, theta: float) -> float:
    """Sum of k^-theta for k = 1..n, chunked to bound memory."""
    import numpy as np

    total = 0.0
    step = 1_000_000
    for start in range(1, n + 1, step):
        stop = min(n + 1, start + step)
        total += float(np.sum(np.arange(start, stop, dtype=np.float64) ** -theta))
    return total


def zipf_top_mass(n: int, theta: float, top: int = 1) -> float:
    """Probability mass of the hottest *top* ranks of Zipf(n, theta)."""
    if theta == 0:
        return min(1.0, top / n)
    return _zeta(min(top, n), theta) / _zeta(n, theta)


def zipf_contention_scale(
    theta: float, scaled_rows: int, target_rows: int = 10_000_000
) -> float:
    """Hot-key mass ratio between the target table and the scaled table.

    Contention-driven round counts are proportional to the probability mass
    of the hottest keys; a 4k-row scaled table is much hotter than the
    paper's 10M rows at low theta, and nearly as hot at high theta.  This
    ratio transports scaled measurements to paper scale analytically.
    """
    target = zipf_top_mass(target_rows, theta)
    scaled = zipf_top_mass(scaled_rows, theta)
    if scaled <= 0:
        return 1.0
    return min(1.0, target / scaled)


@dataclass(frozen=True)
class WorkloadProfile:
    """Scale-free characteristics measured from a real scaled execution.

    ``units_per_txn`` captures the contention-induced round structure: the
    extra rounds beyond one-per-processing-batch come from hot-key write
    chains (a key's writers serialize one per round), whose per-transaction
    rate is independent of the processing batch size.  At a different table
    size the rate scales with the hot-key mass — the ``contention_scale``
    argument of :meth:`LitmusModel.litmus_run`.
    """

    name: str
    logic_constraints_per_txn: float  # mean compiled circuit size
    accesses_per_txn: float  # store reads + writes per txn
    commit_fraction: float  # fraction of a DR round that commits
    retry_ratio: float  # retries per committed transaction
    units_per_txn: float  # non-conflicting batches per transaction (DR)
    measured_batch: int  # the processing batch size of the scaled run

    @property
    def contention_factor(self) -> float:
        return 1.0 + self.retry_ratio

    @property
    def extra_units_per_txn(self) -> float:
        """Contention-induced rounds per txn beyond one per processing batch."""
        return max(0.0, self.units_per_txn - 1.0 / self.measured_batch)

    @classmethod
    def measure(
        cls,
        name: str,
        txns: Sequence[Transaction],
        initial: dict,
        cc: str = "dr",
        processing_batch_size: int = 256,
    ) -> "WorkloadProfile":
        """Execute *txns* for real (scaled) and extract the profile.

        The real scaled run is traced (``profile_measure`` with a
        ``compile``/``execute`` pair), so figure commands run with
        ``--trace-out`` produce a span log even though their paper-scale
        numbers come from the model rather than the live prover pipeline.
        """
        tracer = get_tracer()
        with tracer.span("profile_measure", profile=name, num_txns=len(txns)):
            with tracer.span("compile", profile=name):
                compiler = CircuitCompiler()
                sizes = [
                    compiler.compile_program(txn.program).total_constraints
                    for txn in txns
                ]
            db = Database(
                initial=dict(initial),
                cc=cc,
                processing_batch_size=processing_batch_size,
                num_threads=4,
            )
            with tracer.span("execute", cc=cc, profile=name):
                report = db.run(list(txns))
        stats = report.stats
        committed = max(1, stats.committed)
        attempts = committed + stats.aborted_retries
        return cls(
            name=name,
            logic_constraints_per_txn=sum(sizes) / len(sizes),
            accesses_per_txn=(stats.reads + stats.writes) / committed,
            commit_fraction=committed / attempts,
            retry_ratio=stats.aborted_retries / committed,
            units_per_txn=len(report.schedule) / committed,
            measured_batch=processing_batch_size,
        )


@dataclass(frozen=True)
class ModeledRun:
    """One priced verification batch."""

    baseline: str
    num_txns: int
    total_seconds: float
    mean_latency_seconds: float
    db_seconds: float
    trace_seconds: float
    keygen_seconds: float
    prove_seconds: float
    verify_seconds: float
    total_constraints: float
    num_pieces: int
    proof_bytes: int

    @property
    def throughput(self) -> float:
        return self.num_txns / self.total_seconds if self.total_seconds > 0 else 0.0


class LitmusModel:
    """Prices Litmus and baseline runs at arbitrary scale."""

    def __init__(self, profile: WorkloadProfile, cost_model: CostModel | None = None):
        self.profile = profile
        self.cost_model = cost_model or CostModel.calibrated(
            max(1, round(profile.logic_constraints_per_txn))
        )

    # -- Litmus variants ------------------------------------------------------

    def litmus_run(
        self,
        num_txns: int,
        num_provers: int,
        cc: str = "dr",
        batches_per_piece: int | None = None,
        table_doublings: float = 0.0,
        commit_fraction: float | None = None,
        contention_factor: float | None = None,
        contention_scale: float = 1.0,
        barrier_exponent: float = 0.6,
        processing_batch_size: int | None = None,
    ) -> ModeledRun:
        """Price one Litmus verification batch.

        Under deterministic reservation a *unit* is one non-conflicting
        batch (one aggregated MemCheck + MemUpdate); under 2PL every
        transaction is its own unit with per-access gadgets.

        *contention_scale* transports the measured contention to the target
        table size: the ratio of hot-key access mass between the modeled
        table and the scaled one (see :func:`zipf_contention_scale`).
        Passing an explicit *commit_fraction* overrides the measured round
        structure entirely (used by calibration tests).
        """
        cm = self.cost_model
        profile = self.profile
        contention = (
            contention_factor
            if contention_factor is not None
            else 1.0 + profile.retry_ratio * contention_scale
        )
        logic = profile.logic_constraints_per_txn
        accesses = profile.accesses_per_txn

        if cc == "dr":
            m = processing_batch_size or 81_920
            m = min(m, num_txns)
            if commit_fraction is not None:
                units = max(1, math.ceil(num_txns / (m * max(commit_fraction, 1e-6))))
            else:
                # One round per processing batch plus the contention-driven
                # extra rounds (hot-key write chains serialize one per
                # round), transported to the modeled table size.
                extra = profile.extra_units_per_txn * contention_scale
                units = max(1, math.ceil(num_txns / m) + round(num_txns * extra))
            gadget_constraints = 2 * units * cm.memcheck_constraints
        else:
            units = num_txns
            gadget_constraints = num_txns * accesses * cm.memcheck_constraints

        total_constraints = num_txns * logic + gadget_constraints

        # Piece granularity: the dispatcher targets enough pieces to feed
        # every prover (Fig 2 shows flexible grouping).  A huge
        # non-conflicting batch subdivides across pieces — its transactions
        # are independent circuits, so only the single aggregated memory
        # check anchors one slice; without subdivision 75 provers could
        # never be busy at low contention (32 processing batches per 2.6M
        # transactions).  Conversely, at high contention the dispatcher
        # groups many tiny batches per piece rather than exploding the
        # per-piece fixed overhead.  The 2PL variant compiles "into a deep
        # circuit [that goes] into a single proof" (Section 8.1): one piece.
        if cc == "2pl":
            num_pieces = 1
        elif batches_per_piece is not None:
            num_pieces = max(1, math.ceil(units / batches_per_piece))
        else:
            num_pieces = max(2 * num_provers, min(units // 5, 8 * num_provers))
            num_pieces = max(1, num_pieces)

        db_seconds = cm.db_seconds(num_txns, cc, contention_factor=contention)
        if cc == "dr":
            m = processing_batch_size or 81_920
            # Per-round synchronization plus the superlinear cost of
            # synchronizing an oversized processing batch ("a too large
            # batch harms the performance of CC", Fig 5a's late decline).
            db_seconds += units * 1e-4
            db_seconds += (
                math.ceil(num_txns / m)
                * (m ** (1 + barrier_exponent))
                / (cm.db_rate_dr * 100)
            )
        trace_seconds = cm.trace_seconds(
            num_txns * accesses, table_doublings=table_doublings
        )
        if cc == "dr":
            # Dispatcher/aggregation bookkeeping per non-conflicting batch:
            # with tiny processing batches the scheduler degenerates toward
            # sequential dispatch (the Fig 5b latency blow-up).
            trace_seconds += units * 1e-3

        piece_cost = cm.piece_seconds(total_constraints / num_pieces)
        serial = db_seconds + trace_seconds
        tasks = [
            ProverTask(
                cost_seconds=piece_cost,
                release_seconds=serial * (index + 1) / num_pieces,
                txn_count=max(1, num_txns // num_pieces),
            )
            for index in range(num_pieces)
        ]
        schedule = schedule_tasks(tasks, num_provers)
        total = max(serial, schedule.makespan_seconds)
        keygen = total_constraints * cm.keygen_per_constraint
        prove = total_constraints * cm.prove_per_constraint
        return ModeledRun(
            baseline=f"litmus-{cc}-p{num_provers}",
            num_txns=num_txns,
            total_seconds=total,
            mean_latency_seconds=schedule.txn_weighted_mean_completion(tasks)
            + cm.verify_seconds,
            db_seconds=db_seconds,
            trace_seconds=trace_seconds,
            keygen_seconds=keygen,
            prove_seconds=prove,
            verify_seconds=cm.verify_seconds,
            total_constraints=total_constraints,
            num_pieces=num_pieces,
            proof_bytes=cm.proof_bytes_per_prover * min(num_provers, num_pieces),
        )

    # -- no-verification baselines ------------------------------------------------

    def no_verification_run(
        self,
        num_txns: int,
        cc: str,
        contention_factor: float | None = None,
        contention_scale: float = 1.0,
        processing_batch_size: int | None = None,
        barrier_exponent: float = 0.6,
    ) -> ModeledRun:
        cm = self.cost_model
        contention = (
            contention_factor
            if contention_factor is not None
            else 1.0 + self.profile.retry_ratio * contention_scale
        )
        seconds = cm.db_seconds(num_txns, cc, contention_factor=contention)
        latency = seconds / max(1, num_txns)
        if cc == "dr":
            # Throughput stays contention-bound ("the no-verification
            # baseline remains stable with batch size"), but a transaction
            # waits for its processing batch to fill and synchronize, and an
            # oversized batch "slows down the synchronized portion" — both
            # latency effects (Fig 5b).
            m = min(processing_batch_size or 81_920, num_txns)
            barrier = (m ** (1 + barrier_exponent)) / (cm.db_rate_dr * 100)
            latency = seconds * m / max(1, num_txns) + barrier
        return ModeledRun(
            baseline=f"noverif-{cc}",
            num_txns=num_txns,
            total_seconds=seconds,
            mean_latency_seconds=latency,
            db_seconds=seconds,
            trace_seconds=0.0,
            keygen_seconds=0.0,
            prove_seconds=0.0,
            verify_seconds=0.0,
            total_constraints=0.0,
            num_pieces=0,
            proof_bytes=0,
        )

    # -- interactive baseline ----------------------------------------------------

    def interactive_run(
        self,
        num_txns: int,
        network: NetworkModel,
        writes_per_txn: float | None = None,
        initial_dictionary: int = 0,
        cache_bonus: float = 0.0,
    ) -> ModeledRun:
        """Price the AD-Interact baseline.

        The dictionary grows with every write, and a fresh lookup witness
        costs a pass over the whole dictionary — the quadratic term that
        makes the 1 ms line sag at large transaction counts.  *cache_bonus*
        in [0, 1) discounts witness work under skew (hot keys stay cached),
        matching the paper's observation that the interactive baselines
        speed up slightly with contention.
        """
        cm = self.cost_model
        if writes_per_txn is None:
            writes_per_txn = self.profile.accesses_per_txn / 2
        per_txn_fixed = network.rtt_seconds + 2 * cm.ad_client_verify_seconds
        # Sum over i of (D0 + w*i) * c = n*D0*c + c*w*n^2/2.
        witness_unit = cm.ad_witness_per_element * (1.0 - cache_bonus)
        witness_total = witness_unit * (
            num_txns * initial_dictionary + writes_per_txn * num_txns * num_txns / 2
        )
        total = cm.interactive_setup_seconds + num_txns * per_txn_fixed + witness_total
        return ModeledRun(
            baseline=f"interactive-{network.rtt_seconds * 1e3:g}ms",
            num_txns=num_txns,
            total_seconds=total,
            mean_latency_seconds=total / max(1, num_txns),
            db_seconds=0.0,
            trace_seconds=witness_total,
            keygen_seconds=0.0,
            prove_seconds=0.0,
            verify_seconds=num_txns * 2 * cm.ad_client_verify_seconds,
            total_constraints=0.0,
            num_pieces=0,
            proof_bytes=0,
        )

    # -- Merkle baseline ------------------------------------------------------------

    def merkle_run(self, num_txns: int, network: NetworkModel) -> ModeledRun:
        cm = self.cost_model
        per_txn = network.rtt_seconds + cm.merkle_txn_seconds
        total = num_txns * per_txn
        return ModeledRun(
            baseline="merkle",
            num_txns=num_txns,
            total_seconds=total,
            mean_latency_seconds=per_txn,
            db_seconds=0.0,
            trace_seconds=0.0,
            keygen_seconds=0.0,
            prove_seconds=0.0,
            verify_seconds=0.0,
            total_constraints=0.0,
            num_pieces=0,
            proof_bytes=0,
        )
