"""Benchmark harness: regenerate every table and figure of the paper.

The harness combines

- **real measured counts** — scaled executions of the actual CC algorithms
  and compiled circuits produce conflict rates, batch compositions, and
  constraint counts;
- **the calibrated cost model** (:mod:`repro.sim.costmodel`) — converts
  counts into virtual seconds at paper scale;
- **the prover makespan scheduler** — reproduces pipelining across N
  prover threads.

Each ``fig*`` function in :mod:`repro.bench.figures` returns the rows or
series of the corresponding paper figure/table; :mod:`repro.bench.report`
formats them for terminal output, and ``benchmarks/`` wraps each one in a
pytest-benchmark target.

The orchestrated path lives next to it: :mod:`repro.bench.experiment`
declares the trial matrix (each ``benchmarks/bench_*.py`` registers a
:class:`~repro.bench.experiment.TrialSpec`), ``python -m repro --bench``
runs it into the repo-root ``BENCH_<area>.json`` trajectories, and
:mod:`repro.bench.gate` fails CI on headline perf regressions.
"""

from .model import LitmusModel, ModeledRun, WorkloadProfile
from .figures import (
    fig3_ycsb_throughput_latency,
    fig4_tpcc_throughput,
    fig5_processing_batch,
    fig6_prover_threads,
    fig7_time_breakdown,
    fig8_contention,
    fig9_table_size,
    elle_comparison,
    reference_constants,
)
from .report import format_series, format_table

__all__ = [
    "LitmusModel",
    "ModeledRun",
    "WorkloadProfile",
    "elle_comparison",
    "fig3_ycsb_throughput_latency",
    "fig4_tpcc_throughput",
    "fig5_processing_batch",
    "fig6_prover_threads",
    "fig7_time_breakdown",
    "fig8_contention",
    "fig9_table_size",
    "format_series",
    "format_table",
    "reference_constants",
]
