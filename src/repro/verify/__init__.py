"""Trace-based serializability checking (the Elle comparison of Section 8.3).

Litmus proves serializability cryptographically; the alternative the paper
evaluates — Elle (Kingsbury & Alvaro, VLDB 2020) — *infers* isolation
anomalies from experimental observations of list-append histories.  This
package reimplements that approach:

- :mod:`repro.verify.history` — observed transaction histories over
  list-append registers;
- :mod:`repro.verify.cycles` — dependency-graph construction (wr/ww/rw
  edges inferred from list prefixes) and anomaly classification via
  strongly-connected components;
- :mod:`repro.verify.elle` — the checker driver plus an adapter that runs
  our executors in list-append mode to produce histories;
- :mod:`repro.verify.polygraph` — a Cobra-style checker (paper ref [55])
  over plain read/write histories: known read-from edges plus unknown
  write-order constraints, solved by backtracking search.
"""

from .cycles import Anomaly, DependencyAnalysis
from .elle import ElleChecker, ElleReport, history_from_execution
from .history import Observation, ObservedTxn
from .polygraph import RWHistory, RWTxn, check_serializable

__all__ = [
    "Anomaly",
    "DependencyAnalysis",
    "ElleChecker",
    "ElleReport",
    "Observation",
    "ObservedTxn",
    "RWHistory",
    "RWTxn",
    "check_serializable",
    "history_from_execution",
]
