"""Observed histories over list-append registers.

Elle's key trick: if every write is a *list append* and reads return the
whole list, then any read reveals the exact version order of the key so
far.  An :class:`ObservedTxn` records what one transaction appended and the
list states it observed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Observation", "ObservedTxn", "History"]


@dataclass(frozen=True)
class Observation:
    """One read: the full list state the transaction saw for a key."""

    key: tuple
    elements: tuple[int, ...]


@dataclass(frozen=True)
class ObservedTxn:
    """One transaction's footprint in a list-append history."""

    txn_id: int
    appends: tuple[tuple[tuple, int], ...]  # (key, appended element)
    observations: tuple[Observation, ...]


@dataclass
class History:
    """A complete observed history plus the final list per key."""

    txns: list[ObservedTxn] = field(default_factory=list)
    final_lists: dict[tuple, tuple[int, ...]] = field(default_factory=dict)

    def add(self, txn: ObservedTxn) -> None:
        self.txns.append(txn)

    @property
    def num_txns(self) -> int:
        return len(self.txns)

    def appended_elements(self, key: tuple) -> set[int]:
        out: set[int] = set()
        for txn in self.txns:
            for append_key, element in txn.appends:
                if append_key == key:
                    out.add(element)
        return out

    # -- persistence (offline audits ship histories as JSON) -----------------

    def to_json(self) -> str:
        import json

        return json.dumps(
            {
                "txns": [
                    {
                        "txn_id": txn.txn_id,
                        "appends": [[list(key), element] for key, element in txn.appends],
                        "observations": [
                            [list(obs.key), list(obs.elements)]
                            for obs in txn.observations
                        ],
                    }
                    for txn in self.txns
                ],
                "final_lists": [
                    [list(key), list(elements)]
                    for key, elements in self.final_lists.items()
                ],
            }
        )

    @classmethod
    def from_json(cls, payload: str) -> "History":
        import json

        raw = json.loads(payload)
        history = cls()
        for item in raw["txns"]:
            history.add(
                ObservedTxn(
                    txn_id=item["txn_id"],
                    appends=tuple(
                        (tuple(key), element) for key, element in item["appends"]
                    ),
                    observations=tuple(
                        Observation(key=tuple(key), elements=tuple(elements))
                        for key, elements in item["observations"]
                    ),
                )
            )
        history.final_lists = {
            tuple(key): tuple(elements) for key, elements in raw["final_lists"]
        }
        return history
