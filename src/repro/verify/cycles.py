"""Dependency inference and anomaly detection over list-append histories.

From the final list of each key, every appended element gets a version
index.  Dependencies between transactions follow Adya's classification:

- **wr** (read-from): T2 observed a list whose last element T1 appended;
- **ww** (version order): T1's append immediately precedes T2's append;
- **rw** (anti-dependency): T2 appended the element right after the state
  T1 observed.

Serializability holds iff the resulting graph is acyclic; cycles are
classified G0 (write cycles only) or G1c (cycles with read edges), the
anomalies Elle reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from ..errors import ReproError
from .history import History

__all__ = ["Anomaly", "DependencyAnalysis", "analyze"]


@dataclass(frozen=True)
class Anomaly:
    """One dependency cycle, classified."""

    kind: str  # "G0" (write-only cycle) or "G1c" (cycle with a read edge)
    txn_ids: tuple[int, ...]
    edge_kinds: tuple[str, ...]


@dataclass
class DependencyAnalysis:
    """The inferred graph plus detected anomalies."""

    graph: nx.DiGraph
    anomalies: list[Anomaly] = field(default_factory=list)
    inconsistent_observations: list[str] = field(default_factory=list)

    @property
    def serializable(self) -> bool:
        return not self.anomalies and not self.inconsistent_observations


def _version_order(history: History, key: tuple) -> dict[int, int]:
    """Map element -> version index from the final list of *key*."""
    final = history.final_lists.get(key, ())
    return {element: index for index, element in enumerate(final)}


def analyze(history: History) -> DependencyAnalysis:
    """Infer dependencies and detect serializability anomalies."""
    graph = nx.DiGraph()
    edge_kinds: dict[tuple[int, int], set[str]] = {}
    writer_of: dict[tuple[tuple, int], int] = {}
    inconsistencies: list[str] = []

    for txn in history.txns:
        graph.add_node(txn.txn_id)
        for key, element in txn.appends:
            if (key, element) in writer_of:
                inconsistencies.append(
                    f"element {element} appended to {key!r} twice"
                )
            writer_of[(key, element)] = txn.txn_id

    def add_edge(src: int, dst: int, kind: str) -> None:
        if src == dst:
            return
        graph.add_edge(src, dst)
        edge_kinds.setdefault((src, dst), set()).add(kind)

    # Observation consistency + wr and rw edges.
    for txn in history.txns:
        for observation in txn.observations:
            order = _version_order(history, observation.key)
            final = history.final_lists.get(observation.key, ())
            observed = observation.elements
            if tuple(final[: len(observed)]) != tuple(observed):
                inconsistencies.append(
                    f"txn {txn.txn_id} observed {observed} on {observation.key!r}, "
                    f"which is not a prefix of the final list {final}"
                )
                continue
            if observed:
                last = observed[-1]
                writer = writer_of.get((observation.key, last))
                if writer is not None:
                    add_edge(writer, txn.txn_id, "wr")
            # rw: the appender of the *next* version overwrote what we saw.
            if len(observed) < len(final):
                next_element = final[len(observed)]
                writer = writer_of.get((observation.key, next_element))
                if writer is not None:
                    add_edge(txn.txn_id, writer, "rw")

    # ww edges from consecutive versions.
    for key, final in history.final_lists.items():
        for previous, current in zip(final, final[1:]):
            src = writer_of.get((key, previous))
            dst = writer_of.get((key, current))
            if src is not None and dst is not None:
                add_edge(src, dst, "ww")

    anomalies: list[Anomaly] = []
    for component in nx.strongly_connected_components(graph):
        if len(component) < 2:
            continue
        members = tuple(sorted(component))
        kinds: set[str] = set()
        for src, dst in graph.subgraph(component).edges:
            kinds |= edge_kinds.get((src, dst), set())
        # Adya's hierarchy: G0 = write-order cycle; G1c = cyclic information
        # flow (a read-from edge participates); G2 = the cycle needs an
        # anti-dependency but no read-from edge (serializability-only
        # anomaly, invisible below SERIALIZABLE).
        if kinds <= {"ww"}:
            kind = "G0"
        elif "wr" in kinds:
            kind = "G1c"
        else:
            kind = "G2"
        anomalies.append(
            Anomaly(kind=kind, txn_ids=members, edge_kinds=tuple(sorted(kinds)))
        )
    return DependencyAnalysis(
        graph=graph, anomalies=anomalies, inconsistent_observations=inconsistencies
    )
