"""Cobra-style serializability checking over plain read/write histories.

Elle (Section 8.3) needs list-append semantics to recover version orders.
Cobra (paper ref [55]) works on ordinary key-value histories: when every
written value is unique, each read reveals *which* transaction it read from
(a ``wr`` edge), but the relative order of two writers of the same key is
unknown — producing a **polygraph**: known edges plus constraints of the
form "either A before B, or B after C".

Deciding whether some orientation of the constraints is acyclic is the
classic NP-complete serializability problem [Papadimitriou 1979]; like
Cobra we solve it search-style — unit propagation plus backtracking —
which is fast on the mostly-ordered histories real databases produce.

This gives the repository a second, independent trace-based auditor with a
different trust/interface trade-off than Elle, matching the related-work
landscape the paper evaluates against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

import networkx as nx

from ..errors import ReproError

__all__ = ["RWTxn", "RWHistory", "PolygraphResult", "check_serializable"]


@dataclass(frozen=True)
class RWTxn:
    """One transaction's footprint: values read and (unique) values written."""

    txn_id: int
    reads: tuple[tuple[tuple, int], ...]  # (key, value observed)
    writes: tuple[tuple[tuple, int], ...]  # (key, value written)


@dataclass
class RWHistory:
    """A plain read/write history with unique written values.

    ``initial`` holds the pre-history values (reads of these values have no
    writer; they impose "reader before every writer of the key" edges).
    """

    txns: list[RWTxn] = field(default_factory=list)
    initial: dict[tuple, int] = field(default_factory=dict)

    def add(self, txn: RWTxn) -> None:
        self.txns.append(txn)

    @classmethod
    def from_execution(cls, report, txns) -> "RWHistory":
        """Build a history from a committed execution report."""
        history = cls()
        for txn in txns:
            result = report.results.get(txn.txn_id)
            if result is None or not result.committed:
                continue
            history.add(
                RWTxn(
                    txn_id=txn.txn_id,
                    reads=tuple(result.read_set),
                    writes=tuple(result.write_set),
                )
            )
        return history


@dataclass(frozen=True)
class PolygraphResult:
    serializable: bool
    known_edges: int
    constraints: int
    order: tuple[int, ...] = ()  # a witness serial order when serializable
    reason: str = ""


def _build_polygraph(history: RWHistory):
    """Known edges + choice constraints from read-from relationships."""
    writer_of_value: dict[tuple[tuple, int], int] = {}
    writers_of_key: dict[tuple, list[int]] = {}
    for txn in history.txns:
        for key, value in txn.writes:
            if (key, value) in writer_of_value:
                raise ReproError(
                    f"written values must be unique per key: {key!r}={value}"
                )
            writer_of_value[(key, value)] = txn.txn_id
            writers_of_key.setdefault(key, []).append(txn.txn_id)

    graph = nx.DiGraph()
    graph.add_nodes_from(txn.txn_id for txn in history.txns)
    # (a, b, c): either a->b or b->c must hold ("b is not between a and c").
    constraints: list[tuple[int, int, int]] = []

    for txn in history.txns:
        for key, value in txn.reads:
            writer = writer_of_value.get((key, value))
            if writer is None:
                if history.initial.get(key, 0) != value:
                    return graph, constraints, (
                        f"txn {txn.txn_id} read unwritten value {value} on {key!r}"
                    )
                # Read of the initial value: the reader precedes every
                # writer of the key.
                for other in writers_of_key.get(key, []):
                    if other != txn.txn_id:
                        graph.add_edge(txn.txn_id, other)
                continue
            if writer != txn.txn_id:
                graph.add_edge(writer, txn.txn_id)  # wr edge
            # Any other writer w of this key is either before `writer` or
            # after the reader.
            for other in writers_of_key.get(key, []):
                if other in (writer, txn.txn_id):
                    continue
                constraints.append((other, writer, txn.txn_id))
    return graph, constraints, ""


def _search(graph: nx.DiGraph, constraints: list[tuple[int, int, int]], depth: int):
    """Backtracking over unresolved constraints with cycle pruning."""
    if not nx.is_directed_acyclic_graph(graph):
        return None
    # Drop constraints already satisfied; propagate forced choices.
    pending: list[tuple[int, int, int]] = []
    for a, b, c in constraints:
        if graph.has_edge(a, b) or graph.has_edge(c, a):
            continue
        first_possible = not nx.has_path(graph, b, a)  # a->b stays acyclic
        second_possible = not nx.has_path(graph, a, c)  # c->a stays acyclic
        if not first_possible and not second_possible:
            return None
        if first_possible and not second_possible:
            graph.add_edge(a, b)
        elif second_possible and not first_possible:
            graph.add_edge(c, a)
        else:
            pending.append((a, b, c))
    if not pending:
        return list(nx.lexicographical_topological_sort(graph))
    if depth <= 0:
        return None
    a, b, c = pending[0]
    for edge in ((a, b), (c, a)):
        trial = graph.copy()
        trial.add_edge(*edge)
        solution = _search(trial, pending[1:], depth - 1)
        if solution is not None:
            return solution
    return None


def check_serializable(history: RWHistory, max_depth: int = 200) -> PolygraphResult:
    """Decide serializability of *history* (unique-written-values model)."""
    graph, constraints, error = _build_polygraph(history)
    if error:
        return PolygraphResult(
            serializable=False,
            known_edges=graph.number_of_edges(),
            constraints=len(constraints),
            reason=error,
        )
    solution = _search(graph.copy(), constraints, max_depth)
    if solution is None:
        return PolygraphResult(
            serializable=False,
            known_edges=graph.number_of_edges(),
            constraints=len(constraints),
            reason="no acyclic orientation of the polygraph exists",
        )
    return PolygraphResult(
        serializable=True,
        known_edges=graph.number_of_edges(),
        constraints=len(constraints),
        order=tuple(solution),
    )
