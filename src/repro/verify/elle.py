"""The Elle-style checker driver (paper Section 8.3).

Two pieces:

- :func:`history_from_execution` — re-runs a committed schedule in
  list-append mode (every write of value v on key k becomes an append of a
  unique element; every store read observes the current list), producing
  the history Elle would collect from an instrumented database;
- :class:`ElleChecker` — infers the dependency graph from the history and
  reports anomalies plus analysis timing, mirroring the paper's comparison
  (Elle needs the full trace and a trusted analyzer; Litmus needs one
  constant-size proof).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..db.executor import ExecutionReport
from ..db.txn import Transaction
from .cycles import Anomaly, analyze
from .history import History, Observation, ObservedTxn

__all__ = ["ElleReport", "ElleChecker", "history_from_execution"]


@dataclass(frozen=True)
class ElleReport:
    """The checker's verdict plus its real measured analysis time."""

    serializable: bool
    anomalies: tuple[Anomaly, ...]
    inconsistencies: tuple[str, ...]
    num_txns: int
    analysis_seconds: float

    @property
    def txns_per_second(self) -> float:
        if self.analysis_seconds <= 0:
            return float("inf")
        return self.num_txns / self.analysis_seconds


def history_from_execution(
    report: ExecutionReport,
    txns: list[Transaction],
) -> History:
    """Replay a committed schedule with list-append semantics.

    The replay order is the schedule order (a valid serialization of the
    recorded execution), exactly what an instrumented server would have
    produced had the workload's writes been list appends.  Each write event
    appends a globally unique element id.
    """
    txns_by_id = {txn.txn_id: txn for txn in txns}
    lists: dict[tuple, list[int]] = {}
    history = History()
    next_element = 1
    for unit in report.schedule:
        # All transactions in a unit read the unit-start state.
        snapshot = {key: tuple(values) for key, values in lists.items()}
        for txn_id in unit.txn_ids:
            txn = txns_by_id[txn_id]
            execution = txn.program.execute(
                txn.params, lambda key: _last_element(snapshot.get(key, ()))
            )
            observations = tuple(
                Observation(key=key, elements=snapshot.get(key, ()))
                for key, _value in execution.store_reads
            )
            appends: list[tuple[tuple, int]] = []
            for key, _value in execution.writes:
                element = next_element
                next_element += 1
                appends.append((key, element))
                lists.setdefault(key, []).append(element)
            history.add(
                ObservedTxn(
                    txn_id=txn_id,
                    appends=tuple(appends),
                    observations=observations,
                )
            )
    history.final_lists = {key: tuple(values) for key, values in lists.items()}
    return history


def _last_element(elements: tuple[int, ...]) -> int:
    return elements[-1] if elements else 0


class ElleChecker:
    """Analyze a history; measure the real analysis time."""

    def check(self, history: History) -> ElleReport:
        started = time.perf_counter()
        analysis = analyze(history)
        elapsed = time.perf_counter() - started
        return ElleReport(
            serializable=analysis.serializable,
            anomalies=tuple(analysis.anomalies),
            inconsistencies=tuple(analysis.inconsistent_observations),
            num_txns=history.num_txns,
            analysis_seconds=elapsed,
        )
