"""The transaction wrapper (Algorithm 3) and the wrapped-transaction circuit.

A *wrapped transaction* glues a sequence of schedule units together with the
memory-integrity checker plugged in before (and after) every unit:

    MemInit(g0)
    for each unit (one txn under 2PL; one non-conflicting batch under DR):
        AllCommit &= MemCheck(unit reads, certificates)
        for each txn in the unit:
            CommitFlag, writes, outputs = txn.run(read values)
        AllCommit &= MemUpdate(unit writes, certificate)
    return AllCommit, outputs, final digest

Both sides construct the same circuit *structure* deterministically from the
transaction templates and the unit composition (the client can do this
locally under deterministic CC, per Section 7.1(b)); only the server holds
the certificates needed to evaluate it.  The circuit binds its execution to
a 2x128-bit public *statement hash* over (piece index, start digest, end
digest, per-transaction outputs, AllCommit), which is what the proof
certifies and the client recomputes.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Mapping, Sequence

from ..crypto.poe import PoEBatchProof
from ..crypto.rsa_group import RSAGroup
from ..db.executor import ScheduleUnit
from ..db.txn import Transaction
from ..errors import IntegrityError, TransactionError
from ..serialization import encode
from ..vc.circuit import Circuit, CircuitBuilder, ForeignGadget
from ..vc.compiler import CircuitCompiler
from .memory_integrity import (
    MemoryIntegrityChecker,
    ReadCertificate,
    WriteCertificate,
)

__all__ = [
    "WrappedUnit",
    "WrappedPiece",
    "ReplayOutcome",
    "build_wrapped_circuit",
    "replay_piece",
    "statement_hash",
    "piece_constraints",
]

# Context keys threaded into the circuit's foreign gadgets.
CTX_OUTCOME = "wrapped_outcome"


@dataclass(frozen=True)
class WrappedUnit:
    """One schedule unit plus the certificates authenticating it."""

    unit: ScheduleUnit
    read_certificate: ReadCertificate | None
    write_certificate: WriteCertificate | None


@dataclass(frozen=True)
class WrappedPiece:
    """A contiguous chunk of units proven by one prover thread (Fig 2).

    *poe_batch*, when set, is one aggregated Wesolowski proof covering every
    bare read-lookup in the piece; replay then defers those exponentiations
    to a single batched check.  It never enters the circuit label or the
    statement hash — it is verification-acceleration data, not structure.
    """

    piece_index: int
    units: tuple[WrappedUnit, ...]
    start_digest: int
    poe_batch: PoEBatchProof | None = None

    def txn_ids(self) -> tuple[int, ...]:
        out: list[int] = []
        for wrapped in self.units:
            out.extend(wrapped.unit.txn_ids)
        return tuple(out)


@dataclass(frozen=True)
class ReplayOutcome:
    """The result of honestly replaying a piece."""

    all_commit: bool
    end_digest: int
    outputs: tuple[tuple[int, tuple[int, ...]], ...]  # (txn_id, outputs)


def statement_hash(
    piece_index: int,
    start_digest: int,
    end_digest: int,
    all_commit: bool,
    outputs: Sequence[tuple[int, tuple[int, ...]]],
) -> tuple[int, int]:
    """The 2x128-bit public statement the piece's proof certifies."""
    digest = hashlib.sha256(
        b"litmus-wrapped-statement"
        + encode(
            (
                piece_index,
                start_digest,
                end_digest,
                all_commit,
                tuple((txn_id, tuple(values)) for txn_id, values in outputs),
            )
        )
    ).digest()
    return (
        int.from_bytes(digest[:16], "big"),
        int.from_bytes(digest[16:], "big"),
    )


def replay_piece(
    piece: WrappedPiece,
    txns_by_id: Mapping[int, Transaction],
    compiler: CircuitCompiler,
    group: RSAGroup,
    prime_bits: int,
    invariants: Sequence = (),
) -> ReplayOutcome:
    """Algorithm 3's WrappedTransaction function, executed honestly.

    Verifies every certificate against the running digest, re-executes every
    transaction from its authenticated read values through its compiled
    circuit (all R1CS constraints checked), and chains the digest forward.
    """
    checker = MemoryIntegrityChecker(group, piece.start_digest, prime_bits=prime_bits)
    defer_poe = piece.poe_batch is not None
    all_commit = True
    outputs: list[tuple[int, tuple[int, ...]]] = []
    for wrapped in piece.units:
        unit = wrapped.unit
        unit_reads = dict(unit.reads)
        if unit_reads:
            if wrapped.read_certificate is None:
                all_commit = False
                break
            if not checker.mem_check(wrapped.read_certificate, defer_poe=defer_poe):
                all_commit = False
                break
            certified = wrapped.read_certificate.values()
            if certified != unit_reads:
                all_commit = False
                break
        for txn_id in unit.txn_ids:
            txn = txns_by_id.get(txn_id)
            if txn is None:
                raise TransactionError(f"unknown transaction id {txn_id}")
            binding = _run_transaction(txn, unit_reads, compiler)
            outputs.append((txn_id, binding))
        if unit.writes:
            if wrapped.write_certificate is None:
                all_commit = False
                break
            cert = wrapped.write_certificate
            if dict(cert.new_pairs) != dict(unit.writes):
                all_commit = False
                break
            if not checker.mem_update(cert):
                all_commit = False
                break
            # Section 9: consistency = specialized checkers over the same
            # authenticated transition.
            if invariants and not all(inv.check_unit(cert) for inv in invariants):
                all_commit = False
                break
    if all_commit and defer_poe:
        # Settle every deferred lookup with the single batched Wesolowski
        # check.  (If replay already failed there is nothing to settle — the
        # piece is rejected regardless.)
        all_commit = checker.verify_deferred_poe(piece.poe_batch)
    return ReplayOutcome(
        all_commit=all_commit,
        end_digest=checker.acc,
        outputs=tuple(outputs),
    )


def _run_transaction(
    txn: Transaction,
    unit_reads: Mapping[tuple, int],
    compiler: CircuitCompiler,
) -> tuple[int, ...]:
    """Execute one transaction through its compiled circuit template.

    Read values come from the unit's authenticated snapshot; buffered
    (read-your-write) reads are reconstructed by the interpreter semantics.
    """
    template = compiler.compile_program(txn.program)
    # Derive per-read-statement values: store reads come from the unit's
    # certified snapshot; read-your-writes are recomputed by interpretation.
    result = txn.program.execute(
        txn.params,
        lambda key: _certified_read(key, unit_reads),
    )
    read_values = {name: value for name, _key, value in result.reads}
    binding = compiler.bind(template, txn.params, read_values)
    return binding.outputs


def _certified_read(key: tuple, unit_reads: Mapping[tuple, int]) -> int:
    if key not in unit_reads:
        raise IntegrityError(f"read of {key!r} lacks an authenticated value")
    return unit_reads[key]


def piece_constraints(
    piece: WrappedPiece,
    txns_by_id: Mapping[int, Transaction],
    compiler: CircuitCompiler,
    memcheck_constraints: int,
    aggregated: bool,
) -> int:
    """Total gate count of the piece's circuit (the cost-model input).

    Under aggregation (DR) each unit contributes ONE MemCheck and ONE
    MemUpdate gadget regardless of batch size; without aggregation (2PL)
    every memory access carries its own gadget — the orders-of-magnitude gap
    of Section 7.1(a).
    """
    total = 0
    for wrapped in piece.units:
        unit = wrapped.unit
        for txn_id in unit.txn_ids:
            template = compiler.compile_program(txns_by_id[txn_id].program)
            total += template.total_constraints
        if aggregated:
            gadgets = (1 if unit.reads else 0) + (1 if unit.writes else 0)
        else:
            gadgets = len(unit.reads) + len(unit.writes)
        total += gadgets * memcheck_constraints
    return total


def build_wrapped_circuit(
    piece: WrappedPiece,
    txns_by_id: Mapping[int, Transaction],
    compiler: CircuitCompiler,
    group: RSAGroup,
    prime_bits: int,
    memcheck_constraints: int,
    aggregated: bool,
    invariants: Sequence = (),
) -> Circuit:
    """Construct the piece's circuit.

    The structure (label, gadget layout, constraint counts) is a pure
    function of the transaction templates and the unit composition — both
    the client and the server can build it independently, and the
    structural hash doubles as the circuit matcher's fingerprint.

    The single "replay" gadget evaluates Algorithm 3 for real (certificates
    come from the proving context) and asserts that the resulting statement
    hash equals the circuit's public inputs.

    The label deliberately excludes the piece index: pieces with the same
    template/unit composition share one structure, so trusted setup can be
    run once per structure and its key pair reused
    (:class:`repro.vc.snark.SetupCache`).  The piece index remains bound to
    every proof through the public statement hash, so sharing a key never
    lets one piece's proof stand in for another's.
    """
    label_parts = ["wrapped-piece"]
    if invariants:
        names = ",".join(sorted(inv.name for inv in invariants))
        label_parts.append(f"{{inv:{names}}}")
    for wrapped in piece.units:
        unit = wrapped.unit
        names = ",".join(
            txns_by_id[txn_id].program.name for txn_id in unit.txn_ids
        )
        label_parts.append(f"[{names}|r{len(unit.reads)}w{len(unit.writes)}]")
    builder = CircuitBuilder(label="".join(label_parts))
    statement_lo = builder.input("statement_lo")
    statement_hi = builder.input("statement_hi")
    del statement_lo, statement_hi

    gate_count = piece_constraints(
        piece, txns_by_id, compiler, memcheck_constraints, aggregated
    )

    def replay_evaluator(context: dict) -> bool:
        outcome = context.get(CTX_OUTCOME)
        if not isinstance(outcome, ReplayOutcome):
            return False
        expected = statement_hash(
            piece.piece_index,
            piece.start_digest,
            outcome.end_digest,
            outcome.all_commit,
            outcome.outputs,
        )
        return tuple(context.get("claimed_statement", ())) == expected

    builder.add_gadget(
        ForeignGadget(
            name=f"replay:{len(piece.units)}units:{gate_count}gates",
            constraint_count=gate_count,
            evaluator=replay_evaluator,
        )
    )
    return builder.build()
