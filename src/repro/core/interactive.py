"""The AD-Interact baseline (Section 8): vSQL-style interactive verification.

Transactions execute strictly serially; after each one the server ships the
read lookup proofs and the write roll-forward witness, and the client
verifies them and updates its digest before the next transaction starts.
Serializability and atomicity follow trivially from seriality — at the cost
of one network round trip and a fresh O(|dictionary|) witness computation
per transaction, which is exactly why the baseline plateaus and then decays
in Figure 3a.

All cryptographic verification here is real; only the elapsed time (network
round trips, witness computation) is virtual.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from ..crypto.rsa_group import RSAGroup
from ..db.kvstore import INITIAL_VALUE
from ..db.txn import Transaction, TxnResult
from ..errors import VerificationFailure
from ..sim.costmodel import CostModel
from ..sim.network import NetworkModel
from .memory_integrity import MemoryIntegrityChecker, MemoryIntegrityProvider

__all__ = ["InteractiveServerClient", "InteractiveReport"]


@dataclass(frozen=True)
class InteractiveReport:
    """Outcome plus virtual timing of an interactive session."""

    results: tuple[TxnResult, ...]
    total_seconds: float
    per_txn_seconds: tuple[float, ...]
    final_digest: int

    @property
    def throughput(self) -> float:
        return len(self.results) / self.total_seconds if self.total_seconds else 0.0

    @property
    def mean_latency_seconds(self) -> float:
        if not self.per_txn_seconds:
            return 0.0
        return sum(self.per_txn_seconds) / len(self.per_txn_seconds)


class InteractiveServerClient:
    """Server and client of the interactive protocol, co-simulated."""

    def __init__(
        self,
        group: RSAGroup,
        initial: Mapping[tuple, int] | None = None,
        network: NetworkModel | None = None,
        cost_model: CostModel | None = None,
        prime_bits: int = 64,
    ):
        self.group = group
        self.provider = MemoryIntegrityProvider(group, initial=initial, prime_bits=prime_bits)
        self.checker = MemoryIntegrityChecker(group, self.provider.digest, prime_bits=prime_bits)
        self.network = network or NetworkModel(rtt_seconds=1e-3)
        self.cost_model = cost_model or CostModel.calibrated(100)

    @property
    def digest(self) -> int:
        """The client's digest (kept in lockstep by the protocol)."""
        return self.checker.acc

    def run(self, txns: Sequence[Transaction]) -> InteractiveReport:
        """Process *txns* one by one with full per-transaction verification."""
        results: list[TxnResult] = []
        per_txn: list[float] = []
        total = self.cost_model.interactive_setup_seconds
        for txn in txns:
            elapsed = self._one_transaction(txn, results)
            per_txn.append(elapsed)
            total += elapsed
        return InteractiveReport(
            results=tuple(results),
            total_seconds=total,
            per_txn_seconds=tuple(per_txn),
            final_digest=self.checker.acc,
        )

    def _one_transaction(self, txn: Transaction, results: list[TxnResult]) -> float:
        # Server: execute serially against current state.
        execution = txn.program.execute(txn.params, self.provider.current_value)
        reads = dict(execution.store_reads)
        writes = dict(execution.writes)

        elapsed = self.network.roundtrip()
        # Server-side witness computation: a fresh witness is an
        # exponentiation over the rest of the dictionary — O(|D|) work that
        # grows as the session writes more keys (the Fig 3a decay).
        elapsed += self.provider.dictionary_size * self.cost_model.ad_witness_per_element

        # Client: verify the read proofs against its own digest.
        if reads:
            certificate = self.provider.certify_reads(reads)
            if not self.checker.mem_check(certificate):
                raise VerificationFailure(
                    f"interactive client rejected reads of txn {txn.txn_id}"
                )
            elapsed += self.cost_model.ad_client_verify_seconds
        if writes:
            update = self.provider.apply_writes(writes)
            if not self.checker.mem_update(update):
                raise VerificationFailure(
                    f"interactive client rejected writes of txn {txn.txn_id}"
                )
            elapsed += self.cost_model.ad_client_verify_seconds
        results.append(
            TxnResult(
                txn_id=txn.txn_id,
                committed=True,
                outputs=execution.outputs,
                read_set=execution.store_reads,
                write_set=execution.writes,
            )
        )
        return elapsed


def initial_value_of(key: tuple) -> int:
    """The agreed initial value of never-written keys."""
    return INITIAL_VALUE
