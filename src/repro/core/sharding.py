"""Sharded verification: S independently verified engines behind one session.

The unsharded :class:`~repro.core.session.LitmusSession` funnels every
transaction through one verification pipeline — one accumulator digest, one
WAL, one prover pool.  This module partitions the keyspace across *S* such
engines and puts a router in front:

- :class:`ShardMap` — the deterministic key → shard function (SHA-256 over
  a canonical type-tagged key encoding, so it is stable across processes
  and immune to ``PYTHONHASHSEED``);
- :class:`ShardedSession` — owns S per-shard ``LitmusSession``s, each with
  its own digest, prover pool, and WAL directory under
  ``<dir>/shard-NN/``.  ``digest`` is the S-component
  :class:`~repro.core.api.DigestVector`; ``flush`` fans out to the
  involved shards in parallel threads and merges the per-shard
  :class:`~repro.core.session.BatchResult`s; ``recover`` replays each
  shard's WAL independently (each shard cross-checks its own journaled
  digest).

Routing
-------

A transaction whose statically derived footprint (read keys ∪ write keys —
derivable before execution because write targets are functions of the
parameters only, the paper's Section 7.1 assumption) lands on one shard is
submitted to that shard's engine verbatim: full certified-read
verification, nothing new.

A **cross-shard** transaction goes through two phases:

1. **Reserve** — its write set is reserved across shards by
   :class:`~repro.db.detreserve.CrossShardReserver`: strictly rank-ordered
   acquisition in ascending shard order, with full release of shards
   ``< k`` when shard *k* conflicts, so no shard-order deadlock or
   blocked-by-a-loser starvation is possible.  Each reservation round's
   winners are mutually non-conflicting.
2. **Execute + apply** — the coordinator executes the program once,
   routing every read to the key's owner shard, and derives the final
   write set.  The writes are then submitted to every involved shard as a
   read-free *apply program* (``<name>@apply`` — the same write-key
   templates with the computed values as parameters), which each shard
   runs through its full verified pipeline: executed, proven, client
   verified, and journaled in that shard's WAL.  Apply programs are
   derived deterministically from the registered program, so WAL replay
   at recovery re-derives them by name.

Atomic cross-shard commit
-------------------------

The apply fan-out is a two-phase commit with the coordinator's
**cross-shard intent journal** (:class:`~repro.db.wal.IntentJournal`,
``xshard-intents.log`` in the parent durability directory) as the
commit-decision log:

- **prepare** — before any shard flushes, the round's full apply plan
  (txn ids, apply parameters, participant shards) plus each participant's
  pre-round watermark (batch seq + verified digest) is made durable;
- **commit** — every participant accepted its apply batch: a ``commit``
  resolution is appended and the round is done;
- **compensate** — some participant rejected or errored while others
  accepted: the accepted shards are rolled back to their watermarks via
  :meth:`LitmusSession.compensate_last_batch` (server snapshot rollback +
  digest rewind + a same-sequence checkpoint rewrite), every transaction
  touching a failed-or-compensated shard is rejected (a transitive
  closure, because compensation is batch-granular), and an ``abort``
  resolution is appended;
- **in doubt** — a crash (:class:`~repro.errors.SimulatedCrash`) leaves
  the intent unresolved.  :meth:`ShardedSession.recover` scans the journal
  before shard replay and resolves each pending round from the durable
  evidence: applied everywhere → commit; applied nowhere → abort; applied
  somewhere → physically truncate the apply record off the applied WAL
  tails when possible (abort), otherwise re-apply the journaled writes on
  the missing participants (roll forward, then commit).  Aborted rounds
  are digest-checked against the journaled watermarks afterwards.

Every shard involved in a cross-shard apply journals the *entire* write
set; keys a shard does not own become stale copies in its store, which is
harmless because no read ever consults a non-owner: single-shard
transactions run on the owner and coordinator reads route to the owner.

Trust model note: the per-shard *write application* is fully verified, but
the coordinator's cross-shard reads come from the owner shards' local
stores without per-read certificates — the cross-shard read path is
trusted-coordinator in this revision (DESIGN.md §14 spells out the gap and
the planned fix).
"""

from __future__ import annotations

import hashlib
import os
import threading
from dataclasses import dataclass
from time import perf_counter
from typing import Iterable, Mapping

from ..crypto.rsa_group import RSAGroup
from ..db.detreserve import CrossShardPlan, CrossShardReserver
from ..db.wal import (
    INTENT_JOURNAL_NAME,
    IntentJournal,
    IntentTxn,
    list_segments,
    load_latest_checkpoint,
    scan_wal,
    segment_records,
)
from ..db.fsio import OS_FILESYSTEM, FaultyFileSystem
from ..db.wal.config import DurabilityConfig
from ..errors import (
    DeadlineExceeded,
    DurabilityError,
    RecoveryError,
    ReproError,
    SimulatedCrash,
)
from ..obs.metrics import MetricsRegistry, get_metrics
from ..obs.spans import Tracer, get_tracer
from ..vc.program import Param, Program, WriteStmt
from .api import DigestVector
from .config import LitmusConfig
from .session import (
    BatchResult,
    LitmusSession,
    RetryPolicy,
    UserTicket,
    _frozen_mapping,
)

__all__ = [
    "ShardMap",
    "ShardedSession",
    "XShardRecoveryReport",
    "derive_apply_program",
]

APPLY_SUFFIX = "@apply"
_APPLY_PARAM_PREFIX = "__w"
_SHARD_DOMAIN = b"litmus-shard-map-v1"


class ShardMap:
    """The deterministic key → shard function, shared by client and router.

    Keys are tuples mixing strings, ints and other atoms; each part is
    type-tagged and length-prefixed before hashing so ``("acct", 1)`` and
    ``("acct1",)`` can never collide, and the result is independent of the
    process's hash seed — the same property the command-log codec relies
    on for replay determinism.
    """

    def __init__(self, num_shards: int):
        if num_shards < 1:
            raise ReproError("num_shards must be positive")
        self.num_shards = num_shards

    @staticmethod
    def _encode_part(part) -> bytes:
        if isinstance(part, bool):  # before int: bool is an int subclass
            return b"B" + (b"1" if part else b"0")
        if isinstance(part, int):
            return b"I" + str(part).encode("ascii")
        if isinstance(part, str):
            return b"S" + part.encode("utf-8")
        if isinstance(part, bytes):
            return b"Y" + part
        return b"R" + repr(part).encode("utf-8")

    def shard_of(self, key: tuple) -> int:
        if self.num_shards == 1:
            return 0
        hasher = hashlib.sha256(_SHARD_DOMAIN)
        parts = key if isinstance(key, tuple) else (key,)
        for part in parts:
            blob = self._encode_part(part)
            hasher.update(len(blob).to_bytes(4, "big"))
            hasher.update(blob)
        return int.from_bytes(hasher.digest()[:8], "big") % self.num_shards

    def shards_of(self, keys: Iterable[tuple]) -> set[int]:
        return {self.shard_of(key) for key in keys}

    def partition(self, rows: Mapping[tuple, int]) -> list[dict[tuple, int]]:
        """Split a row mapping into per-shard mappings (index = shard)."""
        parts: list[dict[tuple, int]] = [{} for _ in range(self.num_shards)]
        for key, value in rows.items():
            parts[self.shard_of(key)][key] = value
        return parts


def derive_apply_program(program: Program) -> Program:
    """The read-free companion that applies *program*'s writes on a shard.

    Same write-key templates in statement order, each value replaced by a
    fresh parameter (``__w0``, ``__w1``, ...) the coordinator fills with
    the *final* computed value of that statement's key — so statements
    that write the same key all carry the same value and the application
    is idempotent per key.  Pure function of the registered program, so
    recovery re-derives it by name when replaying a shard's WAL.
    """
    writes = program.write_statements()
    vparams = tuple(f"{_APPLY_PARAM_PREFIX}{i}" for i in range(len(writes)))
    taken = set(program.params) & set(vparams)
    if taken:
        raise ReproError(
            f"program {program.name!r} uses reserved parameter name(s) "
            f"{sorted(taken)}; {_APPLY_PARAM_PREFIX}* is reserved for "
            "cross-shard apply programs"
        )
    statements = tuple(
        WriteStmt(stmt.key, Param(vparams[i])) for i, stmt in enumerate(writes)
    )
    return Program(
        name=program.name + APPLY_SUFFIX,
        params=tuple(program.params) + vparams,
        statements=statements,
    )


def with_apply_programs(programs: Mapping[str, Program]) -> dict[str, Program]:
    """A program map extended with every derivable apply companion."""
    extended = dict(programs)
    for program in list(programs.values()):
        if program.name.endswith(APPLY_SUFFIX):
            continue
        companion = derive_apply_program(program)
        extended.setdefault(companion.name, companion)
    return extended


class _PendingCall:
    """One submitted call waiting for the next fan-out flush."""

    __slots__ = ("ticket", "program", "params")

    def __init__(self, ticket: UserTicket, program: Program, params: dict):
        self.ticket = ticket
        self.program = program
        self.params = params


@dataclass(frozen=True)
class XShardRecoveryReport:
    """What ``ShardedSession.recover`` found in the cross-shard intent journal.

    - ``rounds`` — intents scanned (resolved and pending);
    - ``in_doubt`` — rounds with no durable resolution at scan time;
    - ``committed`` — in-doubt rounds found durably applied on every
      participant (forward-completed with a ``commit`` record);
    - ``aborted`` — in-doubt rounds resolved by abort: applied nowhere, or
      undone by truncating the apply record off the applied WAL tails;
    - ``rolled_forward`` — in-doubt rounds whose apply survived somewhere
      beyond physical undo and was re-applied on the missing participants;
    - ``truncated_records`` — per-shard WAL records physically removed by
      abort resolutions.
    """

    rounds: int = 0
    in_doubt: int = 0
    committed: int = 0
    aborted: int = 0
    rolled_forward: int = 0
    truncated_records: int = 0


class ShardedSession:
    """S independently verified engines behind the one-session surface.

    Satisfies :class:`~repro.core.api.VerifiedSession` exactly like
    :class:`~repro.core.session.LitmusSession` does; the differences are
    behind the surface — ``digest`` has S components, ``flush`` runs the
    router, ``recover`` replays S WALs.
    """

    def __init__(
        self,
        shard_sessions: list[LitmusSession],
        shard_map: ShardMap,
        *,
        max_batch: int = 1024,
        tracer: Tracer | None = None,
        registry: MetricsRegistry | None = None,
        intent_journal: IntentJournal | None = None,
    ):
        if not shard_sessions:
            raise ReproError("a ShardedSession needs at least one shard")
        if len(shard_sessions) != shard_map.num_shards:
            raise ReproError(
                f"shard map expects {shard_map.num_shards} shard(s) but "
                f"{len(shard_sessions)} session(s) were supplied"
            )
        if max_batch < 1:
            raise ReproError("batch capacity must be positive")
        self.shards = list(shard_sessions)
        self.shard_map = shard_map
        self.max_batch = max_batch
        self.tracer = tracer if tracer is not None else get_tracer()
        self.registry = registry if registry is not None else get_metrics()
        self.reserver = CrossShardReserver(
            shard_map.shard_of, registry=self.registry
        )
        self._next_id = max(s._next_id for s in self.shards)
        self._pending: list[_PendingCall] = []
        self.last_result: BatchResult | None = None
        # Aggregate program registry (apply companions included): what the
        # service advertises and recovery replays against.
        self._programs: dict[str, Program] = {}
        for shard in self.shards:
            self._programs.update(shard._programs)
        # The cross-shard intent journal (None without durability): every
        # cross-round's apply plan is made durable here before any shard
        # flushes it, which is what makes cross-shard atomicity survive a
        # coordinator crash.
        self._intents = intent_journal
        # recover() fills these: the per-shard RecoveryReports and the
        # cross-shard in-doubt resolution summary.
        self.recovery_reports = None
        self.xshard_report: XShardRecoveryReport | None = None

    # -- construction ------------------------------------------------------------

    @classmethod
    def create(
        cls,
        initial: Mapping[tuple, int] | None = None,
        config: LitmusConfig | None = None,
        *,
        num_shards: int = 2,
        group: RSAGroup | None = None,
        invariants: tuple = (),
        max_batch: int = 1024,
        tracer: Tracer | None = None,
        registry: MetricsRegistry | None = None,
        retry_policy: RetryPolicy | None = None,
        fault_plan=None,
        checkpoint_every: int = 64,
        durability: DurabilityConfig | None = None,
    ) -> "ShardedSession":
        """Build S fresh engines over a partitioned keyspace.

        *durability.directory* (when given) is the parent: shard *i*
        journals under ``<directory>/shard-NN/`` with the same fsync /
        segment / checkpoint settings.  *group* is shared across shards
        (one trusted setup); each shard's accumulator covers only its own
        partition.  Per-shard invariants see only that shard's rows, so
        only shard-local invariants belong here.
        """
        shard_map = ShardMap(num_shards)
        tracer = tracer if tracer is not None else get_tracer()
        parts = shard_map.partition(dict(initial or {}))
        if group is None:
            group = RSAGroup.generate(bits=512, seed=b"litmus-sharded")
        sessions = []
        for index in range(num_shards):
            shard_durability = None
            if durability is not None:
                shard_durability = DurabilityConfig(
                    directory=cls._shard_dir(durability.directory, index),
                    **durability.settings(),
                )
            sessions.append(
                LitmusSession.create(
                    initial=parts[index],
                    config=config,
                    group=group,
                    invariants=invariants,
                    max_batch=max_batch,
                    tracer=tracer,
                    registry=registry,
                    retry_policy=retry_policy,
                    fault_plan=fault_plan,
                    checkpoint_every=checkpoint_every,
                    durability=shard_durability,
                    shard_index=index,
                )
            )
        intent_journal = None
        if durability is not None:
            os.makedirs(durability.directory, exist_ok=True)
            # The coordinator journal gets the same faultable filesystem
            # the shard engines run on (shard=None targets the coordinator
            # in disk-fault schedules).
            journal_fs = (
                FaultyFileSystem(fault_plan, OS_FILESYSTEM, shard=None)
                if fault_plan is not None
                else OS_FILESYSTEM
            )
            intent_journal = IntentJournal(
                os.path.join(durability.directory, INTENT_JOURNAL_NAME),
                num_shards=num_shards,
                fsync=durability.fsync != "never",
                registry=registry,
                fs=journal_fs,
            )
        return cls(
            sessions,
            shard_map,
            max_batch=max_batch,
            tracer=tracer,
            registry=registry,
            intent_journal=intent_journal,
        )

    @staticmethod
    def _shard_dir(parent: str, index: int) -> str:
        return os.path.join(parent, f"shard-{index:02d}")

    @classmethod
    def recover(
        cls,
        directory: str,
        programs: Iterable[Program] | Mapping[str, Program] = (),
        *,
        group: RSAGroup | None = None,
        invariants: tuple = (),
        max_batch: int = 1024,
        tracer: Tracer | None = None,
        registry: MetricsRegistry | None = None,
        retry_policy: RetryPolicy | None = None,
        fault_plan=None,
        checkpoint_every: int = 64,
    ) -> "ShardedSession":
        """Rebuild a sharded session: replay each shard's WAL independently.

        Discovers the ``shard-NN`` subdirectories of *directory* (their
        count fixes S — it must match the ShardMap the data was written
        under), resolves every in-doubt cross-shard round recorded in the
        intent journal (module docstring: commit / abort / truncate-undo /
        roll-forward), recovers every shard in parallel threads, and
        cross-checks each shard's rebuilt digest against its own journaled
        history exactly as unsharded recovery does.  *programs* needs only
        the application's programs; the ``@apply`` companions the
        cross-shard path journaled are re-derived automatically.

        Layout damage (a missing or renamed ``shard-NN`` directory, an
        intent journal naming more shards than the directory holds) and
        untyped per-shard replay failures raise
        :class:`~repro.errors.RecoveryError` naming the shard.  The
        in-doubt resolution summary lands on ``session.xshard_report``.
        """
        registry = registry if registry is not None else get_metrics()
        if isinstance(programs, Mapping):
            program_map = dict(programs)
        else:
            program_map = {program.name: program for program in programs}
        program_map = with_apply_programs(program_map)
        shard_dirs = sorted(
            name
            for name in os.listdir(directory)
            if name.startswith("shard-")
            and os.path.isdir(os.path.join(directory, name))
        )
        if not shard_dirs:
            raise RecoveryError(
                f"{directory!r} holds no shard-NN subdirectories; was this "
                "directory written by a ShardedSession?"
            )
        expected = [f"shard-{i:02d}" for i in range(len(shard_dirs))]
        if shard_dirs != expected:
            missing = sorted(set(expected) - set(shard_dirs))
            raise RecoveryError(
                f"shard directories {shard_dirs} are not the contiguous "
                f"set {expected}"
                + (
                    f"; missing or renamed: {', '.join(missing)}"
                    if missing
                    else ""
                )
                + "; refusing to recover a partial keyspace"
            )

        # -- in-doubt cross-shard resolution (before any shard replays) ------
        journal_path = os.path.join(directory, INTENT_JOURNAL_NAME)
        intents, _journal_scan = IntentJournal.scan(journal_path, repair=True)
        for record in intents:
            if record.num_shards != len(shard_dirs):
                lost = [
                    f"shard-{i:02d}"
                    for i in range(len(shard_dirs), record.num_shards)
                ]
                raise RecoveryError(
                    f"intent journal round {record.round_id} was written by "
                    f"a {record.num_shards}-shard deployment but "
                    f"{directory!r} holds {len(shard_dirs)} shard "
                    "directories"
                    + (f"; missing: {', '.join(lost)}" if lost else "")
                )
        pending = [r for r in intents if r.state == "pending"]
        resolutions: list[tuple[int, str, str]] = []
        aborted_rounds = []
        roll_forward = []  # (record, {shard: applied?})
        committed = aborted = truncated_records = 0
        for record in pending:
            applied = {
                index: cls._participant_applied(
                    cls._shard_dir(directory, index),
                    record.pre_seqs[index],
                    record.pre_digests[index],
                )
                for index in record.participants
            }
            if all(applied.values()):
                committed += 1
                resolutions.append(
                    (
                        record.round_id,
                        "committed",
                        "in-doubt round found durably applied on every "
                        "participant",
                    )
                )
            elif not any(applied.values()):
                aborted += 1
                aborted_rounds.append(record)
                resolutions.append(
                    (
                        record.round_id,
                        "aborted",
                        "in-doubt round applied on no participant",
                    )
                )
            else:
                # Partial apply.  Undo is preferred (the round was never
                # acknowledged), but only possible while every applied
                # copy is still a bare WAL tail record; once any copy was
                # consolidated into a checkpoint the round must roll
                # forward instead.
                applied_on = sorted(i for i, a in applied.items() if a)
                if all(
                    cls._tail_record_truncatable(
                        cls._shard_dir(directory, i), record.pre_seqs[i]
                    )
                    for i in applied_on
                ):
                    for i in applied_on:
                        cls._truncate_tail_record(
                            cls._shard_dir(directory, i),
                            record.pre_seqs[i] + 1,
                        )
                        truncated_records += 1
                    aborted += 1
                    aborted_rounds.append(record)
                    resolutions.append(
                        (
                            record.round_id,
                            "aborted",
                            "partial apply undone by truncating the WAL "
                            f"tail of shard(s) {applied_on}",
                        )
                    )
                else:
                    roll_forward.append((record, applied))
        journal = IntentJournal(
            journal_path,
            num_shards=len(shard_dirs),
            fsync=True,
            registry=registry,
            fs=(
                FaultyFileSystem(fault_plan, OS_FILESYSTEM, shard=None)
                if fault_plan is not None
                else OS_FILESYSTEM
            ),
        )
        for round_id, state, reason in resolutions:
            journal.log_resolution(round_id, state, reason)

        # -- per-shard replay -------------------------------------------------
        tracer = tracer if tracer is not None else get_tracer()
        sessions: list[LitmusSession | None] = [None] * len(shard_dirs)
        errors: dict[int, BaseException] = {}

        def _recover_one(index: int) -> None:
            try:
                sessions[index] = LitmusSession.recover(
                    os.path.join(directory, shard_dirs[index]),
                    program_map,
                    group=group,
                    invariants=invariants,
                    max_batch=max_batch,
                    tracer=tracer,
                    registry=registry,
                    retry_policy=retry_policy,
                    fault_plan=fault_plan,
                    checkpoint_every=checkpoint_every,
                    shard_index=index,
                )
            except BaseException as exc:  # noqa: BLE001 — re-raised below
                errors[index] = exc

        threads = [
            threading.Thread(target=_recover_one, args=(i,), daemon=True)
            for i in range(len(shard_dirs))
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if errors:
            index = min(errors)
            primary = errors[index]
            if isinstance(primary, ReproError):
                raise primary
            raise RecoveryError(
                f"shard {index} replay failed with an internal error: "
                f"{type(primary).__name__}: {primary}"
            ) from primary
        session = cls(
            [s for s in sessions if s is not None],
            ShardMap(len(shard_dirs)),
            max_batch=max_batch,
            tracer=tracer,
            registry=registry,
            intent_journal=journal,
        )
        session._programs.update(program_map)
        session.recovery_reports = tuple(s.recovery_report for s in session.shards)

        # -- roll-forward + cross-checks (needs the live shards) --------------
        rolled_forward = 0
        for record, applied in roll_forward:
            session._roll_forward_round(record, applied, program_map)
            journal.log_resolution(
                record.round_id,
                "committed",
                "partial apply rolled forward on the missing participants",
            )
            rolled_forward += 1
        for record in aborted_rounds:
            for index in record.participants:
                report = session.shards[index].recovery_report
                recovered_digest = int(session.shards[index].client.digest)
                if (
                    report is not None
                    and report.last_seq == record.pre_seqs[index]
                    and recovered_digest != record.pre_digests[index]
                ):
                    raise RecoveryError(
                        f"shard {index} recovered digest "
                        f"{recovered_digest:#x} does not match the "
                        "journaled pre-round watermark "
                        f"{record.pre_digests[index]:#x} of aborted "
                        f"cross-shard round {record.round_id}"
                    )
        registry.counter("xshard.in_doubt_resolved").inc(len(pending))
        session.xshard_report = XShardRecoveryReport(
            rounds=len(intents),
            in_doubt=len(pending),
            committed=committed,
            aborted=aborted,
            rolled_forward=rolled_forward,
            truncated_records=truncated_records,
        )
        return session

    # -- in-doubt resolution helpers ------------------------------------------

    @staticmethod
    def _participant_applied(
        shard_dir: str, pre_seq: int, pre_digest: int
    ) -> bool:
        """Did this shard durably apply its batch of the journaled round?

        The round's apply batch, when it reached this shard's durability
        barrier, is the record at ``pre_seq + 1`` — either still a WAL
        record or already consolidated into a checkpoint at that sequence.
        A live compensation rewrites the same-sequence checkpoint with the
        *pre-round* digest, so "durably applied" is: the durable tip moved
        past the watermark **and** its digest differs from the watermark
        digest.  (An apply whose writes change nothing leaves the digest
        unchanged; classifying it as not-applied is harmless because both
        resolutions produce identical state.)

        The scan runs with ``repair=False`` and a throwaway registry: the
        per-shard ``LitmusSession.recover`` that follows owns the repair
        and its reporting.
        """
        checkpoint = load_latest_checkpoint(shard_dir)
        records, _report = scan_wal(
            shard_dir, registry=MetricsRegistry(), repair=False
        )
        tip_seq, tip_digest = checkpoint.seq, checkpoint.digest
        for record in records:
            if record.seq > tip_seq:
                tip_seq, tip_digest = record.seq, record.digest
        return tip_seq > pre_seq and tip_digest != pre_digest

    @staticmethod
    def _tail_record_truncatable(shard_dir: str, pre_seq: int) -> bool:
        """Can the record at ``pre_seq + 1`` be physically removed?

        Only while it is the *last* durable record and no checkpoint has
        consolidated it — then truncating the segment at its offset is
        indistinguishable from the crash having happened one write
        earlier, which per-shard recovery absorbs natively.
        """
        checkpoint = load_latest_checkpoint(shard_dir)
        if checkpoint.seq > pre_seq:
            return False
        records, _report = scan_wal(
            shard_dir, registry=MetricsRegistry(), repair=False
        )
        live = [r for r in records if r.seq > checkpoint.seq]
        return bool(live) and live[-1].seq == pre_seq + 1

    @staticmethod
    def _truncate_tail_record(shard_dir: str, seq: int) -> None:
        """Physically drop the WAL tail record with sequence *seq*."""
        for path in reversed(list_segments(shard_dir)):
            records, _intact, _status = segment_records(path)
            target = next((r for r in records if r.seq == seq), None)
            if target is None:
                continue
            with open(path, "r+b") as handle:
                handle.truncate(target.offset)
                handle.flush()
                os.fsync(handle.fileno())
            return
        raise RecoveryError(
            f"cannot undo cross-shard apply: record seq {seq} not found "
            f"in {shard_dir!r}"
        )

    def _roll_forward_round(
        self, record, applied: dict, program_map: Mapping[str, Program]
    ) -> None:
        """Re-apply a partially applied round on its missing participants."""
        targets = sorted(
            {
                index
                for txn in record.txns
                for index in txn.shards
                if not applied.get(index, False)
            }
        )
        for txn in record.txns:
            base = program_map.get(txn.program)
            apply_program = program_map.get(txn.program + APPLY_SUFFIX)
            if apply_program is None and base is not None:
                apply_program = derive_apply_program(base)
            if apply_program is None:
                raise RecoveryError(
                    f"cannot roll forward cross-shard round "
                    f"{record.round_id}: program {txn.program!r} was not "
                    "supplied to recover()"
                )
            for index in txn.shards:
                if applied.get(index, False):
                    continue
                self.shards[index].submit_call(
                    txn.user,
                    apply_program,
                    txn.params,
                    txn_id=txn.txn_id,
                    auto_flush=False,
                )
        results = self._parallel_flush(targets, None)
        rejected = sorted(i for i, r in results.items() if not r.accepted)
        if rejected:
            raise RecoveryError(
                f"roll-forward of cross-shard round {record.round_id} was "
                f"rejected on shard(s) {rejected}; the durable history "
                "cannot be made atomic"
            )

    # -- user-facing API ---------------------------------------------------------

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    @property
    def digest(self) -> DigestVector:
        """S constant-size verified digests, one per shard."""
        return DigestVector(int(s.client.digest) for s in self.shards)

    @property
    def queued(self) -> int:
        return len(self._pending)

    @property
    def batches_verified(self) -> int:
        return sum(s.batches_verified for s in self.shards)

    def submit(self, user: str, program: Program, **params: int) -> UserTicket:
        """Enqueue one call; routing happens at flush time."""
        if program.name.endswith(APPLY_SUFFIX):
            raise ReproError(
                f"{program.name!r} is an internal apply program; submit the "
                "original program instead"
            )
        self._programs.setdefault(program.name, program)
        ticket = UserTicket(user=user, txn_id=self._next_id)
        self._next_id += 1
        self._pending.append(_PendingCall(ticket, program, dict(params)))
        if len(self._pending) >= self.max_batch:
            self.flush()
        return ticket

    def flush(self, deadline: float | None = None) -> BatchResult:
        """Route, fan out, verify, and merge one batch across the shards.

        Single-shard calls go to their owner engines and all involved
        shards flush in parallel threads; cross-shard calls then run
        through reserve → execute → apply rounds (module docstring).  The
        merged :class:`BatchResult` is accepted iff every involved shard
        accepted every sub-batch; ``attempts`` is the worst shard's count
        and ``timing`` is ``None`` (per-shard timing stays on the shard
        sessions' ``last_result``).
        """
        if not self._pending:
            return BatchResult.empty()
        pending, self._pending = self._pending, []
        start = perf_counter()
        try:
            with self.tracer.span(
                "sharded_flush", num_txns=len(pending), shards=self.num_shards
            ):
                result = self._flush(pending, deadline)
        except BaseException:
            # A cancelled or crashed round must not leave sub-calls queued
            # on the shards (the next flush would re-submit them): drop the
            # shard-level copies — this session owns those queues outright —
            # and re-queue the not-yet-resolved calls globally, in order.
            for shard in self.shards:
                shard._pending.clear()
            self._pending = [
                call for call in pending if not call.ticket.resolved
            ] + self._pending
            raise
        self.registry.histogram("shard.flush_seconds").observe(
            perf_counter() - start
        )
        self.last_result = result
        return result

    def close(self) -> None:
        for shard in self.shards:
            shard.close()
        if self._intents is not None:
            self._intents.close()

    # -- the router --------------------------------------------------------------

    def _flush(
        self, pending: list[_PendingCall], deadline: float | None
    ) -> BatchResult:
        single: dict[int, list[_PendingCall]] = {}
        cross: list[tuple[_PendingCall, CrossShardPlan]] = []
        for call in pending:
            reads = frozenset(call.program.read_keys(call.params))
            writes = frozenset(call.program.write_keys(call.params))
            shards = self.shard_map.shards_of(reads | writes)
            if len(shards) <= 1:
                home = next(iter(shards)) if shards else 0
                single.setdefault(home, []).append(call)
            else:
                cross.append(
                    (
                        call,
                        CrossShardPlan(
                            txn_id=call.ticket.txn_id,
                            priority=call.ticket.txn_id,
                            read_keys=reads,
                            write_keys=writes,
                        ),
                    )
                )
        self.registry.counter("shard.single_txns").inc(
            sum(len(calls) for calls in single.values())
        )
        self.registry.counter("shard.cross_txns").inc(len(cross))

        attempts = 1
        accepted = True
        reasons: list[str] = []
        outputs: dict[int, tuple[int, ...]] = {}
        user_outputs: dict[str, list[tuple[int, ...]]] = {}

        # -- phase 1: single-shard calls, fanned out in parallel ------------
        shard_tickets: dict[int, list[tuple[_PendingCall, UserTicket]]] = {}
        for home, calls in single.items():
            shard = self.shards[home]
            for call in calls:
                shard_ticket = shard.submit_call(
                    call.ticket.user,
                    call.program,
                    call.params,
                    txn_id=call.ticket.txn_id,
                    auto_flush=False,
                )
                shard_tickets.setdefault(home, []).append((call, shard_ticket))
        try:
            results = self._parallel_flush(sorted(single), deadline)
        except BaseException as exc:
            # Salvage what finished: shards that completed resolve their
            # outer tickets from the shard tickets (an accepted shard's
            # work is verified and durably journaled — discarding it here
            # is what used to double-submit it on retry).  For failures
            # other than a cancellation or a crash, the failing and
            # never-flushed shards' tickets resolve as rejected so callers
            # see a typed failure instead of TicketUnresolvedError later.
            completed = getattr(exc, "shard_outcomes", {})
            for home in completed:
                for call, shard_ticket in shard_tickets.get(home, []):
                    if shard_ticket.resolved:
                        call.ticket._resolve(
                            shard_ticket._accepted,
                            shard_ticket._outputs,
                            shard_ticket._reason,
                        )
            if not isinstance(
                exc, (DeadlineExceeded, SimulatedCrash, DurabilityError)
            ):
                for home, ticket_pairs in shard_tickets.items():
                    for call, _shard_ticket in ticket_pairs:
                        if not call.ticket.resolved:
                            call.ticket._resolve(
                                False,
                                (),
                                f"shard {home} flush failed: {exc}",
                            )
            raise
        for home, shard_result in results.items():
            attempts = max(attempts, shard_result.attempts)
            if not shard_result.accepted:
                accepted = False
                reasons.append(f"shard {home}: {shard_result.reason}")
            for call, shard_ticket in shard_tickets.get(home, []):
                call.ticket._resolve(
                    shard_ticket._accepted,
                    shard_ticket._outputs,
                    shard_ticket._reason,
                )

        # -- phase 2: cross-shard rounds ------------------------------------
        if cross:
            calls_by_id = {call.ticket.txn_id: call for call, _plan in cross}
            rounds = self.reserver.plan_rounds([plan for _call, plan in cross])
            for round_plans in rounds:
                round_attempts, round_reasons = self._run_cross_round(
                    [calls_by_id[plan.txn_id] for plan in round_plans], deadline
                )
                attempts = max(attempts, round_attempts)
                if round_reasons:
                    accepted = False
                    reasons.extend(round_reasons)

        for call in pending:
            ticket = call.ticket
            if ticket.resolved and ticket._accepted:
                outputs[ticket.txn_id] = ticket._outputs
                user_outputs.setdefault(ticket.user, []).append(ticket._outputs)

        return BatchResult(
            accepted=accepted,
            reason="; ".join(reasons),
            num_txns=len(pending),
            attempts=attempts,
            outputs=_frozen_mapping(outputs),
            user_outputs=_frozen_mapping(
                {user: tuple(values) for user, values in user_outputs.items()}
            ),
            tickets=tuple(call.ticket for call in pending),
            timing=None,
            metrics=_frozen_mapping(self.registry.snapshot()),
        )

    def _run_cross_round(
        self, calls: list[_PendingCall], deadline: float | None
    ) -> tuple[int, list[str]]:
        """Execute one reservation round's winners and apply their writes.

        The two-phase commit of the module docstring: the round's full
        apply plan is journaled durably (*prepare*) before any shard sees
        a byte of it, then the apply batches fan out and the outcome is
        resolved — *commit* when every participant accepted, compensation
        plus *abort* on any partial outcome, and a deliberately unresolved
        (in-doubt) intent when a crash killed the fan-out mid-flight.
        """
        involved: set[int] = set()
        per_call: list[
            tuple[_PendingCall, tuple[int, ...], Program, dict, set[int]]
        ] = []
        for call in calls:
            # Owner-routed execution against the current (pre-round) state:
            # every read goes to the shard that owns the key.
            result = call.program.execute(call.params, self._owner_read)
            final_values = dict(result.writes)
            apply_program = self._apply_program_for(call.program)
            apply_params = dict(call.params)
            for index, stmt in enumerate(call.program.write_statements()):
                key = stmt.key.resolve(call.params)
                apply_params[f"{_APPLY_PARAM_PREFIX}{index}"] = final_values[key]
            shards = self.shard_map.shards_of(final_values)
            involved |= shards
            per_call.append(
                (call, result.outputs, apply_program, apply_params, shards)
            )

        # Phase 1 (prepare): make the intent durable before any shard
        # flush.  After this write a crash anywhere in the fan-out leaves
        # enough on disk for recover() to finish or undo the round.
        round_id = None
        if self._intents is not None:
            round_id = self._intents.begin_round()
            participants = tuple(sorted(involved))
            self._intents.log_intent(
                round_id,
                tuple(
                    IntentTxn(
                        txn_id=call.ticket.txn_id,
                        user=call.ticket.user,
                        program=call.program.name,
                        params=apply_params,
                        shards=tuple(sorted(shards)),
                    )
                    for call, _outputs, _program, apply_params, shards in per_call
                ),
                participants,
                {i: self.shards[i]._batch_seq for i in participants},
                {i: int(self.shards[i].client.digest) for i in participants},
            )

        for call, _outputs, apply_program, apply_params, shards in per_call:
            for shard_index in sorted(shards):
                self.shards[shard_index].submit_call(
                    call.ticket.user,
                    apply_program,
                    apply_params,
                    txn_id=call.ticket.txn_id,
                    auto_flush=False,
                )

        # Phase 2 (commit/compensate): fan out, then resolve the intent.
        try:
            results = self._parallel_flush(sorted(involved), deadline)
        except (SimulatedCrash, DurabilityError):
            # Process death — or a disk that refused an acknowledged-path
            # write (failed fsync poisons the engine: fsyncgate semantics
            # forbid retry-and-pretend).  Either way no live compensation
            # is possible; the intent deliberately stays in doubt for
            # recover() to resolve from the durable evidence.
            raise
        except BaseException as exc:
            outcomes = getattr(exc, "shard_outcomes", {})
            self._compensate(
                [i for i in sorted(outcomes) if outcomes[i].accepted]
            )
            self._resolve_round(
                round_id, "aborted", f"{type(exc).__name__}: {exc}"
            )
            if isinstance(exc, DeadlineExceeded):
                # Cancelled, not failed: tickets stay unresolved so the
                # outer flush() re-queues the calls for a later retry.
                raise
            for call, _outputs, _program, _params, _shards in per_call:
                if not call.ticket.resolved:
                    call.ticket._resolve(
                        False, (), f"cross-shard round failed: {exc}"
                    )
            raise

        attempts = max([r.attempts for r in results.values()], default=1)
        failed = {index for index, r in results.items() if not r.accepted}
        # Compensation is batch-granular (a shard's whole apply batch rolls
        # back together), so the failure taint spreads transitively: a call
        # touching a failed shard must be undone on its *other* shards,
        # whose batches may carry further calls, and so on to a fixpoint.
        tainted = set(failed)
        while True:
            grown = {
                index
                for _call, _o, _p, _ap, shards in per_call
                if shards & tainted
                for index in shards
            }
            if grown <= tainted:
                break
            tainted |= grown
        self._compensate(sorted(tainted - failed))

        reasons = [f"shard {i}: {results[i].reason}" for i in sorted(failed)]
        for call, call_outputs, _program, _params, shards in per_call:
            bad = shards & tainted
            if bad:
                direct = shards & failed
                call.ticket._resolve(
                    False,
                    (),
                    "cross-shard apply rejected on shard(s) "
                    + ", ".join(str(i) for i in sorted(direct or bad))
                    + (
                        ""
                        if direct
                        else " (compensated: a sibling call's shard failed)"
                    ),
                )
            else:
                call.ticket._resolve(True, call_outputs, "")
        if failed:
            self._resolve_round(round_id, "aborted", "; ".join(reasons))
        else:
            self._resolve_round(round_id, "committed")
            self.registry.counter("xshard.commits").inc()
        return attempts, reasons

    def _compensate(self, shard_indexes: Iterable[int]) -> None:
        """Roll the given shards back to their pre-round verified state."""
        for index in shard_indexes:
            self.shards[index].compensate_last_batch()
            self.registry.counter("xshard.compensations").inc()

    def _resolve_round(
        self, round_id: int | None, state: str, reason: str = ""
    ) -> None:
        if self._intents is not None and round_id is not None:
            self._intents.log_resolution(round_id, state, reason)

    def _owner_read(self, key: tuple) -> int:
        return self.shards[self.shard_map.shard_of(key)].server.db.get(key)

    def _apply_program_for(self, program: Program) -> Program:
        name = program.name + APPLY_SUFFIX
        apply_program = self._programs.get(name)
        if apply_program is None:
            apply_program = derive_apply_program(program)
            self._programs[name] = apply_program
        return apply_program

    def _parallel_flush(
        self, shard_indexes: list[int], deadline: float | None
    ) -> dict[int, BatchResult]:
        """Flush the given shards concurrently; one thread per shard.

        Exceptions (SimulatedCrash, DeadlineExceeded, ...) re-raise in the
        caller, lowest shard index first, after every thread has finished —
        deterministic regardless of thread scheduling.  The raised error
        carries the shards that *did* finish: ``shard_outcomes`` maps
        shard index → :class:`BatchResult` for every flush that completed,
        and ``shard_errors`` maps shard index → exception for every one
        that did not, so a failing shard no longer silently discards its
        siblings' verified (and durably journaled) outcomes.
        """
        involved = [i for i in shard_indexes if self.shards[i].queued]
        if not involved:
            return {}
        self.registry.counter("shard.flush_fanout").inc(len(involved))
        results: dict[int, BatchResult] = {}
        errors: dict[int, BaseException] = {}

        def _flush_one(index: int) -> None:
            try:
                results[index] = self.shards[index].flush(deadline)
            except BaseException as exc:  # noqa: BLE001 — re-raised below
                errors[index] = exc

        if len(involved) == 1:
            _flush_one(involved[0])
        else:
            threads = [
                threading.Thread(target=_flush_one, args=(i,), daemon=True)
                for i in involved
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        if errors:
            primary = errors[min(errors)]
            primary.shard_outcomes = dict(results)
            primary.shard_errors = dict(errors)
            raise primary
        return results
