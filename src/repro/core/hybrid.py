"""Hybrid real-time mode (paper Section 9).

"We can include a hybrid mode, where Litmus can switch between batch
verification and interactive verification in real-time.  The memory digest
of these two modes are compatible."

Both modes operate on the *same* memory-integrity provider, so a
transaction marked interactive gets its answer (and its proof) immediately
— at interactive throughput — while the rest of the batch flows through the
aggregated pipeline, and the digest chain stays unbroken across the mode
boundary.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ..crypto.rsa_group import RSAGroup
from ..db.txn import Transaction
from ..errors import VerificationFailure
from ..sim.costmodel import CostModel
from ..sim.network import NetworkModel
from .client import ClientVerdict, LitmusClient
from .config import LitmusConfig
from .memory_integrity import MemoryIntegrityChecker
from .server import LitmusServer

__all__ = ["HybridLitmus", "HybridOutcome"]


class HybridOutcome:
    """Combined result of one hybrid round."""

    def __init__(
        self,
        interactive_outputs: dict[int, tuple[int, ...]],
        batch_verdict: ClientVerdict | None,
        interactive_seconds: float,
        batch_seconds: float,
    ):
        self.interactive_outputs = interactive_outputs
        self.batch_verdict = batch_verdict
        self.interactive_seconds = interactive_seconds
        self.batch_seconds = batch_seconds

    @property
    def accepted(self) -> bool:
        return self.batch_verdict is None or self.batch_verdict.accepted


class HybridLitmus:
    """A Litmus deployment that serves marked transactions interactively."""

    def __init__(
        self,
        initial: Mapping[tuple, int] | None = None,
        config: LitmusConfig | None = None,
        group: RSAGroup | None = None,
        network: NetworkModel | None = None,
        cost_model: CostModel | None = None,
    ):
        self.config = config or LitmusConfig()
        self.server = LitmusServer(
            initial=initial, config=self.config, group=group, cost_model=cost_model
        )
        self.group = self.server.group
        self.network = network or NetworkModel(rtt_seconds=1e-3)
        self.cost_model = cost_model or CostModel.calibrated(100)
        self.client = LitmusClient(
            self.group, self.server.digest, config=self.config
        )
        self._checker = MemoryIntegrityChecker(
            self.group, self.server.digest, prime_bits=self.config.prime_bits
        )

    def run(
        self,
        txns: Sequence[Transaction],
        interactive_ids: frozenset[int] | set[int] = frozenset(),
    ) -> HybridOutcome:
        """Serve marked transactions interactively, batch the rest."""
        interactive = [t for t in txns if t.txn_id in interactive_ids]
        batched = [t for t in txns if t.txn_id not in interactive_ids]

        interactive_outputs: dict[int, tuple[int, ...]] = {}
        interactive_seconds = 0.0
        provider = self.server.provider
        for txn in interactive:
            execution = txn.program.execute(txn.params, provider.current_value)
            reads = dict(execution.store_reads)
            writes = dict(execution.writes)
            if reads:
                cert = provider.certify_reads(reads)
                if not self._checker.mem_check(cert):
                    raise VerificationFailure(
                        f"hybrid client rejected reads of txn {txn.txn_id}"
                    )
            if writes:
                update = provider.apply_writes(writes)
                if not self._checker.mem_update(update):
                    raise VerificationFailure(
                        f"hybrid client rejected writes of txn {txn.txn_id}"
                    )
                # Keep the server's normal database in sync for the batch path.
                for key, value in writes.items():
                    self.server.db.put(key, value)
            interactive_outputs[txn.txn_id] = execution.outputs
            interactive_seconds += (
                self.network.roundtrip()
                + provider.dictionary_size * self.cost_model.ad_witness_per_element
            )
        # Interactive updates moved the digest; the batch client follows.
        self.client.digest = self._checker.acc

        batch_verdict: ClientVerdict | None = None
        batch_seconds = 0.0
        if batched:
            response = self.server.execute_batch(batched)
            batch_verdict = self.client.verify_response(batched, response)
            batch_seconds = response.timing.total_seconds
            if batch_verdict.accepted:
                self._checker.acc = self.client.digest
        return HybridOutcome(
            interactive_outputs=interactive_outputs,
            batch_verdict=batch_verdict,
            interactive_seconds=interactive_seconds,
            batch_seconds=batch_seconds,
        )
