"""Memory integrity: provider (Algorithm 1) and checker (Algorithm 2).

The **provider** runs natively on the server.  It owns the authenticated
dictionary state (the exponent product ``S``, the digest ``acc``, and the
cached dictionary ``D``) and mints certificates:

- :class:`ReadCertificate` — an aggregated lookup proof for the keys a
  schedule unit read, plus a key non-existence proof for never-written keys
  (whose value is the agreed initial 0);
- :class:`WriteCertificate` — the witness needed to roll the digest forward
  over a unit's writes, plus non-existence proofs for blind inserts.

The **checker** is the logic the circuit runs ("plugged into each
transaction" per Section 6.1.2): it holds only the running digest ``acc``
and verifies certificates with a constant number of group operations,
updating ``acc`` as writes are applied.  Both sides perform the *real* RSA
mathematics; when the checker runs inside a wrapped-transaction circuit it
is wrapped as a fixed-cost foreign gadget (see
:mod:`repro.core.wrapper`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from ..crypto.authdict import AuthenticatedDictionary, LookupProof, NonMembershipProof
from ..crypto.cache import prime_cache_stats
from ..crypto.poe import PoEBatchProof, PoEProof, prove_poe_batch, verify_poe_batch
from ..crypto.rsa_group import RSAGroup
from ..db.kvstore import INITIAL_VALUE
from ..errors import IntegrityError

__all__ = [
    "ReadCertificate",
    "WriteCertificate",
    "MemoryIntegrityProvider",
    "MemoryIntegrityChecker",
    "POE_MODE_BATCH",
]

# Provider `use_poe` mode attaching ONE aggregated PoE per piece instead of
# one Wesolowski proof per read certificate (see certify_piece_poe).
POE_MODE_BATCH = "batch"


@dataclass(frozen=True)
class ReadCertificate:
    """Authenticates the values a unit read, against a specific digest.

    When *poe* is set, the lookup verifies with a constant number of group
    operations (Wesolowski proof-of-exponentiation, Section 6.1.1) instead
    of an exponentiation by the full pair product.
    """

    digest: int  # the digest this certificate is valid against
    present: tuple[tuple[tuple, int], ...]  # (key, value) pairs in the AD
    absent: tuple[tuple, ...]  # keys never written (value = initial 0)
    lookup: LookupProof | None
    nokey: NonMembershipProof | None
    poe: PoEProof | None = None

    def values(self) -> dict[tuple, int]:
        out = {key: value for key, value in self.present}
        for key in self.absent:
            out[key] = INITIAL_VALUE
        return out


@dataclass(frozen=True)
class WriteCertificate:
    """Authenticates a digest roll-forward over a unit's writes."""

    old_digest: int
    new_digest: int
    old_pairs: tuple[tuple[tuple, int], ...]  # existing keys' prior values
    inserted: tuple[tuple, ...]  # keys written for the first time
    new_pairs: tuple[tuple[tuple, int], ...]  # all written (key, value)
    witness: LookupProof  # excludes exactly the old pairs
    nokey: NonMembershipProof | None  # absence of `inserted` under old digest


class MemoryIntegrityProvider:
    """Algorithm 1: the server-side witness factory.

    ``GenReadProof`` maps to :meth:`certify_reads`; ``UpdateWrite`` maps to
    :meth:`apply_writes`.  Aggregation over a whole non-conflicting batch is
    inherent: certificates cover key *sets*.
    """

    def __init__(
        self,
        group: RSAGroup,
        initial: Mapping[tuple, int] | None = None,
        prime_bits: int = 64,
        use_poe: bool | str = False,
    ):
        """*use_poe* selects how lookup proofs are compressed:

        - ``False`` — plain aggregated lookups, verified by full
          exponentiation;
        - ``True`` — one Wesolowski PoE per read certificate;
        - :data:`POE_MODE_BATCH` — certificates carry no individual PoE;
          the server mints one :class:`~repro.crypto.poe.PoEBatchProof`
          per piece via :meth:`certify_piece_poe` and the checker verifies
          all lookups with a single batched check.
        """
        self._ad = AuthenticatedDictionary(group, initial=initial, prime_bits=prime_bits)
        self.use_poe = use_poe

    @property
    def digest(self) -> int:
        return self._ad.digest

    @property
    def dictionary_size(self) -> int:
        return len(self._ad)

    def current_value(self, key: tuple) -> int:
        return self._ad.get(key, INITIAL_VALUE)

    def certify_unit(
        self,
        reads: Mapping[tuple, int] | None,
        writes: Mapping[tuple, int] | None,
    ) -> tuple[ReadCertificate | None, WriteCertificate | None]:
        """Certify one schedule unit: reads against the current digest, then
        the digest roll-forward over its writes.

        This is the serial stage of the prover pipeline — certificates must
        be minted in schedule order because each one chains off the previous
        digest — so it stays on the dispatcher thread while earlier pieces
        prove concurrently.
        """
        read_cert = self.certify_reads(dict(reads)) if reads else None
        write_cert = self.apply_writes(dict(writes)) if writes else None
        return read_cert, write_cert

    def state(self) -> tuple[dict, int, int]:
        """Capture the provider's AD state for a later :meth:`restore`."""
        return self._ad.state()

    def restore(self, state: tuple[dict, int, int]) -> None:
        """Rewind the provider to a previously captured state.

        Used by the server's rejected-batch recovery: certificates minted
        after the capture become invalid against the restored digest, which
        is exactly the point — the rolled-back batch never happened.
        """
        self._ad.restore(state)

    @staticmethod
    def cache_stats() -> dict:
        """Hit/miss counters of the crypto hot-path caches feeding the AD."""
        return prime_cache_stats()

    def certify_reads(self, reads: Mapping[tuple, int]) -> ReadCertificate:
        """Prove that each key in *reads* currently has the given value.

        Keys never written get an aggregated non-existence proof; their
        claimed value must be the agreed initial value.
        """
        present: dict[tuple, int] = {}
        absent: list[tuple] = []
        for key, value in reads.items():
            if key in self._ad:
                stored = self._ad.get(key)
                if stored != value:
                    raise IntegrityError(
                        f"provider asked to certify stale value for {key!r}: "
                        f"store has {stored}, caller claims {value}"
                    )
                present[key] = value
            else:
                if value != INITIAL_VALUE:
                    raise IntegrityError(
                        f"unwritten key {key!r} must read the initial value"
                    )
                absent.append(key)
        lookup = None
        poe = None
        if present:
            if self.use_poe is True:
                lookup, poe = self._ad.prove_lookup_with_poe(present)
            else:
                # Plain mode and batch mode both mint a bare lookup; in
                # batch mode the PoE arrives later, once per piece.
                lookup = self._ad.prove_lookup(present)
        nokey = self._ad.prove_no_key(absent) if absent else None
        return ReadCertificate(
            digest=self._ad.digest,
            present=tuple(present.items()),
            absent=tuple(absent),
            lookup=lookup,
            nokey=nokey,
            poe=poe,
        )

    def certify_piece_poe(
        self, certificates: Iterable[ReadCertificate | None]
    ) -> PoEBatchProof | None:
        """One aggregated PoE covering every bare lookup in *certificates*.

        Collects each certificate whose lookup has no individual PoE into
        the instance ``witness^(prod H(k, v)) == digest`` and proves all of
        them at once (random-linear-combination Wesolowski, see
        :func:`repro.crypto.poe.prove_poe_batch`).  Returns ``None`` when no
        certificate needs covering.  The instance-selection rule here must
        match the checker's deferral rule exactly — both take "present
        pairs, bare lookup" — so the batch the server proves is the batch
        the checker verifies.
        """
        instances: list[tuple[int, int, int]] = []
        for certificate in certificates:
            if certificate is None or not certificate.present:
                continue
            if certificate.lookup is None or certificate.poe is not None:
                continue
            exponent = self._ad.lookup_exponent(dict(certificate.present))
            instances.append((certificate.lookup.witness, exponent, certificate.digest))
        if not instances:
            return None
        return prove_poe_batch(self._ad.group, instances)

    def apply_writes(self, writes: Mapping[tuple, int]) -> WriteCertificate:
        """Apply *writes* to the dictionary, returning the roll-forward proof."""
        if not writes:
            raise IntegrityError("empty write set")
        old_digest = self._ad.digest
        old_pairs = {key: self._ad.get(key) for key in writes if key in self._ad}
        inserted = tuple(key for key in writes if key not in self._ad)
        nokey = self._ad.prove_no_key(inserted) if inserted else None
        new_digest, witness = self._ad.update(dict(writes))
        return WriteCertificate(
            old_digest=old_digest,
            new_digest=new_digest,
            old_pairs=tuple(old_pairs.items()),
            inserted=inserted,
            new_pairs=tuple(writes.items()),
            witness=witness,
            nokey=nokey,
        )


class MemoryIntegrityChecker:
    """Algorithm 2: the in-circuit verifier.

    Holds only ``acc`` (one "dedicated wire"); each call performs a constant
    number of group operations.  All verification is real cryptography — a
    tampered certificate makes the corresponding method return False, which
    zeroes the wrapped transaction's AllCommit bit.
    """

    def __init__(self, group: RSAGroup, initial_digest: int, prime_bits: int = 64):
        self._verifier = AuthenticatedDictionary(group, prime_bits=prime_bits)
        self.acc = initial_digest
        self._deferred: list[tuple[int, int, int]] = []

    @property
    def deferred_instances(self) -> int:
        """How many lookup checks are queued for the final batched PoE."""
        return len(self._deferred)

    def mem_check(self, certificate: ReadCertificate, defer_poe: bool = False) -> bool:
        """MemCheck: are the claimed read values consistent with ``acc``?

        With *defer_poe*, a bare lookup (no individual PoE attached) is not
        exponentiated here: its instance is queued and settled by one
        batched Wesolowski check in :meth:`verify_deferred_poe`.  Everything
        else — digest binding, canonical encodings, absence proofs — is
        still enforced immediately.
        """
        if certificate.digest != self.acc:
            return False
        if certificate.present:
            if certificate.lookup is None:
                return False
            pairs = {key: value for key, value in certificate.present}
            if certificate.poe is not None:
                if not self._verifier.ver_lookup_with_poe(
                    self.acc, pairs, certificate.lookup, certificate.poe
                ):
                    return False
            elif defer_poe:
                witness = certificate.lookup.witness
                modulus = self._verifier.group.modulus
                if not (0 < witness < modulus and 0 < self.acc < modulus):
                    return False
                exponent = self._verifier.lookup_exponent(pairs)
                self._deferred.append((witness, exponent, self.acc))
            elif not self._verifier.ver_lookup(self.acc, pairs, certificate.lookup):
                return False
        if certificate.absent:
            if certificate.nokey is None:
                return False
            if not self._verifier.ver_no_key(self.acc, certificate.absent, certificate.nokey):
                return False
        return True

    def verify_deferred_poe(self, proof: PoEBatchProof | None) -> bool:
        """Settle every lookup deferred by ``mem_check(..., defer_poe=True)``.

        Drains the queue either way: a piece is accepted only if the single
        batched check covers *exactly* the deferred instances (count is
        bound into the proof and the transcript covers every witness,
        exponent, and digest).
        """
        instances, self._deferred = self._deferred, []
        if not instances:
            return proof is None
        if proof is None:
            return False
        return verify_poe_batch(self._verifier.group, instances, proof)

    def mem_update(self, certificate: WriteCertificate) -> bool:
        """MemUpdate: verify the old pairs against ``acc``, roll it forward."""
        if certificate.old_digest != self.acc:
            return False
        old_pairs = {key: value for key, value in certificate.old_pairs}
        if not self._verifier.ver_lookup(self.acc, old_pairs, certificate.witness):
            return False
        if certificate.inserted:
            # Blind inserts must prove the key was never written; otherwise a
            # malicious server could shadow an existing pair and later serve
            # either value for the same key.
            if certificate.nokey is None:
                return False
            if not self._verifier.ver_no_key(self.acc, certificate.inserted, certificate.nokey):
                return False
        claimed_keys = set(old_pairs) | set(certificate.inserted)
        if claimed_keys != {key for key, _v in certificate.new_pairs}:
            return False
        new_pairs = {key: value for key, value in certificate.new_pairs}
        rolled = self._verifier.digest_after_update(certificate.witness, new_pairs)
        if rolled != certificate.new_digest:
            return False
        self.acc = rolled
        return True
