"""Verifiable consistency (paper Section 9).

"To verify consistency, we apply similar methods, but specializing the
memory integrity checker into customized checkers."  An :class:`Invariant`
is such a customized checker: it inspects each write certificate (which
authenticates both the old and the new values of every written key) and
decides whether the transition preserves the application's semantic
invariant.  Invariants participate in the wrapped-transaction replay — a
violated invariant zeroes the AllCommit bit exactly like a failed memory
check — and in the circuit structure (their names are part of the label the
circuit matcher compares).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Protocol, runtime_checkable

from ..errors import ReproError
from .memory_integrity import WriteCertificate

__all__ = ["Invariant", "SumInvariant", "InvariantViolation", "check_invariants"]


class InvariantViolation(ReproError):
    """A semantic (consistency) invariant was violated by a transition."""


@runtime_checkable
class Invariant(Protocol):
    """A consistency predicate over authenticated write transitions."""

    name: str

    def check_unit(self, certificate: WriteCertificate) -> bool:
        """True iff the transition old-values -> new-values is allowed."""
        ...


@dataclass(frozen=True)
class SumInvariant:
    """The classic bank invariant: the sum over a key family is preserved.

    ``prefixes`` selects the keys covered (a key participates when its first
    component is in the set).  A transfer transaction moves value between
    covered keys; anything that mints or destroys value is rejected.
    """

    prefixes: frozenset[str]
    name: str = "sum-preserving"

    @classmethod
    def over(cls, *prefixes: str) -> "SumInvariant":
        return cls(prefixes=frozenset(prefixes))

    def _covered(self, key: tuple) -> bool:
        return bool(key) and key[0] in self.prefixes

    def check_unit(self, certificate: WriteCertificate) -> bool:
        old_values = dict(certificate.old_pairs)
        delta = 0
        for key, new_value in certificate.new_pairs:
            if not self._covered(key):
                continue
            old = old_values.get(key, 0)  # inserted keys start at the agreed 0
            delta += new_value - old
        return delta == 0


def check_invariants(
    invariants: Iterable[Invariant], certificate: WriteCertificate
) -> bool:
    """Evaluate every invariant against one authenticated transition."""
    return all(invariant.check_unit(certificate) for invariant in invariants)
