"""Server-state snapshots: serialize and restore a Litmus deployment.

Complements the client's :class:`~repro.core.checkpoint.DigestLog`: the
server persists its database contents plus the digest it has certified up
to, and a restarted server resumes exactly there.  The client needs no
special handling — a correctly restored server produces the same digest
chain, and a *corrupted* restore is caught the moment it tries to certify a
stale value (the provider refuses) or the client sees a digest mismatch.
"""

from __future__ import annotations

import json

from ..errors import ReproError, VerificationFailure
from ..serialization import encode
from .server import LitmusServer

__all__ = ["snapshot_server", "restore_server"]

_FORMAT = "litmus-snapshot-v1"


def _encode_key(key: tuple) -> list:
    for part in key:
        if not isinstance(part, (int, str)):
            raise ReproError(f"snapshot supports int/str key parts, got {part!r}")
    return list(key)


def snapshot_server(server: LitmusServer) -> str:
    """Serialize the server's durable state (database + certified digest)."""
    contents = server.db.snapshot()
    return json.dumps(
        {
            "format": _FORMAT,
            "digest": hex(server.digest),
            "rows": [[_encode_key(key), value] for key, value in sorted(
                contents.items(), key=lambda item: encode(item[0])
            )],
        }
    )


def restore_server(
    payload: str,
    config,
    group,
    expected_digest: int | None = None,
    invariants: tuple = (),
) -> LitmusServer:
    """Rebuild a server from a snapshot.

    *expected_digest* (e.g. from the client's digest log) cross-checks that
    the snapshot matches the last verified state; a tampered or stale
    snapshot fails here — or, if the digest field itself was forged to
    match, at the first certify step, because the rebuilt authenticated
    dictionary recommits the actual rows.
    """
    raw = json.loads(payload)
    if raw.get("format") != _FORMAT:
        raise ReproError("not a Litmus snapshot")
    contents = {tuple(key): value for key, value in raw["rows"]}
    server = LitmusServer(
        initial=contents, config=config, group=group, invariants=invariants
    )
    recorded = int(raw["digest"], 16)
    if server.digest != recorded:
        raise VerificationFailure(
            "snapshot digest does not match its contents (corrupted snapshot)"
        )
    if expected_digest is not None and server.digest != expected_digest:
        raise VerificationFailure(
            "snapshot is stale: digest differs from the client's last verified state"
        )
    return server
