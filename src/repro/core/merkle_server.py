"""The Merkle-tree baseline (Section 8): folklore authenticated delegation.

The server maintains a Merkle tree over the database; the client holds only
the root.  Every read ships an O(log n) authentication path the client
verifies; every write ships the old leaf's path so the client can roll the
root forward itself.  Proofs cannot aggregate, the per-access hashing adds
up, and — as the paper and [32] observe — throughput lands below ~20 txn/s.

All hash-path verification is real; elapsed time is virtual.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from ..crypto.merkle import MerkleTree
from ..db.kvstore import INITIAL_VALUE
from ..db.txn import Transaction, TxnResult
from ..errors import VerificationFailure
from ..sim.costmodel import CostModel
from ..sim.network import NetworkModel

__all__ = ["MerkleServerClient", "MerkleReport"]


@dataclass(frozen=True)
class MerkleReport:
    results: tuple[TxnResult, ...]
    total_seconds: float
    final_root: bytes
    hash_operations: int

    @property
    def throughput(self) -> float:
        return len(self.results) / self.total_seconds if self.total_seconds else 0.0


class MerkleServerClient:
    """Server and client of the Merkle protocol, co-simulated.

    Keys map to leaf slots on first touch; the capacity bounds the table
    size (the paper shrank this baseline's table to 1024 rows "to make sure
    the experiment finishes in a reasonable time").
    """

    def __init__(
        self,
        capacity: int = 1024,
        initial: Mapping[tuple, int] | None = None,
        network: NetworkModel | None = None,
        cost_model: CostModel | None = None,
    ):
        self.tree = MerkleTree(capacity, fill=INITIAL_VALUE)
        self._slots: dict[tuple, int] = {}
        self.network = network or NetworkModel(rtt_seconds=1e-3)
        self.cost_model = cost_model or CostModel.calibrated(100)
        if initial:
            for key, value in initial.items():
                self.tree.update(self._slot(key), value)
        self.client_root = self.tree.root

    def _slot(self, key: tuple) -> int:
        if key not in self._slots:
            if len(self._slots) >= self.tree.capacity:
                raise VerificationFailure("Merkle baseline table is full")
            self._slots[key] = len(self._slots)
        return self._slots[key]

    def run(self, txns: Sequence[Transaction]) -> MerkleReport:
        results: list[TxnResult] = []
        total = 0.0
        hashes = 0
        for txn in txns:
            execution = txn.program.execute(txn.params, self._server_read)
            total += self.network.roundtrip()
            # Client verifies a path per read and rolls the root per write.
            for key, value in execution.store_reads:
                slot = self._slot(key)
                path = self.tree.prove(slot)
                stored = self.tree.get(slot, INITIAL_VALUE)
                if stored != value or not MerkleTree.verify(self.client_root, path, stored):
                    raise VerificationFailure(
                        f"Merkle client rejected read of {key!r} in txn {txn.txn_id}"
                    )
                hashes += path.hash_count
            for key, value in execution.writes:
                slot = self._slot(key)
                path = self.tree.prove(slot)
                old = self.tree.get(slot, INITIAL_VALUE)
                if not MerkleTree.verify(self.client_root, path, old):
                    raise VerificationFailure(
                        f"Merkle client rejected pre-write state of {key!r}"
                    )
                self.client_root = MerkleTree.root_after_update(path, value)
                self.tree.update(slot, value)
                if self.tree.root != self.client_root:
                    raise VerificationFailure("server root diverged from client root")
                hashes += 2 * path.hash_count
            total += self.cost_model.merkle_txn_seconds
            results.append(
                TxnResult(
                    txn_id=txn.txn_id,
                    committed=True,
                    outputs=execution.outputs,
                    read_set=execution.store_reads,
                    write_set=execution.writes,
                )
            )
        return MerkleReport(
            results=tuple(results),
            total_seconds=total,
            final_root=self.client_root,
            hash_operations=hashes,
        )

    def _server_read(self, key: tuple) -> int:
        return self.tree.get(self._slot(key), INITIAL_VALUE)
