"""Wire-level message types between the Litmus server and client."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

__all__ = [
    "PieceResult",
    "ServerResponse",
    "TimingReport",
    "measured_fields_from_spans",
]


def measured_fields_from_spans(
    spans: Iterable,
    dispatch_start: float | None = None,
) -> dict[str, float]:
    """Derive the ``measured_*`` columns of a :class:`TimingReport` from the
    span tree of one verification batch.

    This is the bridge between :mod:`repro.obs` and the wire format: each
    measured field is a thin view over the spans the pipeline emitted —

    ========================  =======================================
    field                     source spans
    ========================  =======================================
    measured_db_seconds       ``execute`` (duration)
    measured_certify_seconds  ``certify_unit`` (sum)
    measured_circuit_seconds  ``build_circuit`` (sum)
    measured_replay_seconds   ``replay`` (sum)
    measured_setup_seconds    ``setup`` (sum)
    measured_prove_seconds    ``prove`` (sum)
    measured_prove_wall_...   last ``prove_piece`` end - *dispatch_start*
    measured_total_seconds    ``batch`` (duration)
    ========================  =======================================

    *spans* is an iterable of :class:`repro.obs.SpanRecord`; the function
    only relies on ``name``/``duration``/``end``, so any record-shaped
    object works (no import of :mod:`repro.obs` needed here).
    """
    sums: dict[str, float] = {}
    last_piece_end: float | None = None
    for record in spans:
        sums[record.name] = sums.get(record.name, 0.0) + record.duration
        if record.name == "prove_piece":
            last_piece_end = (
                record.end
                if last_piece_end is None
                else max(last_piece_end, record.end)
            )
    prove_wall = 0.0
    if last_piece_end is not None and dispatch_start is not None:
        prove_wall = last_piece_end - dispatch_start
    return dict(
        measured_db_seconds=sums.get("execute", 0.0),
        measured_certify_seconds=sums.get("certify_unit", 0.0),
        measured_circuit_seconds=sums.get("build_circuit", 0.0),
        measured_replay_seconds=sums.get("replay", 0.0),
        measured_setup_seconds=sums.get("setup", 0.0),
        measured_prove_seconds=sums.get("prove", 0.0),
        measured_prove_wall_seconds=prove_wall,
        measured_total_seconds=sums.get("batch", 0.0),
    )


@dataclass(frozen=True)
class TimingReport:
    """Timing accounting of one verification batch.

    Two families of numbers live here:

    - the **modeled** columns (``db_seconds`` … ``total_seconds``) come from
      the calibrated cost model (:mod:`repro.sim`) and reproduce the
      paper's absolute scale — a libsnark prover over the real constraint
      counts;
    - the **measured** columns (``measured_*``) are real wall-clock seconds
      observed while this batch executed: what the Python pipeline actually
      spent per stage, and how long the concurrent prover pool took
      end-to-end.  ``measured_prove_wall_seconds`` < the per-piece sums
      means pieces genuinely overlapped.  Since the observability layer
      landed these columns are *derived from the batch's span tree* (see
      :func:`measured_fields_from_spans`), so they agree with any exported
      trace by construction.

    ``total_seconds`` is the modeled server-side critical path (throughput =
    txns / total); ``mean_latency_seconds`` additionally includes client
    verification, matching the paper's latency definition (submission to
    proof receipt).
    """

    db_seconds: float = 0.0
    trace_seconds: float = 0.0
    circuit_seconds: float = 0.0
    keygen_seconds: float = 0.0
    prove_seconds: float = 0.0
    verify_seconds: float = 0.0
    output_seconds: float = 0.0
    total_seconds: float = 0.0
    mean_latency_seconds: float = 0.0
    num_txns: int = 0
    total_constraints: int = 0
    proof_bytes: int = 0
    num_pieces: int = 0
    # Measured wall-clock (real seconds, not modeled).  Per-stage fields are
    # sums over pieces/units; the ``*_wall`` fields are elapsed time, so
    # with a concurrent prover pool wall < sum demonstrates real overlap.
    measured_db_seconds: float = 0.0
    measured_certify_seconds: float = 0.0
    measured_circuit_seconds: float = 0.0
    measured_replay_seconds: float = 0.0
    measured_setup_seconds: float = 0.0
    measured_prove_seconds: float = 0.0
    measured_prove_wall_seconds: float = 0.0
    measured_total_seconds: float = 0.0

    @property
    def throughput(self) -> float:
        return self.num_txns / self.total_seconds if self.total_seconds > 0 else 0.0

    @property
    def measured_prover_work_seconds(self) -> float:
        """Total prover-stage CPU: what a one-thread run must pay serially."""
        return (
            self.measured_replay_seconds
            + self.measured_setup_seconds
            + self.measured_prove_seconds
        )

    @property
    def measured_pipeline_speedup(self) -> float:
        """How much the concurrent pool compressed the prover stage.

        Ratio of summed per-piece prover work to the observed wall-clock of
        the prove stage; 1.0 means fully serial, ``num_provers`` is the
        ideal.
        """
        if self.measured_prove_wall_seconds <= 0:
            return 1.0
        return self.measured_prover_work_seconds / self.measured_prove_wall_seconds

    @property
    def measured_throughput(self) -> float:
        """Real transactions per wall-clock second for this batch."""
        if self.measured_total_seconds <= 0:
            return 0.0
        return self.num_txns / self.measured_total_seconds

    def measured_breakdown(self) -> dict[str, float]:
        """Measured wall-clock per stage (absolute seconds, not shares)."""
        return {
            "db": self.measured_db_seconds,
            "certify": self.measured_certify_seconds,
            "circuit_build": self.measured_circuit_seconds,
            "replay": self.measured_replay_seconds,
            "setup": self.measured_setup_seconds,
            "prove": self.measured_prove_seconds,
            "prove_wall": self.measured_prove_wall_seconds,
            "total_wall": self.measured_total_seconds,
        }

    def breakdown(self) -> dict[str, float]:
        """Component shares for the Fig 7 reproduction.

        Stable, documented return shape: a dict with exactly the six keys
        ``process_traces``, ``circuit_generation``, ``key_generation``,
        ``proving``, ``verification``, ``proof_output`` — in that insertion
        order — whose float values are fractions of the modeled total and
        sum to 1.0 (all-zero when the report is empty).  Client code may
        rely on the key set; new stages will be added only under new keys.
        """
        parts = {
            "process_traces": self.db_seconds + self.trace_seconds,
            "circuit_generation": self.circuit_seconds,
            "key_generation": self.keygen_seconds,
            "proving": self.prove_seconds,
            "verification": self.verify_seconds,
            "proof_output": self.output_seconds,
        }
        total = sum(parts.values())
        if total == 0:
            return {name: 0.0 for name in parts}
        return {name: value / total for name, value in parts.items()}


@dataclass(frozen=True)
class PieceResult:
    """One pipelined circuit piece: proof + the statement it certifies."""

    piece_index: int
    txn_ids: tuple[int, ...]
    unit_txn_ids: tuple[tuple[int, ...], ...]  # batch composition per unit
    start_digest: int
    end_digest: int
    all_commit: bool
    outputs: tuple[tuple[int, tuple[int, ...]], ...]  # (txn_id, outputs)
    public_values: tuple[int, ...]
    proof: object  # Proof or SpotCheckProof
    verification_key: object  # VerificationKey (client cross-checks circuit hash)
    circuit_signature: bytes
    constraints: int


@dataclass(frozen=True)
class ServerResponse:
    """Everything returned for one verification batch (MSG_WRTXN + proofs)."""

    pieces: tuple[PieceResult, ...]
    initial_digest: int
    final_digest: int
    timing: TimingReport
    stats: object = None  # ExecutionStats from the CC layer

    def all_outputs(self) -> dict[int, tuple[int, ...]]:
        """Per-transaction emitted outputs across every piece.

        Stable, documented return shape: ``{txn_id: (value, ...)}``.  On an
        honest, accepted response every transaction in the batch has an
        entry — a program that emits nothing maps to an empty tuple.  Only a
        piece whose replay failed mid-way (a detected attack; the client
        rejects such a response) can leave ids out, so consumers of
        *accepted* batches may treat the key set as total.
        """
        outputs: dict[int, tuple[int, ...]] = {}
        for piece in self.pieces:
            for txn_id, values in piece.outputs:
                outputs[txn_id] = values
        return outputs
