"""Wire-level message types between the Litmus server and client."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

__all__ = ["PieceResult", "ServerResponse", "TimingReport"]


@dataclass(frozen=True)
class TimingReport:
    """Virtual-time accounting of one verification batch (see repro.sim).

    ``total_seconds`` is the server-side critical path (throughput =
    txns / total); ``mean_latency_seconds`` additionally includes client
    verification, matching the paper's latency definition (submission to
    proof receipt).
    """

    db_seconds: float = 0.0
    trace_seconds: float = 0.0
    circuit_seconds: float = 0.0
    keygen_seconds: float = 0.0
    prove_seconds: float = 0.0
    verify_seconds: float = 0.0
    output_seconds: float = 0.0
    total_seconds: float = 0.0
    mean_latency_seconds: float = 0.0
    num_txns: int = 0
    total_constraints: int = 0
    proof_bytes: int = 0

    @property
    def throughput(self) -> float:
        return self.num_txns / self.total_seconds if self.total_seconds > 0 else 0.0

    def breakdown(self) -> dict[str, float]:
        """Component shares for the Fig 7 reproduction."""
        parts = {
            "process_traces": self.db_seconds + self.trace_seconds,
            "circuit_generation": self.circuit_seconds,
            "key_generation": self.keygen_seconds,
            "proving": self.prove_seconds,
            "verification": self.verify_seconds,
            "proof_output": self.output_seconds,
        }
        total = sum(parts.values())
        if total == 0:
            return {name: 0.0 for name in parts}
        return {name: value / total for name, value in parts.items()}


@dataclass(frozen=True)
class PieceResult:
    """One pipelined circuit piece: proof + the statement it certifies."""

    piece_index: int
    txn_ids: tuple[int, ...]
    unit_txn_ids: tuple[tuple[int, ...], ...]  # batch composition per unit
    start_digest: int
    end_digest: int
    all_commit: bool
    outputs: tuple[tuple[int, tuple[int, ...]], ...]  # (txn_id, outputs)
    public_values: tuple[int, ...]
    proof: object  # Proof or SpotCheckProof
    verification_key: object  # VerificationKey (client cross-checks circuit hash)
    circuit_signature: bytes
    constraints: int


@dataclass(frozen=True)
class ServerResponse:
    """Everything returned for one verification batch (MSG_WRTXN + proofs)."""

    pieces: tuple[PieceResult, ...]
    initial_digest: int
    final_digest: int
    timing: TimingReport
    stats: object = None  # ExecutionStats from the CC layer

    def all_outputs(self) -> dict[int, tuple[int, ...]]:
        outputs: dict[int, tuple[int, ...]] = {}
        for piece in self.pieces:
            for txn_id, values in piece.outputs:
                outputs[txn_id] = values
        return outputs
