"""Deprecated: the old three-object client surface.

``ClientProxy`` predates :class:`repro.core.session.LitmusSession`, which
is now the one client-facing API (paper Section 4's "proxy of millions of
real users" role included).  This module keeps the old constructor and
method signatures alive as a thin shim that warns **once per process**
(:class:`~repro.errors.LitmusDeprecationWarning`) and delegates to a
session.  ``UserTicket`` is re-exported unchanged from the session module.

Migration::

    proxy = ClientProxy(server, client, max_batch=8)      # before
    session = LitmusSession(server, client, max_batch=8)  # after
    proxy.submit("alice", PROGRAM, {"k": 1})              # before
    session.submit("alice", PROGRAM, k=1)                 # after
    ok = proxy.flush()                                    # bare bool
    result = session.flush()                              # BatchResult

``ClientProxy.flush()`` now also returns a :class:`BatchResult` (truthy on
acceptance, so ``assert proxy.flush()`` still works); flushing an empty
queue is a documented no-op returning ``BatchResult.empty()``.
"""

from __future__ import annotations

import warnings

from ..errors import LitmusDeprecationWarning
from ..vc.program import Program
from .client import LitmusClient
from .server import LitmusServer
from .session import BatchResult, LitmusSession, UserTicket

__all__ = ["ClientProxy", "UserTicket"]


class ClientProxy:
    """Deprecated shim over :class:`LitmusSession` (warns once, delegates)."""

    _warned = False

    def __init__(
        self,
        server: LitmusServer,
        client: LitmusClient,
        max_batch: int = 1024,
    ):
        if not ClientProxy._warned:
            ClientProxy._warned = True
            warnings.warn(
                "ClientProxy is deprecated; use repro.core.session.LitmusSession "
                "(session.submit(user, program, **params) / session.flush())",
                LitmusDeprecationWarning,
                stacklevel=2,
            )
        self._session = LitmusSession(server, client=client, max_batch=max_batch)

    # -- the old surface, delegated ----------------------------------------------

    @property
    def server(self) -> LitmusServer:
        return self._session.server

    @property
    def client(self) -> LitmusClient:
        return self._session.client

    @property
    def max_batch(self) -> int:
        return self._session.max_batch

    @property
    def queued(self) -> int:
        return self._session.queued

    @property
    def batches_verified(self) -> int:
        return self._session.batches_verified

    @property
    def batches_rejected(self) -> int:
        return self._session.batches_rejected

    def submit(self, user: str, program: Program, params: dict[str, int]) -> UserTicket:
        """Old signature: parameters as one positional dict."""
        return self._session.submit(user, program, **params)

    def flush(self) -> BatchResult:
        """Flush the queued batch; truthy iff verified (see BatchResult)."""
        return self._session.flush()
