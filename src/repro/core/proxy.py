"""The client as a proxy for many end users (paper Section 4).

"In the DBaaS setting, the single client is the organization that delegates
the database, which might be the proxy of millions of real users and submit
many transactions."  :class:`ClientProxy` is that organization-side
component: end users enqueue stored-procedure calls, the proxy groups them
into verification batches, drives the Litmus protocol, and hands each user
back a :class:`UserTicket` that resolves to the verified outputs (or to the
batch's rejection).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..db.txn import Transaction
from ..errors import ReproError
from ..vc.program import Program
from .client import LitmusClient
from .server import LitmusServer

__all__ = ["ClientProxy", "UserTicket"]


@dataclass
class UserTicket:
    """A pending user request; resolves when its batch verifies."""

    user: str
    txn_id: int
    _resolved: bool = False
    _accepted: bool = False
    _outputs: tuple[int, ...] = ()
    _reason: str = ""

    @property
    def resolved(self) -> bool:
        return self._resolved

    @property
    def accepted(self) -> bool:
        if not self._resolved:
            raise ReproError("ticket not resolved yet; flush the proxy first")
        return self._accepted

    @property
    def outputs(self) -> tuple[int, ...]:
        if not self.accepted:
            raise ReproError(f"batch rejected: {self._reason}")
        return self._outputs

    def _resolve(self, accepted: bool, outputs: tuple[int, ...], reason: str) -> None:
        self._resolved = True
        self._accepted = accepted
        self._outputs = outputs
        self._reason = reason


@dataclass
class _Pending:
    ticket: UserTicket
    txn: Transaction


class ClientProxy:
    """Batches user requests into verified Litmus rounds.

    The proxy owns the transaction-id space (ids double as deterministic
    priorities, so arrival order is the priority order) and the client-side
    digest; ``flush()`` submits one verification batch and resolves every
    ticket in it.
    """

    def __init__(
        self,
        server: LitmusServer,
        client: LitmusClient,
        max_batch: int = 1024,
    ):
        if max_batch < 1:
            raise ReproError("batch capacity must be positive")
        self.server = server
        self.client = client
        self.max_batch = max_batch
        self._next_id = 1
        self._pending: list[_Pending] = []
        self.batches_verified = 0
        self.batches_rejected = 0

    # -- user-facing API ---------------------------------------------------------

    def submit(self, user: str, program: Program, params: dict[str, int]) -> UserTicket:
        """Enqueue one stored-procedure call on behalf of *user*."""
        txn = Transaction(self._next_id, program, dict(params))
        self._next_id += 1
        ticket = UserTicket(user=user, txn_id=txn.txn_id)
        self._pending.append(_Pending(ticket=ticket, txn=txn))
        if len(self._pending) >= self.max_batch:
            self.flush()
        return ticket

    @property
    def queued(self) -> int:
        return len(self._pending)

    def flush(self) -> bool:
        """Submit the queued batch; resolve every ticket.  True iff verified."""
        if not self._pending:
            return True
        pending, self._pending = self._pending, []
        txns = [entry.txn for entry in pending]
        response = self.server.execute_batch(txns)
        verdict = self.client.verify_response(txns, response)
        if verdict.accepted:
            self.batches_verified += 1
            outputs = verdict.outputs or {}
            for entry in pending:
                entry.ticket._resolve(True, outputs.get(entry.txn.txn_id, ()), "")
        else:
            self.batches_rejected += 1
            for entry in pending:
                entry.ticket._resolve(False, (), verdict.reason)
        return verdict.accepted
