"""Client-side digest checkpointing.

The client's entire trust anchor is one digest, so losing it means
re-agreeing on the database state out of band.  A :class:`DigestLog` is the
minimal durable artifact a client should persist: an append-only,
hash-chained history of verified digests.  Restarting from the last entry
resumes verification exactly where it stopped, and any tampering with the
stored log is detectable from its chained entry hashes (given the genesis
entry or any remembered entry hash).

This also operationalizes the paper's durability discussion (Section 9):
verifiable durability needs storage the client can check — the digest log
is that check for the client's own state.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass

from ..errors import VerificationFailure

__all__ = ["DigestLog", "LogEntry"]


@dataclass(frozen=True)
class LogEntry:
    """One verified batch: sequence number, digest, and chained entry hash."""

    sequence: int
    digest: int
    num_txns: int
    entry_hash: bytes

    @staticmethod
    def compute_hash(sequence: int, digest: int, num_txns: int, previous: bytes) -> bytes:
        return hashlib.sha256(
            b"litmus-digest-log"
            + sequence.to_bytes(8, "big")
            + digest.to_bytes((digest.bit_length() + 7) // 8 or 1, "big")
            + num_txns.to_bytes(8, "big")
            + previous
        ).digest()


class DigestLog:
    """Append-only hash-chained history of verified digests."""

    _GENESIS = hashlib.sha256(b"litmus-digest-log-genesis").digest()

    def __init__(self, initial_digest: int):
        self._entries: list[LogEntry] = []
        self._append(initial_digest, num_txns=0)

    def _append(self, digest: int, num_txns: int) -> LogEntry:
        sequence = len(self._entries)
        previous = self._entries[-1].entry_hash if self._entries else self._GENESIS
        entry = LogEntry(
            sequence=sequence,
            digest=digest,
            num_txns=num_txns,
            entry_hash=LogEntry.compute_hash(sequence, digest, num_txns, previous),
        )
        self._entries.append(entry)
        return entry

    # -- recording -------------------------------------------------------------

    def record(self, digest: int, num_txns: int) -> LogEntry:
        """Record a freshly verified batch's resulting digest."""
        return self._append(digest, num_txns)

    # -- accessors ---------------------------------------------------------------

    @property
    def latest_digest(self) -> int:
        return self._entries[-1].digest

    @property
    def latest_hash(self) -> bytes:
        return self._entries[-1].entry_hash

    def __len__(self) -> int:
        return len(self._entries)

    def entries(self) -> tuple[LogEntry, ...]:
        return tuple(self._entries)

    # -- integrity ----------------------------------------------------------------

    def verify_chain(self) -> None:
        """Recompute every entry hash; raise on any inconsistency."""
        previous = self._GENESIS
        for index, entry in enumerate(self._entries):
            if entry.sequence != index:
                raise VerificationFailure(f"log entry {index} has wrong sequence")
            expected = LogEntry.compute_hash(
                entry.sequence, entry.digest, entry.num_txns, previous
            )
            if expected != entry.entry_hash:
                raise VerificationFailure(f"log entry {index} hash mismatch")
            previous = entry.entry_hash

    # -- persistence -----------------------------------------------------------------

    def to_json(self) -> str:
        return json.dumps(
            [
                {
                    "sequence": e.sequence,
                    "digest": hex(e.digest),
                    "num_txns": e.num_txns,
                    "entry_hash": e.entry_hash.hex(),
                }
                for e in self._entries
            ]
        )

    @classmethod
    def from_json(cls, payload: str) -> "DigestLog":
        """Load and integrity-check a persisted log."""
        raw = json.loads(payload)
        if not raw:
            raise VerificationFailure("empty digest log")
        log = cls.__new__(cls)
        log._entries = [
            LogEntry(
                sequence=item["sequence"],
                digest=int(item["digest"], 16),
                num_txns=item["num_txns"],
                entry_hash=bytes.fromhex(item["entry_hash"]),
            )
            for item in raw
        ]
        log.verify_chain()
        return log
