"""The client-facing session API: one object, one surface.

Before this module the client side of Litmus was three objects glued by the
caller: a :class:`~repro.core.client.LitmusClient` (digest keeper /
verifier), a ``ClientProxy`` (user batching), and raw
:class:`~repro.db.txn.Transaction` construction.  :class:`LitmusSession`
collapses them into the one facade applications use::

    session = LitmusSession.create(initial=workload.initial_data(),
                                   config=config, group=group)
    ticket = session.submit("alice", PURCHASE, buyer=0, seller=1, price=120)
    result = session.flush()          # a BatchResult, not a bare bool
    assert result.accepted
    print(ticket.outputs, result.timing.measured_breakdown())

Design points:

- ``submit`` takes the stored-procedure parameters as keyword arguments and
  returns a :class:`UserTicket`; the session owns the transaction-id space
  (ids double as deterministic priorities, so arrival order is priority
  order) and the client-side digest;
- ``flush`` drives one full verification round (server execution, proof
  generation, client verification) and returns a typed, frozen
  :class:`BatchResult` carrying acceptance, per-user outputs, the
  :class:`~repro.core.protocol.TimingReport`, and a metrics snapshot from
  :mod:`repro.obs`;
- ``flush`` on an empty queue is a **documented no-op**: it returns
  :meth:`BatchResult.empty` (accepted, zero transactions) without touching
  the server — the regression the old ``ClientProxy.flush() -> bool``
  surface made untestable;
- ticket misuse raises the dedicated exceptions
  :class:`~repro.errors.TicketUnresolvedError` and
  :class:`~repro.errors.BatchRejectedError` instead of a generic
  ``ReproError``.

The old ``ClientProxy`` remains as a one-warning deprecation shim in
:mod:`repro.core.proxy`, delegating everything to a session.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Any, Mapping

from ..crypto.rsa_group import RSAGroup
from ..db.txn import Transaction
from ..errors import BatchRejectedError, ReproError, TicketUnresolvedError
from ..obs.exporters import Exporter
from ..obs.metrics import MetricsRegistry, get_metrics
from ..obs.spans import Tracer, get_tracer
from ..sim.costmodel import CostModel
from ..vc.program import Program
from .client import LitmusClient
from .config import LitmusConfig
from .protocol import TimingReport
from .server import LitmusServer

__all__ = ["BatchResult", "LitmusSession", "UserTicket"]


@dataclass
class UserTicket:
    """A pending user request; resolves when its batch flushes.

    Reading :attr:`accepted` before the flush raises
    :class:`~repro.errors.TicketUnresolvedError`; reading :attr:`outputs`
    of a rejected batch raises :class:`~repro.errors.BatchRejectedError`
    carrying the client's rejection reason.
    """

    user: str
    txn_id: int
    _resolved: bool = False
    _accepted: bool = False
    _outputs: tuple[int, ...] = ()
    _reason: str = ""

    @property
    def resolved(self) -> bool:
        return self._resolved

    @property
    def accepted(self) -> bool:
        if not self._resolved:
            raise TicketUnresolvedError(
                f"ticket for txn {self.txn_id} ({self.user!r}) is not resolved "
                "yet; call session.flush() first"
            )
        return self._accepted

    @property
    def outputs(self) -> tuple[int, ...]:
        if not self.accepted:
            raise BatchRejectedError(self._reason)
        return self._outputs

    @property
    def reason(self) -> str:
        """The rejection reason ("" while pending or when accepted)."""
        return self._reason

    def _resolve(self, accepted: bool, outputs: tuple[int, ...], reason: str) -> None:
        self._resolved = True
        self._accepted = accepted
        self._outputs = outputs
        self._reason = reason


def _frozen_mapping(mapping: Mapping) -> Mapping:
    return MappingProxyType(dict(mapping))


@dataclass(frozen=True)
class BatchResult:
    """Everything one ``session.flush()`` produced, as a typed value.

    Stable, documented shape:

    - ``accepted`` — the client's verdict (also this object's truthiness,
      so ``assert session.flush()`` keeps working);
    - ``reason`` — rejection reason, ``""`` when accepted;
    - ``num_txns`` — transactions in the flushed batch (0 for the
      empty-queue no-op);
    - ``outputs`` — read-only ``{txn_id: (value, ...)}`` over the whole
      batch (empty when rejected);
    - ``user_outputs`` — read-only ``{user: ((value, ...), ...)}``, each
      user's outputs in submission order (empty when rejected);
    - ``tickets`` — the resolved :class:`UserTicket` objects of the batch;
    - ``timing`` — the server's :class:`TimingReport` (``None`` for the
      empty no-op);
    - ``metrics`` — a :meth:`repro.obs.MetricsRegistry.snapshot` taken
      right after verification (read-only mapping).
    """

    accepted: bool
    reason: str = ""
    num_txns: int = 0
    outputs: Mapping[int, tuple[int, ...]] = field(
        default_factory=lambda: _frozen_mapping({})
    )
    user_outputs: Mapping[str, tuple[tuple[int, ...], ...]] = field(
        default_factory=lambda: _frozen_mapping({})
    )
    tickets: tuple[UserTicket, ...] = ()
    timing: TimingReport | None = None
    metrics: Mapping[str, Mapping[str, Any]] = field(
        default_factory=lambda: _frozen_mapping({})
    )

    def __bool__(self) -> bool:
        return self.accepted

    @classmethod
    def empty(cls) -> "BatchResult":
        """The documented result of flushing an empty queue."""
        return cls(accepted=True, reason="", num_txns=0)


class LitmusSession:
    """One coherent client surface over server + verifier + user batching."""

    def __init__(
        self,
        server: LitmusServer,
        client: LitmusClient | None = None,
        max_batch: int = 1024,
        tracer: Tracer | None = None,
        registry: MetricsRegistry | None = None,
    ):
        if max_batch < 1:
            raise ReproError("batch capacity must be positive")
        self.server = server
        self.tracer = tracer if tracer is not None else server.tracer
        self.registry = registry if registry is not None else get_metrics()
        if client is None:
            client = LitmusClient(
                server.group,
                server.digest,
                config=server.config,
                invariants=server.invariants,
                tracer=self.tracer,
            )
        self.client = client
        self.max_batch = max_batch
        self._next_id = 1
        self._pending: list[tuple[UserTicket, Transaction]] = []
        self.batches_verified = 0
        self.batches_rejected = 0

    @classmethod
    def create(
        cls,
        initial: Mapping[tuple, int] | None = None,
        config: LitmusConfig | None = None,
        group: RSAGroup | None = None,
        cost_model: CostModel | None = None,
        invariants: tuple = (),
        max_batch: int = 1024,
        tracer: Tracer | None = None,
        registry: MetricsRegistry | None = None,
    ) -> "LitmusSession":
        """Build a server + verifying client pair and wrap them in a session.

        This is the quickstart path: one call replaces the old four-object
        setup (group, server, client, proxy).
        """
        tracer = tracer if tracer is not None else get_tracer()
        server = LitmusServer(
            initial=initial,
            config=config,
            group=group,
            cost_model=cost_model,
            invariants=invariants,
            tracer=tracer,
        )
        return cls(server, max_batch=max_batch, tracer=tracer, registry=registry)

    # -- user-facing API ---------------------------------------------------------

    @property
    def digest(self) -> int:
        """The client-side (verified) database digest."""
        return self.client.digest

    @property
    def queued(self) -> int:
        return len(self._pending)

    def submit(self, user: str, program: Program, **params: int) -> UserTicket:
        """Enqueue one stored-procedure call on behalf of *user*.

        Parameters are keyword arguments (``session.submit("alice",
        PURCHASE, buyer=0, price=120)``).  Reaching ``max_batch`` queued
        requests flushes automatically.
        """
        txn = Transaction(self._next_id, program, dict(params))
        self._next_id += 1
        ticket = UserTicket(user=user, txn_id=txn.txn_id)
        self._pending.append((ticket, txn))
        if len(self._pending) >= self.max_batch:
            self.flush()
        return ticket

    def flush(self) -> BatchResult:
        """Drive one verification round over the queued requests.

        Empty queue: a documented no-op returning :meth:`BatchResult.empty`
        — accepted, ``num_txns == 0``, no server round-trip.
        """
        if not self._pending:
            return BatchResult.empty()
        pending, self._pending = self._pending, []
        txns = [txn for _ticket, txn in pending]
        response = self.server.execute_batch(txns)
        verdict = self.client.verify_response(txns, response)
        outputs = dict(verdict.outputs or {}) if verdict.accepted else {}
        user_outputs: dict[str, list[tuple[int, ...]]] = {}
        for ticket, txn in pending:
            if verdict.accepted:
                ticket._resolve(True, outputs.get(txn.txn_id, ()), "")
                user_outputs.setdefault(ticket.user, []).append(ticket._outputs)
            else:
                ticket._resolve(False, (), verdict.reason)
        if verdict.accepted:
            self.batches_verified += 1
        else:
            self.batches_rejected += 1
        return BatchResult(
            accepted=verdict.accepted,
            reason=verdict.reason,
            num_txns=len(txns),
            outputs=_frozen_mapping(outputs),
            user_outputs=_frozen_mapping(
                {user: tuple(values) for user, values in user_outputs.items()}
            ),
            tickets=tuple(ticket for ticket, _txn in pending),
            timing=response.timing,
            metrics=_frozen_mapping(self.registry.snapshot()),
        )

    # -- observability -----------------------------------------------------------

    def export(self, exporter: Exporter) -> None:
        """Push every finished span and the current metrics snapshot."""
        exporter.export(self.tracer.finished(), self.registry.snapshot())
