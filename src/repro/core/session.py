"""The client-facing session API: one object, one surface.

Before this module the client side of Litmus was three objects glued by the
caller: a :class:`~repro.core.client.LitmusClient` (digest keeper /
verifier), a user-batching proxy, and raw
:class:`~repro.db.txn.Transaction` construction.  :class:`LitmusSession`
collapses them into the one facade applications use::

    session = LitmusSession.create(initial=workload.initial_data(),
                                   config=config, group=group)
    ticket = session.submit("alice", PURCHASE, buyer=0, seller=1, price=120)
    result = session.flush()          # a BatchResult, not a bare bool
    assert result.accepted
    print(ticket.outputs, result.timing.measured_breakdown())

Design points:

- ``submit`` takes the stored-procedure parameters as keyword arguments and
  returns a :class:`UserTicket`; the session owns the transaction-id space
  (ids double as deterministic priorities, so arrival order is priority
  order) and the client-side digest;
- ``flush`` drives one full verification round (server execution, proof
  generation, client verification) and returns a typed, frozen
  :class:`BatchResult` carrying acceptance, per-user outputs, the
  :class:`~repro.core.protocol.TimingReport`, and a metrics snapshot from
  :mod:`repro.obs`;
- ``flush`` on an empty queue is a **documented no-op**: it returns
  :meth:`BatchResult.empty` (accepted, zero transactions) without touching
  the server — the regression the old bare-``bool`` flush surface made
  untestable;
- every non-empty flush — including the auto-flush ``submit`` triggers at
  ``max_batch`` — records its result as :attr:`LitmusSession.last_result`,
  so a rejected auto-flush is never silently discarded;
- ticket misuse raises the dedicated exceptions
  :class:`~repro.errors.TicketUnresolvedError` and
  :class:`~repro.errors.BatchRejectedError` instead of a generic
  ``ReproError``.

Recovery semantics (the robustness layer)
-----------------------------------------

A rejected batch is not the end of the conversation.  When a
:class:`RetryPolicy` is configured, ``flush`` runs this loop per batch:

1. **attempt** — send the batch (through the
   :class:`~repro.faults.FaultPlan`, when one is injected), let the server
   execute and prove it, verify the response;
2. **reject → rollback** — if the client rejects (or the message/prover
   layer failed), tell the server to rewind to its pre-batch snapshot, so
   its store and provider digest return to the last state the client
   actually verified;
3. **resync** — replay the trusted command log (every *verified* batch
   since the last checkpoint, see :mod:`repro.db.commandlog`) against the
   checkpoint state and rebuild the server from the re-derived contents;
   if the rebuilt digest disagrees with the client's verified digest the
   divergence is unrecoverable and :class:`~repro.errors.ServerDesyncError`
   is raised;
4. **retry** — after ``RetryPolicy.delay(attempt)`` seconds of backoff,
   re-submit the same transactions.  Exhausting ``max_attempts`` returns
   the rejected :class:`BatchResult` (or raises
   :class:`~repro.errors.RetryExhausted` when the policy says so).

Without a policy the old single-shot behavior is preserved exactly, except
that the server is still rolled back on rejection — the bug where a
rejected batch left the server's digest permanently ahead of the client's
(so every later batch failed verification forever) is gone either way.

:class:`LitmusSession` is one of the three implementations of the
:class:`~repro.core.api.VerifiedSession` protocol (alongside
:class:`~repro.net.client.RemoteSession` and
:class:`~repro.core.sharding.ShardedSession`); ``digest`` returns a
length-1 :class:`~repro.core.api.DigestVector`.
"""

from __future__ import annotations

import random
import time
from dataclasses import asdict, dataclass, field
from time import perf_counter
from types import MappingProxyType
from typing import Any, Callable, Iterable, Mapping

from ..crypto.rsa_group import RSAGroup
from ..db.commandlog import decode_batch, encode_batch
from ..db.database import Database
from ..db.txn import Transaction
from ..db.wal import (
    DurabilityConfig,
    DurabilityManager,
    scan_wal,
    select_checkpoint,
)
from ..errors import (
    BatchRejectedError,
    ClientAPIError,
    DeadlineExceeded,
    MessageDropped,
    ProofCorruptionDetected,
    ReproError,
    RetryExhausted,
    ServerDesyncError,
    TicketUnresolvedError,
    VerificationFailure,
    WalError,
)
from ..obs.exporters import Exporter
from ..obs.metrics import MetricsRegistry, get_metrics
from ..obs.spans import Tracer, get_tracer
from ..sim.costmodel import CostModel
from ..vc.program import Program
from .api import DigestVector
from .checkpoint import DigestLog
from .client import ClientVerdict, LitmusClient
from .config import LitmusConfig
from .protocol import ServerResponse, TimingReport
from .server import LitmusServer

__all__ = [
    "BatchResult",
    "DurabilityConfig",
    "LitmusSession",
    "RecoveryReport",
    "RetryPolicy",
    "UserTicket",
]


@dataclass(frozen=True)
class RetryPolicy:
    """How ``flush`` handles a rejected or failed verification round.

    - ``max_attempts`` — total tries per batch (1 = the old single-shot
      behavior);
    - ``backoff`` — base delay in seconds; attempt *n* waits
      ``backoff * 2**(n-1)`` before retrying (0.0 = no waiting, the right
      setting for tests and simulations);
    - ``jitter`` — fractional randomization of each delay: the wait is
      multiplied by a factor drawn uniformly from ``[1-jitter, 1+jitter]``
      (0.0 = deterministic, the default; the draw comes from the rng
      handed to :meth:`delay`, so a seeded fault plan keeps retries
      replayable);
    - ``sleep`` — the callable that actually waits (``time.sleep`` by
      default).  Injectable so retry tests assert the exact backoff
      schedule without burning wall-clock;
    - ``raise_on_exhaustion`` — when True, exhausting every attempt raises
      :class:`~repro.errors.RetryExhausted` (after resolving tickets and
      recording ``last_result``) instead of returning the rejected
      :class:`BatchResult`.
    """

    max_attempts: int = 3
    backoff: float = 0.0
    raise_on_exhaustion: bool = False
    jitter: float = 0.0
    sleep: Callable[[float], None] = time.sleep

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ReproError("max_attempts must be at least 1")
        if self.backoff < 0:
            raise ReproError("backoff must be non-negative")
        if not 0.0 <= self.jitter <= 1.0:
            raise ReproError("jitter must be in [0, 1]")
        if not callable(self.sleep):
            raise ReproError("sleep must be callable")

    def delay(
        self,
        attempt: int,
        rng: random.Random | None = None,
        retry_after: float | None = None,
    ) -> float:
        """Seconds to wait after failed attempt number *attempt* (1-based).

        With ``jitter`` set, the exponential delay is scaled by a factor
        from ``[1-jitter, 1+jitter]`` drawn from *rng* (the module-level
        ``random`` when none is given).

        *retry_after* is a server-supplied hint (seconds), e.g. the one an
        :class:`~repro.errors.Overloaded` shed carries: the wait becomes
        ``max(hint, backoff)`` so a loaded server is never hammered sooner
        than it asked, while an already-longer exponential backoff is kept.
        The jitter draw happens exactly as without a hint (one draw per
        call whenever ``jitter`` is set and the base is positive), so
        seeded schedules stay replayable whether or not a hint arrives.
        """
        base = self.backoff * (2 ** (attempt - 1))
        if self.jitter and base > 0:
            source = rng if rng is not None else random
            base *= 1.0 + source.uniform(-self.jitter, self.jitter)
        if retry_after is not None:
            return max(retry_after, base)
        return base


@dataclass
class UserTicket:
    """A pending user request; resolves when its batch flushes.

    Reading :attr:`accepted` before the flush raises
    :class:`~repro.errors.TicketUnresolvedError`; reading :attr:`outputs`
    of a rejected batch raises :class:`~repro.errors.BatchRejectedError`
    carrying the client's rejection reason.
    """

    user: str
    txn_id: int
    _resolved: bool = False
    _accepted: bool = False
    _outputs: tuple[int, ...] = ()
    _reason: str = ""

    @property
    def resolved(self) -> bool:
        return self._resolved

    @property
    def accepted(self) -> bool:
        if not self._resolved:
            raise TicketUnresolvedError(
                f"ticket for txn {self.txn_id} ({self.user!r}) is not resolved "
                "yet; call session.flush() first"
            )
        return self._accepted

    @property
    def outputs(self) -> tuple[int, ...]:
        if not self.accepted:
            raise BatchRejectedError(self._reason)
        return self._outputs

    @property
    def reason(self) -> str:
        """The rejection reason ("" while pending or when accepted)."""
        return self._reason

    def _resolve(self, accepted: bool, outputs: tuple[int, ...], reason: str) -> None:
        self._resolved = True
        self._accepted = accepted
        self._outputs = outputs
        self._reason = reason


def _frozen_mapping(mapping: Mapping) -> Mapping:
    return MappingProxyType(dict(mapping))


@dataclass(frozen=True)
class BatchResult:
    """Everything one ``session.flush()`` produced, as a typed value.

    Stable, documented shape:

    - ``accepted`` — the client's verdict (also this object's truthiness,
      so ``assert session.flush()`` keeps working);
    - ``reason`` — rejection reason, ``""`` when accepted;
    - ``num_txns`` — transactions in the flushed batch (0 for the
      empty-queue no-op);
    - ``attempts`` — verification rounds this batch took (1 on the happy
      path; > 1 means the retry policy recovered from rejections);
    - ``outputs`` — read-only ``{txn_id: (value, ...)}`` over the whole
      batch (empty when rejected);
    - ``user_outputs`` — read-only ``{user: ((value, ...), ...)}``, each
      user's outputs in submission order (empty when rejected);
    - ``tickets`` — the resolved :class:`UserTicket` objects of the batch;
    - ``timing`` — the server's :class:`TimingReport` (``None`` for the
      empty no-op and for batches whose final attempt produced no
      response);
    - ``metrics`` — a :meth:`repro.obs.MetricsRegistry.snapshot` taken
      right after verification (read-only mapping).
    """

    accepted: bool
    reason: str = ""
    num_txns: int = 0
    attempts: int = 1
    outputs: Mapping[int, tuple[int, ...]] = field(
        default_factory=lambda: _frozen_mapping({})
    )
    user_outputs: Mapping[str, tuple[tuple[int, ...], ...]] = field(
        default_factory=lambda: _frozen_mapping({})
    )
    tickets: tuple[UserTicket, ...] = ()
    timing: TimingReport | None = None
    metrics: Mapping[str, Mapping[str, Any]] = field(
        default_factory=lambda: _frozen_mapping({})
    )

    def __bool__(self) -> bool:
        return self.accepted

    @classmethod
    def empty(cls) -> "BatchResult":
        """The documented result of flushing an empty queue."""
        return cls(accepted=True, reason="", num_txns=0)


@dataclass(frozen=True)
class RecoveryReport:
    """What one ``LitmusSession.recover`` run found, replayed and repaired.

    - ``checkpoint_seq`` — batch sequence the loaded checkpoint covered;
    - ``replayed_batches`` — WAL records replayed past the checkpoint;
    - ``last_seq`` — the recovered tip of the durable history;
    - ``digest`` — the journaled client digest the rebuilt state matched;
    - ``truncations`` / ``truncated_bytes`` / ``dropped_segments`` — tail
      damage the scan repaired (torn writes, bit rot) instead of raising;
    - ``duration_seconds`` — wall-clock of the whole recovery;
    - ``checkpoint_path`` — the checkpoint file the recovery actually
      loaded (a ``.ckpt.mirror`` when the primary was rotted and the
      mirror saved the day);
    - ``checkpoint_from_mirror`` — True iff the loaded copy was a mirror;
    - ``checkpoint_rejected`` — ``"filename: reason"`` for every newer
      candidate (primary or mirror) that failed validation and was
      skipped on the way to the loaded one.
    """

    checkpoint_seq: int
    replayed_batches: int
    last_seq: int
    digest: int
    truncations: int
    truncated_bytes: int
    dropped_segments: int
    duration_seconds: float
    checkpoint_path: str = ""
    checkpoint_from_mirror: bool = False
    checkpoint_rejected: tuple[str, ...] = ()


@dataclass(frozen=True)
class _ResumeState:
    """Private recover() → __init__ handoff: continue, don't start over."""

    next_txn_id: int
    last_seq: int
    digest_log: DigestLog


class LitmusSession:
    """One coherent client surface over server + verifier + user batching."""

    def __init__(
        self,
        server: LitmusServer,
        client: LitmusClient | None = None,
        max_batch: int = 1024,
        tracer: Tracer | None = None,
        registry: MetricsRegistry | None = None,
        retry_policy: RetryPolicy | None = None,
        fault_plan=None,
        checkpoint_every: int = 64,
        durability: DurabilityConfig | None = None,
        shard_index: int | None = None,
        _resume: _ResumeState | None = None,
    ):
        if max_batch < 1:
            raise ReproError("batch capacity must be positive")
        if checkpoint_every < 1:
            raise ReproError("checkpoint interval must be positive")
        self.server = server
        self.tracer = tracer if tracer is not None else server.tracer
        self.registry = registry if registry is not None else get_metrics()
        if client is None:
            client = LitmusClient(
                server.group,
                server.digest,
                config=server.config,
                invariants=server.invariants,
                tracer=self.tracer,
            )
        self.client = client
        self.max_batch = max_batch
        self.retry_policy = retry_policy
        self.fault_plan = fault_plan
        if fault_plan is not None:
            fault_plan.bind_registry(self.registry)
            # The server consults the plan at the certify/prove stages.
            server.fault_plan = fault_plan
        self.checkpoint_every = checkpoint_every
        self._next_id = 1
        self._pending: list[tuple[UserTicket, Transaction]] = []
        self.batches_verified = 0
        self.batches_rejected = 0
        self.retries = 0
        self.resyncs = 0
        self.compensations = 0
        # The most recent non-empty flush's result; the only way to observe
        # a rejected auto-flush triggered by submit() reaching max_batch.
        self.last_result: BatchResult | None = None
        # Recovery anchors: the checkpoint state (trusted contents at the
        # last checkpoint), the command log of verified batches since then,
        # the program registry replay needs, and the hash-chained history
        # of verified digests.
        self._base_state: dict[tuple, int] = server.db.snapshot()
        self._command_log: list[bytes] = []
        self._programs: dict[str, Program] = {}
        self.digest_log = DigestLog(self.client.digest)
        # Which shard of a ShardedSession this engine is (None standalone);
        # threaded to the durability fault hooks so CrashPoint(shard=...)
        # can target exactly this engine, and stamped on the server for
        # span attribution.
        self.shard_index = shard_index
        if shard_index is not None:
            server.shard = shard_index
        # Durability: when configured, every verified batch is journaled to
        # the on-disk WAL *before* flush() acknowledges it, and every
        # in-memory checkpoint also lands as an atomic checkpoint file.
        self.durability = durability
        self._manager: DurabilityManager | None = None
        self._batch_seq = 0  # sequence number of the last journaled batch
        # The report of the recover() run that produced this session (None
        # for sessions that started fresh).
        self.recovery_report: RecoveryReport | None = None
        if _resume is not None:
            self._next_id = _resume.next_txn_id
            self._batch_seq = _resume.last_seq
            self.digest_log = _resume.digest_log
            if self.digest_log.latest_digest != self.client.digest:
                raise VerificationFailure(
                    "recovered digest log does not end at the client's digest"
                )
        if durability is not None:
            self._manager = DurabilityManager(
                durability,
                registry=self.registry,
                fault_plan=fault_plan,
                shard=shard_index,
            )
            if _resume is None and self._manager.has_existing_state():
                raise WalError(
                    f"durability directory {durability.directory!r} already "
                    "holds checkpoints or WAL segments; restart with "
                    "LitmusSession.recover() instead of overwriting history"
                )
            self._manager.start(last_seq=self._batch_seq)
            # Anchor the directory: a fresh session writes the seq-0
            # checkpoint (so recover() always has a base state), a resumed
            # one consolidates its replayed history into a new checkpoint
            # and lets the scanned segments retire.
            self._write_durable_checkpoint()

    @classmethod
    def create(
        cls,
        initial: Mapping[tuple, int] | None = None,
        config: LitmusConfig | None = None,
        group: RSAGroup | None = None,
        cost_model: CostModel | None = None,
        invariants: tuple = (),
        max_batch: int = 1024,
        tracer: Tracer | None = None,
        registry: MetricsRegistry | None = None,
        retry_policy: RetryPolicy | None = None,
        fault_plan=None,
        checkpoint_every: int = 64,
        durability: DurabilityConfig | None = None,
        shard_index: int | None = None,
    ) -> "LitmusSession":
        """Build a server + verifying client pair and wrap them in a session.

        This is the quickstart path: one call replaces the old four-object
        setup (group, server, client, proxy).  Passing ``durability`` makes
        the session crash-safe: every verified batch is journaled to the
        on-disk WAL before ``flush()`` acknowledges it, and
        :meth:`recover` rebuilds the session from the directory after a
        restart.
        """
        tracer = tracer if tracer is not None else get_tracer()
        server = LitmusServer(
            initial=initial,
            config=config,
            group=group,
            cost_model=cost_model,
            invariants=invariants,
            tracer=tracer,
        )
        return cls(
            server,
            max_batch=max_batch,
            tracer=tracer,
            registry=registry,
            retry_policy=retry_policy,
            fault_plan=fault_plan,
            checkpoint_every=checkpoint_every,
            durability=durability,
            shard_index=shard_index,
        )

    @classmethod
    def recover(
        cls,
        directory: str,
        programs: Iterable[Program] | Mapping[str, Program] = (),
        *,
        group: RSAGroup | None = None,
        cost_model: CostModel | None = None,
        invariants: tuple = (),
        max_batch: int = 1024,
        tracer: Tracer | None = None,
        registry: MetricsRegistry | None = None,
        retry_policy: RetryPolicy | None = None,
        fault_plan=None,
        checkpoint_every: int = 64,
        shard_index: int | None = None,
    ) -> "LitmusSession":
        """Rebuild a durable session from its directory after a restart.

        The restart recovery algorithm:

        1. load the newest checkpoint that validates (checksum + internal
           consistency; rotted candidates fall back to older ones);
        2. scan the WAL, *repairing* tail damage — a torn or bit-rotted
           suffix is truncated away (``wal.torn_tail_truncated``), never
           raised;
        3. replay every record past the checkpoint through a fresh
           :class:`~repro.db.database.Database` (*programs* supplies the
           stored procedures the journaled command logs name);
        4. rebuild the server — store *and* authenticated dictionary — from
           the replayed contents and cross-check the rebuilt digest against
           the journaled client-verified digest.  Agreement proves the
           recovered state is exactly what the client last acknowledged;
           disagreement raises :class:`~repro.errors.ServerDesyncError`;
        5. resume: the new session continues the sequence/txn-id spaces and
           the hash-chained digest log, and immediately consolidates the
           replayed history into a fresh checkpoint.

        *group* optionally reuses an existing :class:`RSAGroup` (it must
        match the journaled parameters; with it, servers keep the trapdoor
        speedup) — by default the group is rebuilt from the checkpoint.
        The :class:`RecoveryReport` lands on ``session.recovery_report``.
        """
        start = perf_counter()
        tracer = tracer if tracer is not None else get_tracer()
        registry = registry if registry is not None else get_metrics()
        if isinstance(programs, Mapping):
            program_map = dict(programs)
        else:
            program_map = {program.name: program for program in programs}
        selection = select_checkpoint(directory)
        checkpoint = selection.checkpoint
        records, scan = scan_wal(directory, registry=registry, repair=True)
        replay = [record for record in records if record.seq > checkpoint.seq]
        if replay and replay[0].seq != checkpoint.seq + 1:
            raise WalError(
                f"WAL resumes at sequence {replay[0].seq} but the newest "
                f"valid checkpoint covers up to {checkpoint.seq}; "
                "acknowledged batches in between are unrecoverable"
            )
        config = LitmusConfig(**checkpoint.config)
        if group is None:
            group = RSAGroup(checkpoint.group_modulus, checkpoint.group_generator)
        elif (
            group.modulus != checkpoint.group_modulus
            or group.generator != checkpoint.group_generator
        ):
            raise WalError(
                "supplied RSA group disagrees with the journaled parameters"
            )
        digest_log = DigestLog.from_json(checkpoint.digest_log_json)
        if digest_log.latest_digest != checkpoint.digest:
            raise VerificationFailure(
                "journaled digest log does not end at the checkpoint digest"
            )
        with tracer.span("recover", batches=len(replay)):
            replayed = Database(
                initial=checkpoint.rows,
                cc=config.cc,
                processing_batch_size=config.processing_batch_size,
                num_threads=config.num_db_threads,
            )
            next_txn_id = checkpoint.next_txn_id
            for record in replay:
                txns = decode_batch(record.command_log, program_map)
                replayed.run(txns)
                digest_log.record(record.digest, len(txns))
                next_txn_id = max(
                    next_txn_id, max(txn.txn_id for txn in txns) + 1
                )
            rebuilt = LitmusServer(
                initial=replayed.snapshot(),
                config=config,
                group=group,
                cost_model=cost_model,
                invariants=invariants,
                tracer=tracer,
                fault_plan=fault_plan,
            )
            # The digest cross-check: the AD digest is a pure function of
            # the contents, so the rebuilt digest matching the journaled
            # client-verified digest proves the recovered state is exactly
            # the one the client last acknowledged.
            expected = replay[-1].digest if replay else checkpoint.digest
            if rebuilt.digest != expected:
                registry.counter("recovery.digest_mismatches").inc()
                raise ServerDesyncError(
                    "recovered state does not reproduce the journaled "
                    f"client-verified digest (got {rebuilt.digest:#x}, "
                    f"expected {expected:#x}); the durable history has "
                    "diverged from what the client acknowledged"
                )
        durability = DurabilityConfig(directory=directory, **checkpoint.durability)
        resume = _ResumeState(
            next_txn_id=next_txn_id,
            last_seq=replay[-1].seq if replay else checkpoint.seq,
            digest_log=digest_log,
        )
        session = cls(
            rebuilt,
            max_batch=max_batch,
            tracer=tracer,
            registry=registry,
            retry_policy=retry_policy,
            fault_plan=fault_plan,
            checkpoint_every=checkpoint_every,
            durability=durability,
            shard_index=shard_index,
            _resume=resume,
        )
        session._programs.update(program_map)
        duration = perf_counter() - start
        registry.counter("recovery.replayed_batches").inc(len(replay))
        registry.histogram("recovery.duration").observe(duration)
        session.recovery_report = RecoveryReport(
            checkpoint_seq=checkpoint.seq,
            replayed_batches=len(replay),
            last_seq=resume.last_seq,
            digest=session.client.digest,
            truncations=scan.truncations,
            truncated_bytes=scan.truncated_bytes,
            dropped_segments=scan.dropped_segments,
            duration_seconds=duration,
            checkpoint_path=selection.loaded_path,
            checkpoint_from_mirror=selection.used_mirror,
            checkpoint_rejected=selection.rejected,
        )
        return session

    # -- user-facing API ---------------------------------------------------------

    @property
    def digest(self) -> DigestVector:
        """The client-side (verified) database digest, as a length-1
        :class:`~repro.core.api.DigestVector` (its int value is the digest
        itself, so every scalar consumer keeps working)."""
        return DigestVector.single(self.client.digest)

    @property
    def queued(self) -> int:
        return len(self._pending)

    def submit(self, user: str, program: Program, **params: int) -> UserTicket:
        """Enqueue one stored-procedure call on behalf of *user*.

        Parameters are keyword arguments (``session.submit("alice",
        PURCHASE, buyer=0, price=120)``).  Reaching ``max_batch`` queued
        requests flushes automatically; the auto-flush's outcome lands in
        :attr:`last_result` (and a rejected one resolves the tickets, so it
        is observable either way).
        """
        return self.submit_call(user, program, params)

    def submit_call(
        self,
        user: str,
        program: Program,
        params: Mapping[str, int],
        *,
        txn_id: int | None = None,
        auto_flush: bool = True,
    ) -> UserTicket:
        """Non-kwargs :meth:`submit` for programmatic callers.

        The sharded router uses this to pin a globally allocated *txn_id*
        (so ranks agree across shards) and to defer the auto-flush to its
        own fan-out logic; plain callers can ignore both knobs.
        """
        self._programs.setdefault(program.name, program)
        if txn_id is None:
            txn_id = self._next_id
            self._next_id += 1
        else:
            self._next_id = max(self._next_id, txn_id + 1)
        txn = Transaction(txn_id, program, dict(params))
        ticket = UserTicket(user=user, txn_id=txn.txn_id)
        self._pending.append((ticket, txn))
        if auto_flush and len(self._pending) >= self.max_batch:
            self.flush()
        return ticket

    def flush(self, deadline: float | None = None) -> BatchResult:
        """Drive one verification round over the queued requests.

        Empty queue: a documented no-op returning :meth:`BatchResult.empty`
        — accepted, ``num_txns == 0``, no server round-trip.

        With a :class:`RetryPolicy`, a rejected round triggers the recovery
        loop documented in the module docstring (rollback → resync →
        backoff → retry) before giving up.

        *deadline* is an absolute ``time.monotonic()`` instant (the shape a
        network service propagates server-side).  It is checked at stage
        boundaries — before each attempt and after server execution but
        before verification.  On expiry the round is **cancelled, not
        half-committed**: the server is rolled back to the last verified
        state if it had advanced, the un-acknowledged transactions are
        re-queued in order, their tickets stay unresolved, and
        :class:`~repro.errors.DeadlineExceeded` is raised.  A later flush
        (with a fresh deadline or none) retries them; nothing is lost and
        the digest chain never moves for a cancelled round.
        """
        if not self._pending:
            return BatchResult.empty()
        pending, self._pending = self._pending, []
        txns = [txn for _ticket, txn in pending]
        policy = self.retry_policy or RetryPolicy(max_attempts=1)

        attempt = 0
        while True:
            if deadline is not None and time.monotonic() >= deadline:
                self._abandon_for_deadline(pending)
                raise DeadlineExceeded(
                    f"deadline expired before attempt {attempt + 1}; "
                    f"{len(txns)} transaction(s) re-queued"
                )
            attempt += 1
            try:
                verdict, reason, server_advanced, response = self._attempt_round(
                    txns, deadline
                )
            except DeadlineExceeded:
                self._abandon_for_deadline(pending)
                raise
            if verdict is not None and verdict.accepted:
                return self._finish_accepted(
                    pending, txns, verdict, response, attempt
                )
            self.batches_rejected += 1
            self.registry.counter("session.rejections").inc()
            if server_advanced:
                # The server optimistically applied the batch; rewind it to
                # the last client-verified state before anything else.
                self.server.rollback()
            if attempt >= policy.max_attempts:
                result = self._finish_rejected(pending, txns, reason, attempt)
                if policy.raise_on_exhaustion:
                    raise RetryExhausted(reason, attempt)
                return result
            self.retries += 1
            self.registry.counter("session.retries").inc()
            rng = self.fault_plan.rng if self.fault_plan is not None else None
            delay = policy.delay(attempt, rng=rng)
            if delay > 0:
                policy.sleep(delay)
            self.resync()

    def resync(self) -> int:
        """Re-derive a trusted server from the verified history.

        Replays the command log of every verified batch since the last
        checkpoint (:mod:`repro.db.commandlog` — determinism of the CC
        algorithm makes the log sufficient) against the checkpoint state,
        rebuilds the server (store *and* authenticated dictionary) from the
        re-derived contents, and cross-checks the rebuilt digest against
        the client's verified digest.  Agreement proves the recovery
        produced exactly the state the client last accepted; disagreement
        means the durable history itself has diverged and raises
        :class:`~repro.errors.ServerDesyncError`.

        Returns the re-derived digest (== ``self.digest``).
        """
        self.resyncs += 1
        self.registry.counter("session.resyncs").inc()
        config = self.server.config
        with self.tracer.span("resync", batches=len(self._command_log)):
            replayed = Database(
                initial=self._base_state,
                cc=config.cc,
                processing_batch_size=config.processing_batch_size,
                num_threads=config.num_db_threads,
            )
            for log in self._command_log:
                replayed.run(decode_batch(log, self._programs))
            rebuilt = LitmusServer(
                initial=replayed.snapshot(),
                config=config,
                group=self.server.group,
                cost_model=self.server.cost_model,
                invariants=self.server.invariants,
                tracer=self.tracer,
                fault_plan=self.fault_plan,
            )
            if rebuilt.digest != self.client.digest:
                self.registry.counter("session.resync_failures").inc()
                raise ServerDesyncError(
                    "replaying the verified command log does not reproduce the "
                    f"client's digest (got {rebuilt.digest:#x}, expected "
                    f"{self.client.digest:#x}); server history has diverged"
                )
        self.server = rebuilt
        return rebuilt.digest

    def compensate_last_batch(self, reason: str = "") -> int:
        """Undo the most recently accepted batch (cross-shard compensation).

        The sharded router's two-phase apply calls this when *another*
        shard failed its half of a cross-shard round: this shard verified
        and journaled its apply batch, but atomicity demands the round
        land on every participant or on none.  The undo:

        1. rolls the server back to its pre-batch snapshot (held until the
           next ``execute_batch``), restoring store and provider digest;
        2. rewinds the client digest to the previous chain entry.  The
           chain itself stays append-only — a zero-transaction entry
           re-recording the prior digest marks the compensation instead of
           rewriting history;
        3. re-anchors the recovery state (base snapshot + empty command
           log) and, with durability on, writes a checkpoint at the *same*
           sequence the compensated batch journaled.  The atomic rewrite
           replaces any applied-state checkpoint at that sequence and the
           post-checkpoint WAL reset retires the applied record, so a
           crash at any instant recovers to either the applied state
           (which the coordinator's intent journal then resolves) or the
           compensated one — never a half state.

        Returns the restored digest.  Raises
        :class:`~repro.errors.ClientAPIError` when there is no batch to
        compensate and :class:`~repro.errors.ServerDesyncError` when the
        rollback snapshot disagrees with the verified digest chain.
        """
        if self.server._pre_batch is None:
            raise ClientAPIError(
                "no accepted batch to compensate: the server holds no "
                "pre-batch snapshot (nothing flushed since the last "
                "rollback/compensation)"
            )
        entries = self.digest_log.entries()
        if len(entries) < 2:
            raise ClientAPIError(
                "the digest chain holds no state prior to the last batch"
            )
        previous = entries[-2].digest
        with self.tracer.span("compensate", reason=reason):
            self.server.rollback()
            if self.server.digest != previous:
                raise ServerDesyncError(
                    "compensation rollback does not reproduce the previously "
                    f"verified digest (got {self.server.digest:#x}, expected "
                    f"{previous:#x}); refusing to rewind the client"
                )
            self.client.digest = previous
            self.digest_log.record(previous, 0)
            self._base_state = self.server.db.snapshot()
            self._command_log.clear()
            self._write_durable_checkpoint()
        self.compensations += 1
        self.registry.counter("session.compensations").inc()
        return previous

    # -- the per-attempt round ---------------------------------------------------

    def _abandon_for_deadline(
        self, pending: list[tuple[UserTicket, Transaction]]
    ) -> None:
        """Re-queue a deadline-cancelled batch ahead of anything newer."""
        self._pending = pending + self._pending
        self.registry.counter("session.deadline_aborts").inc()

    def _attempt_round(
        self, txns: list[Transaction], deadline: float | None = None
    ) -> tuple[ClientVerdict | None, str, bool, ServerResponse | None]:
        """One request→execute→respond→verify round.

        Returns ``(verdict, reason, server_advanced, response)`` where
        *verdict* is None when no response reached the client and
        *server_advanced* tells the caller whether the server applied the
        batch and still holds that (unverified) state.

        A *deadline* that expires while the server executes cancels the
        round here: the server is rolled back (its optimistic state was
        never verified) and :class:`~repro.errors.DeadlineExceeded`
        propagates to ``flush``, which re-queues the batch.  The check
        sits *before* verification on purpose — once the client verifies
        and advances its digest the work must be acknowledged, so the
        deadline is best-effort at stage boundaries, never mid-digest.
        """
        plan = self.fault_plan
        try:
            if plan is not None:
                plan.on_request(txns)
        except MessageDropped as exc:
            return None, str(exc), False, None
        try:
            response = self.server.execute_batch(txns)
        except (ProofCorruptionDetected, MessageDropped) as exc:
            # execute_batch already rolled the server back before raising.
            return None, str(exc), False, None
        if deadline is not None and time.monotonic() >= deadline:
            self.server.rollback()
            raise DeadlineExceeded(
                "server execution overran the request deadline; the batch "
                "was rolled back before verification"
            )
        try:
            if plan is not None:
                response = plan.on_response(response)
        except MessageDropped as exc:
            return None, str(exc), True, None
        verdict = self.client.verify_response(txns, response)
        return verdict, verdict.reason, not verdict.accepted, response

    # -- outcome assembly --------------------------------------------------------

    def _finish_accepted(
        self,
        pending: list[tuple[UserTicket, Transaction]],
        txns: list[Transaction],
        verdict: ClientVerdict,
        response: ServerResponse,
        attempts: int,
    ) -> BatchResult:
        outputs = dict(verdict.outputs or {})
        # Durability barrier first: journal the verified batch (and any due
        # durable checkpoint) before any acknowledgement escapes — ticket
        # resolution included — so a crash here can never leave the caller
        # holding an accepted ticket the WAL does not cover.
        self.batches_verified += 1
        self._record_verified(txns)
        user_outputs: dict[str, list[tuple[int, ...]]] = {}
        for ticket, txn in pending:
            ticket._resolve(True, outputs.get(txn.txn_id, ()), "")
            user_outputs.setdefault(ticket.user, []).append(ticket._outputs)
        result = BatchResult(
            accepted=True,
            reason="",
            num_txns=len(txns),
            attempts=attempts,
            outputs=_frozen_mapping(outputs),
            user_outputs=_frozen_mapping(
                {user: tuple(values) for user, values in user_outputs.items()}
            ),
            tickets=tuple(ticket for ticket, _txn in pending),
            timing=response.timing,
            metrics=_frozen_mapping(self.registry.snapshot()),
        )
        self.last_result = result
        return result

    def _finish_rejected(
        self,
        pending: list[tuple[UserTicket, Transaction]],
        txns: list[Transaction],
        reason: str,
        attempts: int,
    ) -> BatchResult:
        for ticket, _txn in pending:
            ticket._resolve(False, (), reason)
        result = BatchResult(
            accepted=False,
            reason=reason,
            num_txns=len(txns),
            attempts=attempts,
            tickets=tuple(ticket for ticket, _txn in pending),
            timing=None,
            metrics=_frozen_mapping(self.registry.snapshot()),
        )
        self.last_result = result
        return result

    def _record_verified(self, txns: list[Transaction]) -> None:
        """Append the verified batch to the recovery anchors.

        The digest log chains the newly verified digest; the command log
        gains the batch (resync's replay input).  Every ``checkpoint_every``
        verified batches the current store contents become the new
        checkpoint and the log resets — a checkpoint is only *provisionally*
        trusted: the next resync re-derives the digest from it and fails
        loudly (``ServerDesyncError``) if it was tampered with.

        With durability on, the WAL append comes *first* — it is the
        pre-acknowledgement barrier — and the periodic checkpoint also
        lands on disk as an atomic checkpoint file.
        """
        encoded = encode_batch(txns)
        self._batch_seq += 1
        if self._manager is not None:
            self._manager.log_batch(self._batch_seq, self.client.digest, encoded)
        self.digest_log.record(self.client.digest, len(txns))
        self._command_log.append(encoded)
        if len(self._command_log) >= self.checkpoint_every:
            self._base_state = self.server.db.snapshot()
            self._command_log.clear()
            self._write_durable_checkpoint()

    def _write_durable_checkpoint(self) -> None:
        """Mirror the in-memory checkpoint as an atomic on-disk one."""
        if self._manager is None:
            return
        self._manager.checkpoint(
            seq=self._batch_seq,
            digest=self.client.digest,
            rows=self.server.db.snapshot(),
            provider_state=self.server.provider.state(),
            next_txn_id=self._next_id,
            config=asdict(self.server.config),
            group_modulus=self.server.group.modulus,
            group_generator=self.server.group.generator,
            digest_log_json=self.digest_log.to_json(),
        )

    def close(self) -> None:
        """Release durability resources (sync + close the active segment).

        Idempotent; a session without durability is a no-op.  The WAL stays
        valid without it — ``close`` just flushes the last sync window of
        the ``"batch"`` policy eagerly.
        """
        if self._manager is not None:
            self._manager.close()

    # -- observability -----------------------------------------------------------

    def export(self, exporter: Exporter) -> None:
        """Push every finished span and the current metrics snapshot."""
        exporter.export(self.tracer.finished(), self.registry.snapshot())
