"""Configuration of a Litmus deployment."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ReproError

__all__ = ["LitmusConfig"]


@dataclass(frozen=True)
class LitmusConfig:
    """Knobs of the verifiable DBMS (paper Section 8's baselines map here).

    - ``Litmus-DRM``: ``cc="dr"``, ``num_provers=75``
    - ``Litmus-DR``:  ``cc="dr"``, ``num_provers=1``
    - ``Litmus-2PL``: ``cc="2pl"`` (aggregation disabled automatically)
    """

    cc: str = "dr"  # "dr" (deterministic reservation) or "2pl"
    processing_batch_size: int = 1024  # DR rounds take this many txns (paper: 81,920)
    num_db_threads: int = 4  # logical 2PL threads (paper: 4 for the DB component)
    batches_per_piece: int = 5  # circuit pieces cover this many units (Fig 2)
    num_provers: int = 1  # prover threads (paper sweeps 1..80, default 75 for DRM)
    prime_bits: int = 64  # AD prime size (lambda); tests use 64 for speed
    backend: str = "groth16"  # "groth16" (simulator) or "spotcheck" (real argument)
    use_poe: bool = True  # compress big-exponent checks with PoE
    # With use_poe, aggregate all of a piece's read-lookup PoEs into ONE
    # random-linear-combination Wesolowski proof verified by a single pair of
    # multi-exponentiations (instead of one challenge prime + two
    # exponentiations per certificate).  Disable for ablation.
    batched_poe: bool = True
    # Run trusted setup once per circuit *structure* and reuse the key pair
    # for every piece with the same structural hash (sound: proofs commit to
    # their own public statement).  Disable for ablation.
    reuse_proving_keys: bool = True
    table_doublings: float = 0.0  # log2(table size / 10 GB) for the Fig 9 model
    # Gate count of one MemCheck/MemUpdate gadget.  Part of the circuit
    # *structure* (client and server must agree), hence configuration rather
    # than a calibrated cost-model output.  The default matches the
    # calibration derived from the paper's Litmus-2PL/Litmus-DR gap.
    memcheck_constraints: int = 600

    def __post_init__(self):
        if self.cc not in ("dr", "2pl"):
            raise ReproError(f"unknown concurrency control {self.cc!r}")
        if self.backend not in ("groth16", "spotcheck"):
            raise ReproError(f"unknown VC backend {self.backend!r}")
        if self.num_provers < 1 or self.batches_per_piece < 1:
            raise ReproError("prover and piece counts must be positive")

    @property
    def aggregation_enabled(self) -> bool:
        """Proof aggregation requires non-conflicting batches (DR only)."""
        return self.cc == "dr"

    @property
    def poe_mode(self) -> bool | str:
        """The provider's ``use_poe`` argument: False, True, or ``"batch"``."""
        if not self.use_poe:
            return False
        return "batch" if self.batched_poe else True
