"""Litmus core: the verifiable DBMS of the paper.

Wires the substrates together exactly as Figure 1 describes:

- :mod:`repro.core.memory_integrity` — the provider (server, Algorithm 1)
  and the checker (in-circuit, Algorithm 2);
- :mod:`repro.core.wrapper` — the transaction wrapper (Algorithm 3), with
  per-transaction units under 2PL and aggregated units under deterministic
  reservation;
- :mod:`repro.core.server` — the server workflow (Algorithm 4) including
  the piece dispatcher and prover-pipelining timing model (Section 7.2);
- :mod:`repro.core.client` — digest keeping, circuit matching, proof and
  digest-chain verification (Section 6.2);
- :mod:`repro.core.interactive` / :mod:`repro.core.merkle_server` — the
  AD-Interact and Merkle-tree baselines of Section 8;
- :mod:`repro.core.hybrid`, :mod:`repro.core.consistency` — the Section 9
  extensions (real-time hybrid mode; verifiable consistency invariants);
- :mod:`repro.core.session` — the client-facing facade
  (:class:`LitmusSession` / :class:`BatchResult`);
- :mod:`repro.core.api` — the :class:`VerifiedSession` protocol every
  session implementation satisfies, and the :class:`DigestVector` digest
  type;
- :mod:`repro.core.sharding` — the keyspace partitioned across S
  independently verified engines (:class:`ShardedSession` /
  :class:`ShardMap`).

Both server and client report spans/metrics through :mod:`repro.obs`.
"""

from .api import DigestVector, VerifiedSession
from .audit import AuditRecord, AuditTrail
from .checkpoint import DigestLog
from .client import ClientVerdict, LitmusClient
from .config import LitmusConfig
from .consistency import InvariantViolation, SumInvariant
from .hybrid import HybridLitmus
from .interactive import InteractiveServerClient
from .memory_integrity import (
    MemoryIntegrityChecker,
    MemoryIntegrityProvider,
    ReadCertificate,
    WriteCertificate,
)
from .merkle_server import MerkleServerClient
from .protocol import PieceResult, ServerResponse, TimingReport
from .server import LitmusServer
from .session import (
    BatchResult,
    DurabilityConfig,
    LitmusSession,
    RecoveryReport,
    RetryPolicy,
    UserTicket,
)
from .sharding import ShardMap, ShardedSession, XShardRecoveryReport
from .snapshot import restore_server, snapshot_server

__all__ = [
    "AuditRecord",
    "AuditTrail",
    "BatchResult",
    "ClientVerdict",
    "DigestLog",
    "DigestVector",
    "DurabilityConfig",
    "HybridLitmus",
    "InteractiveServerClient",
    "InvariantViolation",
    "LitmusClient",
    "LitmusConfig",
    "LitmusServer",
    "LitmusSession",
    "MemoryIntegrityChecker",
    "MemoryIntegrityProvider",
    "MerkleServerClient",
    "PieceResult",
    "RecoveryReport",
    "restore_server",
    "snapshot_server",
    "ReadCertificate",
    "RetryPolicy",
    "ServerResponse",
    "ShardMap",
    "ShardedSession",
    "SumInvariant",
    "TimingReport",
    "UserTicket",
    "VerifiedSession",
    "WriteCertificate",
    "XShardRecoveryReport",
]
