"""The Litmus client (Section 6.2).

The client is lightweight: it stores a constant-sized digest, compiles its
own transactions into circuit templates, and — because the CC algorithm is
deterministic and write sets depend only on parameters — reconstructs the
wrapped-transaction circuit *structure* locally from the server-reported
batch composition.  Verification of one server response then consists of:

1. **batch validation** — the reported units partition the submitted
   transactions, and (under deterministic reservation) each unit is
   non-conflicting, checked with the paper's hash-table method;
2. **circuit matching** — the locally rebuilt circuit's structural hash
   must equal both the server-claimed signature and the verification key's
   circuit hash;
3. **proof verification** — each piece's proof is checked against the
   recomputed public statement (piece index, digest endpoints, outputs,
   AllCommit);
4. **digest-chain continuity** — piece i's end digest is piece i+1's start
   digest, the chain starts at the client's stored digest, and ends at the
   server-claimed new digest.

Only if everything passes does the client accept the outputs and roll its
digest forward.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from ..crypto.rsa_group import RSAGroup
from ..db.executor import ScheduleUnit
from ..db.txn import Transaction
from ..errors import VerificationFailure
from ..obs.metrics import get_metrics
from ..obs.spans import Tracer, get_tracer
from ..vc.compiler import CircuitCompiler
from ..vc.program import ReadStmt, WriteStmt
from ..vc.snark import Groth16Simulator
from ..vc.spotcheck import SpotCheckBackend
from .config import LitmusConfig
from .protocol import PieceResult, ServerResponse
from .wrapper import WrappedPiece, WrappedUnit, build_wrapped_circuit, statement_hash

__all__ = ["LitmusClient", "ClientVerdict", "derive_unit_shape"]


@dataclass(frozen=True)
class ClientVerdict:
    """The outcome of verifying one server response."""

    accepted: bool
    reason: str = ""
    outputs: Mapping[int, tuple[int, ...]] | None = None
    new_digest: int | None = None


def store_read_keys(txn: Transaction) -> list[tuple]:
    """Distinct keys the transaction reads *from the store*.

    A read that follows the transaction's own write to the same key is
    served from the write buffer and touches no memory — statically
    derivable because keys are parameter-only.
    """
    written: set[tuple] = set()
    seen: set[tuple] = set()
    out: list[tuple] = []
    for stmt in txn.program.statements:
        if isinstance(stmt, WriteStmt):
            written.add(stmt.key.resolve(txn.params))
        elif isinstance(stmt, ReadStmt):
            key = stmt.key.resolve(txn.params)
            if key not in written and key not in seen:
                seen.add(key)
                out.append(key)
    return out


def write_keys(txn: Transaction) -> list[tuple]:
    seen: set[tuple] = set()
    out: list[tuple] = []
    for stmt in txn.program.statements:
        if isinstance(stmt, WriteStmt):
            key = stmt.key.resolve(txn.params)
            if key not in seen:
                seen.add(key)
                out.append(key)
    return out


def derive_unit_shape(txns: Sequence[Transaction]) -> ScheduleUnit:
    """The read/write key sets of a unit, derived from parameters alone.

    Values are placeholders (0): the circuit structure depends only on the
    key sets, never on data.
    """
    reads: dict[tuple, int] = {}
    writes: dict[tuple, int] = {}
    for txn in txns:
        for key in store_read_keys(txn):
            reads.setdefault(key, 0)
        for key in write_keys(txn):
            writes.setdefault(key, 0)
    return ScheduleUnit(
        txn_ids=tuple(t.txn_id for t in txns),
        reads=tuple(reads.items()),
        writes=tuple(writes.items()),
    )


class LitmusClient:
    """Digest keeper, circuit matcher, and proof verifier."""

    def __init__(
        self,
        group: RSAGroup,
        initial_digest: int,
        config: LitmusConfig | None = None,
        cost_model=None,
        invariants: tuple = (),
        tracer: Tracer | None = None,
    ):
        self.group = group
        self.config = config or LitmusConfig()
        self.tracer = tracer if tracer is not None else get_tracer()
        self.digest = initial_digest
        self.compiler = CircuitCompiler()
        self.cost_model = cost_model
        self.invariants = tuple(invariants)
        if self.config.backend == "groth16":
            self._backend = Groth16Simulator()
        else:
            self._backend = SpotCheckBackend()

    # -- verification ------------------------------------------------------------

    def verify_response(
        self, txns: Sequence[Transaction], response: ServerResponse
    ) -> ClientVerdict:
        """Run the full acceptance pipeline; never raises on a bad server."""
        metrics = get_metrics()
        with self.tracer.span("verify", num_pieces=len(response.pieces)) as span:
            try:
                self._check_coverage(txns, response)
                txns_by_id = {txn.txn_id: txn for txn in txns}
                expected_digest = self.digest
                if response.initial_digest != expected_digest:
                    raise VerificationFailure(
                        "server disagrees about the starting digest"
                    )
                for piece in response.pieces:
                    with self.tracer.span("verify_piece", piece=piece.piece_index):
                        self._verify_piece(piece, txns_by_id, expected_digest)
                    expected_digest = piece.end_digest
                if response.final_digest != expected_digest:
                    raise VerificationFailure("final digest does not close the chain")
                if any(not piece.all_commit for piece in response.pieces):
                    raise VerificationFailure(
                        "a memory-integrity check failed server-side"
                    )
            except VerificationFailure as failure:
                span.set(accepted=False, reason=str(failure))
                metrics.counter("client.batches_rejected").inc()
                return ClientVerdict(accepted=False, reason=str(failure))
            except Exception as exc:
                # A response malformed enough to crash the checks (foreign
                # txn ids in unit compositions, garbage proof objects, ...)
                # is an attack in this threat model, not a client bug — the
                # docstring's "never raises on a bad server" must hold for
                # arbitrary byte-level tampering, not just protocol-shaped
                # deviations.
                reason = (
                    f"malformed server response ({exc.__class__.__name__}: {exc})"
                )
                span.set(accepted=False, reason=reason)
                metrics.counter("client.batches_rejected").inc()
                return ClientVerdict(accepted=False, reason=reason)
            span.set(accepted=True)
        metrics.counter("client.batches_accepted").inc()
        self.digest = response.final_digest
        return ClientVerdict(
            accepted=True,
            outputs=response.all_outputs(),
            new_digest=self.digest,
        )

    # -- steps ---------------------------------------------------------------------

    def _check_coverage(
        self, txns: Sequence[Transaction], response: ServerResponse
    ) -> None:
        submitted = {txn.txn_id for txn in txns}
        covered: list[int] = []
        for piece in response.pieces:
            covered.extend(piece.txn_ids)
        if sorted(covered) != sorted(submitted):
            raise VerificationFailure(
                "reported pieces do not cover the submitted transactions exactly"
            )

    def _verify_piece(
        self,
        piece: PieceResult,
        txns_by_id: Mapping[int, Transaction],
        expected_start: int,
    ) -> None:
        if piece.start_digest != expected_start:
            raise VerificationFailure(
                f"piece {piece.piece_index}: digest chain broken"
            )
        units = []
        for unit_ids in piece.unit_txn_ids:
            unit_txns = [txns_by_id[i] for i in unit_ids]
            if self.config.aggregation_enabled and len(unit_txns) > 1:
                self._check_non_conflicting(unit_txns)
            units.append(
                WrappedUnit(
                    unit=derive_unit_shape(unit_txns),
                    read_certificate=None,
                    write_certificate=None,
                )
            )
        local_piece = WrappedPiece(
            piece_index=piece.piece_index,
            units=tuple(units),
            start_digest=piece.start_digest,
        )
        local_circuit = build_wrapped_circuit(
            local_piece,
            txns_by_id,
            self.compiler,
            self.group,
            self.config.prime_bits,
            self.config.memcheck_constraints,
            aggregated=self.config.aggregation_enabled,
            invariants=self.invariants,
        )
        # Circuit matching (Section 6.1.3): the server's claimed circuit and
        # its verification key must both match the locally built structure.
        local_hash = local_circuit.structural_hash()
        if piece.circuit_signature != local_hash:
            raise VerificationFailure(
                f"piece {piece.piece_index}: circuit does not match local compilation"
            )
        vk = piece.verification_key
        if getattr(vk, "circuit_hash", None) != local_hash:
            raise VerificationFailure(
                f"piece {piece.piece_index}: verification key for a foreign circuit"
            )
        # Recompute the public statement from server-reported values.
        expected_statement = statement_hash(
            piece.piece_index,
            piece.start_digest,
            piece.end_digest,
            piece.all_commit,
            piece.outputs,
        )
        if tuple(piece.public_values[-2:]) != expected_statement and tuple(
            piece.public_values[1:3]
        ) != expected_statement:
            raise VerificationFailure(
                f"piece {piece.piece_index}: public statement mismatch"
            )
        if isinstance(self._backend, SpotCheckBackend):
            ok = self._backend.verify(
                vk, list(piece.public_values), piece.proof, circuit=local_circuit
            )
        else:
            ok = self._backend.verify(vk, list(piece.public_values), piece.proof)
        if not ok:
            raise VerificationFailure(f"piece {piece.piece_index}: proof rejected")

    def _check_non_conflicting(self, unit_txns: Sequence[Transaction]) -> None:
        """The paper's hash-table check on a claimed batch.

        Valid batches have a unique writer per key, and any other reader of
        a written key must have *higher* priority (smaller id) than the
        writer — reader-before-writer edges then strictly increase in
        priority, so the batch serializes (see detreserve's commit rule).
        """
        writers: dict[tuple, int] = {}
        readers: dict[tuple, set[int]] = {}
        for txn in unit_txns:
            for key in write_keys(txn):
                if key in writers and writers[key] != txn.txn_id:
                    raise VerificationFailure(
                        f"write-write conflict inside a claimed batch on {key!r}"
                    )
                writers[key] = txn.txn_id
            for key in store_read_keys(txn):
                readers.setdefault(key, set()).add(txn.txn_id)
        for key, writer in writers.items():
            for reader in readers.get(key, set()) - {writer}:
                if reader > writer:
                    raise VerificationFailure(
                        f"unserializable read-write overlap in a claimed batch "
                        f"on {key!r}"
                    )

