"""Audit trails for verified sessions.

Compliance-oriented record keeping on top of the protocol: every verified
batch appends one :class:`AuditRecord` tying together the digest transition,
the batch composition, and proof metadata.  The trail is what an
organization shows its auditor — "between digest X and digest Y, exactly
these transactions ran, verifiably" — and it cross-links with the
hash-chained :class:`~repro.core.checkpoint.DigestLog`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..db.txn import Transaction
from ..errors import ReproError
from .checkpoint import DigestLog
from .client import ClientVerdict
from .protocol import ServerResponse

__all__ = ["AuditRecord", "AuditTrail"]


@dataclass(frozen=True)
class AuditRecord:
    """One verified batch, as an auditor sees it."""

    batch_number: int
    accepted: bool
    num_txns: int
    txn_ids: tuple[int, ...]
    programs: tuple[str, ...]  # distinct stored-procedure names
    old_digest: int
    new_digest: int
    proof_bytes: int
    pieces: int
    reject_reason: str = ""


class AuditTrail:
    """Accumulates audit records and renders the session report."""

    def __init__(self, initial_digest: int):
        self._log = DigestLog(initial_digest)
        self._records: list[AuditRecord] = []

    @property
    def records(self) -> tuple[AuditRecord, ...]:
        return tuple(self._records)

    @property
    def digest_log(self) -> DigestLog:
        return self._log

    def observe(
        self,
        txns: Sequence[Transaction],
        response: ServerResponse,
        verdict: ClientVerdict,
    ) -> AuditRecord:
        """Record one batch outcome (accepted batches advance the log)."""
        if response.initial_digest != self._log.latest_digest and verdict.accepted:
            raise ReproError("audit trail out of sync with the digest chain")
        record = AuditRecord(
            batch_number=len(self._records) + 1,
            accepted=verdict.accepted,
            num_txns=len(txns),
            txn_ids=tuple(t.txn_id for t in txns),
            programs=tuple(sorted({t.program.name for t in txns})),
            old_digest=response.initial_digest,
            new_digest=response.final_digest,
            proof_bytes=sum(
                getattr(p.proof, "size_bytes", 0) for p in response.pieces
            ),
            pieces=len(response.pieces),
            reject_reason=verdict.reason,
        )
        self._records.append(record)
        if verdict.accepted:
            self._log.record(response.final_digest, num_txns=len(txns))
        return record

    def render(self) -> str:
        """A human-readable session report."""
        lines = ["Litmus audit trail", "=" * 60]
        accepted = sum(1 for r in self._records if r.accepted)
        lines.append(
            f"batches: {len(self._records)} ({accepted} verified, "
            f"{len(self._records) - accepted} rejected)"
        )
        total_txns = sum(r.num_txns for r in self._records if r.accepted)
        lines.append(f"verified transactions: {total_txns}")
        lines.append(f"final digest: {hex(self._log.latest_digest)[:20]}...")
        lines.append("")
        for record in self._records:
            status = "VERIFIED" if record.accepted else "REJECTED"
            lines.append(
                f"#{record.batch_number:>3} {status:<9} {record.num_txns:>5} txns  "
                f"{', '.join(record.programs)}"
            )
            lines.append(
                f"     {hex(record.old_digest)[:14]}... -> "
                f"{hex(record.new_digest)[:14]}...  "
                f"({record.pieces} piece(s), {record.proof_bytes} proof bytes)"
            )
            if not record.accepted:
                lines.append(f"     reason: {record.reject_reason}")
        self._log.verify_chain()
        lines.append("")
        lines.append("digest log hash chain: OK")
        return "\n".join(lines)
