"""The unified client API surface: ``VerifiedSession`` and ``DigestVector``.

Three session implementations now exist — the in-process
:class:`~repro.core.session.LitmusSession`, the networked
:class:`~repro.net.client.RemoteSession`, and the sharded
:class:`~repro.core.sharding.ShardedSession` — and application code should
be able to swap between them by changing only the constructor.
:class:`VerifiedSession` is the :class:`typing.Protocol` that pins the
shared surface (``submit`` / ``flush`` / ``digest`` / ``queued`` /
``recover`` / ``close``), checked by a conformance test parametrized over
all three implementations.

``digest`` uniformly returns a :class:`DigestVector`: the client's
constant-size verified digest *per shard*.  The unsharded case is simply a
vector of length one.  ``DigestVector`` subclasses :class:`int` — its
integer value is the single digest when ``len == 1`` and a deterministic
SHA-256 fold of the per-shard digests otherwise — so every existing
consumer of the old bare-``int`` digest (equality checks, ``{:#x}``
formatting, JSON payloads, set membership) keeps working unchanged while
new consumers can iterate the per-shard components and use the versioned
wire form (:meth:`DigestVector.to_wire`).
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Protocol, runtime_checkable

__all__ = ["DigestVector", "VerifiedSession"]

# Version tag of the serialized DigestVector wire/journal form.  Bump when
# the encoded shape changes; decoders reject versions they do not know
# instead of guessing.
DIGEST_VECTOR_WIRE_VERSION = 1

_FOLD_DOMAIN = b"litmus-digest-vector-v1"


def _fold(shards: tuple[int, ...]) -> int:
    """Deterministic combined digest of a multi-shard vector."""
    hasher = hashlib.sha256(_FOLD_DOMAIN)
    for digest in shards:
        blob = digest.to_bytes((digest.bit_length() + 7) // 8 or 1, "big")
        hasher.update(len(blob).to_bytes(4, "big"))
        hasher.update(blob)
    return int.from_bytes(hasher.digest(), "big")


class DigestVector(int):
    """S constant-size verified digests, one per shard; behaves like an int.

    - ``len(v)`` / ``v[i]`` / ``iter(v)`` expose the per-shard digests;
    - as an ``int`` the vector is the shard digest itself (length 1) or a
      SHA-256 fold of the components (length > 1), so ``==`` against a
      bare digest, hashing, and ``{:#x}`` formatting all behave exactly
      like the historical scalar digest;
    - :meth:`to_wire` / :meth:`from_wire` are the versioned serialization
      used by the LNP1 ``digest_vector`` payload field and anywhere a
      journaled form is needed.
    """

    def __new__(cls, shards: Iterable[int]) -> "DigestVector":
        parts = tuple(int(s) for s in shards)
        if not parts:
            raise ValueError("a DigestVector needs at least one shard digest")
        if any(s < 0 for s in parts):
            raise ValueError("shard digests must be non-negative")
        combined = parts[0] if len(parts) == 1 else _fold(parts)
        self = super().__new__(cls, combined)
        self._shards = parts
        return self

    @classmethod
    def single(cls, digest: int) -> "DigestVector":
        """The unsharded case: a vector of length one."""
        return cls((digest,))

    @classmethod
    def coerce(cls, value) -> "DigestVector":
        """Accept a DigestVector, a bare int, or the wire form."""
        if isinstance(value, cls):
            return value
        if isinstance(value, dict):
            return cls.from_wire(value)
        if isinstance(value, int):
            return cls.single(value)
        raise TypeError(f"cannot coerce {type(value).__name__} to DigestVector")

    @property
    def shards(self) -> tuple[int, ...]:
        return self._shards

    def __len__(self) -> int:
        return len(self._shards)

    def __iter__(self):
        return iter(self._shards)

    def __getitem__(self, index: int) -> int:
        return self._shards[index]

    def to_wire(self) -> dict:
        """The versioned JSON-safe form: ``{"v": 1, "shards": ["0x..."]}``."""
        return {
            "v": DIGEST_VECTOR_WIRE_VERSION,
            "shards": [hex(s) for s in self._shards],
        }

    @classmethod
    def from_wire(cls, payload: dict) -> "DigestVector":
        version = payload.get("v")
        if version != DIGEST_VECTOR_WIRE_VERSION:
            raise ValueError(
                f"unknown DigestVector wire version {version!r} "
                f"(this build speaks {DIGEST_VECTOR_WIRE_VERSION})"
            )
        shards = payload.get("shards")
        if not isinstance(shards, list) or not shards:
            raise ValueError("DigestVector wire form needs a non-empty shard list")
        return cls(int(s, 16) if isinstance(s, str) else int(s) for s in shards)

    def __repr__(self) -> str:  # json uses int.__repr__, so this is safe
        inner = ", ".join(f"{s:#x}" for s in self._shards)
        return f"DigestVector([{inner}])"


@runtime_checkable
class VerifiedSession(Protocol):
    """The one client surface every session implementation satisfies.

    ``recover`` is intentionally loose: the durable implementations
    (:class:`~repro.core.session.LitmusSession`,
    :class:`~repro.core.sharding.ShardedSession`) expose it as a
    classmethod rebuilding a session from a durability directory, while
    :class:`~repro.net.client.RemoteSession.recover` re-establishes the
    connection and resolves outstanding work from the server's result
    journal.  Conformance is checked with ``isinstance`` (presence of the
    members), plus behavioral assertions in the parametrized test.
    """

    @property
    def digest(self) -> DigestVector: ...

    @property
    def queued(self) -> int: ...

    def submit(self, user: str, program, **params: int): ...

    def flush(self, *args, **kwargs): ...

    def recover(self, *args, **kwargs): ...

    def close(self) -> None: ...
