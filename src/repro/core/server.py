"""The Litmus server (Algorithm 4) with a real prover pipeline (Section 7.2).

Per verification batch the server:

1. runs the normal DBMS (2PL or deterministic reservation), collecting
   runtime traces and the schedule of units;
2. feeds the schedule through the memory-integrity provider *in serial
   order* — certificates chain off the digest, so this stage cannot be
   parallelized — minting aggregated read/write certificates;
3. groups units into circuit pieces (``batches_per_piece`` per Fig 2) as
   they are certified; each completed piece's circuit is built on the
   dispatcher thread and its prover job (honest replay → witness → trusted
   setup → prove) is handed to a pool of ``config.num_provers`` worker
   threads, so earlier pieces prove **concurrently** while later pieces are
   still being certified;
4. collects piece results in piece order (the response is identical to a
   serial run — only wall-clock changes), and reports both the calibrated
   cost-model timing *and* the measured wall-clock per stage.

Everything cryptographic is real; the modeled columns of the timing report
are virtual, the ``measured_*`` columns are actual elapsed seconds.
"""

from __future__ import annotations

from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass
from time import perf_counter
from typing import Mapping, Sequence

from ..db.database import Database
from ..db.txn import Transaction
from ..crypto.rsa_group import RSAGroup
from ..errors import ProofCorruptionDetected, ProverKilled, ReproError
from ..obs.metrics import get_metrics
from ..obs.spans import Span, Tracer, get_tracer
from ..sim.costmodel import CostModel
from ..sim.scheduler import ProverTask, schedule_tasks
from ..vc.circuit import Circuit
from ..vc.compiler import CircuitCompiler
from ..vc.snark import Groth16Simulator, SetupCache
from ..vc.spotcheck import SpotCheckBackend
from .config import LitmusConfig
from .memory_integrity import POE_MODE_BATCH, MemoryIntegrityProvider
from .protocol import (
    PieceResult,
    ServerResponse,
    TimingReport,
    measured_fields_from_spans,
)
from .wrapper import (
    CTX_OUTCOME,
    ReplayOutcome,
    WrappedPiece,
    WrappedUnit,
    build_wrapped_circuit,
    replay_piece,
    statement_hash,
)

__all__ = ["LitmusServer"]


def _make_backend(name: str):
    if name == "groth16":
        return Groth16Simulator()
    if name == "spotcheck":
        return SpotCheckBackend()
    raise ReproError(f"unknown backend {name!r}")


@dataclass(frozen=True)
class _PieceProof:
    """Everything one prover worker produces for one circuit piece.

    Per-stage timing no longer lives here — the worker opens ``prove_piece``
    / ``replay`` / ``setup`` / ``prove`` spans on the tracer and the server
    derives every measured number from that span tree.
    """

    circuit: Circuit
    outcome: ReplayOutcome
    verification_key: object
    proof: object
    public_values: tuple[int, ...]
    constraints: int


class LitmusServer:
    """Hosts the normal DBMS plus the verifiable machinery."""

    def __init__(
        self,
        initial: Mapping[tuple, int] | None = None,
        config: LitmusConfig | None = None,
        group: RSAGroup | None = None,
        cost_model: CostModel | None = None,
        invariants: tuple = (),
        tracer: Tracer | None = None,
        fault_plan=None,
        shard: int | None = None,
    ):
        self.config = config or LitmusConfig()
        # Optional repro.faults.FaultPlan consulted at the certify and prove
        # stages; None (the default) means an honest, reliable server.
        self.fault_plan = fault_plan
        # Which shard of a sharded deployment this engine serves (None for
        # a standalone server); stamped on every batch span so traces from
        # parallel shard flushes stay attributable.
        self.shard = shard
        # All pipeline spans go here; defaults to the process-local tracer
        # so CLI/benchmark exporters see every server in the process.
        self.tracer = tracer if tracer is not None else get_tracer()
        self.group = group or RSAGroup.generate(bits=512, seed=b"litmus-server")
        self.db = Database(
            initial=initial,
            cc=self.config.cc,
            processing_batch_size=self.config.processing_batch_size,
            num_threads=self.config.num_db_threads,
        )
        self.provider = MemoryIntegrityProvider(
            self.group,
            initial=initial,
            prime_bits=self.config.prime_bits,
            use_poe=self.config.poe_mode,
        )
        self.compiler = CircuitCompiler()
        self.backend = _make_backend(self.config.backend)
        # One trusted setup per circuit structure, reused across pieces (and
        # batches) when enabled; the cache survives the server's lifetime.
        self._setup = (
            SetupCache(self.backend) if self.config.reuse_proving_keys else self.backend
        )
        self.cost_model = cost_model
        self.invariants = tuple(invariants)
        # Exposed so the client can fetch circuits for spot-check verification.
        self.last_circuits: dict[int, object] = {}
        # Cost model recalibrated from the last batch's measured wall-clock
        # (None until a batch ran); lets benchmarks report modeled vs real.
        self.measured_cost_model: CostModel | None = None
        # Pre-batch state snapshot (store contents + provider AD state),
        # captured at the top of every execute_batch so a rejected or
        # crashed batch can be rolled back (see rollback()).
        self._pre_batch: tuple[dict, tuple] | None = None

    @property
    def digest(self) -> int:
        """The server's view of the current database digest."""
        return self.provider.digest

    @property
    def setup_cache_hits(self) -> int:
        return getattr(self._setup, "hits", 0)

    # -- the main entry point (MSG_TXN handler) ---------------------------------

    def execute_batch(self, txns: Sequence[Transaction]) -> ServerResponse:
        if not txns:
            raise ReproError("empty verification batch")
        txns_by_id = {txn.txn_id: txn for txn in txns}
        if len(txns_by_id) != len(txns):
            raise ReproError("duplicate transaction ids in the batch")

        # Snapshot *before* any mutation: the store and the provider's AD
        # state both move during a batch, and until the client has verified
        # the response nothing is trusted.  A mid-batch failure rolls back
        # here immediately; a client rejection rolls back via rollback().
        snapshot = (self.db.snapshot(), self.provider.state())
        self._pre_batch = snapshot
        try:
            return self._run_batch(txns, txns_by_id)
        except Exception as exc:
            self._restore(snapshot)
            self._pre_batch = None
            get_metrics().counter("server.rollbacks").inc()
            if isinstance(exc, ProverKilled):
                raise ProofCorruptionDetected(
                    f"prover pipeline failed mid-batch: {exc}"
                ) from exc
            raise

    def rollback(self) -> bool:
        """Rewind to the snapshot taken before the last ``execute_batch``.

        The rejected-batch recovery path: when the client refuses a
        response, the optimistically applied writes and the advanced
        provider digest must both be undone, otherwise every later batch
        starts from a digest the client never accepted and fails
        verification forever.  Returns True if state was restored; False
        when there is nothing to roll back (no batch ran, or the last
        batch already rolled itself back).
        """
        if self._pre_batch is None:
            return False
        with self.tracer.span("rollback"):
            self._restore(self._pre_batch)
        self._pre_batch = None
        get_metrics().counter("server.rollbacks").inc()
        return True

    def _restore(self, snapshot: tuple[dict, tuple]) -> None:
        store_contents, provider_state = snapshot
        self.db.restore(store_contents)
        self.provider.restore(provider_state)
        self.last_circuits.clear()

    def _run_batch(
        self, txns: Sequence[Transaction], txns_by_id: Mapping[int, Transaction]
    ) -> ServerResponse:
        tracer = self.tracer
        metrics = get_metrics()
        initial_digest = self.provider.digest
        dispatch_start: float | None = None
        piece_results: list[PieceResult] = []
        prover_tasks: list[ProverTask] = []
        total_constraints = 0

        span_attrs = {"num_txns": len(txns), "cc": self.config.cc}
        if self.shard is not None:
            span_attrs["shard"] = self.shard
        with tracer.span("batch", **span_attrs) as batch_span:
            with tracer.span("execute", cc=self.config.cc):
                report = self.db.run(txns)

            cost_model = self._resolve_cost_model()
            db_seconds = cost_model.db_seconds(
                len(txns),
                self.config.cc,
                contention_factor=self._contention_factor(report),
            )
            trace_seconds = cost_model.trace_seconds(
                report.stats.reads + report.stats.writes,
                table_doublings=self.config.table_doublings,
            )
            size = self.config.batches_per_piece
            num_pieces = max(1, -(-len(report.schedule) // size))
            serial_per_piece = (db_seconds + trace_seconds) / num_pieces

            # -- the pipeline: serial certification feeding concurrent provers --
            pieces: list[WrappedPiece] = []
            futures: list[Future] = []
            start_digest = initial_digest
            buffer: list[WrappedUnit] = []

            with ThreadPoolExecutor(
                max_workers=self.config.num_provers, thread_name_prefix="litmus-prover"
            ) as pool:

                def flush_piece() -> None:
                    nonlocal start_digest, dispatch_start
                    chunk = tuple(buffer)
                    buffer.clear()
                    poe_batch = None
                    if self.provider.use_poe == POE_MODE_BATCH:
                        # One aggregated Wesolowski proof for every bare read
                        # lookup in the piece; replay settles them all with a
                        # single batched check instead of one PoE per unit.
                        poe_batch = self.provider.certify_piece_poe(
                            wrapped.read_certificate for wrapped in chunk
                        )
                    piece = WrappedPiece(
                        piece_index=len(pieces),
                        units=chunk,
                        start_digest=start_digest,
                        poe_batch=poe_batch,
                    )
                    pieces.append(piece)
                    start_digest = _chunk_end_digest(chunk, start_digest)
                    with tracer.span(
                        "build_circuit", piece=piece.piece_index
                    ) as build_span:
                        circuit = build_wrapped_circuit(
                            piece,
                            txns_by_id,
                            self.compiler,
                            self.group,
                            self.config.prime_bits,
                            self.config.memcheck_constraints,
                            aggregated=self.config.aggregation_enabled,
                            invariants=self.invariants,
                        )
                        build_span.set(constraints=circuit.total_constraints)
                    if dispatch_start is None:
                        dispatch_start = perf_counter()
                    futures.append(
                        pool.submit(
                            self._prove_piece, piece, circuit, txns_by_id, batch_span
                        )
                    )

                for unit_index, unit in enumerate(report.schedule):
                    with tracer.span("certify_unit", unit=unit_index):
                        read_cert, write_cert = self.provider.certify_unit(
                            dict(unit.reads) if unit.reads else None,
                            dict(unit.writes) if unit.writes else None,
                        )
                    if self.fault_plan is not None:
                        read_cert, write_cert = self.fault_plan.on_certificates(
                            unit_index, read_cert, write_cert
                        )
                    buffer.append(
                        WrappedUnit(
                            unit=unit,
                            read_certificate=read_cert,
                            write_certificate=write_cert,
                        )
                    )
                    if len(buffer) == size:
                        flush_piece()
                if buffer:
                    flush_piece()

                # Collect in piece order; worker exceptions re-raise here.
                results: list[_PieceProof] = [future.result() for future in futures]

            # -- assemble the response (identical to a serial run) ---------------
            with tracer.span("respond", pieces=len(pieces)):
                self.last_circuits.clear()
                release = 0.0
                for piece, result in zip(pieces, results):
                    total_constraints += result.constraints
                    release += serial_per_piece
                    prover_tasks.append(
                        ProverTask(
                            cost_seconds=cost_model.piece_seconds(result.constraints),
                            release_seconds=release,
                            txn_count=len(piece.txn_ids()),
                        )
                    )
                    piece_results.append(
                        PieceResult(
                            piece_index=piece.piece_index,
                            txn_ids=piece.txn_ids(),
                            unit_txn_ids=tuple(w.unit.txn_ids for w in piece.units),
                            start_digest=piece.start_digest,
                            end_digest=result.outcome.end_digest,
                            all_commit=result.outcome.all_commit,
                            outputs=result.outcome.outputs,
                            public_values=result.public_values,
                            proof=result.proof,
                            verification_key=result.verification_key,
                            circuit_signature=result.circuit.structural_hash(),
                            constraints=result.constraints,
                        )
                    )
                    self.last_circuits[piece.piece_index] = (
                        result.circuit,
                        result.verification_key,
                    )
            batch_span.set(pieces=len(pieces), constraints=total_constraints)

        metrics.counter("server.batches").inc()
        metrics.counter("server.pieces").inc(len(pieces))

        # Every measured_* column of the report is a view over the span tree
        # this batch just produced (see DESIGN.md "Observability").
        timing = self._timing(
            cost_model,
            len(txns),
            db_seconds,
            trace_seconds,
            total_constraints,
            prover_tasks,
            measured=measured_fields_from_spans(
                tracer.spans_in(batch_span.root_id), dispatch_start=dispatch_start
            ),
        )
        self.measured_cost_model = cost_model.recalibrated_from_measured(timing)
        return ServerResponse(
            pieces=tuple(piece_results),
            initial_digest=initial_digest,
            final_digest=self.provider.digest,
            timing=timing,
            stats=report.stats,
        )

    # -- the prover worker (runs on the pool) -----------------------------------

    def _prove_piece(
        self,
        piece: WrappedPiece,
        circuit: Circuit,
        txns_by_id: Mapping[int, Transaction],
        batch_span: Span | None = None,
    ) -> _PieceProof:
        """One piece's prover job: replay honestly, set up, prove.

        Runs concurrently with certification of later pieces and with other
        pieces' jobs.  Everything here is a pure function of the piece (its
        certificates carry their own digest chain segment), so execution
        order across workers cannot change any output.

        The worker thread has no span stack of its own, so the dispatching
        batch span is passed explicitly and the ``prove_piece`` span (plus
        its ``replay``/``setup``/``prove`` children) lands in the same tree
        the dispatcher is building.
        """
        tracer = self.tracer
        if self.fault_plan is not None:
            # May raise ProverKilled: the worker dies, the dispatcher sees
            # the exception at collection time, and execute_batch rolls the
            # whole batch back.
            self.fault_plan.on_prove(piece.piece_index)
        with tracer.span(
            "prove_piece", parent=batch_span, piece=piece.piece_index
        ) as piece_span:
            with tracer.span("replay", piece=piece.piece_index):
                outcome = replay_piece(
                    piece,
                    txns_by_id,
                    self.compiler,
                    self.group,
                    self.config.prime_bits,
                    invariants=self.invariants,
                )
            claimed = statement_hash(
                piece.piece_index,
                piece.start_digest,
                outcome.end_digest,
                outcome.all_commit,
                outcome.outputs,
            )
            with tracer.span("setup", piece=piece.piece_index):
                proving_key, verification_key = self._setup.setup(circuit)
            context = {CTX_OUTCOME: outcome, "claimed_statement": claimed}
            with tracer.span("prove", piece=piece.piece_index):
                proof, public_values = self.backend.prove(
                    proving_key,
                    circuit,
                    {"statement_lo": claimed[0], "statement_hi": claimed[1]},
                    context,
                )
            piece_span.set(constraints=circuit.total_constraints)
        return _PieceProof(
            circuit=circuit,
            outcome=outcome,
            verification_key=verification_key,
            proof=proof,
            public_values=tuple(public_values),
            constraints=circuit.total_constraints,
        )

    # -- helpers ---------------------------------------------------------------

    def _make_pieces(
        self, wrapped_units: list[WrappedUnit], initial_digest: int
    ) -> list[WrappedPiece]:
        """Group certified units into pieces (kept for tests/tools; the
        pipeline builds pieces incrementally with the same chaining rule)."""
        pieces: list[WrappedPiece] = []
        start_digest = initial_digest
        size = self.config.batches_per_piece
        for index in range(0, len(wrapped_units), size):
            chunk = tuple(wrapped_units[index : index + size])
            poe_batch = None
            if self.provider.use_poe == POE_MODE_BATCH:
                poe_batch = self.provider.certify_piece_poe(
                    wrapped.read_certificate for wrapped in chunk
                )
            pieces.append(
                WrappedPiece(
                    piece_index=len(pieces),
                    units=chunk,
                    start_digest=start_digest,
                    poe_batch=poe_batch,
                )
            )
            start_digest = _chunk_end_digest(chunk, start_digest)
        return pieces

    def _contention_factor(self, report) -> float:
        """Retry overhead measured from the real CC run (drives Fig 8)."""
        committed = max(1, report.stats.committed)
        return 1.0 + report.stats.aborted_retries / committed

    def _resolve_cost_model(self) -> CostModel:
        if self.cost_model is not None:
            return self.cost_model
        # Calibrate lazily against a compiled representative circuit: use the
        # mean template size of everything compiled so far, else a default.
        templates = getattr(self.compiler, "_cache", {})
        if templates:
            sizes = [t.total_constraints for t in templates.values()]
            representative = max(1, sum(sizes) // len(sizes))
        else:
            representative = 100
        self.cost_model = CostModel.calibrated(representative)
        return self.cost_model

    def _timing(
        self,
        cost_model: CostModel,
        num_txns: int,
        db_seconds: float,
        trace_seconds: float,
        total_constraints: int,
        prover_tasks: list[ProverTask],
        measured: Mapping[str, float] | None = None,
    ) -> TimingReport:
        keygen_total = total_constraints * cost_model.keygen_per_constraint
        prove_total = total_constraints * cost_model.prove_per_constraint
        fixed_total = len(prover_tasks) * cost_model.piece_fixed_seconds
        schedule = schedule_tasks(prover_tasks, self.config.num_provers)
        total = max(db_seconds + trace_seconds, schedule.makespan_seconds)
        mean_completion = schedule.txn_weighted_mean_completion(prover_tasks)
        return TimingReport(
            db_seconds=db_seconds,
            trace_seconds=trace_seconds,
            circuit_seconds=total_constraints * cost_model.circuit_gen_per_constraint,
            keygen_seconds=keygen_total + fixed_total / 2,
            prove_seconds=prove_total + fixed_total / 2,
            verify_seconds=cost_model.verify_seconds,
            output_seconds=cost_model.output_seconds,
            total_seconds=total,
            mean_latency_seconds=mean_completion + cost_model.verify_seconds,
            num_txns=num_txns,
            total_constraints=total_constraints,
            num_pieces=len(prover_tasks),
            proof_bytes=cost_model.proof_bytes_per_prover
            * min(self.config.num_provers, max(1, len(prover_tasks))),
            **(measured or {}),
        )


def _chunk_end_digest(chunk: tuple[WrappedUnit, ...], start_digest: int) -> int:
    """The digest after a chunk: that of its last write, else unchanged.

    A single reverse scan covers every case — including an all-read chunk,
    which leaves the digest where it started (the dead-branch bug fixed in
    this revision special-cased the final unit for no reason).
    """
    for wrapped in reversed(chunk):
        if wrapped.write_certificate is not None:
            return wrapped.write_certificate.new_digest
    return start_digest
