"""The Litmus server (Algorithm 4) with prover pipelining (Section 7.2).

Per verification batch the server:

1. runs the normal DBMS (2PL or deterministic reservation), collecting
   runtime traces and the schedule of units;
2. feeds the schedule through the memory-integrity provider *in serial
   order*, minting aggregated read/write certificates against the digest
   chain;
3. groups units into circuit pieces (``batches_per_piece`` per Fig 2),
   builds each piece's wrapped circuit, replays it honestly, and proves it
   with the configured VC backend;
4. models the wall-clock of the whole pipeline with the calibrated cost
   model and the prover makespan scheduler.

Everything cryptographic is real; only elapsed time is virtual.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ..db.database import Database
from ..db.txn import Transaction
from ..crypto.rsa_group import RSAGroup
from ..errors import ReproError
from ..sim.costmodel import CostModel
from ..sim.scheduler import ProverTask, schedule_tasks
from ..vc.compiler import CircuitCompiler
from ..vc.snark import Groth16Simulator
from ..vc.spotcheck import SpotCheckBackend
from .config import LitmusConfig
from .memory_integrity import MemoryIntegrityProvider
from .protocol import PieceResult, ServerResponse, TimingReport
from .wrapper import (
    CTX_OUTCOME,
    WrappedPiece,
    WrappedUnit,
    build_wrapped_circuit,
    piece_constraints,
    replay_piece,
    statement_hash,
)

__all__ = ["LitmusServer"]


def _make_backend(name: str):
    if name == "groth16":
        return Groth16Simulator()
    if name == "spotcheck":
        return SpotCheckBackend()
    raise ReproError(f"unknown backend {name!r}")


class LitmusServer:
    """Hosts the normal DBMS plus the verifiable machinery."""

    def __init__(
        self,
        initial: Mapping[tuple, int] | None = None,
        config: LitmusConfig | None = None,
        group: RSAGroup | None = None,
        cost_model: CostModel | None = None,
        invariants: tuple = (),
    ):
        self.config = config or LitmusConfig()
        self.group = group or RSAGroup.generate(bits=512, seed=b"litmus-server")
        self.db = Database(
            initial=initial,
            cc=self.config.cc,
            processing_batch_size=self.config.processing_batch_size,
            num_threads=self.config.num_db_threads,
        )
        self.provider = MemoryIntegrityProvider(
            self.group,
            initial=initial,
            prime_bits=self.config.prime_bits,
            use_poe=self.config.use_poe,
        )
        self.compiler = CircuitCompiler()
        self.backend = _make_backend(self.config.backend)
        self.cost_model = cost_model
        self.invariants = tuple(invariants)
        # Exposed so the client can fetch circuits for spot-check verification.
        self.last_circuits: dict[int, object] = {}

    @property
    def digest(self) -> int:
        """The server's view of the current database digest."""
        return self.provider.digest

    # -- the main entry point (MSG_TXN handler) ---------------------------------

    def execute_batch(self, txns: Sequence[Transaction]) -> ServerResponse:
        if not txns:
            raise ReproError("empty verification batch")
        txns_by_id = {txn.txn_id: txn for txn in txns}
        if len(txns_by_id) != len(txns):
            raise ReproError("duplicate transaction ids in the batch")

        initial_digest = self.provider.digest
        report = self.db.run(txns)

        # Certify the schedule against the digest chain, unit by unit.
        wrapped_units: list[WrappedUnit] = []
        for unit in report.schedule:
            read_cert = (
                self.provider.certify_reads(dict(unit.reads)) if unit.reads else None
            )
            write_cert = (
                self.provider.apply_writes(dict(unit.writes)) if unit.writes else None
            )
            wrapped_units.append(
                WrappedUnit(unit=unit, read_certificate=read_cert, write_certificate=write_cert)
            )

        # Group units into circuit pieces and prove each one.
        pieces = self._make_pieces(wrapped_units, initial_digest)
        cost_model = self._resolve_cost_model()
        piece_results: list[PieceResult] = []
        self.last_circuits.clear()
        total_constraints = 0
        prover_tasks: list[ProverTask] = []
        release = 0.0
        db_seconds = cost_model.db_seconds(
            len(txns), self.config.cc, contention_factor=self._contention_factor(report)
        )
        trace_seconds = cost_model.trace_seconds(
            report.stats.reads + report.stats.writes,
            table_doublings=self.config.table_doublings,
        )
        serial_per_piece = (db_seconds + trace_seconds) / max(1, len(pieces))

        for piece in pieces:
            circuit = build_wrapped_circuit(
                piece,
                txns_by_id,
                self.compiler,
                self.group,
                self.config.prime_bits,
                self.config.memcheck_constraints,
                aggregated=self.config.aggregation_enabled,
                invariants=self.invariants,
            )
            outcome = replay_piece(
                piece,
                txns_by_id,
                self.compiler,
                self.group,
                self.config.prime_bits,
                invariants=self.invariants,
            )
            claimed = statement_hash(
                piece.piece_index,
                piece.start_digest,
                outcome.end_digest,
                outcome.all_commit,
                outcome.outputs,
            )
            proving_key, verification_key = self.backend.setup(circuit)
            context = {CTX_OUTCOME: outcome, "claimed_statement": claimed}
            proof, public_values = self.backend.prove(
                proving_key,
                circuit,
                {"statement_lo": claimed[0], "statement_hi": claimed[1]},
                context,
            )
            constraints = circuit.total_constraints
            total_constraints += constraints
            release += serial_per_piece
            prover_tasks.append(
                ProverTask(
                    cost_seconds=cost_model.piece_seconds(constraints),
                    release_seconds=release,
                    txn_count=len(piece.txn_ids()),
                )
            )
            piece_results.append(
                PieceResult(
                    piece_index=piece.piece_index,
                    txn_ids=piece.txn_ids(),
                    unit_txn_ids=tuple(w.unit.txn_ids for w in piece.units),
                    start_digest=piece.start_digest,
                    end_digest=outcome.end_digest,
                    all_commit=outcome.all_commit,
                    outputs=outcome.outputs,
                    public_values=tuple(public_values),
                    proof=proof,
                    verification_key=verification_key,
                    circuit_signature=circuit.structural_hash(),
                    constraints=constraints,
                )
            )
            self.last_circuits[piece.piece_index] = (circuit, verification_key)

        timing = self._timing(
            cost_model, len(txns), db_seconds, trace_seconds, total_constraints, prover_tasks
        )
        return ServerResponse(
            pieces=tuple(piece_results),
            initial_digest=initial_digest,
            final_digest=self.provider.digest,
            timing=timing,
            stats=report.stats,
        )

    # -- helpers ---------------------------------------------------------------

    def _make_pieces(
        self, wrapped_units: list[WrappedUnit], initial_digest: int
    ) -> list[WrappedPiece]:
        pieces: list[WrappedPiece] = []
        start_digest = initial_digest
        size = self.config.batches_per_piece
        for index in range(0, len(wrapped_units), size):
            chunk = tuple(wrapped_units[index : index + size])
            pieces.append(
                WrappedPiece(
                    piece_index=len(pieces), units=chunk, start_digest=start_digest
                )
            )
            last = chunk[-1]
            if last.write_certificate is not None:
                start_digest = last.write_certificate.new_digest
            else:
                for wrapped in reversed(chunk):
                    if wrapped.write_certificate is not None:
                        start_digest = wrapped.write_certificate.new_digest
                        break
        return pieces

    def _contention_factor(self, report) -> float:
        """Retry overhead measured from the real CC run (drives Fig 8)."""
        committed = max(1, report.stats.committed)
        return 1.0 + report.stats.aborted_retries / committed

    def _resolve_cost_model(self) -> CostModel:
        if self.cost_model is not None:
            return self.cost_model
        # Calibrate lazily against a compiled representative circuit: use the
        # mean template size of everything compiled so far, else a default.
        templates = getattr(self.compiler, "_cache", {})
        if templates:
            sizes = [t.total_constraints for t in templates.values()]
            representative = max(1, sum(sizes) // len(sizes))
        else:
            representative = 100
        self.cost_model = CostModel.calibrated(representative)
        return self.cost_model

    def _timing(
        self,
        cost_model: CostModel,
        num_txns: int,
        db_seconds: float,
        trace_seconds: float,
        total_constraints: int,
        prover_tasks: list[ProverTask],
    ) -> TimingReport:
        keygen_total = total_constraints * cost_model.keygen_per_constraint
        prove_total = total_constraints * cost_model.prove_per_constraint
        fixed_total = len(prover_tasks) * cost_model.piece_fixed_seconds
        schedule = schedule_tasks(prover_tasks, self.config.num_provers)
        total = max(db_seconds + trace_seconds, schedule.makespan_seconds)
        mean_completion = schedule.txn_weighted_mean_completion(prover_tasks)
        return TimingReport(
            db_seconds=db_seconds,
            trace_seconds=trace_seconds,
            circuit_seconds=total_constraints * cost_model.circuit_gen_per_constraint,
            keygen_seconds=keygen_total + fixed_total / 2,
            prove_seconds=prove_total + fixed_total / 2,
            verify_seconds=cost_model.verify_seconds,
            output_seconds=cost_model.output_seconds,
            total_seconds=total,
            mean_latency_seconds=mean_completion + cost_model.verify_seconds,
            num_txns=num_txns,
            total_constraints=total_constraints,
            proof_bytes=cost_model.proof_bytes_per_prover
            * min(self.config.num_provers, max(1, len(prover_tasks))),
        )
