"""Exception hierarchy for the Litmus reproduction.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while still
being able to distinguish protocol violations (a *detected attack*) from
programming errors (misuse of the API).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class CryptoError(ReproError):
    """A cryptographic primitive was used incorrectly or failed internally."""


class PrimalityError(CryptoError):
    """A value that was required to be prime is not prime."""


class CertificateError(CryptoError):
    """A Pocklington primality certificate failed verification."""


class CategoryError(CryptoError):
    """A prime does not belong to the claimed prime category."""


class ProofError(CryptoError):
    """A cryptographic proof failed to verify.

    Raised by verifiers when a lookup proof, non-membership proof,
    proof-of-exponentiation, or VC proof does not check out.  In the threat
    model of the paper this signals a malicious or faulty server.
    """


class ConstraintViolation(ReproError):
    """A circuit witness does not satisfy the constraint system.

    The simulated SNARK prover refuses to produce a proof for an unsatisfied
    statement; this is the simulation-level analogue of SNARK soundness.
    """


class CircuitMismatch(ReproError):
    """The server-supplied circuit does not match the client's local circuits."""


class IntegrityError(ReproError):
    """A memory-integrity check failed: the server returned tampered data."""


class TransactionError(ReproError):
    """A transaction was malformed or used the execution context illegally."""


class ConcurrencyError(ReproError):
    """The concurrency-control layer reached an invalid state."""


class WorkloadError(ReproError):
    """A workload generator received inconsistent parameters."""


class VerificationFailure(ReproError):
    """The client rejected a server response (proof or digest chain invalid)."""
