"""Exception hierarchy for the Litmus reproduction.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while still
being able to distinguish protocol violations (a *detected attack*) from
programming errors (misuse of the API).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class CryptoError(ReproError):
    """A cryptographic primitive was used incorrectly or failed internally."""


class PrimalityError(CryptoError):
    """A value that was required to be prime is not prime."""


class CertificateError(CryptoError):
    """A Pocklington primality certificate failed verification."""


class CategoryError(CryptoError):
    """A prime does not belong to the claimed prime category."""


class ProofError(CryptoError):
    """A cryptographic proof failed to verify.

    Raised by verifiers when a lookup proof, non-membership proof,
    proof-of-exponentiation, or VC proof does not check out.  In the threat
    model of the paper this signals a malicious or faulty server.
    """


class ConstraintViolation(ReproError):
    """A circuit witness does not satisfy the constraint system.

    The simulated SNARK prover refuses to produce a proof for an unsatisfied
    statement; this is the simulation-level analogue of SNARK soundness.
    """


class CircuitMismatch(ReproError):
    """The server-supplied circuit does not match the client's local circuits."""


class IntegrityError(ReproError):
    """A memory-integrity check failed: the server returned tampered data."""


class TransactionError(ReproError):
    """A transaction was malformed or used the execution context illegally."""


class ConcurrencyError(ReproError):
    """The concurrency-control layer reached an invalid state."""


class WorkloadError(ReproError):
    """A workload generator received inconsistent parameters."""


class VerificationFailure(ReproError):
    """The client rejected a server response (proof or digest chain invalid)."""


class CommandLogError(ReproError):
    """A command log could not be decoded (truncated, corrupt, or foreign).

    The command log is a recovery-critical artifact — ``resync()`` replays
    it to re-derive a trusted digest — so decoding failures must be typed
    and catchable rather than leaking ``zlib.error`` / ``KeyError`` /
    ``json.JSONDecodeError`` from the codec internals.
    """


class WalError(ReproError):
    """The durable write-ahead log is malformed or was misused.

    Covers unreadable segment framing, sequence-number gaps that survive
    the torn-tail truncation pass, and opening a directory that already
    holds durable state without going through ``LitmusSession.recover``.
    """


class DurabilityError(WalError):
    """The storage layer could not make a write durable — and said so.

    Raised by the WAL / checkpoint / intent-journal writers when the
    filesystem refuses an operation in a way retrying cannot honestly fix:
    a failed ``fsync`` (after which the kernel may have dropped the dirty
    pages *and cleared the error* — the fsyncgate lesson, so re-running
    fsync and believing its success would acknowledge data that never
    reached the platter), an ``ENOSPC``/``EIO`` write that a rescue
    rotation could not absorb, or a failed checkpoint rename.  The failing
    handle is *poisoned*: every later append through it raises this same
    error instead of pretending.

    Always raised **before** any user ticket resolves, so an acknowledged
    batch is never behind a lying disk.  Like
    :class:`SimulatedCrash`, this is session-fatal: callers must abandon
    the session object and drive ``recover()`` against the directory —
    which treats the never-synced tail as untrusted and truncates it.
    """

    def __init__(self, message: str, *, op: str = "", path: str = ""):
        super().__init__(message)
        self.op = op
        self.path = path


class CheckpointError(WalError):
    """No valid checkpoint could be loaded from a durability directory.

    Either the directory holds no checkpoint files at all, or every
    candidate failed validation (bad format tag, checksum mismatch,
    undecodable contents).  A checkpoint that validates structurally but
    whose *contents* disagree with the verified digest raises
    :class:`ServerDesyncError` instead — that distinction matters, because
    a checksum failure means storage corruption while a digest failure
    means the durable history itself diverged.
    """


class RecoveryError(ReproError):
    """Restart recovery of a sharded deployment failed in a typed way.

    Raised by :meth:`repro.core.sharding.ShardedSession.recover` when the
    durable layout is unusable (a ``shard-NN`` directory is missing or
    renamed, or the cross-shard intent journal names more shards than the
    directory holds), when a shard's replay dies with an untyped internal
    error (wrapped here, naming the shard), or when in-doubt cross-shard
    resolution cannot reconcile a participant's digest with the journaled
    watermark.  Always carries enough context to name the offending shard.
    """


class FaultInjected(ReproError):
    """Base class for failures raised *by* the fault-injection layer.

    These model infrastructure misbehavior (a crashed prover worker, a
    dropped message), not detected attacks: the recovery machinery is
    expected to absorb them via rollback + retry.
    """


class ProverKilled(FaultInjected):
    """A fault plan killed a prover-pool worker mid-batch."""


class MessageDropped(FaultInjected):
    """The (simulated) network dropped a client/server message."""


class SimulatedCrash(FaultInjected):
    """A :class:`repro.faults.CrashPoint` simulated process death.

    Deliberately never caught by the library: it must propagate out of
    ``flush()`` exactly like a real crash would end the process, leaving
    whatever the durability layer already made it to disk.  Tests (and the
    ``--recover`` CLI demo) catch it at top level, abandon the session
    object, and drive ``LitmusSession.recover`` against the directory.
    """


class ProofCorruptionDetected(ReproError):
    """The server's proving pipeline failed to produce a sound batch proof.

    Raised by :meth:`repro.core.server.LitmusServer.execute_batch` after it
    has rolled its own state back to the pre-batch snapshot — e.g. when a
    prover worker died mid-batch.  The batch had no effect; callers may
    retry it.
    """


class ServerDesyncError(ReproError):
    """Client and server digests cannot be reconciled by ``resync()``.

    Replaying the trusted command log from the last verified checkpoint
    produced a digest that still disagrees with the client's — the server's
    durable state (not just its in-memory digest) has diverged from the
    verified history, which recovery cannot paper over.
    """


class RetryExhausted(ReproError):
    """``LitmusSession.flush`` gave up after ``RetryPolicy.max_attempts``.

    Carries the last rejection reason as ``args[0]``; the attempt count is
    available as the ``attempts`` attribute.
    """

    def __init__(self, reason: str, attempts: int):
        super().__init__(reason)
        self.attempts = attempts


class DeadlineExceeded(ReproError):
    """A per-request deadline expired before the work could be acknowledged.

    Raised client-side when the response did not arrive within the caller's
    timeout, and server-side when :meth:`repro.core.session.LitmusSession.flush`
    finds the propagated deadline already expired at a stage boundary.  In
    the server-side case the session has *cancelled* the round: the server
    was rolled back to the last client-verified state and the un-acknowledged
    transactions were re-queued, so nothing is lost and nothing desyncs —
    a later flush (or a retry with a longer deadline) picks them up.
    """


class NetworkError(ReproError):
    """Base class for the client/server transport layer (:mod:`repro.net`).

    Everything that can go wrong *between* the session and its caller when
    they are separated by a socket derives from here, so applications can
    separate "the network misbehaved" (retryable) from "verification
    failed" (an attack) with two except clauses.
    """


class WireFormatError(NetworkError):
    """A frame on the wire is malformed or speaks an incompatible version.

    Covers bad magic, unknown protocol versions, oversized or truncated
    length prefixes, CRC mismatches, and undecodable payloads.  The framing
    layer treats these as fatal for the connection — after a framing error
    the stream offset can no longer be trusted.
    """


class ConnectionLost(NetworkError):
    """The peer closed (or the transport tore down) mid-conversation.

    Retryable: the client reconnects and uses the idempotent resolve path
    to find out what the server actually committed before re-sending.
    """


class Overloaded(NetworkError):
    """The server shed this request because its admission queue is full.

    Carries ``retry_after`` — the server's own estimate (seconds) of when
    capacity will free up, derived from the live queue depth and a moving
    average of recent service times.  :class:`repro.core.session.RetryPolicy`
    honors the hint: the retry delay becomes ``max(hint, backoff)``.
    """

    def __init__(self, message: str, retry_after: float = 0.0):
        super().__init__(message)
        self.retry_after = retry_after


class ServiceUnavailable(NetworkError):
    """The server refused new work because it is draining for shutdown.

    Unlike :class:`Overloaded` this is not a capacity signal — the server
    is going away.  ``retry_after`` hints how long a restart supervisor
    typically needs; clients should reconnect, not hammer.
    """

    def __init__(self, message: str, retry_after: float = 1.0):
        super().__init__(message)
        self.retry_after = retry_after


class RemoteError(NetworkError):
    """The server answered with a typed application error.

    Carries the wire error ``code`` (``"unknown_program"``,
    ``"bad_request"``, ``"internal"``, ...) so callers can branch without
    string-matching the human-readable message.
    """

    def __init__(self, message: str, code: str = "internal"):
        super().__init__(message)
        self.code = code


class ClientAPIError(ReproError):
    """Misuse of the client-facing session surface (tickets, batches).

    The consolidated root for everything :class:`repro.core.session`
    raises, so applications embedding Litmus can separate "I used the API
    wrong" (:class:`ClientAPIError`) from "the server misbehaved"
    (:class:`VerificationFailure`) with two except clauses.
    """


class TicketUnresolvedError(ClientAPIError):
    """A :class:`~repro.core.session.UserTicket` was read before its batch
    flushed; call ``session.flush()`` first."""


class BatchRejectedError(ClientAPIError):
    """Outputs were requested from a ticket whose batch failed verification.

    Carries the client's rejection reason as ``args[0]``; the paper's threat
    model treats this as a detected server attack, not a user error, so it
    is deliberately loud rather than a sentinel value.
    """


class BenchError(ReproError):
    """Base class for the experiment orchestrator (:mod:`repro.bench.experiment`).

    Everything the trial runner, result schema, trajectory store, and perf
    gate raise derives from this, so the CLI can turn any orchestration
    failure into a one-line diagnosis with a single except clause.
    """


class TrialSpecError(BenchError):
    """A trial declaration is invalid: malformed name, conflicting
    re-registration of an existing trial under different parameters, or a
    lookup of a trial/area that was never registered."""


class TrialExecutionError(BenchError):
    """A trial runner failed while being executed by the orchestrator.

    Wraps whatever the underlying benchmark raised so callers see a typed
    bench-layer error with the trial name, not a bare assertion from three
    layers down.
    """


class TrialTimeout(TrialExecutionError):
    """A trial exceeded its :attr:`TrialSpec.timeout_seconds` budget."""


class TrialNondeterminism(TrialExecutionError):
    """Repeated executions of one seeded trial disagreed on the
    deterministic counters (txns, batches, conflicts, ...).

    The counts of a seeded trial are part of its identity hash; if they
    wander between repeats the trajectory would be meaningless, so the
    runner refuses to record anything.
    """


class BenchSchemaError(BenchError):
    """A trial record violates the versioned result schema: missing or
    unknown fields, wrong types, a headline metric that does not exist, or
    an identity hash that no longer matches the deterministic fields."""


class SchemaVersionError(BenchSchemaError):
    """A record or trajectory carries a different ``schema_version`` than
    this code understands.  Carries ``found`` and ``expected`` attributes
    so tooling can say which side is stale."""

    def __init__(self, message: str, *, found: object, expected: int):
        super().__init__(message)
        self.found = found
        self.expected = expected


class TrajectoryError(BenchError):
    """A ``BENCH_<area>.json`` trajectory file is unreadable or corrupt.

    All the raw failure modes underneath (``json.JSONDecodeError``,
    ``KeyError``, ``TypeError``, ``OSError``) are wrapped so callers never
    see an untyped internal error from a damaged trajectory.
    """
