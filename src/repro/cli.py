"""Command-line interface: regenerate paper experiments from the terminal.

Usage::

    python -m repro fig3 [--scale N]
    python -m repro fig4 | fig5 | fig6 | fig7 | fig8 | fig9
    python -m repro constants
    python -m repro elle
    python -m repro all [--scale N]

Each command prints the corresponding paper figure/table; ``all`` runs the
whole evaluation section (this is what EXPERIMENTS.md is built from).

Every command additionally accepts the observability flag pair::

    python -m repro fig6 --metrics-out metrics.jsonl --trace-out trace.jsonl

``--metrics-out`` writes the process-local metrics registry (cache hit
rates, SNARK counters, db commit/abort totals, ...) as JSON lines after the
command ran; ``--trace-out`` writes every finished span of the run.  Both
files follow the format of :mod:`repro.obs.exporters` and are validated in
CI by ``benchmarks/check_metrics_schema.py``.

The orchestrated benchmark matrix (DESIGN.md §13)::

    python -m repro --bench [--area pipeline ...] [--bless]
    python -m repro --bench --list-trials
    python -m repro --bench-gate [--gate-mode report|enforce]

``--bench`` discovers every registered ``benchmarks/bench_*.py`` trial
(:mod:`repro.bench.experiment`), runs the selected areas with fixed seeds
and per-trial timeouts, writes the legacy ``benchmarks/results/*.txt``
report and the JSON trial record from the same rows, and appends one entry
per area to the repo-root ``BENCH_<area>.json`` trajectory.  ``--bless``
marks the appended entries as the pinned gate baseline (how an intentional
regression is accepted).  ``--bench-gate`` compares the newest entry of
each trajectory against its baseline (:mod:`repro.bench.gate`) and, in
enforcing mode, exits 1 with a diff report on a >15% headline throughput
drop or a >20% headline latency rise.

The adversarial demo runs the rejected-batch recovery story end-to-end::

    python -m repro --faults [--fault-kind corrupt_proof] [--seed 7]

It injects one fault into a real verification round (via
:mod:`repro.faults`), shows the client rejecting, the server rolling back,
``resync()`` re-deriving the trusted digest, and the retried batch
verifying — exiting non-zero if any of that fails to happen.

The crash-recovery demo does the same for the durability layer::

    python -m repro --recover /tmp/litmus-crash-demo [--seed 7]

Pointed at an *empty* directory it runs a durable session into an
injected mid-run crash (:class:`~repro.faults.CrashPoint`), tears the WAL
tail (:class:`~repro.faults.TornWrite`), then restarts via
``LitmusSession.recover`` and prints the digest cross-check — exiting
non-zero unless every acknowledged batch survived and the rebuilt digest
matches the journaled one.  Pointed at a *non-empty* directory it
attempts a real recovery of that deployment and prints the report; a
missing directory or an unrecoverable (corrupt) one exits non-zero with
a one-line diagnosis, never a traceback.

The scrubber audits a durability directory proactively::

    python -m repro --scrub /var/lib/litmus [--audit-only]

It re-verifies every checkpoint checksum (primary *and* mirror) and every
sealed segment's CRC framing (:mod:`repro.db.scrub`), repairs rotted
checkpoints from their healthy twins, quarantines doubly-damaged pairs,
and exits 1 when unrepaired damage remains — the signal to schedule a
restart so recovery can truncate it.

The nemesis chaos demo composes crashes, WAL corruption and retryable
faults into one seeded schedule against a durable *sharded* deployment
(:mod:`repro.faults.nemesis`), recovering after every kill and checking
the ACID invariants — exiting non-zero on any violation::

    python -m repro --chaos [--seed 7] [--shards 3]

The networked deployment (DESIGN.md §12)::

    python -m repro --serve 127.0.0.1:7433 [--data-dir DIR] [--shards S]
    python -m repro --connect 127.0.0.1:7433

``--serve`` runs a :class:`~repro.net.LitmusService` (WAL-backed when
``--data-dir`` is given) until SIGTERM/SIGINT, then drains gracefully:
in-flight batches finish and ack through the WAL, new work is refused,
the final checkpoint is fsynced.  ``--shards S`` (S > 1) partitions the
keyspace across S independently verified engines behind one
:class:`~repro.core.ShardedSession` — same wire protocol, per-shard WAL
directories under ``DIR/shard-NN/``, and a per-shard digest vector in
every response.  ``--connect`` is the client quickstart:
it submits a handful of bank transfers through a
:class:`~repro.net.RemoteSession` with a retry policy and prints the
verified result.  A port already in use or an unreachable server is a
clean one-line error, not a traceback.
"""

from __future__ import annotations

import argparse
import sys

from .obs import JsonLinesExporter, get_metrics, get_tracer

from .bench import (
    elle_comparison,
    fig3_ycsb_throughput_latency,
    fig4_tpcc_throughput,
    fig5_processing_batch,
    fig6_prover_threads,
    fig7_time_breakdown,
    fig8_contention,
    fig9_table_size,
    format_series,
    format_table,
    reference_constants,
)

__all__ = ["main"]


def _fig3(scale: int) -> str:
    rows = fig3_ycsb_throughput_latency(
        batch_sizes=(320, 5_120, 81_920, 1_310_720, 2_621_440), scale=scale
    )
    return (
        "Figure 3a — YCSB throughput (txn/s) vs verification batch size\n"
        + format_series(rows, x="batch_size", y="throughput")
        + "\n\nFigure 3b — YCSB mean latency (s) vs verification batch size\n"
        + format_series(rows, x="batch_size", y="latency")
    )


def _fig4(scale: int) -> str:
    rows = fig4_tpcc_throughput(batch_sizes=(320, 5_120, 81_920), scale=max(150, scale // 4))
    new_order = [r for r in rows if r["transaction"] == "new_order"]
    payment = [r for r in rows if r["transaction"] == "payment"]
    return (
        "Figure 4a — TPC-C New Order throughput (txn/s)\n"
        + format_series(new_order, x="batch_size", y="throughput")
        + "\n\nFigure 4b — TPC-C Payment throughput (txn/s)\n"
        + format_series(payment, x="batch_size", y="throughput")
    )


def _fig5(scale: int) -> str:
    rows = fig5_processing_batch(
        processing_batch_sizes=(32, 3_200, 320_000, 1_000_000),
        num_txns=1_310_720,
        scale=scale,
    )
    return (
        "Figure 5a — throughput (txn/s) vs DR processing batch size\n"
        + format_series(rows, x="processing_batch", y="throughput")
        + "\n\nFigure 5b — latency (s) vs DR processing batch size\n"
        + format_series(rows, x="processing_batch", y="latency")
    )


def _fig6(scale: int) -> str:
    rows = fig6_prover_threads(scale=scale)
    return "Figure 6 — Litmus-DRM vs prover threads\n" + format_table(rows)


def _fig7(scale: int) -> str:
    rows = fig7_time_breakdown(scale=scale)
    return "Figure 7 — time breakdown (shares) vs prover threads\n" + format_table(rows)


def _fig8(scale: int) -> str:
    rows = fig8_contention(
        thetas=(0.0, 0.4, 0.8, 1.2, 1.6), num_txns=163_840, scale=scale
    )
    return "Figure 8 — throughput (txn/s) vs Zipfian theta\n" + format_series(
        rows, x="theta", y="throughput"
    )


def _fig9(scale: int) -> str:
    rows = fig9_table_size(scale=scale)
    return "Figure 9 — Litmus-DRM throughput vs table size\n" + format_table(rows)


def _constants(scale: int) -> str:
    ref = reference_constants(scale=scale)
    rows = [
        {"metric": name, "ours": entry.get("ours", ""), "paper": entry.get("paper", "")}
        for name, entry in ref.items()
        if isinstance(entry, dict) and "ours" in entry
    ]
    return "Section 8 constants — paper vs reproduction\n" + format_table(rows)


def _elle(scale: int) -> str:
    result = elle_comparison(scale=max(500, scale))
    rows = [{"metric": key, "value": value} for key, value in result.items()]
    return "Section 8.3 — Elle vs Litmus\n" + format_table(rows)


_COMMANDS = {
    "fig3": _fig3,
    "fig4": _fig4,
    "fig5": _fig5,
    "fig6": _fig6,
    "fig7": _fig7,
    "fig8": _fig8,
    "fig9": _fig9,
    "constants": _constants,
    "elle": _elle,
}

_FAULT_KINDS = (
    "corrupt_proof",
    "tamper_statement",
    "tamper_digest",
    "drop_piece",
    "reorder_pieces",
    "bitflip_witness",
    "kill_prover",
    "drop_message",
)


def _demo_transfer():
    """The bank-transfer stored procedure both demos run."""
    from .vc.program import (
        Add,
        Emit,
        KeyTemplate,
        Param,
        Program,
        ReadStmt,
        ReadVal,
        Sub,
        WriteStmt,
    )

    return Program(
        name="transfer",
        params=("src", "dst", "amount"),
        statements=(
            ReadStmt("s", KeyTemplate(("acct", Param("src")))),
            ReadStmt("d", KeyTemplate(("acct", Param("dst")))),
            WriteStmt(
                KeyTemplate(("acct", Param("src"))),
                Sub(ReadVal("s"), Param("amount")),
            ),
            WriteStmt(
                KeyTemplate(("acct", Param("dst"))),
                Add(ReadVal("d"), Param("amount")),
            ),
            Emit(Add(ReadVal("s"), ReadVal("d"))),
        ),
    )


_DEMO_CONFIG = dict(
    cc="dr", processing_batch_size=2, batches_per_piece=2, prime_bits=64
)


def _faults_demo(kind: str, seed: int) -> tuple[str, bool]:
    """One scripted adversarial run; returns (transcript, recovered)."""
    from .core import LitmusConfig, LitmusSession, RetryPolicy
    from .crypto.rsa_group import default_group
    from .faults import (
        BitFlipWitness,
        CorruptProofPiece,
        DropMessage,
        DropPiece,
        FaultPlan,
        KillProver,
        ReorderPieces,
        TamperEndDigest,
        TamperPublicStatement,
    )

    transfer = _demo_transfer()
    injectors = {
        "corrupt_proof": lambda: CorruptProofPiece(piece=0),
        "tamper_statement": lambda: TamperPublicStatement(piece=0),
        "tamper_digest": lambda: TamperEndDigest(piece=0),
        "drop_piece": lambda: DropPiece(piece=0),
        "reorder_pieces": lambda: ReorderPieces(),
        "bitflip_witness": lambda: BitFlipWitness(unit=0, which="write"),
        "kill_prover": lambda: KillProver(piece=0),
        "drop_message": lambda: DropMessage(direction="response"),
    }
    plan = FaultPlan(injectors[kind](), seed=seed)
    session = LitmusSession.create(
        initial={("acct", i): 100 for i in range(8)},
        config=LitmusConfig(**_DEMO_CONFIG),
        group=default_group(bits=512),
        retry_policy=RetryPolicy(max_attempts=3, backoff=0.0),
        fault_plan=plan,
    )
    for i in range(6):
        session.submit(f"user{i % 3}", transfer, src=i, dst=(i + 1) % 8, amount=5)
    digest_before = session.digest
    result = session.flush()

    lines = [f"Adversarial run — fault kind {kind!r}, seed {seed}"]
    for event in plan.events:
        lines.append(f"  injected : {event.kind} at {event.stage} ({event.target})")
    if not plan.events:
        lines.append("  injected : nothing fired (fault target absent in this run)")
    lines.append(
        f"  detection: client rejected {session.batches_rejected} round(s); "
        f"server rolled back, {session.resyncs} resync(s) re-derived the digest"
    )
    agree = session.digest == session.server.digest
    lines.append(
        f"  recovery : batch {'ACCEPTED' if result.accepted else 'REJECTED'} "
        f"after {result.attempts} attempt(s)"
    )
    lines.append(
        f"  digests  : client {session.digest:#x}"
        f" {'==' if agree else '!='} server {session.server.digest:#x}"
        f" (moved from {digest_before:#x})"
    )
    balance = sum(session.server.db.get(("acct", i)) for i in range(8))
    lines.append(f"  oracle   : total balance conserved: {balance == 800}")
    recovered = bool(
        result.accepted and agree and plan.injected >= 1 and balance == 800
    )
    lines.append(f"  verdict  : {'RECOVERED' if recovered else 'FAILED'}")
    return "\n".join(lines), recovered


def _recover_cmd(directory: str, seed: int) -> tuple[str, int]:
    """Dispatch ``--recover``: demo on an empty dir, real recovery otherwise.

    Failure paths are first-class: a missing directory exits 2 and an
    unrecoverable (corrupt or foreign) one exits 1, each with a one-line
    diagnosis instead of a traceback.
    """
    import os

    if not os.path.isdir(directory):
        return (
            f"error: --recover directory {directory!r} does not exist; "
            "create an empty directory for the crash demo, or point at an "
            "existing durable deployment",
            2,
        )
    if os.listdir(directory):
        return _recover_existing(directory)
    transcript, recovered = _recover_demo(directory, seed)
    return transcript, 0 if recovered else 1


def _recover_existing(directory: str) -> tuple[str, int]:
    """Real recovery of a non-empty durability directory; report or fail."""
    from .core import LitmusSession
    from .errors import ReproError

    try:
        session = LitmusSession.recover(directory, [_demo_transfer()])
    except ReproError as exc:
        return (
            f"error: recovery from {directory!r} failed: {exc}",
            1,
        )
    except OSError as exc:
        return (f"error: cannot read {directory!r}: {exc}", 1)
    report = session.recovery_report
    session.close()
    lines = [
        f"Recovered durable deployment at {directory!r}",
        f"  checkpoint : seq {report.checkpoint_seq}",
        f"  replayed   : {report.replayed_batches} batch(es) "
        f"(tip seq {report.last_seq})",
        f"  repaired   : {report.truncations} torn tail(s), "
        f"{report.truncated_bytes} byte(s), "
        f"{report.dropped_segments} dropped segment(s)",
        f"  digest     : {report.digest:#x}",
        f"  duration   : {report.duration_seconds:.3f}s",
    ]
    return "\n".join(lines), 0


def _scrub_cmd(directory: str, repair: bool = True) -> tuple[str, int]:
    """Dispatch ``--scrub``: verify (and repair) a durability directory.

    Exit codes mirror ``--recover``: 2 for a missing directory, 1 when
    damage remains in place after the pass (an unrepairable checkpoint
    pair, segment/journal corruption that recovery must truncate), 0 for
    a clean or fully healed directory.
    """
    import os

    from .db.scrub import scrub_directory

    if not os.path.isdir(directory):
        return (
            f"error: --scrub directory {directory!r} does not exist; "
            "point at a durable deployment's directory",
            2,
        )
    report = scrub_directory(directory, repair=repair)
    lines = [
        f"Scrubbed durability directory {directory!r}"
        + ("" if repair else " (audit only)"),
        f"  {report.summary()}",
    ]
    for finding in report.findings:
        lines.append(
            f"  [{finding.action}] {finding.kind} "
            f"{os.path.basename(finding.path)}: {finding.problem}"
        )
    return "\n".join(lines), 0 if report.ok else 1


def _recover_demo(directory: str, seed: int) -> tuple[str, bool]:
    """Crash a durable run mid-flight, tear the WAL, restart, recover."""
    from .core import DurabilityConfig, LitmusConfig, LitmusSession
    from .crypto.rsa_group import default_group
    from .errors import SimulatedCrash
    from .faults import CrashPoint, FaultPlan, TornWrite

    transfer = _demo_transfer()
    group = default_group(bits=512)
    lines = [f"Crash-recovery run — directory {directory!r}, seed {seed}"]

    # Phase 1: a durable deployment that dies mid-run.  The crash fires at
    # the after-log stage of the third batch: its record is on the platter,
    # the acknowledgement never happens.
    plan = FaultPlan(CrashPoint("after-log", skip=2), seed=seed)
    session = LitmusSession.create(
        initial={("acct", i): 100 for i in range(8)},
        config=LitmusConfig(**_DEMO_CONFIG),
        group=group,
        fault_plan=plan,
        durability=DurabilityConfig(directory=directory),
        checkpoint_every=2,
    )
    acked_digests: list[int] = []
    try:
        for i in range(6):
            session.submit(f"user{i % 3}", transfer, src=i, dst=(i + 1) % 8, amount=5)
            assert session.flush().accepted
            acked_digests.append(session.digest)
    except SimulatedCrash as exc:
        lines.append(f"  crash    : {exc}")
    else:
        return "\n".join(lines + ["  crash    : never fired — FAILED"]), False
    lines.append(f"  acked    : {len(acked_digests)} batch(es) acknowledged pre-crash")

    # Phase 2: the crash left a partial record behind (torn write).
    lines.append(f"  damage   : {TornWrite().apply(directory)}")

    # Phase 3: a fresh process recovers from the directory alone.
    recovered_session = LitmusSession.recover(directory, [transfer], group=group)
    report = recovered_session.recovery_report
    lines.append(
        f"  recovery : checkpoint seq {report.checkpoint_seq}, replayed "
        f"{report.replayed_batches} batch(es), repaired {report.truncations} "
        f"torn tail(s) ({report.truncated_bytes} bytes) in "
        f"{report.duration_seconds:.3f}s"
    )
    digest_ok = (
        not acked_digests or acked_digests[-1] == recovered_session.digest
    )
    lines.append(
        f"  digests  : rebuilt {recovered_session.digest:#x} "
        f"{'==' if digest_ok else '!='} last acknowledged "
        f"{(acked_digests[-1] if acked_digests else recovered_session.digest):#x}"
    )

    # Phase 4: liveness — the recovered deployment keeps verifying.
    recovered_session.submit("user0", transfer, src=0, dst=1, amount=5)
    liveness = recovered_session.flush().accepted
    balance = sum(recovered_session.server.db.get(("acct", i)) for i in range(8))
    recovered_session.close()
    lines.append(f"  liveness : post-recovery batch {'ACCEPTED' if liveness else 'REJECTED'}")
    lines.append(f"  oracle   : total balance conserved: {balance == 800}")
    verdict = bool(digest_ok and liveness and balance == 800 and acked_digests)
    lines.append(f"  verdict  : {'RECOVERED' if verdict else 'FAILED'}")
    return "\n".join(lines), verdict


def _chaos_demo(seed: int, shards: int) -> tuple[str, int]:
    """One seeded nemesis run against a durable sharded deployment."""
    import tempfile

    from .faults.nemesis import generate_schedule, run_nemesis
    from .obs.metrics import get_metrics

    shards = shards if shards > 1 else 3
    steps = generate_schedule(seed=seed, steps=12, num_shards=shards)
    lines = [
        f"Nemesis chaos run — seed {seed}, {shards} shards, "
        f"{len(steps)} steps"
    ]
    for index, step in enumerate(steps):
        detail = ""
        if step.kind == "crash":
            detail = f" [shard {step.shard}, {step.stage}" + (
                f", +{step.corruption}]" if step.corruption else "]"
            )
        lines.append(f"  step {index:2d} : {step.kind}{detail}")
    with tempfile.TemporaryDirectory(prefix="litmus-nemesis-") as directory:
        report = run_nemesis(
            steps,
            directory=directory,
            seed=seed,
            num_shards=shards,
            registry=get_metrics(),
        )
    lines.append(
        f"  outcome : {report.ops} ops ({report.acked} acked), "
        f"{report.crashes} crash(es), {report.recoveries} recover(ies), "
        f"{report.injected} fault(s) injected, "
        f"{report.in_doubt_resolved} in-doubt cross-shard round(s) resolved"
    )
    for failure in report.invariant_failures:
        lines.append(f"  FAILED  : {failure}")
    lines.append(
        "  verdict : "
        + ("ALL INVARIANTS HELD" if report.ok else "INVARIANT VIOLATION")
    )
    return "\n".join(lines), 0 if report.ok else 1


def _bench_cmd(areas: list[str] | None, bless: bool) -> int:
    """Run the orchestrated trial matrix and append the trajectories."""
    from .bench.experiment import discover, run_areas
    from .errors import BenchError

    try:
        recorded = run_areas(areas, matrix=discover(), bless=bless, echo=print)
    except BenchError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    total = sum(len(records) for records in recorded.values())
    print(
        f"recorded {total} trial(s) across {len(recorded)} area(s): "
        + ", ".join(sorted(recorded))
    )
    return 0


def _list_trials_cmd() -> int:
    """Print the registered trial matrix as a table."""
    from .bench import format_table
    from .bench.experiment import discover
    from .errors import BenchError

    try:
        matrix = discover()
    except BenchError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    rows = [
        {
            "trial": spec.name,
            "bench_file": spec.bench_file,
            "seed": spec.seed,
            "repeats": spec.repeats,
            "headline": ",".join(spec.headline) or "-",
            "config": ", ".join(f"{k}={v}" for k, v in sorted(spec.config.items())),
        }
        for spec in matrix
    ]
    print(f"Trial matrix — {len(rows)} registered trial(s)")
    print(format_table(rows))
    return 0


def _bench_gate_cmd(areas: list[str] | None, mode: str) -> int:
    """Run the perf-regression gate over the recorded trajectories."""
    from .bench import gate

    argv = ["--mode", mode]
    for area in areas or ():
        argv += ["--area", area]
    return gate.main(argv)


def _parse_address(address: str) -> tuple[str, int]:
    host, _, port = address.rpartition(":")
    if not host or not port.isdigit():
        raise ValueError(f"address {address!r} is not of the form host:port")
    return host, int(port)


def _serve(address: str, data_dir: str | None, shards: int) -> int:
    """Run the networked service until SIGTERM/SIGINT, then drain."""
    import os
    import signal

    from .core import (
        DurabilityConfig,
        LitmusConfig,
        LitmusSession,
        ShardedSession,
    )
    from .crypto.rsa_group import default_group
    from .errors import ReproError
    from .net import LitmusService, ServiceConfig

    try:
        host, port = _parse_address(address)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if shards < 1:
        print(f"error: --shards must be >= 1, got {shards}", file=sys.stderr)
        return 2
    transfer = _demo_transfer()
    durability = None
    if data_dir is not None:
        os.makedirs(data_dir, exist_ok=True)
        durability = DurabilityConfig(directory=data_dir)
    initial = {("acct", i): 100 for i in range(8)}
    try:
        if durability is not None and os.listdir(data_dir):
            # Recover whatever layout is on disk: shard-NN subdirectories
            # mean a sharded deployment, anything else the scalar one.
            if os.path.isdir(os.path.join(data_dir, "shard-00")):
                session = ShardedSession.recover(data_dir, [transfer])
            else:
                session = LitmusSession.recover(data_dir, [transfer])
            recovered = getattr(session, "num_shards", 1)
            if recovered != shards and shards != 1:
                session.close()
                print(
                    f"error: {data_dir!r} holds a {recovered}-shard deployment; "
                    f"--shards {shards} cannot change that",
                    file=sys.stderr,
                )
                return 2
            shards = recovered
        elif shards > 1:
            session = ShardedSession.create(
                initial=initial,
                config=LitmusConfig(**_DEMO_CONFIG),
                num_shards=shards,
                durability=durability,
            )
        else:
            session = LitmusSession.create(
                initial=initial,
                config=LitmusConfig(**_DEMO_CONFIG),
                group=default_group(bits=512),
                durability=durability,
            )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    service = LitmusService(
        session,
        programs=[transfer],
        config=ServiceConfig(host=host, port=port, num_shards=shards),
    )
    try:
        bound = service.start()
    except OSError as exc:
        session.close()
        print(
            f"error: cannot listen on {host}:{port}: {exc.strerror or exc}",
            file=sys.stderr,
        )
        return 2

    def _drain(_signum, _frame):
        print("draining: finishing in-flight batches, refusing new work ...")
        service.shutdown()

    signal.signal(signal.SIGTERM, _drain)
    signal.signal(signal.SIGINT, _drain)
    print(
        f"litmus service listening on {bound[0]}:{bound[1]} "
        f"(durability: {data_dir or 'off'}, shards: {shards}); "
        "SIGTERM drains gracefully"
    )
    service.serve_forever()
    print("service stopped; WAL synced")
    return 0


def _connect_demo(address: str) -> int:
    """Client quickstart: a few verified transfers through RemoteSession."""
    from .core import RetryPolicy
    from .errors import NetworkError
    from .net import RemoteSession

    try:
        host, port = _parse_address(address)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        client = RemoteSession(
            host,
            port,
            retry_policy=RetryPolicy(max_attempts=5, backoff=0.05, jitter=0.1),
            connect_timeout=5.0,
        )
    except NetworkError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        tickets = [
            client.submit("demo", "transfer", src=i, dst=(i + 1) % 8, amount=1)
            for i in range(4)
        ]
        result = client.flush(timeout=60.0)
        print(
            f"flushed {result.num_txns} txn(s) in {result.attempts} attempt(s): "
            f"{'ACCEPTED' if result.accepted else 'REJECTED ' + result.reason}"
        )
        for ticket in tickets:
            print(f"  txn {ticket.txn_id}: outputs {ticket.outputs}")
        print(f"  verified digest: {client.digest:#x}")
        status = client.status()
        print(
            f"  server: {status['connections']} connection(s), "
            f"queue depth {status['queued']}, "
            f"{status['batches_verified']} batch(es) verified"
        )
    except NetworkError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    finally:
        client.close()
    return 0 if result.accepted else 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the Litmus paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        choices=sorted(_COMMANDS) + ["all"],
        help="which figure/table to regenerate",
    )
    parser.add_argument(
        "--scale",
        type=int,
        default=800,
        help="size of the real scaled executions feeding the model",
    )
    parser.add_argument(
        "--faults",
        action="store_true",
        help="run the scripted adversarial demo (inject, reject, rollback, "
        "resync, retry) instead of a figure",
    )
    parser.add_argument(
        "--fault-kind",
        choices=_FAULT_KINDS,
        default="corrupt_proof",
        help="which fault class the --faults demo injects",
    )
    parser.add_argument(
        "--recover",
        metavar="DIR",
        default=None,
        help="run the crash-recovery demo (durable session, injected crash, "
        "torn WAL tail, restart + recover) in a fresh directory DIR",
    )
    parser.add_argument(
        "--scrub",
        metavar="DIR",
        default=None,
        help="scrub the durability directory DIR: re-verify every "
        "checkpoint checksum and sealed-segment CRC, repair rotted "
        "checkpoints from their mirrors, quarantine doubly-damaged "
        "pairs; exits 1 when unrepaired damage remains",
    )
    parser.add_argument(
        "--audit-only",
        action="store_true",
        help="make --scrub report damage without repairing or "
        "quarantining anything",
    )
    parser.add_argument(
        "--chaos",
        action="store_true",
        help="run a seeded nemesis chaos schedule against a durable sharded "
        "session (crashes mid cross-shard round, WAL corruption, recovery "
        "+ ACID invariant checks); exits non-zero on any violation",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=7,
        help="seed of the --faults / --recover / --chaos fault schedule",
    )
    parser.add_argument(
        "--serve",
        metavar="HOST:PORT",
        default=None,
        help="run the networked Litmus service on HOST:PORT until "
        "SIGTERM/SIGINT, then drain gracefully",
    )
    parser.add_argument(
        "--data-dir",
        metavar="DIR",
        default=None,
        help="durability directory for --serve (WAL + checkpoints); "
        "recovers automatically when non-empty",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=1,
        metavar="S",
        help="partition the --serve keyspace across S independently "
        "verified engines (default: 1, the unsharded engine)",
    )
    parser.add_argument(
        "--connect",
        metavar="HOST:PORT",
        default=None,
        help="run the client quickstart against a --serve instance",
    )
    parser.add_argument(
        "--bench",
        action="store_true",
        help="run the orchestrated benchmark trial matrix and append the "
        "repo-root BENCH_<area>.json trajectories",
    )
    parser.add_argument(
        "--area",
        action="append",
        default=None,
        metavar="AREA",
        help="restrict --bench / --bench-gate to this area (repeatable)",
    )
    parser.add_argument(
        "--bless",
        action="store_true",
        help="mark the entries appended by --bench as the pinned gate "
        "baseline (accepts an intentional regression)",
    )
    parser.add_argument(
        "--list-trials",
        action="store_true",
        help="print the registered trial matrix and exit",
    )
    parser.add_argument(
        "--bench-gate",
        action="store_true",
        help="compare the newest BENCH_<area>.json entries against their "
        "baselines and report headline perf regressions",
    )
    parser.add_argument(
        "--gate-mode",
        choices=("report", "enforce"),
        default="enforce",
        help="--bench-gate behavior on regression: 'enforce' exits 1, "
        "'report' always exits 0 (default: enforce)",
    )
    parser.add_argument(
        "--metrics-out",
        metavar="PATH",
        default=None,
        help="append the final metrics snapshot (JSON lines) to PATH",
    )
    parser.add_argument(
        "--trace-out",
        metavar="PATH",
        default=None,
        help="append every finished span of this run (JSON lines) to PATH",
    )
    args = parser.parse_args(argv)
    if args.list_trials:
        return _list_trials_cmd()
    if args.bench:
        code = _bench_cmd(args.area, args.bless)
        _export_observability(args.metrics_out, args.trace_out)
        return code
    if args.bench_gate:
        return _bench_gate_cmd(args.area, args.gate_mode)
    if args.faults:
        transcript, recovered = _faults_demo(args.fault_kind, args.seed)
        print(transcript)
        _export_observability(args.metrics_out, args.trace_out)
        return 0 if recovered else 1
    if args.recover:
        transcript, code = _recover_cmd(args.recover, args.seed)
        print(transcript, file=sys.stderr if code == 2 else sys.stdout)
        _export_observability(args.metrics_out, args.trace_out)
        return code
    if args.scrub:
        transcript, code = _scrub_cmd(args.scrub, repair=not args.audit_only)
        print(transcript, file=sys.stderr if code == 2 else sys.stdout)
        _export_observability(args.metrics_out, args.trace_out)
        return code
    if args.chaos:
        transcript, code = _chaos_demo(args.seed, args.shards)
        print(transcript)
        _export_observability(args.metrics_out, args.trace_out)
        return code
    if args.serve:
        return _serve(args.serve, args.data_dir, args.shards)
    if args.connect:
        code = _connect_demo(args.connect)
        _export_observability(args.metrics_out, args.trace_out)
        return code
    if args.experiment is None:
        parser.error(
            "an experiment (or --bench / --bench-gate / --faults / --recover "
            "/ --chaos / --serve / --connect) is required"
        )
    if args.experiment == "all":
        for name in ("constants", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "elle"):
            print(f"\n{'=' * 72}")
            print(_COMMANDS[name](args.scale))
    else:
        print(_COMMANDS[args.experiment](args.scale))
    _export_observability(args.metrics_out, args.trace_out)
    return 0


def _export_observability(metrics_out: str | None, trace_out: str | None) -> None:
    """Write the run's metrics/spans as JSON lines (the --*-out flag pair)."""
    if metrics_out:
        JsonLinesExporter(metrics_out).export((), get_metrics().snapshot())
        print(f"[obs] metrics snapshot written to {metrics_out}", file=sys.stderr)
    if trace_out:
        JsonLinesExporter(trace_out).export(get_tracer().finished(), {})
        print(
            f"[obs] {len(get_tracer().finished())} span(s) written to {trace_out}",
            file=sys.stderr,
        )


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
