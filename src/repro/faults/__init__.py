"""Fault injection for the Litmus pipeline (the robustness layer).

Litmus's value proposition is surviving a *misbehaving* server (paper
Sections 4 and 6.2), so its reproduction needs a first-class way to
misbehave on purpose.  This package provides deterministic, seedable fault
injectors — proof corruption, certificate/witness bit-flips, dropped and
reordered proof pieces, prover-worker deaths, and message drops/delays via
:mod:`repro.sim.network` — wired into the real server and session through a
:class:`FaultPlan` hook, plus the recovery semantics the rest of the system
builds on (see :mod:`repro.core.session` for ``RetryPolicy`` and
``resync()``).

The durability layer (:mod:`repro.db.wal`) has its own adversaries in
:mod:`repro.faults.durability`: :class:`CrashPoint` simulates process death
at named WAL/checkpoint stage boundaries, while :class:`TornWrite`,
:class:`TruncateSegment` and :class:`BitRotSegment` damage the on-disk log
between a crash and a recovery — ``LitmusSession.recover`` must absorb all
of them.

:mod:`repro.faults.nemesis` composes all of the above into seeded chaos
schedules against a live :class:`~repro.core.ShardedSession`:
:func:`generate_schedule` / :func:`run_nemesis` drive crash + corruption +
retryable-fault episodes with ACID invariant checks after every recovery,
and :func:`minimize_schedule` shrinks a failing seed's schedule to a
minimal reproduction.

Quickstart::

    from repro.core import LitmusSession, RetryPolicy
    from repro.faults import CorruptProofPiece, FaultPlan

    plan = FaultPlan(CorruptProofPiece(piece=0), seed=7)
    session = LitmusSession.create(
        initial=data, fault_plan=plan,
        retry_policy=RetryPolicy(max_attempts=3, backoff=0.0),
    )
    session.submit("alice", TRANSFER, src=0, dst=1, amount=10)
    result = session.flush()   # reject -> rollback -> resync -> retry -> OK
    assert result.accepted and plan.injected == 1
"""

from .disk import (
    CheckpointRot,
    DiskFull,
    FsyncFailure,
    RenameFailure,
    RotOnWrite,
    ShortWrite,
    WriteError,
)
from .durability import BitRotSegment, CrashPoint, TornWrite, TruncateSegment
from .injectors import (
    BitFlipWitness,
    CorruptProofPiece,
    DropMessage,
    DropPiece,
    KillProver,
    NetworkFault,
    ReorderPieces,
    TamperEndDigest,
    TamperPublicStatement,
)
from .nemesis import (
    NemesisReport,
    NemesisStep,
    generate_schedule,
    minimize_schedule,
    run_nemesis,
)
from .plan import FaultEvent, FaultInjector, FaultPlan

__all__ = [
    "BitFlipWitness",
    "BitRotSegment",
    "CheckpointRot",
    "CorruptProofPiece",
    "CrashPoint",
    "DiskFull",
    "DropMessage",
    "DropPiece",
    "FsyncFailure",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "KillProver",
    "NemesisReport",
    "NemesisStep",
    "NetworkFault",
    "RenameFailure",
    "ReorderPieces",
    "RotOnWrite",
    "ShortWrite",
    "TamperEndDigest",
    "TamperPublicStatement",
    "TornWrite",
    "TruncateSegment",
    "WriteError",
    "generate_schedule",
    "minimize_schedule",
    "run_nemesis",
]
