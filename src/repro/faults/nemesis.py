"""Seeded nemesis: composed chaos schedules against a live sharded session.

The injectors in this package each model *one* fault in isolation; real
outages compose them — a prover dies, the retry lands, then a shard's
process is killed mid cross-shard apply and its WAL tail is torn by the
same power cut.  This module is the Jepsen-style harness that drives such
compositions deterministically:

- :func:`generate_schedule` — expand a seed into a replayable list of
  :class:`NemesisStep`\\ s: seeded transfers interleaved with fault
  episodes (retryable prover kills / message drops, and shard-targeted
  :class:`~repro.faults.CrashPoint` crashes, optionally paired with
  post-crash :class:`~repro.faults.TornWrite` / :class:`~repro.faults.
  BitRotSegment` damage on the crashed shard).  Corruption is only ever
  paired with an ``after-log`` crash on the *same* shard, so the damage
  lands on the one record whose acknowledgement the crash swallowed —
  never on acked history, which recovery must preserve bit-for-bit.
  With ``disk_fault_fraction > 0`` schedules also carry **disk-fault**
  steps — failed fsyncs, EIO/ENOSPC writes, short writes aimed at one
  shard's WAL (:mod:`repro.faults.disk`) — and crash steps may pair with
  ``"ckpt-rot"`` at-rest checkpoint damage the mirror must cover;
- :func:`run_nemesis` — drive a durable :class:`~repro.core.sharding.
  ShardedSession` through a schedule, recovering from every crash (and
  from every fsync failure, which downs the engine the same way —
  fsyncgate semantics) and checking the ACID invariants after each
  episode against a client-side oracle (see :class:`NemesisReport`);
- :func:`minimize_schedule` — shrink a failing schedule to a (locally)
  minimal failing subsequence by chunked bisection, the standard
  delta-debugging loop.

Invariants checked after every recovery (and once more at the end):

1. **conservation** — the total balance equals the initial total;
2. **atomicity + durability** — the recovered state equals the oracle
   either *without* the in-flight transfer (the crashed round aborted
   everywhere) or *with* it (it committed everywhere).  Any other state
   is a torn cross-shard transaction or a lost acked flush;
3. **digest convergence** — every shard's client and server digests
   agree after replay;
4. **resolution** — the intent journal holds no pending rounds;
5. **liveness** — a probe transfer is accepted post-recovery.

Quickstart::

    from repro.faults.nemesis import generate_schedule, run_nemesis

    steps = generate_schedule(seed=7, steps=12, num_shards=3)
    report = run_nemesis(steps, directory=tmpdir, seed=7, num_shards=3)
    assert report.ok, report.invariant_failures
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass
from time import perf_counter
from typing import Callable, Sequence

from ..core.config import LitmusConfig
from ..core.session import DurabilityConfig, RetryPolicy
from ..core.sharding import ShardMap, ShardedSession
from ..crypto.rsa_group import RSAGroup
from ..errors import DurabilityError, ReproError, SimulatedCrash, WalError
from ..obs.metrics import MetricsRegistry
from ..vc.program import (
    Add,
    KeyTemplate,
    Param,
    Program,
    ReadStmt,
    ReadVal,
    Sub,
    WriteStmt,
)
from .disk import (
    CheckpointRot,
    DiskFull,
    FsyncFailure,
    ShortWrite,
    WriteError,
)
from .durability import BitRotSegment, CrashPoint, TornWrite
from .injectors import DropMessage, KillProver
from .plan import FaultPlan

__all__ = [
    "NemesisReport",
    "NemesisStep",
    "generate_schedule",
    "minimize_schedule",
    "run_nemesis",
]

INITIAL_BALANCE = 100

# The workload: the canonical two-account transfer, cross-shard whenever
# src and dst land on different shards.
TRANSFER = Program(
    name="nemesis-transfer",
    params=("src", "dst", "amount"),
    statements=(
        ReadStmt("s", KeyTemplate(("acct", Param("src")))),
        ReadStmt("d", KeyTemplate(("acct", Param("dst")))),
        WriteStmt(
            KeyTemplate(("acct", Param("src"))), Sub(ReadVal("s"), Param("amount"))
        ),
        WriteStmt(
            KeyTemplate(("acct", Param("dst"))), Add(ReadVal("d"), Param("amount"))
        ),
    ),
)

# Fast-but-real pipeline settings for chaos runs: every batch still goes
# through certification, proving and client verification.
NEMESIS_CONFIG = LitmusConfig(
    cc="dr", processing_batch_size=2, batches_per_piece=2, prime_bits=64
)

_CORRUPTIONS = ("", "torn", "bitrot")

# The disk misbehaviors a "disk-fault" step can name; all target the WAL
# segment files of one shard.  "fsync-failure" downs the deployment
# (fsyncgate: the engine poisons itself), the write-error trio is
# absorbed in-band by a rescue rotation.
_DISK_FAULTS = {
    "fsync-failure": lambda shard: FsyncFailure(shard=shard, path_contains="wal-"),
    "write-eio": lambda shard: WriteError(shard=shard, path_contains="wal-"),
    "enospc": lambda shard: DiskFull(shard=shard, path_contains="wal-"),
    "short-write": lambda shard: ShortWrite(shard=shard, path_contains="wal-"),
}


@dataclass(frozen=True)
class NemesisStep:
    """One deterministic step of a chaos schedule.

    ``kind`` is ``"transfer"`` (a plain op), ``"kill-prover"`` /
    ``"drop-message"`` (a retryable fault injected around the op),
    ``"crash"`` (a :class:`CrashPoint` targeted at ``shard`` fires at
    ``stage`` while the op — always a cross-shard transfer touching that
    shard — is in flight; ``corruption`` optionally damages the crashed
    shard's durability directory before recovery: its WAL tail
    (``"torn"`` / ``"bitrot"``) or its newest checkpoint primary
    (``"ckpt-rot"``, which the mirror must cover)), or ``"disk-fault"``
    (``disk`` names a :data:`_DISK_FAULTS` injector armed at ``shard``
    while the transfer is in flight).  Every step carries its own
    transfer so a schedule replays identically regardless of which prefix
    of it runs.
    """

    kind: str
    src: int
    dst: int
    amount: int
    shard: int | None = None
    stage: str = "after-log"
    corruption: str = ""
    disk: str = ""


def generate_schedule(
    seed: int,
    *,
    steps: int = 12,
    num_accounts: int = 16,
    num_shards: int = 3,
    crash_fraction: float = 0.25,
    fault_fraction: float = 0.25,
    disk_fault_fraction: float = 0.0,
) -> list[NemesisStep]:
    """Expand *seed* into a replayable chaos schedule.

    Roughly ``crash_fraction`` of the steps are shard-targeted crashes
    (each with a cross-shard transfer guaranteed to involve the target
    shard, so the kill lands mid cross-round), ``fault_fraction`` are
    retryable prover/message faults, ``disk_fault_fraction`` are
    shard-targeted disk faults (failed fsyncs, EIO/ENOSPC writes, short
    writes — see :data:`_DISK_FAULTS`), and the rest are plain transfers.
    A non-zero ``disk_fault_fraction`` also adds ``"ckpt-rot"`` to the
    crash steps' corruption choices (at-rest checkpoint rot the mirror
    must cover); at the default ``0.0`` the schedules are byte-identical
    to what this function generated before disk faults existed.
    Deterministic: the same arguments produce the same schedule.
    """
    if steps < 1:
        raise ReproError("a nemesis schedule needs at least one step")
    rng = random.Random(seed)
    shard_map = ShardMap(num_shards)
    owners: dict[int, list[int]] = {}
    for acct in range(num_accounts):
        owners.setdefault(shard_map.shard_of(("acct", acct)), []).append(acct)
    # A shard is a viable crash target iff it owns an account and some
    # other shard does too (we need a cross-shard pair through it).
    targets = [s for s in sorted(owners) if len(owners) > 1]

    def _any_transfer() -> tuple[int, int, int]:
        src = rng.randrange(num_accounts)
        dst = rng.randrange(num_accounts)
        while dst == src:
            dst = rng.randrange(num_accounts)
        return src, dst, rng.randint(1, 5)

    corruptions = (
        _CORRUPTIONS + ("ckpt-rot",) if disk_fault_fraction > 0 else _CORRUPTIONS
    )
    schedule: list[NemesisStep] = []
    for _ in range(steps):
        roll = rng.random()
        if roll < crash_fraction and targets:
            shard = rng.choice(targets)
            src = rng.choice(owners[shard])
            other = rng.choice([s for s in targets if s != shard])
            dst = rng.choice(owners[other])
            stage = rng.choice(("before-log", "after-log"))
            # Post-crash corruption only composes with after-log: the torn
            # or rotted record is then exactly the un-acked one (ckpt-rot
            # is at-rest damage, safe either way, but kept to the same arm
            # for schedule stability).
            corruption = (
                rng.choice(corruptions) if stage == "after-log" else ""
            )
            schedule.append(
                NemesisStep(
                    kind="crash",
                    src=src,
                    dst=dst,
                    amount=rng.randint(1, 5),
                    shard=shard,
                    stage=stage,
                    corruption=corruption,
                )
            )
        elif roll < crash_fraction + disk_fault_fraction and targets:
            shard = rng.choice(targets)
            src = rng.choice(owners[shard])
            other = rng.choice([s for s in targets if s != shard])
            dst = rng.choice(owners[other])
            schedule.append(
                NemesisStep(
                    kind="disk-fault",
                    src=src,
                    dst=dst,
                    amount=rng.randint(1, 5),
                    shard=shard,
                    disk=rng.choice(sorted(_DISK_FAULTS)),
                )
            )
        elif roll < crash_fraction + disk_fault_fraction + fault_fraction:
            kind = rng.choice(("kill-prover", "drop-message"))
            src, dst, amount = _any_transfer()
            schedule.append(
                NemesisStep(kind=kind, src=src, dst=dst, amount=amount)
            )
        else:
            src, dst, amount = _any_transfer()
            schedule.append(
                NemesisStep(kind="transfer", src=src, dst=dst, amount=amount)
            )
    return schedule


@dataclass(frozen=True)
class NemesisReport:
    """What one nemesis run did and whether the invariants held.

    ``invariant_failures`` is empty on a clean run (``ok``); each entry
    names the violated invariant and the evidence.  ``acked`` counts
    transfers the session acknowledged (they are in the oracle and must
    survive every later crash); ``crashes``/``recoveries`` count the
    episodes; ``injected`` counts every fault the plan applied, including
    the retryable ones the :class:`~repro.core.session.RetryPolicy`
    absorbed; ``disk_faults`` counts the disk-fault steps that armed an
    injector (recoveries they forced are in ``recoveries`` too).
    """

    seed: int
    steps: int
    ops: int
    acked: int
    rejected: int
    crashes: int
    recoveries: int
    injected: int
    compensations: int
    in_doubt_resolved: int
    invariant_failures: tuple[str, ...]
    final_balance: int
    duration_seconds: float
    disk_faults: int = 0

    @property
    def ok(self) -> bool:
        return not self.invariant_failures


def _read_state(session: ShardedSession, num_accounts: int) -> dict:
    return {
        ("acct", i): session.shards[
            session.shard_map.shard_of(("acct", i))
        ].server.db.get(("acct", i))
        for i in range(num_accounts)
    }


def _check_episode(
    session: ShardedSession,
    model: dict,
    inflight: NemesisStep | None,
    num_accounts: int,
    failures: list[str],
) -> dict:
    """Post-recovery invariant checks; returns the reconciled oracle."""
    state = _read_state(session, num_accounts)
    total = sum(state.values())
    expected_total = num_accounts * INITIAL_BALANCE
    if total != expected_total:
        failures.append(
            f"conservation: total balance {total} != {expected_total}"
        )
    candidates = [("aborted everywhere", dict(model))]
    if inflight is not None:
        committed = dict(model)
        committed[("acct", inflight.src)] -= inflight.amount
        committed[("acct", inflight.dst)] += inflight.amount
        candidates.append(("committed everywhere", committed))
    for _label, candidate in candidates:
        if state == candidate:
            model = candidate
            break
    else:
        diff = sorted(
            key for key in state if state[key] != candidates[0][1][key]
        )
        failures.append(
            "atomicity/durability: recovered state matches neither the "
            "all-aborted nor the all-committed oracle (torn cross-shard "
            f"transaction or lost acked flush); divergent keys: {diff}"
        )
    for index, shard in enumerate(session.shards):
        if int(shard.client.digest) != int(shard.server.digest):
            failures.append(
                f"digest convergence: shard {index} client and server "
                "digests disagree after recovery"
            )
    if session._intents is not None and session._intents.pending_rounds:
        failures.append(
            "resolution: intent journal still holds pending round(s) "
            f"{sorted(session._intents.pending_rounds)} after recovery"
        )
    return model


def run_nemesis(
    schedule: Sequence[NemesisStep],
    *,
    directory: str,
    seed: int = 0,
    num_accounts: int = 16,
    num_shards: int = 3,
    config: LitmusConfig | None = None,
    group: RSAGroup | None = None,
    registry: MetricsRegistry | None = None,
) -> NemesisReport:
    """Drive a durable sharded session through *schedule* and referee it.

    Builds the session under *directory* with a retrying
    :class:`~repro.core.session.RetryPolicy` (so the retryable fault
    steps are absorbed in-band), executes the steps, and on every
    :class:`~repro.errors.SimulatedCrash` abandons the session, applies
    the step's paired corruption (if any) to the crashed shard's WAL,
    recovers via :meth:`ShardedSession.recover`, and runs the module
    docstring's invariant checks against the client-side oracle.  The
    first invariant failure stops the run (the oracle is no longer
    trustworthy); a clean run executes every step.

    Deterministic end to end: the schedule is data, the workload seeds
    are in the steps, and all fault randomness flows through the plan's
    seeded stream.
    """
    registry = registry if registry is not None else MetricsRegistry()
    config = config if config is not None else NEMESIS_CONFIG
    if group is None:
        group = RSAGroup.generate(bits=512, seed=b"litmus-nemesis")
    retry = RetryPolicy(max_attempts=4, backoff=0.0)
    plan = FaultPlan(seed=seed).bind_registry(registry)
    start = perf_counter()
    session = ShardedSession.create(
        initial={("acct", i): INITIAL_BALANCE for i in range(num_accounts)},
        config=config,
        num_shards=num_shards,
        group=group,
        registry=registry,
        retry_policy=retry,
        fault_plan=plan,
        durability=DurabilityConfig(directory=directory),
    )
    model = {("acct", i): INITIAL_BALANCE for i in range(num_accounts)}
    ops = acked = rejected = crashes = recoveries = disk_faults = 0
    failures: list[str] = []

    def _apply(step: NemesisStep) -> None:
        model[("acct", step.src)] -= step.amount
        model[("acct", step.dst)] += step.amount

    def _recover_and_referee(step: NemesisStep) -> bool:
        """Abandon the downed session, apply the step's at-rest damage,
        recover, and referee the episode.  False stops the run."""
        nonlocal session, model, recoveries, ops, acked
        try:  # release handles; a real crash would not even do this
            session.close()
        except BaseException:
            pass
        if step.corruption:
            corruptor = {
                "torn": TornWrite,
                "bitrot": BitRotSegment,
                "ckpt-rot": CheckpointRot,
            }[step.corruption]()
            try:
                corruptor.apply(
                    os.path.join(directory, f"shard-{step.shard:02d}")
                )
            except WalError:
                pass  # nothing durable on that shard yet
        session = ShardedSession.recover(
            directory,
            [TRANSFER],
            group=group,
            registry=registry,
            retry_policy=retry,
            fault_plan=plan,
        )
        recoveries += 1
        registry.counter("nemesis.recoveries").inc()
        model = _check_episode(session, model, step, num_accounts, failures)
        if failures:
            return False
        # Liveness probe: the recovered deployment must take work.
        probe = session.submit(
            "nemesis", TRANSFER, src=step.src, dst=step.dst, amount=1
        )
        session.flush()
        ops += 1
        registry.counter("nemesis.ops").inc()
        if probe.accepted:
            acked += 1
            model[("acct", step.src)] -= 1
            model[("acct", step.dst)] += 1
            return True
        failures.append(
            "liveness: post-recovery probe transfer was "
            f"rejected: {probe._reason}"
        )
        return False

    try:
        for step in schedule:
            registry.counter("nemesis.steps").inc()
            if step.kind in ("transfer", "kill-prover", "drop-message"):
                injector = None
                if step.kind == "kill-prover":
                    injector = KillProver(piece=0)
                elif step.kind == "drop-message":
                    injector = DropMessage(direction="response")
                if injector is not None:
                    plan.injectors.append(injector)
                try:
                    ticket = session.submit(
                        "nemesis",
                        TRANSFER,
                        src=step.src,
                        dst=step.dst,
                        amount=step.amount,
                    )
                    session.flush()
                finally:
                    if injector is not None and injector in plan.injectors:
                        plan.injectors.remove(injector)
                ops += 1
                registry.counter("nemesis.ops").inc()
                if ticket.accepted:
                    acked += 1
                    _apply(step)
                else:
                    rejected += 1
            elif step.kind == "crash":
                crash = CrashPoint(step.stage, shard=step.shard)
                plan.injectors.append(crash)
                crashed = False
                try:
                    ticket = session.submit(
                        "nemesis",
                        TRANSFER,
                        src=step.src,
                        dst=step.dst,
                        amount=step.amount,
                    )
                    session.flush()
                except SimulatedCrash:
                    crashed = True
                finally:
                    if crash in plan.injectors:
                        plan.injectors.remove(crash)
                ops += 1
                registry.counter("nemesis.ops").inc()
                if not crashed:
                    # The targeted stage was never reached (e.g. the round
                    # resolved before the shard logged); a plain op, then.
                    if ticket.accepted:
                        acked += 1
                        _apply(step)
                    else:
                        rejected += 1
                    continue
                crashes += 1
                registry.counter("nemesis.crashes").inc()
                if not _recover_and_referee(step):
                    break
            elif step.kind == "disk-fault":
                injector = _DISK_FAULTS[step.disk](step.shard)
                plan.injectors.append(injector)
                died = False
                try:
                    ticket = session.submit(
                        "nemesis",
                        TRANSFER,
                        src=step.src,
                        dst=step.dst,
                        amount=step.amount,
                    )
                    session.flush()
                except DurabilityError:
                    died = True
                finally:
                    if injector in plan.injectors:
                        plan.injectors.remove(injector)
                ops += 1
                disk_faults += 1
                registry.counter("nemesis.ops").inc()
                registry.counter("nemesis.disk_faults").inc()
                if not died:
                    # Absorbed in-band (rescue rotation) or never reached
                    # the disk — an ordinary op either way.
                    if ticket.accepted:
                        acked += 1
                        _apply(step)
                    else:
                        rejected += 1
                    continue
                # fsyncgate: the shard poisoned itself before any
                # acknowledgement escaped — the deployment is down exactly
                # as if the process had died mid-round.
                if not _recover_and_referee(step):
                    break
            else:
                raise ReproError(f"unknown nemesis step kind {step.kind!r}")
        if not failures:
            model = _check_episode(session, model, None, num_accounts, failures)
        final_balance = sum(_read_state(session, num_accounts).values())
    finally:
        try:
            session.close()
        except BaseException:
            pass
    if failures:
        registry.counter("nemesis.invariant_failures").inc(len(failures))
    return NemesisReport(
        seed=seed,
        steps=len(schedule),
        ops=ops,
        acked=acked,
        rejected=rejected,
        crashes=crashes,
        recoveries=recoveries,
        injected=plan.injected,
        compensations=registry.counter("xshard.compensations").value,
        in_doubt_resolved=registry.counter("xshard.in_doubt_resolved").value,
        invariant_failures=tuple(failures),
        final_balance=final_balance,
        duration_seconds=perf_counter() - start,
        disk_faults=disk_faults,
    )


def minimize_schedule(
    steps: Sequence[NemesisStep],
    fails: Callable[[list[NemesisStep]], bool],
) -> list[NemesisStep]:
    """Shrink a failing schedule to a locally minimal failing subsequence.

    *fails* must be a pure predicate — typically a closure that replays
    the candidate schedule with :func:`run_nemesis` against a fresh
    directory and returns ``not report.ok``.  Chunked bisection (the
    ddmin loop): repeatedly try dropping contiguous chunks, halving the
    chunk size until single-step removal no longer shrinks the schedule.
    Raises :class:`~repro.errors.ReproError` if the full schedule does
    not fail (there is nothing to minimize).
    """
    current = list(steps)
    if not fails(list(current)):
        raise ReproError(
            "the full schedule does not fail; nothing to minimize"
        )
    chunk = max(1, len(current) // 2)
    while True:
        index = 0
        shrunk = False
        while index < len(current):
            candidate = current[:index] + current[index + chunk :]
            if candidate and fails(list(candidate)):
                current = candidate
                shrunk = True
            else:
                index += chunk
        if chunk == 1:
            if not shrunk:
                return current
        else:
            chunk = max(1, chunk // 2)
