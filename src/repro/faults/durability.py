"""Durability fault injectors: crashes and storage corruption.

Two families, matching how real durability bugs surface:

**In-flight crashes** — :class:`CrashPoint` plugs into the normal
:class:`~repro.faults.FaultPlan` hook surface (``on_durability``) and
raises :class:`~repro.errors.SimulatedCrash` at a named stage boundary of
the WAL/checkpoint protocol.  The exception is deliberately not absorbed
anywhere in the library: it models the process dying, so the test (or the
``--recover`` CLI demo) catches it at top level, abandons the session, and
recovers from disk.

**At-rest corruption** — :class:`TornWrite`, :class:`TruncateSegment` and
:class:`BitRotSegment` mutate the WAL files *post-write*, modeling what a
crash mid-``write(2)``, a lost tail, or silent media rot leave behind.
They run between a crash and a recovery (there is no live pipeline to hook
into), so they expose ``apply(directory)`` instead of a plan stage; each
returns a human-readable description of the damage done.  Recovery must
absorb all three: torn and rotted tails are truncated away
(``wal.torn_tail_truncated``), never raised past ``recover()``.
"""

from __future__ import annotations

import os

from ..errors import SimulatedCrash, WalError
from ..db.wal.records import WalRecord
from ..db.wal.segments import list_segments, segment_records
from .plan import FaultInjector, FaultPlan

__all__ = ["BitRotSegment", "CrashPoint", "TornWrite", "TruncateSegment"]

CRASH_STAGES = (
    "before-log",
    "after-log",  # record durable, acknowledgement pending
    "after-checkpoint-temp",  # temp file durable, rename pending
    "after-checkpoint",  # rename durable, old segments not yet retired
)


class CrashPoint(FaultInjector):
    """Simulate process death at a named durability stage.

    ``skip`` ignores the first *n* times the stage is reached, so a test
    can let a few batches land before killing the process ("crash while
    logging batch 3" is ``CrashPoint("after-log", skip=2)``).  ``shard``
    narrows the injector to one engine of a sharded session
    (``CrashPoint("after-log", shard=2)`` only fires when shard 2's
    durability manager reaches the stage; ``None`` matches any shard and
    the unsharded session).  One-shot by default, like every injector:
    after firing once, later runs of the same plan sail through — which is
    exactly what a restarted process does.
    """

    kind = "crash_point"

    def __init__(
        self,
        stage: str = "after-log",
        skip: int = 0,
        shard: int | None = None,
        **kwargs,
    ):
        super().__init__(**kwargs)
        if stage not in CRASH_STAGES:
            raise ValueError(f"unknown crash stage {stage!r} (want {CRASH_STAGES})")
        if skip < 0:
            raise ValueError("skip must be non-negative")
        if shard is not None and shard < 0:
            raise ValueError("shard must be a non-negative shard index")
        self.stage = stage
        self.skip = skip
        self.shard = shard
        self._seen = 0

    def on_durability(
        self, plan: FaultPlan, stage: str, shard: int | None = None
    ) -> None:
        if stage != self.stage:
            return
        if self.shard is not None and shard != self.shard:
            return
        self._seen += 1
        if self._seen <= self.skip or not self._take(plan):
            return
        where = stage if shard is None else f"{stage} on shard {shard}"
        plan.record(
            self, "durability", f"crash at {where} (occurrence {self._seen})"
        )
        raise SimulatedCrash(
            f"injected crash at durability stage {where!r} "
            f"(occurrence {self._seen})"
        )


class _SegmentCorruption(FaultInjector):
    """Shared plumbing: find the last record on disk and damage it."""

    def _tail(self, directory: str) -> tuple[str, list[WalRecord]]:
        """The newest segment that actually holds records, plus them."""
        for path in reversed(list_segments(directory)):
            records, _intact, _status = segment_records(path)
            if records:
                return path, records
        raise WalError(f"no WAL records to corrupt in {directory!r}")

    def apply(self, directory: str) -> str:
        """Damage the directory; returns a description of what was done."""
        raise NotImplementedError

    def _done(self, description: str) -> str:
        self.fired += 1
        return description


class TornWrite(_SegmentCorruption):
    """Leave a partial record at the segment tail (crash mid-``write``).

    ``keep_fraction`` controls how much of the final record's bytes
    survive; anything in ``(0, 1)`` leaves a record whose framing promises
    more bytes than exist — the torn-tail shape recovery must truncate.
    """

    kind = "torn_write"

    def __init__(self, keep_fraction: float = 0.5, **kwargs):
        super().__init__(**kwargs)
        if not 0.0 < keep_fraction < 1.0:
            raise ValueError("keep_fraction must be in (0, 1)")
        self.keep_fraction = keep_fraction

    def apply(self, directory: str) -> str:
        path, records = self._tail(directory)
        last = records[-1]
        keep = max(1, min(last.size - 1, int(last.size * self.keep_fraction)))
        with open(path, "r+b") as handle:
            handle.truncate(last.offset + keep)
        return self._done(
            f"tore record seq {last.seq} in {os.path.basename(path)}: kept "
            f"{keep}/{last.size} bytes"
        )


class TruncateSegment(_SegmentCorruption):
    """Cleanly drop the last *records* whole records (a lost tail).

    Models an fsync-less crash where the final appends never reached the
    platter at all: framing stays valid, history is just shorter.  Under
    ``fsync="never"``/``"batch"`` this is the loss recovery must tolerate;
    under ``"always"`` it can only remove unacknowledged work.
    """

    kind = "truncate_segment"

    def __init__(self, records: int = 1, **kwargs):
        super().__init__(**kwargs)
        if records < 1:
            raise ValueError("records must be positive")
        self.records = records

    def apply(self, directory: str) -> str:
        path, records = self._tail(directory)
        cut = records[max(0, len(records) - self.records)]
        with open(path, "r+b") as handle:
            handle.truncate(cut.offset)
        dropped = len(records) - max(0, len(records) - self.records)
        return self._done(
            f"truncated {dropped} record(s) from {os.path.basename(path)} "
            f"(first dropped seq {cut.seq})"
        )


class BitRotSegment(_SegmentCorruption):
    """Flip one byte inside the last record's payload (silent media rot).

    The flip lands *past* the CRC header, so the frame still parses but the
    checksum no longer matches — recovery must classify the record as
    corrupt and truncate it, proving the CRC actually gates replay.
    """

    kind = "bit_rot"

    def __init__(self, flip_mask: int = 0x40, **kwargs):
        super().__init__(**kwargs)
        if not 1 <= flip_mask <= 255:
            raise ValueError("flip_mask must be a non-zero byte")
        self.flip_mask = flip_mask

    def apply(self, directory: str) -> str:
        path, records = self._tail(directory)
        last = records[-1]
        # Aim at the middle of the payload: safely past the 8-byte frame
        # header, inside CRC-covered bytes.
        position = last.offset + 8 + (last.size - 8) // 2
        with open(path, "r+b") as handle:
            handle.seek(position)
            original = handle.read(1)
            handle.seek(position)
            handle.write(bytes([original[0] ^ self.flip_mask]))
        return self._done(
            f"flipped bits {self.flip_mask:#04x} at byte {position} of "
            f"{os.path.basename(path)} (record seq {last.seq})"
        )
