"""Disk-fault injectors: the hostile-storage half of the fault plan.

Where :mod:`repro.faults.durability` crashes the *process* at stage
boundaries, these injectors make the *disk* misbehave underneath a live
process.  They act on the ``on_fs`` hook (see
:class:`~repro.faults.plan.FaultInjector.on_fs`), which a
:class:`~repro.db.fsio.FaultyFileSystem` consults before every write,
fsync, and rename the durability stack performs.

Each injector targets by operation, by path substring (``".seg"`` hits
WAL segments, ``".ckpt"`` checkpoints, ``"intents"`` the cross-shard
journal; empty matches everything), and optionally by shard — the same
targeting model :class:`~repro.faults.CrashPoint` uses.  Firing control
(``times`` / ``probability``) comes from the base class: ``times=1`` is a
one-shot fault, ``times=None`` a sticky one (every matching operation
fails until the injector is removed — the shape of a dying device).

What the durability layer guarantees under each fault is tabulated in
DESIGN.md §17; the short version: writes may be retried in a fresh
segment (nothing was acknowledged), failed fsyncs may not be retried at
all (fsyncgate), and silent rot is caught by CRC/checksum at the next
read — never trusted.
"""

from __future__ import annotations

import errno

from .plan import FaultInjector, FaultPlan

__all__ = [
    "CheckpointRot",
    "DiskFull",
    "FsyncFailure",
    "RenameFailure",
    "RotOnWrite",
    "ShortWrite",
    "WriteError",
]


class _DiskFault(FaultInjector):
    """Shared targeting: operation + path substring + optional shard."""

    op = "write"  # which fs operation the subclass intercepts

    def __init__(
        self,
        *,
        path_contains: str = "",
        shard: int | None = None,
        times: int | None = 1,
        probability: float = 1.0,
    ):
        super().__init__(times=times, probability=probability)
        self.path_contains = path_contains
        self.shard = shard

    def _directive(self, plan: FaultPlan) -> tuple:
        raise NotImplementedError

    def on_fs(
        self, plan: FaultPlan, op: str, path: str, shard: int | None = None
    ) -> tuple | None:
        if op != self.op:
            return None
        if self.shard is not None and shard != self.shard:
            return None
        if self.path_contains and self.path_contains not in path:
            return None
        if not self._take(plan):
            return None
        plan.record(self, "fs", f"{op} {path}")
        return self._directive(plan)


class WriteError(_DiskFault):
    """A write fails with EIO; no bytes reach the file.

    The WAL absorbs this with a rescue rotation — the record was never
    acknowledged, so re-writing it whole into a fresh segment is honest —
    and only raises :class:`~repro.errors.DurabilityError` if the rotation
    itself fails.
    """

    kind = "fs-write-eio"

    def _directive(self, plan: FaultPlan) -> tuple:
        return ("error", errno.EIO)


class DiskFull(_DiskFault):
    """A write fails with ENOSPC — the volume is (momentarily) full."""

    kind = "fs-enospc"

    def _directive(self, plan: FaultPlan) -> tuple:
        return ("error", errno.ENOSPC)


class ShortWrite(_DiskFault):
    """Only a prefix of the bytes lands before the write errors — a torn
    write at the filesystem layer.  ``fraction`` bounds how much survives."""

    kind = "fs-short-write"

    def __init__(self, fraction: float = 0.5, **kwargs):
        super().__init__(**kwargs)
        if not 0.0 < fraction < 1.0:
            raise ValueError("short-write fraction must be in (0, 1)")
        self.fraction = fraction

    def _directive(self, plan: FaultPlan) -> tuple:
        return ("short", self.fraction)


class FsyncFailure(_DiskFault):
    """An fsync fails *and* the unsynced tail is lost (fsyncgate model).

    One-shot by default; pass ``times=None`` for a sticky failure — every
    later fsync on matching files fails too.  Either way the affected
    writer must treat the handle as poisoned: the
    :class:`~repro.db.fsio.FaultyFileSystem` has already dropped the
    bytes the failed fsync disclaimed, so retry-and-pretend would
    acknowledge data that is simply gone.
    """

    kind = "fs-fsync-failure"
    op = "fsync"

    def _directive(self, plan: FaultPlan) -> tuple:
        return ("fsync-fail",)


class RenameFailure(_DiskFault):
    """An atomic-replace rename fails with EIO; the target is untouched.

    Aimed at checkpoint publication: the ``.tmp`` stays, the previous
    checkpoint remains the newest valid one, and recovery replays more
    WAL — degraded, never wrong.
    """

    kind = "fs-rename-failure"
    op = "replace"

    def _directive(self, plan: FaultPlan) -> tuple:
        return ("error", errno.EIO)


class RotOnWrite(_DiskFault):
    """A write 'succeeds' but one bit flips on the way to the platter.

    Models silent media corruption at its origin.  Nothing notices at
    write time — that is the point — so the guarantee under test is that
    the CRC framing (segments, intent journal) or SHA-256 checksum
    (checkpoints) refuses the bytes at the next read, and the scrubber
    repairs or quarantines the file.
    """

    kind = "fs-rot-on-write"

    def _directive(self, plan: FaultPlan) -> tuple:
        return ("rot",)


class CheckpointRot:
    """At-rest bit rot of the newest checkpoint file in a directory.

    Not a :class:`~repro.faults.plan.FaultInjector` — like
    :class:`~repro.faults.durability.BitRotSegment` it is applied to a
    quiesced directory (post-crash, pre-recovery) by the nemesis harness
    or a test.  Flips one byte of the newest checkpoint *primary*;
    recovery must fall back to the mirror (or an older checkpoint), and a
    scrub must repair the primary from the mirror.
    """

    kind = "ckpt-rot"

    def __init__(self, position: int = 97, mask: int = 0x20):
        self.position = position
        self.mask = mask

    def apply(self, directory: str) -> str:
        """Rot the newest checkpoint in *directory*; returns its path."""
        from ..db.fsio import rot_file
        from ..db.wal.checkpoints import list_checkpoints
        from ..errors import WalError

        candidates = list_checkpoints(directory)
        if not candidates:
            raise WalError(f"no checkpoint to rot in {directory!r}")
        rot_file(candidates[0], self.position, self.mask)
        return candidates[0]
