"""Deterministic fault plans: the hook surface the pipeline injects through.

A :class:`FaultPlan` is a seedable, replayable schedule of misbehavior.  It
owns a list of :class:`FaultInjector` instances and is consulted by the
*real* pipeline at four stages:

- ``on_request`` — the client→server message (session side, before
  :meth:`~repro.core.server.LitmusServer.execute_batch`);
- ``on_certificates`` — each schedule unit's freshly minted read/write
  certificates (server side, the serial certification stage);
- ``on_prove`` — each piece's prover-pool worker, as its job starts;
- ``on_response`` — the server→client response (session side, before
  client verification);
- ``on_durability`` — the durability layer's named stages
  (``before-log``, ``after-log``, ``after-checkpoint-temp``,
  ``after-checkpoint``; see :mod:`repro.db.wal.manager`), where a
  :class:`~repro.faults.CrashPoint` can simulate process death at the
  exact boundary being tested;
- ``on_fs`` — every filesystem write/fsync/rename the durability stack
  performs (via :class:`~repro.db.fsio.FaultyFileSystem`), where the disk
  injectors of :mod:`repro.faults.disk` make the storage itself lie.

Determinism contract: a plan constructed with the same injectors and seed
injects the same faults at the same points on every run.  All randomness
flows through the plan's private ``random.Random(seed)``; injectors that
fire unconditionally never touch it.

Every applied injection is recorded as a :class:`FaultEvent` on
``plan.events`` and counted on the bound metrics registry as
``faults.injected`` plus ``faults.injected.<kind>``, so tests, benchmarks
and exporters all see exactly what was done to the pipeline.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence

from ..obs.metrics import MetricsRegistry, get_metrics

__all__ = ["FaultEvent", "FaultInjector", "FaultPlan"]


@dataclass(frozen=True)
class FaultEvent:
    """One applied injection: what kind, at which stage, against what."""

    kind: str
    stage: str  # "request" | "certify" | "prove" | "response" | "durability"
    target: str  # human-readable description of the tampered object


class FaultInjector:
    """Base class: a single, targetable kind of misbehavior.

    Subclasses override the stage hook(s) they act on.  The base class
    provides firing control: ``times`` bounds how often the injector fires
    (``None`` = unlimited) and ``probability`` gates each opportunity
    through the plan's seeded random stream.  ``times=1`` (the default)
    makes an injector one-shot — the natural shape for recovery tests,
    where the retried batch must sail through clean.
    """

    kind = "abstract"

    def __init__(self, times: int | None = 1, probability: float = 1.0):
        if times is not None and times < 1:
            raise ValueError("times must be positive (or None for unlimited)")
        if not 0.0 < probability <= 1.0:
            raise ValueError("probability must be in (0, 1]")
        self.times = times
        self.probability = probability
        self.fired = 0

    def _take(self, plan: "FaultPlan") -> bool:
        """Consume one firing opportunity; True iff the fault applies now."""
        if self.times is not None and self.fired >= self.times:
            return False
        if self.probability < 1.0 and plan.rng.random() >= self.probability:
            return False
        self.fired += 1
        return True

    # -- stage hooks (default: pass through untouched) -----------------------

    def on_request(self, plan: "FaultPlan", txns: Sequence) -> None:
        """Client→server delivery; may raise MessageDropped."""

    def on_certificates(self, plan: "FaultPlan", unit_index: int, read_cert, write_cert):
        """Tamper a unit's certificates; returns the (possibly new) pair."""
        return read_cert, write_cert

    def on_prove(self, plan: "FaultPlan", piece_index: int) -> None:
        """A prover worker starting piece *piece_index*; may raise ProverKilled."""

    def on_response(self, plan: "FaultPlan", response):
        """Server→client delivery; returns the (possibly tampered) response
        or raises MessageDropped."""
        return response

    def on_durability(
        self, plan: "FaultPlan", stage: str, shard: int | None = None
    ) -> None:
        """A durability-layer stage boundary; may raise SimulatedCrash.

        *shard* identifies which shard's durability manager reached the
        stage (``None`` for an unsharded session), so shard-targeted
        injectors can kill exactly one engine of a sharded deployment.
        """

    def on_fs(
        self, plan: "FaultPlan", op: str, path: str, shard: int | None = None
    ) -> tuple | None:
        """A filesystem operation (``write``/``fsync``/``replace``/``open``)
        inside the durability stack, routed through a
        :class:`~repro.db.fsio.FaultyFileSystem`.

        Return a fault directive tuple (see :mod:`repro.db.fsio`) to make
        the disk misbehave, or ``None`` to pass the operation through.
        The first injector returning a directive wins.
        """
        return None


class FaultPlan:
    """A deterministic, seedable schedule of injected faults."""

    def __init__(self, *injectors: FaultInjector, seed: int = 0):
        self.injectors: list[FaultInjector] = list(injectors)
        self.seed = seed
        self.rng = random.Random(seed)
        self.events: list[FaultEvent] = []
        # Virtual network time accumulated by network injectors (seconds).
        self.network_seconds = 0.0
        self._registry: MetricsRegistry | None = None

    def bind_registry(self, registry: MetricsRegistry) -> "FaultPlan":
        """Route this plan's counters to *registry* (else the process one)."""
        self._registry = registry
        return self

    @property
    def injected(self) -> int:
        return len(self.events)

    def record(self, injector: FaultInjector, stage: str, target: str) -> FaultEvent:
        """Log one applied injection and bump its counters."""
        event = FaultEvent(kind=injector.kind, stage=stage, target=target)
        self.events.append(event)
        registry = self._registry if self._registry is not None else get_metrics()
        registry.counter("faults.injected").inc()
        registry.counter(f"faults.injected.{injector.kind}").inc()
        return event

    # -- pipeline hooks -------------------------------------------------------

    def on_request(self, txns: Sequence) -> None:
        for injector in self.injectors:
            injector.on_request(self, txns)

    def on_certificates(self, unit_index: int, read_cert, write_cert):
        for injector in self.injectors:
            read_cert, write_cert = injector.on_certificates(
                self, unit_index, read_cert, write_cert
            )
        return read_cert, write_cert

    def on_prove(self, piece_index: int) -> None:
        for injector in self.injectors:
            injector.on_prove(self, piece_index)

    def on_response(self, response):
        for injector in self.injectors:
            response = injector.on_response(self, response)
        return response

    def on_durability(self, stage: str, shard: int | None = None) -> None:
        for injector in self.injectors:
            injector.on_durability(self, stage, shard)

    def on_fs(self, op: str, path: str, shard: int | None = None) -> tuple | None:
        for injector in self.injectors:
            directive = injector.on_fs(self, op, path, shard)
            if directive is not None:
                return directive
        return None
