"""Concrete fault injectors: every adversary class of the robustness layer.

Each injector models one way a misbehaving server, a flaky prover fleet, or
a lossy network can deviate from the protocol — and each drives the *real*
pipeline: certificates really get bit-flipped before they enter the
circuit, proofs really get corrupted on the wire, prover workers really die
inside the thread pool.  Detection is therefore exercised end-to-end, not
simulated.

What the client is expected to do about each kind:

======================  ====================================================
injector                expected detection
======================  ====================================================
CorruptProofPiece       proof fails cryptographic verification
TamperPublicStatement   recomputed public statement mismatch
TamperEndDigest         digest chain broken / final digest does not close
DropPiece               reported pieces do not cover the batch
ReorderPieces           digest chain broken at the first swapped piece
BitFlipWitness          in-circuit MemCheck/MemUpdate fails → AllCommit = 0
KillProver              server aborts the batch (ProofCorruptionDetected)
DropMessage             no response — the session retries
NetworkFault            seeded drops/delays via :mod:`repro.sim.network`
======================  ====================================================
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

from ..errors import MessageDropped, ProverKilled
from ..sim.network import SimulatedChannel
from .plan import FaultInjector, FaultPlan

__all__ = [
    "BitFlipWitness",
    "CorruptProofPiece",
    "DropMessage",
    "DropPiece",
    "KillProver",
    "NetworkFault",
    "ReorderPieces",
    "TamperEndDigest",
    "TamperPublicStatement",
]


def _flip_bytes(payload: bytes) -> bytes:
    """Flip the low bit of the first byte (a minimal, detectable corruption)."""
    if not payload:
        return b"\x01"
    return bytes([payload[0] ^ 0x01]) + payload[1:]


def _corrupt_proof(proof):
    """Minimally corrupt whichever proof representation the backend uses."""
    if hasattr(proof, "payload") and isinstance(proof.payload, bytes):
        return dataclasses.replace(proof, payload=_flip_bytes(proof.payload))
    if hasattr(proof, "root") and isinstance(proof.root, bytes):
        return dataclasses.replace(proof, root=_flip_bytes(proof.root))
    # Unknown backend: replace wholesale; the client must reject, not crash.
    return object()


def _replace_piece(response, index_in_tuple: int, **changes):
    pieces = list(response.pieces)
    pieces[index_in_tuple] = dataclasses.replace(pieces[index_in_tuple], **changes)
    return dataclasses.replace(response, pieces=tuple(pieces))


class _PieceTargeted(FaultInjector):
    """Shared plumbing for injectors aimed at one piece of the response."""

    def __init__(self, piece: int = 0, **kwargs):
        super().__init__(**kwargs)
        self.piece = piece

    def _target_index(self, response) -> int | None:
        """Position of the targeted piece, or None when absent."""
        for position, piece in enumerate(response.pieces):
            if piece.piece_index == self.piece:
                return position
        return None


class CorruptProofPiece(_PieceTargeted):
    """Bit-flip one piece's proof on the wire (Sec 6.2 detection path)."""

    kind = "corrupt_proof"

    def on_response(self, plan: FaultPlan, response):
        position = self._target_index(response)
        if position is None or not self._take(plan):
            return response
        plan.record(self, "response", f"piece {self.piece} proof")
        tampered = _corrupt_proof(response.pieces[position].proof)
        return _replace_piece(response, position, proof=tampered)


class TamperPublicStatement(_PieceTargeted):
    """Perturb one piece's claimed public values (statement forgery)."""

    kind = "tamper_statement"

    def on_response(self, plan: FaultPlan, response):
        position = self._target_index(response)
        if position is None or not self._take(plan):
            return response
        plan.record(self, "response", f"piece {self.piece} public values")
        publics = list(response.pieces[position].public_values)
        publics[-1] ^= 1
        return _replace_piece(response, position, public_values=tuple(publics))


class TamperEndDigest(_PieceTargeted):
    """Claim a wrong end digest for one piece (digest-chain forgery)."""

    kind = "tamper_digest"

    def on_response(self, plan: FaultPlan, response):
        position = self._target_index(response)
        if position is None or not self._take(plan):
            return response
        plan.record(self, "response", f"piece {self.piece} end digest")
        piece = response.pieces[position]
        return _replace_piece(response, position, end_digest=piece.end_digest ^ 1)


class DropPiece(_PieceTargeted):
    """Omit one proof piece from the response entirely."""

    kind = "drop_piece"

    def on_response(self, plan: FaultPlan, response):
        position = self._target_index(response)
        if position is None or not self._take(plan):
            return response
        plan.record(self, "response", f"piece {self.piece}")
        pieces = list(response.pieces)
        del pieces[position]
        return dataclasses.replace(response, pieces=tuple(pieces))


class ReorderPieces(FaultInjector):
    """Deliver the proof pieces in a shuffled order (seeded).

    Fires only on multi-piece responses; the shuffle is drawn from the
    plan's seeded stream and re-drawn until the order actually changes.
    """

    kind = "reorder_pieces"

    def on_response(self, plan: FaultPlan, response):
        if len(response.pieces) < 2 or not self._take(plan):
            return response
        pieces = list(response.pieces)
        original = list(pieces)
        while pieces == original:
            plan.rng.shuffle(pieces)
        plan.record(self, "response", f"{len(pieces)} pieces shuffled")
        return dataclasses.replace(response, pieces=tuple(pieces))


class BitFlipWitness(FaultInjector):
    """Flip a bit in a unit's AD certificate witness before it enters the
    circuit — the in-circuit MemCheck/MemUpdate must catch it."""

    kind = "bitflip_witness"

    def __init__(self, unit: int = 0, which: str = "write", **kwargs):
        super().__init__(**kwargs)
        if which not in ("read", "write"):
            raise ValueError("which must be 'read' or 'write'")
        self.unit = unit
        self.which = which

    def on_certificates(self, plan: FaultPlan, unit_index: int, read_cert, write_cert):
        if unit_index != self.unit:
            return read_cert, write_cert
        if self.which == "write":
            if write_cert is None or not self._take(plan):
                return read_cert, write_cert
            plan.record(self, "certify", f"unit {unit_index} write witness")
            witness = dataclasses.replace(
                write_cert.witness, witness=write_cert.witness.witness ^ 1
            )
            return read_cert, dataclasses.replace(write_cert, witness=witness)
        if read_cert is None or read_cert.lookup is None or not self._take(plan):
            return read_cert, write_cert
        plan.record(self, "certify", f"unit {unit_index} read witness")
        lookup = dataclasses.replace(
            read_cert.lookup, witness=read_cert.lookup.witness ^ 1
        )
        return dataclasses.replace(read_cert, lookup=lookup), write_cert


class KillProver(FaultInjector):
    """Kill the prover-pool worker assigned to one piece mid-batch."""

    kind = "kill_prover"

    def __init__(self, piece: int = 0, **kwargs):
        super().__init__(**kwargs)
        self.piece = piece

    def on_prove(self, plan: FaultPlan, piece_index: int) -> None:
        if piece_index != self.piece or not self._take(plan):
            return
        plan.record(self, "prove", f"piece {piece_index} worker")
        raise ProverKilled(f"injected worker death on piece {piece_index}")


class DropMessage(FaultInjector):
    """Swallow the request or the response message entirely."""

    kind = "drop_message"

    def __init__(self, direction: str = "response", **kwargs):
        super().__init__(**kwargs)
        if direction not in ("request", "response"):
            raise ValueError("direction must be 'request' or 'response'")
        self.direction = direction

    def on_request(self, plan: FaultPlan, txns: Sequence) -> None:
        if self.direction != "request" or not self._take(plan):
            return
        plan.record(self, "request", f"batch of {len(txns)} txns")
        raise MessageDropped("injected drop of the client->server batch")

    def on_response(self, plan: FaultPlan, response):
        if self.direction != "response" or not self._take(plan):
            return response
        plan.record(self, "response", f"{len(response.pieces)}-piece response")
        raise MessageDropped("injected drop of the server->client response")


class NetworkFault(FaultInjector):
    """Route both messages through a :class:`repro.sim.network.SimulatedChannel`.

    The channel's seeded stream decides drops and extra delays; delivered
    latency accumulates on ``plan.network_seconds`` (virtual time — nothing
    sleeps).  Unlimited by default: the channel models the link itself, not
    a one-shot event.
    """

    kind = "network"

    def __init__(self, channel: SimulatedChannel, payload_bytes: int = 512, **kwargs):
        kwargs.setdefault("times", None)
        super().__init__(**kwargs)
        self.channel = channel
        self.payload_bytes = payload_bytes

    def _deliver(self, plan: FaultPlan, label: str) -> None:
        try:
            plan.network_seconds += self.channel.deliver(
                self.payload_bytes, label=label
            )
        except MessageDropped:
            self.fired += 1
            plan.record(self, label.split()[0], label)
            raise

    def on_request(self, plan: FaultPlan, txns: Sequence) -> None:
        self._deliver(plan, f"request ({len(txns)} txns)")

    def on_response(self, plan: FaultPlan, response):
        self._deliver(plan, f"response ({len(response.pieces)} pieces)")
        return response
