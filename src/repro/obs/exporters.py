"""Exporters: where spans and metric snapshots go.

Three implementations, all sharing one two-method surface
(:class:`Exporter`):

- :class:`NoopExporter` — the default; observing costs nothing extra;
- :class:`JsonLinesExporter` — one JSON object per line.  Span lines are
  ``{"kind": "span", ...}`` (see ``SpanRecord.as_dict``), metric lines are
  ``{"kind": "metric", "name": ..., "type": ..., ...}``.  The format is
  append-friendly (two batches exported to the same path concatenate) and
  round-trips through :func:`read_jsonl`;
- :class:`ConsoleSummaryExporter` — a human-readable per-stage and
  per-metric summary for terminals and benchmark logs.

``benchmarks/check_metrics_schema.py`` validates emitted files against this
format in CI.
"""

from __future__ import annotations

import json
import sys
from typing import Any, Iterable, Mapping, Protocol, Sequence, TextIO

from .spans import SpanRecord, stage_totals

__all__ = [
    "Exporter",
    "NoopExporter",
    "JsonLinesExporter",
    "ConsoleSummaryExporter",
    "read_jsonl",
]


class Exporter(Protocol):
    """Anything that can receive one export of spans + metrics."""

    def export(
        self,
        spans: Sequence[SpanRecord],
        metrics: Mapping[str, Mapping[str, Any]],
    ) -> None: ...


class NoopExporter:
    """Discards everything (the zero-cost default)."""

    def export(self, spans, metrics) -> None:
        return None


class JsonLinesExporter:
    """Appends spans and metrics to a JSON-lines file.

    Each call to :meth:`export` appends every span as its own line followed
    by every metric as its own line; repeated exports append, so callers
    exporting per batch get a chronological log.
    """

    def __init__(self, path: str):
        self.path = path

    def export(self, spans, metrics) -> None:
        with open(self.path, "a", encoding="utf-8") as handle:
            for record in spans:
                handle.write(json.dumps(record.as_dict(), sort_keys=True))
                handle.write("\n")
            for snapshot in metrics.values():
                line = {"kind": "metric"}
                line.update(snapshot)
                handle.write(json.dumps(line, sort_keys=True))
                handle.write("\n")


def read_jsonl(path: str) -> list[dict[str, Any]]:
    """Parse a JSON-lines export back into a list of dicts (round-trip)."""
    records: list[dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


class ConsoleSummaryExporter:
    """Human-readable summary: per-stage span totals, then metric values."""

    def __init__(self, stream: TextIO | None = None):
        self.stream = stream if stream is not None else sys.stdout

    def export(self, spans, metrics) -> None:
        write = self.stream.write
        write("== observability summary ==\n")
        totals = stage_totals(spans)
        if totals:
            write(f"-- spans ({len(spans)} finished) --\n")
            width = max(len(name) for name in totals)
            for name in sorted(totals, key=totals.get, reverse=True):
                count = sum(1 for s in spans if s.name == name)
                write(
                    f"  {name:<{width}}  total {totals[name]:9.4f}s"
                    f"  count {count}\n"
                )
        if metrics:
            write(f"-- metrics ({len(metrics)}) --\n")
            for name in sorted(metrics):
                snap = metrics[name]
                if snap.get("type") == "histogram":
                    write(
                        f"  {name}: count {snap['count']}"
                        f" mean {snap['mean']:.6f}"
                        f" p50 {snap['p50']:.6f} p95 {snap['p95']:.6f}\n"
                    )
                else:
                    write(f"  {name}: {snap['value']}\n")


def export_all(
    exporters: Iterable[Exporter],
    spans: Sequence[SpanRecord],
    metrics: Mapping[str, Mapping[str, Any]],
) -> None:
    """Fan one (spans, metrics) export out to several exporters."""
    for exporter in exporters:
        exporter.export(spans, metrics)


__all__.append("export_all")
