"""Process-local metrics: counters, gauges, histograms.

A :class:`MetricsRegistry` is a flat namespace of named instruments.
Instruments are created on first use (``registry.counter("db.committed")``)
and live for the registry's lifetime; :meth:`MetricsRegistry.reset` zeroes
values without invalidating handles already held by instrumented modules
(the crypto caches grab their counters once at import time).

Everything is thread-safe — the prover pool hits the cache counters from
many threads at once — and zero-dependency, so the crypto and db layers can
import this module without any new dependency arrows.

Metric naming taxonomy (dotted, lowercase):

- ``cache.<name>.{hits,misses,evictions}`` — the crypto LRU caches;
- ``snark.setup_cache.{hits,misses}`` — proving-key reuse;
- ``snark.{prove,verify}_seconds`` (histograms), ``snark.{proofs,verifies}``;
- ``accumulator.witness_seconds`` / ``authdict.{lookup,update}_seconds``;
- ``db.{committed,aborted_retries}`` — CC-layer outcomes per batch;
- ``server.{batches,pieces}`` / ``client.{batches_accepted,batches_rejected}``;
- ``session.{deadline_aborts,...}`` — facade-level round outcomes,
  including ``session.compensations`` (verified batches rolled back by
  the cross-shard coordinator);
- ``xshard.*`` — the atomic cross-shard commit protocol:
  ``xshard.intents`` (prepare records made durable), ``xshard.commits``,
  ``xshard.compensations`` (per-shard batch rollbacks during an abort)
  and ``xshard.in_doubt_resolved`` (pending rounds settled at recovery);
- ``nemesis.{steps,ops,crashes,recoveries,disk_faults,
  invariant_failures}`` — the seeded chaos harness
  (:mod:`repro.faults.nemesis`);
- ``storage.*`` — the hostile-disk survival layer (DESIGN.md §17):
  ``storage.{write_errors,rescue_rotations}`` (absorbed write faults),
  ``storage.fsync_failures`` (fsyncgate poisonings — each one downs a
  deployment), ``storage.mirror_{writes,write_failures,repairs}`` for
  the checkpoint mirror twins;
- ``scrub.*`` — the scrub/repair pass (:mod:`repro.db.scrub`):
  ``scrub.{runs,files_scanned,records_verified,damage_found,repairs,
  quarantined,errors}``;
- ``net.*`` — the socket service and remote client (``repro.net``):
  ``net.{bytes,frames}_{sent,received}``, ``net.connections_{active,total,
  refused}`` (active is a gauge), ``net.{requests,errors,op_replays}``,
  ``net.queue_depth`` (gauge) + ``net.sheds`` + ``net.deadline_hits`` for
  admission control, ``net.{idle_reaped,heartbeats}``, ``net.op_seconds``
  (histogram), and client-side ``net.client_{deadline_hits,reconnects,
  resubmits,sheds_seen}``.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from time import perf_counter
from typing import Any, Callable, Iterator

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_metrics",
    "set_metrics",
    "timed",
]


class Counter:
    """A monotonically increasing integer."""

    kind = "counter"

    def __init__(self, name: str):
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a gauge")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value

    def _reset(self) -> None:
        with self._lock:
            self._value = 0

    def snapshot(self) -> dict[str, Any]:
        return {"name": self.name, "type": self.kind, "value": self.value}


class Gauge:
    """A value that can move both ways (queue depth, cache size)."""

    kind = "gauge"

    def __init__(self, name: str):
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def add(self, delta: float) -> None:
        with self._lock:
            self._value += delta

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def _reset(self) -> None:
        with self._lock:
            self._value = 0.0

    def snapshot(self) -> dict[str, Any]:
        return {"name": self.name, "type": self.kind, "value": self.value}


class Histogram:
    """Observations with count/sum/min/max and rank-based percentiles.

    Keeps up to ``maxsamples`` raw observations (oldest dropped beyond
    that); ``count``/``sum`` always cover every observation, percentiles
    cover the retained window.
    """

    kind = "histogram"

    def __init__(self, name: str, maxsamples: int = 8192):
        if maxsamples < 1:
            raise ValueError("histogram must retain at least one sample")
        self.name = name
        self.maxsamples = maxsamples
        self._samples: list[float] = []
        self._count = 0
        self._sum = 0.0
        self._min: float | None = None
        self._max: float | None = None
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self._count += 1
            self._sum += value
            self._min = value if self._min is None else min(self._min, value)
            self._max = value if self._max is None else max(self._max, value)
            self._samples.append(value)
            overflow = len(self._samples) - self.maxsamples
            if overflow > 0:
                del self._samples[:overflow]

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    @property
    def mean(self) -> float:
        with self._lock:
            return self._sum / self._count if self._count else 0.0

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile over the retained samples; q in [0, 100]."""
        if not 0 <= q <= 100:
            raise ValueError("percentile rank must be within [0, 100]")
        with self._lock:
            if not self._samples:
                return 0.0
            ordered = sorted(self._samples)
        rank = max(0, min(len(ordered) - 1, round(q / 100.0 * (len(ordered) - 1))))
        return ordered[rank]

    def _reset(self) -> None:
        with self._lock:
            self._samples.clear()
            self._count = 0
            self._sum = 0.0
            self._min = None
            self._max = None

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            count, total = self._count, self._sum
            lo, hi = self._min, self._max
        return {
            "name": self.name,
            "type": self.kind,
            "count": count,
            "sum": total,
            "min": lo if lo is not None else 0.0,
            "max": hi if hi is not None else 0.0,
            "mean": total / count if count else 0.0,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }


class MetricsRegistry:
    """Get-or-create namespace of instruments.

    ``snapshot()`` returns ``{name: instrument.snapshot()}`` — a plain
    JSON-serializable dict, stable across calls, which is exactly what the
    exporters write and what :class:`repro.core.session.BatchResult`
    carries.
    """

    def __init__(self):
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}
        self._lock = threading.Lock()

    def _get(self, name: str, factory: Callable[[str], Any], kind: str):
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = self._instruments[name] = factory(name)
            elif instrument.kind != kind:
                raise ValueError(
                    f"metric {name!r} already registered as {instrument.kind}"
                )
            return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter, "counter")

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge, "gauge")

    def histogram(self, name: str, maxsamples: int = 8192) -> Histogram:
        return self._get(
            name, lambda n: Histogram(n, maxsamples=maxsamples), "histogram"
        )

    def names(self) -> tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self._instruments))

    def snapshot(self) -> dict[str, dict[str, Any]]:
        with self._lock:
            instruments = list(self._instruments.values())
        return {inst.name: inst.snapshot() for inst in sorted(instruments, key=lambda i: i.name)}

    def reset(self) -> None:
        """Zero every instrument; existing handles stay valid."""
        with self._lock:
            instruments = list(self._instruments.values())
        for instrument in instruments:
            instrument._reset()


@contextmanager
def timed(histogram: Histogram) -> Iterator[None]:
    """Observe the wall-clock of a ``with`` block into *histogram*."""
    start = perf_counter()
    try:
        yield
    finally:
        histogram.observe(perf_counter() - start)


# -- the process-local default registry ---------------------------------------

_REGISTRY = MetricsRegistry()


def get_metrics() -> MetricsRegistry:
    """The process-local default registry (the crypto caches publish here)."""
    return _REGISTRY


def set_metrics(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the default registry; returns the previous one.

    Instruments fetched before the swap keep feeding the old registry —
    only use this at process start (the CLI does, before building servers).
    """
    global _REGISTRY
    previous = _REGISTRY
    _REGISTRY = registry
    return previous
