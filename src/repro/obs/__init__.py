"""``repro.obs`` — zero-dependency tracing + metrics for the verify pipeline.

The observability layer the rest of the system reports through:

- :mod:`repro.obs.spans` — hierarchical wall-clock spans
  (``with tracer.span("prove_piece", piece=i): ...``) with a process-local
  default :class:`Tracer`;
- :mod:`repro.obs.metrics` — counters / gauges / histograms in a
  process-local :class:`MetricsRegistry` (``get_metrics()``);
- :mod:`repro.obs.exporters` — no-op, JSON-lines, and console-summary
  exporters plus the :func:`read_jsonl` round-trip reader.

Span taxonomy of one verification batch (see DESIGN.md "Observability")::

    batch                     one LitmusServer.execute_batch call
    ├── execute               the normal DBMS run (CC layer)
    ├── certify_unit*         serial memory-integrity certification
    ├── build_circuit*        per-piece circuit construction (dispatcher)
    ├── prove_piece*          per-piece prover job (pool worker thread)
    │   ├── replay            honest re-execution -> witness context
    │   ├── setup             trusted setup (or SetupCache hit)
    │   └── prove             backend proof generation
    └── respond               response assembly
    verify                    one LitmusClient.verify_response call
    └── verify_piece*         per-piece circuit match + proof check

``TimingReport.measured_*`` is derived from exactly these spans.
"""

from .exporters import (
    ConsoleSummaryExporter,
    Exporter,
    JsonLinesExporter,
    NoopExporter,
    export_all,
    read_jsonl,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_metrics,
    set_metrics,
    timed,
)
from .spans import Span, SpanRecord, Tracer, get_tracer, set_tracer, stage_totals

__all__ = [
    "ConsoleSummaryExporter",
    "Counter",
    "Exporter",
    "Gauge",
    "Histogram",
    "JsonLinesExporter",
    "MetricsRegistry",
    "NoopExporter",
    "Span",
    "SpanRecord",
    "Tracer",
    "export_all",
    "get_metrics",
    "get_tracer",
    "read_jsonl",
    "set_metrics",
    "set_tracer",
    "stage_totals",
    "timed",
]
