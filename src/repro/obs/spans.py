"""Hierarchical wall-clock spans for the verify pipeline.

A :class:`Span` is one timed region of the pipeline — ``batch``,
``execute``, ``prove_piece`` — opened with :meth:`Tracer.span` as a context
manager and closed on exit.  Spans nest: each tracer keeps a per-thread
stack of open spans, so a span opened while another is active becomes its
child automatically.  Work handed to a thread pool loses the dispatcher's
stack, so cross-thread children (a ``prove_piece`` job running on a prover
worker) pass ``parent=`` explicitly.

Clocks are ``time.perf_counter()`` — monotonic, high resolution, and the
same clock the pre-existing ``measured_*`` fields of ``TimingReport`` used,
so durations derived from spans are directly comparable with (and now the
source of) those fields.

The tracer's buffer of finished spans is bounded (``maxlen``); overflow
drops the *oldest* records and counts them in :attr:`Tracer.dropped`, so a
long-lived server cannot leak memory through its default tracer.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Iterator, Mapping

__all__ = ["Span", "SpanRecord", "Tracer", "get_tracer", "set_tracer"]

_span_ids = itertools.count(1)


@dataclass(frozen=True)
class SpanRecord:
    """An immutable finished span, as exporters and tests consume it.

    ``start``/``end`` are ``perf_counter`` timestamps (seconds, arbitrary
    epoch — only differences are meaningful); ``root_id`` identifies the
    outermost ancestor, so one batch's whole tree shares a ``root_id``.
    """

    name: str
    span_id: int
    parent_id: int | None
    root_id: int
    start: float
    end: float
    attrs: Mapping[str, Any]
    thread: str

    @property
    def duration(self) -> float:
        return self.end - self.start

    def as_dict(self) -> dict[str, Any]:
        return {
            "kind": "span",
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "root_id": self.root_id,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "attrs": dict(self.attrs),
            "thread": self.thread,
        }


@dataclass
class Span:
    """A live (open) span; becomes a :class:`SpanRecord` when it exits."""

    name: str
    span_id: int
    parent_id: int | None
    root_id: int
    start: float
    attrs: dict[str, Any] = field(default_factory=dict)

    def set(self, **attrs: Any) -> "Span":
        """Attach (or overwrite) attributes while the span is open."""
        self.attrs.update(attrs)
        return self


class _SpanContext:
    """Context manager that pushes/pops one span on the tracer."""

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self.span = span

    def __enter__(self) -> Span:
        self._tracer._push(self.span)
        return self.span

    def __exit__(self, exc_type, exc, tb) -> None:
        self._tracer._pop(self.span, error=exc is not None)


class Tracer:
    """Collects spans; thread-safe; one per process by default.

    Usage::

        with tracer.span("prove_piece", piece=i) as sp:
            ...
            sp.set(constraints=circuit.total_constraints)

    ``parent=`` overrides the per-thread stack, which is how spans created
    on pool worker threads stay attached to the dispatching batch span.
    """

    def __init__(self, maxlen: int = 100_000):
        if maxlen < 1:
            raise ValueError("tracer buffer must hold at least one span")
        self.maxlen = maxlen
        self.dropped = 0
        self._records: list[SpanRecord] = []
        self._lock = threading.Lock()
        self._local = threading.local()

    # -- span lifecycle -------------------------------------------------------

    def span(self, name: str, parent: Span | None = None, **attrs: Any) -> _SpanContext:
        """Open a span named *name*; context manager yielding the live span."""
        effective_parent = parent if parent is not None else self.current()
        span_id = next(_span_ids)
        span = Span(
            name=name,
            span_id=span_id,
            parent_id=effective_parent.span_id if effective_parent else None,
            root_id=effective_parent.root_id if effective_parent else span_id,
            start=perf_counter(),
            attrs=dict(attrs),
        )
        return _SpanContext(self, span)

    def current(self) -> Span | None:
        """The innermost open span on *this* thread, if any."""
        stack = getattr(self._local, "stack", None)
        return stack[-1] if stack else None

    def _push(self, span: Span) -> None:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        stack.append(span)

    def _pop(self, span: Span, error: bool = False) -> None:
        stack = getattr(self._local, "stack", [])
        if stack and stack[-1] is span:
            stack.pop()
        if error:
            span.attrs.setdefault("error", True)
        record = SpanRecord(
            name=span.name,
            span_id=span.span_id,
            parent_id=span.parent_id,
            root_id=span.root_id,
            start=span.start,
            end=perf_counter(),
            attrs=dict(span.attrs),
            thread=threading.current_thread().name,
        )
        with self._lock:
            self._records.append(record)
            overflow = len(self._records) - self.maxlen
            if overflow > 0:
                del self._records[:overflow]
                self.dropped += overflow

    # -- queries --------------------------------------------------------------

    def finished(self) -> tuple[SpanRecord, ...]:
        """Every finished span, oldest first."""
        with self._lock:
            return tuple(self._records)

    def spans_in(self, root_id: int) -> tuple[SpanRecord, ...]:
        """The finished spans of one tree (e.g. one verification batch)."""
        with self._lock:
            return tuple(r for r in self._records if r.root_id == root_id)

    def by_name(self, name: str) -> tuple[SpanRecord, ...]:
        with self._lock:
            return tuple(r for r in self._records if r.name == name)

    def names(self) -> set[str]:
        with self._lock:
            return {r.name for r in self._records}

    def clear(self) -> None:
        with self._lock:
            self._records.clear()
            self.dropped = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def __iter__(self) -> Iterator[SpanRecord]:
        return iter(self.finished())


def stage_totals(spans: Iterator[SpanRecord] | tuple[SpanRecord, ...]) -> dict[str, float]:
    """Sum of span durations per span name (the measured per-stage view)."""
    totals: dict[str, float] = {}
    for record in spans:
        totals[record.name] = totals.get(record.name, 0.0) + record.duration
    return totals


__all__.append("stage_totals")


# -- the process-local default tracer -----------------------------------------

_TRACER = Tracer()


def get_tracer() -> Tracer:
    """The process-local default tracer (what servers use unless told else)."""
    return _TRACER


def set_tracer(tracer: Tracer) -> Tracer:
    """Swap the process-local default tracer; returns the previous one."""
    global _TRACER
    previous = _TRACER
    _TRACER = tracer
    return previous
