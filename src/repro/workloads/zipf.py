"""Exact Zipfian sampling over [0, n).

P(rank k) is proportional to 1 / (k+1)^theta.  theta = 0 degenerates to the
uniform distribution; the paper's YCSB configuration uses theta = 0.6 and
Figure 8 sweeps theta from 0 to 1.6.  Sampling inverts the exact CDF with a
binary search (vectorized through numpy), so any theta >= 0 works.
"""

from __future__ import annotations

import numpy as np

from ..errors import WorkloadError

__all__ = ["ZipfSampler"]


class ZipfSampler:
    """Exact inverse-CDF Zipfian sampler."""

    def __init__(self, n: int, theta: float, seed: int = 0):
        if n < 1:
            raise WorkloadError("population size must be positive")
        if theta < 0:
            raise WorkloadError("the Zipfian parameter must be non-negative")
        self.n = n
        self.theta = theta
        self._rng = np.random.default_rng(seed)
        if theta == 0:
            self._cdf = None
        else:
            weights = 1.0 / np.power(np.arange(1, n + 1, dtype=np.float64), theta)
            self._cdf = np.cumsum(weights)
            self._cdf /= self._cdf[-1]

    def sample(self, count: int = 1) -> np.ndarray:
        """Draw *count* ranks (0 is the hottest)."""
        if count < 0:
            raise WorkloadError("cannot draw a negative number of samples")
        uniforms = self._rng.random(count)
        if self._cdf is None:
            return (uniforms * self.n).astype(np.int64)
        return np.searchsorted(self._cdf, uniforms, side="left").astype(np.int64)

    def sample_one(self) -> int:
        return int(self.sample(1)[0])

    def expected_top_fraction(self, top: int = 1) -> float:
        """Probability mass of the hottest *top* ranks (contention metric)."""
        if self._cdf is None:
            return min(1.0, top / self.n)
        top = min(top, self.n)
        return float(self._cdf[top - 1])
