"""TPC-C workload: New Order and Payment (paper Section 8 configuration).

"The TPC-C benchmark simulates 64 data warehouses and performs entry orders
on them.  We include two types of transactions Payment and New Order, which
cover around 90% of all the TPC-C transactions per the specification.
Moreover, we further assume that customers are selected based on IDs only
and the transactions do not insert into the HISTORY table ...  In this way,
the writing targets of transactions do not depend on the read values."

One further consequence of parameter-only write targets: order ids are
assigned by the *client* (it knows the deterministic submission order), and
New Order carries its order id as a parameter.  The transaction still reads
``district_next_oid`` and emits an equality check so a lying server cannot
skew the sequence unnoticed.

Rows are decomposed into one integer key per column (e.g.
``("stock_qty", w, i)``), which keeps every value circuit-representable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

import numpy as np

from ..db.txn import Transaction
from ..errors import WorkloadError
from ..vc.program import (
    Add,
    Const,
    Emit,
    Eq,
    If,
    KeyTemplate,
    Lt,
    Mul,
    Param,
    Program,
    ReadStmt,
    ReadVal,
    Sub,
    WriteStmt,
)

__all__ = ["TPCCWorkload", "build_new_order_program", "PAYMENT_PROGRAM"]


@lru_cache(maxsize=32)
def build_new_order_program(ol_cnt: int) -> Program:
    """The New Order stored procedure, unrolled for *ol_cnt* order lines.

    Per line: read item price and stock quantity, replenish stock per the
    TPC-C rule (subtract quantity; add 91 when the result would drop below
    10), bump S_YTD and S_ORDER_CNT, insert the ORDER-LINE row.  Then insert
    the ORDER and NEW-ORDER rows and advance D_NEXT_O_ID.
    """
    if not 1 <= ol_cnt <= 15:
        raise WorkloadError("TPC-C order lines must number 1..15")
    statements: list = [
        ReadStmt("next_oid", KeyTemplate(("district_next_oid", Param("w"), Param("d")))),
        WriteStmt(
            KeyTemplate(("district_next_oid", Param("w"), Param("d"))),
            Add(Param("oid"), Const(1)),
        ),
    ]
    amount_terms: list = []
    for line in range(ol_cnt):
        item, qty = f"i{line}", f"q{line}"
        statements.append(ReadStmt(f"price{line}", KeyTemplate(("item_price", Param(item)))))
        statements.append(
            ReadStmt(f"stock{line}", KeyTemplate(("stock_qty", Param("w"), Param(item))))
        )
        remaining = Sub(ReadVal(f"stock{line}"), Param(qty))
        statements.append(
            WriteStmt(
                KeyTemplate(("stock_qty", Param("w"), Param(item))),
                If(
                    Lt(ReadVal(f"stock{line}"), Add(Param(qty), Const(10))),
                    Add(remaining, Const(91)),
                    remaining,
                ),
            )
        )
        statements.append(
            ReadStmt(f"sytd{line}", KeyTemplate(("stock_ytd", Param("w"), Param(item))))
        )
        statements.append(
            WriteStmt(
                KeyTemplate(("stock_ytd", Param("w"), Param(item))),
                Add(ReadVal(f"sytd{line}"), Param(qty)),
            )
        )
        statements.append(
            ReadStmt(f"socnt{line}", KeyTemplate(("stock_order_cnt", Param("w"), Param(item))))
        )
        statements.append(
            WriteStmt(
                KeyTemplate(("stock_order_cnt", Param("w"), Param(item))),
                Add(ReadVal(f"socnt{line}"), Const(1)),
            )
        )
        line_amount = Mul(Param(qty), ReadVal(f"price{line}"))
        statements.append(
            WriteStmt(
                KeyTemplate(
                    ("order_line", Param("w"), Param("d"), Param("oid"), line)
                ),
                line_amount,
            )
        )
        amount_terms.append(line_amount)
    statements.append(
        WriteStmt(KeyTemplate(("order", Param("w"), Param("d"), Param("oid"))), Param("c"))
    )
    statements.append(
        WriteStmt(KeyTemplate(("new_order", Param("w"), Param("d"), Param("oid"))), Const(1))
    )
    total = amount_terms[0]
    for term in amount_terms[1:]:
        total = Add(total, term)
    statements.append(Emit(total))
    # The client-assigned order id must match the district counter.
    statements.append(Emit(Eq(ReadVal("next_oid"), Param("oid"))))
    params = ["w", "d", "c", "oid"]
    for line in range(ol_cnt):
        params.extend([f"i{line}", f"q{line}"])
    return Program(
        name=f"tpcc_new_order_{ol_cnt}",
        params=tuple(params),
        statements=tuple(statements),
    )


def _build_payment_program() -> Program:
    """The Payment stored procedure (customer selected by id, no HISTORY)."""
    statements = (
        ReadStmt("w_ytd", KeyTemplate(("warehouse_ytd", Param("w")))),
        WriteStmt(
            KeyTemplate(("warehouse_ytd", Param("w"))),
            Add(ReadVal("w_ytd"), Param("amount")),
        ),
        ReadStmt("d_ytd", KeyTemplate(("district_ytd", Param("w"), Param("d")))),
        WriteStmt(
            KeyTemplate(("district_ytd", Param("w"), Param("d"))),
            Add(ReadVal("d_ytd"), Param("amount")),
        ),
        ReadStmt(
            "c_bal", KeyTemplate(("customer_balance", Param("w"), Param("d"), Param("c")))
        ),
        WriteStmt(
            KeyTemplate(("customer_balance", Param("w"), Param("d"), Param("c"))),
            Sub(ReadVal("c_bal"), Param("amount")),
        ),
        ReadStmt(
            "c_ytd",
            KeyTemplate(("customer_ytd_payment", Param("w"), Param("d"), Param("c"))),
        ),
        WriteStmt(
            KeyTemplate(("customer_ytd_payment", Param("w"), Param("d"), Param("c"))),
            Add(ReadVal("c_ytd"), Param("amount")),
        ),
        ReadStmt(
            "c_cnt",
            KeyTemplate(("customer_payment_cnt", Param("w"), Param("d"), Param("c"))),
        ),
        WriteStmt(
            KeyTemplate(("customer_payment_cnt", Param("w"), Param("d"), Param("c"))),
            Add(ReadVal("c_cnt"), Const(1)),
        ),
        Emit(Sub(ReadVal("c_bal"), Param("amount"))),
    )
    return Program(name="tpcc_payment", params=("w", "d", "c", "amount"), statements=statements)


PAYMENT_PROGRAM: Program = _build_payment_program()


@dataclass
class TPCCWorkload:
    """Scaled TPC-C generator (the paper simulates 64 warehouses)."""

    num_warehouses: int = 4
    districts_per_warehouse: int = 10
    customers_per_district: int = 30
    num_items: int = 100
    order_lines: int = 10  # fixed template size (spec range is 5..15)
    seed: int = 7

    def __post_init__(self):
        if min(
            self.num_warehouses,
            self.districts_per_warehouse,
            self.customers_per_district,
            self.num_items,
        ) < 1:
            raise WorkloadError("TPC-C dimensions must be positive")
        self._rng = np.random.default_rng(self.seed)
        # Client-side order-id counters per (warehouse, district).
        self._next_oid: dict[tuple[int, int], int] = {}

    # -- initial database ----------------------------------------------------------

    def initial_data(self) -> dict[tuple, int]:
        data: dict[tuple, int] = {}
        for item in range(self.num_items):
            data[("item_price", item)] = 1 + item % 100
        for w in range(self.num_warehouses):
            data[("warehouse_ytd", w)] = 0
            for item in range(self.num_items):
                data[("stock_qty", w, item)] = 50 + (item * 7) % 50
                data[("stock_ytd", w, item)] = 0
                data[("stock_order_cnt", w, item)] = 0
            for d in range(self.districts_per_warehouse):
                data[("district_next_oid", w, d)] = 0
                data[("district_ytd", w, d)] = 0
                for c in range(self.customers_per_district):
                    data[("customer_balance", w, d, c)] = 10_000
                    data[("customer_ytd_payment", w, d, c)] = 0
                    data[("customer_payment_cnt", w, d, c)] = 0
        return data

    # -- transaction generators ------------------------------------------------------

    def new_order(self, txn_id: int) -> Transaction:
        w = int(self._rng.integers(self.num_warehouses))
        d = int(self._rng.integers(self.districts_per_warehouse))
        c = int(self._rng.integers(self.customers_per_district))
        oid = self._next_oid.get((w, d), 0)
        self._next_oid[(w, d)] = oid + 1
        items = self._rng.choice(self.num_items, size=self.order_lines, replace=False)
        params: dict[str, int] = {"w": w, "d": d, "c": c, "oid": oid}
        for line in range(self.order_lines):
            params[f"i{line}"] = int(items[line])
            params[f"q{line}"] = int(self._rng.integers(1, 11))
        return Transaction(
            txn_id=txn_id,
            program=build_new_order_program(self.order_lines),
            params=params,
        )

    def payment(self, txn_id: int) -> Transaction:
        return Transaction(
            txn_id=txn_id,
            program=PAYMENT_PROGRAM,
            params={
                "w": int(self._rng.integers(self.num_warehouses)),
                "d": int(self._rng.integers(self.districts_per_warehouse)),
                "c": int(self._rng.integers(self.customers_per_district)),
                "amount": int(self._rng.integers(1, 5000)),
            },
        )

    def generate_new_orders(self, num_txns: int, start_id: int = 1) -> list[Transaction]:
        return [self.new_order(start_id + i) for i in range(num_txns)]

    def generate_payments(self, num_txns: int, start_id: int = 1) -> list[Transaction]:
        return [self.payment(start_id + i) for i in range(num_txns)]

    def generate_mix(self, num_txns: int, start_id: int = 1) -> list[Transaction]:
        """A ~51/49 New Order / Payment mix (their in-spec relative share)."""
        txns = []
        for i in range(num_txns):
            maker = self.new_order if self._rng.random() < 0.51 else self.payment
            txns.append(maker(start_id + i))
        return txns

    def accesses_per_new_order(self) -> int:
        # district counter (r+w), per line: price r, stock qty r+w, ytd r+w,
        # order cnt r+w, order line w; plus order + new_order inserts.
        return 2 + self.order_lines * 8 + 2

    def accesses_per_payment(self) -> int:
        return 10
