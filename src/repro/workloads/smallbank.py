"""The SmallBank benchmark.

A standard OLTP micro-benchmark in the transaction-processing and
verifiable-database literature (H-Store/Calvin lineage; used by several of
the paper's related systems).  Each customer has a checking and a savings
account; six transaction types mix reads, read-modify-writes, and
cross-account moves.  All six compile to circuits (Max/Min handle the
overdraft rules without control flow), and the whole suite runs through the
verifiable pipeline exactly like YCSB and TPC-C.

Note on ranges: circuit comparisons require operands in [0, 2^32), so
balances must stay non-negative; the default initial balances and amount
ranges guarantee that for realistic run lengths (WriteCheck can overdraw a
single account, but never below the comparison range in practice).

Transaction types:

- ``Balance``           read checking + savings, emit the sum
- ``DepositChecking``   checking += amount
- ``TransactSavings``   savings += amount (may go negative; no check here)
- ``Amalgamate``        move everything from A's two accounts to B's checking
- ``WriteCheck``        checking -= amount, plus a 1-unit overdraft penalty
                        when the combined balance cannot cover it
- ``SendPayment``       checking-to-checking transfer
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..db.txn import Transaction
from ..errors import WorkloadError
from ..vc.program import (
    Add,
    Const,
    Emit,
    If,
    KeyTemplate,
    Lt,
    Param,
    Program,
    ReadStmt,
    ReadVal,
    Sub,
    WriteStmt,
)
from .zipf import ZipfSampler

__all__ = ["SmallBankWorkload", "SMALLBANK_PROGRAMS"]


def _checking(param: str) -> KeyTemplate:
    return KeyTemplate(("checking", Param(param)))


def _savings(param: str) -> KeyTemplate:
    return KeyTemplate(("savings", Param(param)))


def _build_programs() -> dict[str, Program]:
    programs: dict[str, Program] = {}

    programs["balance"] = Program(
        name="sb_balance",
        params=("c",),
        statements=(
            ReadStmt("chk", _checking("c")),
            ReadStmt("sav", _savings("c")),
            Emit(Add(ReadVal("chk"), ReadVal("sav"))),
        ),
    )

    programs["deposit_checking"] = Program(
        name="sb_deposit_checking",
        params=("c", "amount"),
        statements=(
            ReadStmt("chk", _checking("c")),
            WriteStmt(_checking("c"), Add(ReadVal("chk"), Param("amount"))),
            Emit(Add(ReadVal("chk"), Param("amount"))),
        ),
    )

    programs["transact_savings"] = Program(
        name="sb_transact_savings",
        params=("c", "amount"),
        statements=(
            ReadStmt("sav", _savings("c")),
            WriteStmt(_savings("c"), Add(ReadVal("sav"), Param("amount"))),
            Emit(Add(ReadVal("sav"), Param("amount"))),
        ),
    )

    programs["amalgamate"] = Program(
        name="sb_amalgamate",
        params=("src", "dst"),
        statements=(
            ReadStmt("s_chk", _checking("src")),
            ReadStmt("s_sav", _savings("src")),
            ReadStmt("d_chk", _checking("dst")),
            WriteStmt(_checking("src"), Const(0)),
            WriteStmt(_savings("src"), Const(0)),
            WriteStmt(
                _checking("dst"),
                Add(ReadVal("d_chk"), Add(ReadVal("s_chk"), ReadVal("s_sav"))),
            ),
            Emit(Add(ReadVal("s_chk"), ReadVal("s_sav"))),
        ),
    )

    # WriteCheck: if checking + savings < amount, an extra 1-unit penalty is
    # charged (the SmallBank overdraft rule), expressed branch-free.
    total = Add(ReadVal("chk"), ReadVal("sav"))
    penalty = If(Lt(total, Param("amount")), Const(1), Const(0))
    programs["write_check"] = Program(
        name="sb_write_check",
        params=("c", "amount"),
        statements=(
            ReadStmt("chk", _checking("c")),
            ReadStmt("sav", _savings("c")),
            WriteStmt(
                _checking("c"), Sub(Sub(ReadVal("chk"), Param("amount")), penalty)
            ),
            Emit(penalty),
        ),
    )

    programs["send_payment"] = Program(
        name="sb_send_payment",
        params=("src", "dst", "amount"),
        statements=(
            ReadStmt("s_chk", _checking("src")),
            ReadStmt("d_chk", _checking("dst")),
            WriteStmt(_checking("src"), Sub(ReadVal("s_chk"), Param("amount"))),
            WriteStmt(_checking("dst"), Add(ReadVal("d_chk"), Param("amount"))),
            Emit(Sub(ReadVal("s_chk"), Param("amount"))),
        ),
    )
    return programs


SMALLBANK_PROGRAMS: dict[str, Program] = _build_programs()

# The standard SmallBank mix (equal weights for the four single-customer
# types, lighter weights for the two-customer types).
_DEFAULT_MIX = (
    ("balance", 0.25),
    ("deposit_checking", 0.15),
    ("transact_savings", 0.15),
    ("amalgamate", 0.15),
    ("write_check", 0.15),
    ("send_payment", 0.15),
)


@dataclass
class SmallBankWorkload:
    """Transaction generator for SmallBank."""

    num_customers: int = 1000
    theta: float = 0.6  # hot-spot skew over customers
    initial_checking: int = 1_000
    initial_savings: int = 1_000
    seed: int = 17
    _sampler: ZipfSampler = field(init=False, repr=False)
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self):
        if self.num_customers < 2:
            raise WorkloadError("SmallBank needs at least two customers")
        self._sampler = ZipfSampler(self.num_customers, self.theta, seed=self.seed)
        self._rng = np.random.default_rng(self.seed + 1)

    def initial_data(self) -> dict[tuple, int]:
        data: dict[tuple, int] = {}
        for customer in range(self.num_customers):
            data[("checking", customer)] = self.initial_checking
            data[("savings", customer)] = self.initial_savings
        return data

    def total_money(self) -> int:
        return self.num_customers * (self.initial_checking + self.initial_savings)

    def _pick_kind(self) -> str:
        roll = self._rng.random()
        cumulative = 0.0
        for kind, weight in _DEFAULT_MIX:
            cumulative += weight
            if roll < cumulative:
                return kind
        return _DEFAULT_MIX[-1][0]

    def _two_customers(self) -> tuple[int, int]:
        a = self._sampler.sample_one()
        b = self._sampler.sample_one()
        if b == a:
            b = (a + 1) % self.num_customers
        return a, b

    def generate(self, num_txns: int, start_id: int = 1) -> list[Transaction]:
        txns: list[Transaction] = []
        for index in range(num_txns):
            kind = self._pick_kind()
            program = SMALLBANK_PROGRAMS[kind]
            if kind in ("balance",):
                params = {"c": self._sampler.sample_one()}
            elif kind in ("deposit_checking", "transact_savings", "write_check"):
                params = {
                    "c": self._sampler.sample_one(),
                    "amount": int(self._rng.integers(1, 100)),
                }
            elif kind == "amalgamate":
                src, dst = self._two_customers()
                params = {"src": src, "dst": dst}
            else:  # send_payment
                src, dst = self._two_customers()
                params = {"src": src, "dst": dst, "amount": int(self._rng.integers(1, 50))}
            txns.append(Transaction(start_id + index, program, params))
        return txns
