"""YCSB workload (paper Section 8 configuration).

"The YCSB benchmark mimics a cloud database service with a table of 10
million rows ... The access pattern of the rows follows the Zipfian
distribution with the Zipfian parameter theta = 0.6.  Each transaction
accesses two rows where each access has a 50% chance to be a write
operation or otherwise is a read operation."

Row payloads in the paper are 1 kB; here a row is an integer column (the
digest machinery hashes values anyway, so payload width only affects the
cost model, not the protocol).  Four stored-procedure templates cover the
read/write patterns of a two-access transaction.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..db.txn import Transaction
from ..errors import WorkloadError
from ..vc.program import (
    Add,
    Const,
    Emit,
    Expr,
    KeyTemplate,
    Mul,
    Param,
    Program,
    ReadStmt,
    ReadVal,
    WriteStmt,
)
from .zipf import ZipfSampler

__all__ = ["YCSBWorkload", "YCSB_PROGRAMS"]

_TABLE = "usertable"
_MIX_DEPTH = 8  # multiplicative payload-mixing steps per write


def _row_key(param: str) -> KeyTemplate:
    return KeyTemplate((_TABLE, Param(param)))


def _mixed_payload(write_param: str) -> Expr:
    """The stored row value: a short multiplicative mix of the payload.

    The paper's rows carry 1 kB of data that the transaction logic must
    encode into the circuit; this mixing chain is the scaled-down stand-in,
    giving the write path a non-trivial gate count.
    """
    value: Expr = Add(Param(write_param), Param("salt"))
    for step in range(_MIX_DEPTH - 1):
        value = Mul(value, Add(Param(write_param), Const(step + 3)))
    return value


def _build_programs() -> dict[str, Program]:
    """One template per two-access read/write pattern."""
    programs: dict[str, Program] = {}
    for pattern in ("rr", "rw", "wr", "ww"):
        statements: list = []
        emits: list = []
        for index, op in enumerate(pattern):
            key = _row_key(f"k{index}")
            if op == "r":
                name = f"v{index}"
                statements.append(ReadStmt(name, key))
                emits.append(Emit(ReadVal(name)))
            else:
                statements.append(WriteStmt(key, _mixed_payload(f"w{index}")))
        statements.extend(emits)
        programs[pattern] = Program(
            name=f"ycsb_{pattern}",
            params=tuple(
                [f"k{i}" for i in range(2)]
                + [f"w{i}" for i, op in enumerate(pattern) if op == "w"]
                + ["salt"]
            ),
            statements=tuple(statements),
        )
    return programs


YCSB_PROGRAMS: dict[str, Program] = _build_programs()


@dataclass
class YCSBWorkload:
    """Transaction generator for the paper's YCSB configuration."""

    num_rows: int = 10_000
    theta: float = 0.6
    write_ratio: float = 0.5
    seed: int = 42
    _sampler: ZipfSampler = field(init=False, repr=False)
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self):
        if not 0 <= self.write_ratio <= 1:
            raise WorkloadError("write ratio must be in [0, 1]")
        self._sampler = ZipfSampler(self.num_rows, self.theta, seed=self.seed)
        self._rng = np.random.default_rng(self.seed + 1)

    def initial_data(self, populated_rows: int | None = None) -> dict[tuple, int]:
        """Pre-populated rows (defaults to the whole scaled table)."""
        count = self.num_rows if populated_rows is None else populated_rows
        return {(_TABLE, row): 1000 + row for row in range(count)}

    def generate(self, num_txns: int, start_id: int = 1) -> list[Transaction]:
        """Draw *num_txns* two-access transactions."""
        keys = self._sampler.sample(2 * num_txns)
        is_write = self._rng.random(2 * num_txns) < self.write_ratio
        values = self._rng.integers(0, 2**20, size=2 * num_txns)
        txns: list[Transaction] = []
        for index in range(num_txns):
            k0, k1 = int(keys[2 * index]), int(keys[2 * index + 1])
            if k1 == k0:
                k1 = (k1 + 1) % self.num_rows  # two *distinct* rows per txn
            ops = "".join("w" if is_write[2 * index + j] else "r" for j in range(2))
            params: dict[str, int] = {"k0": k0, "k1": k1, "salt": index % 97}
            for j, op in enumerate(ops):
                if op == "w":
                    params[f"w{j}"] = int(values[2 * index + j])
            txns.append(
                Transaction(
                    txn_id=start_id + index,
                    program=YCSB_PROGRAMS[ops],
                    params=params,
                )
            )
        return txns

    def accesses_per_txn(self) -> int:
        return 2
