"""Benchmark workloads (paper Section 8).

- :mod:`repro.workloads.ycsb` — the Yahoo Cloud Serving Benchmark: a single
  table under Zipfian access (theta = 0.6 by default), two accesses per
  transaction, 50% writes;
- :mod:`repro.workloads.tpcc` — TPC-C New Order and Payment transactions
  over the standard warehouse/district/customer/stock schema, with the
  paper's simplifications (customers selected by id, no HISTORY inserts,
  client-assigned order ids) so write targets are parameter-only;
- :mod:`repro.workloads.smallbank` — the SmallBank micro-benchmark (six
  transaction types over checking/savings accounts);
- :mod:`repro.workloads.zipf` — an exact Zipfian sampler.

Row counts are scaled down relative to the paper (which uses 10M-row / 10GB
tables); the harness extrapolates timing through the cost model.
"""

from .smallbank import SmallBankWorkload
from .tpcc import TPCCWorkload
from .ycsb import YCSBWorkload
from .zipf import ZipfSampler

__all__ = ["SmallBankWorkload", "TPCCWorkload", "YCSBWorkload", "ZipfSampler"]
