"""Length-prefixed, versioned wire codec for the Litmus client/server link.

One frame on the wire is::

    +-------+---------+----------+-----------+---------+----------------+
    | magic | version | msg type | length    | crc32   | payload        |
    | LNP1  | 1 byte  | 1 byte   | 4 bytes   | 4 bytes | length bytes   |
    +-------+---------+----------+-----------+---------+----------------+

- ``magic`` pins the protocol family (``LNP1`` — Litmus Network Protocol
  v1 framing); anything else is garbage or a port collision and fails
  fast with :class:`~repro.errors.WireFormatError`;
- ``version`` is the *semantic* protocol version
  (:data:`PROTOCOL_VERSION`); a peer speaking a newer one is rejected
  instead of misinterpreted;
- ``length`` is the payload byte count, capped at
  :data:`MAX_FRAME_BYTES` so a corrupt or hostile length prefix cannot
  make the receiver allocate gigabytes;
- ``crc32`` covers the payload, catching in-flight corruption before the
  JSON layer can produce a confusing half-parse.

Payloads are canonical UTF-8 JSON objects.  The message vocabulary is the
existing protocol surface lifted onto the wire — submit / flush / response
/ error plus the connection-management messages (hello, heartbeat, status,
resolve, close) the networked deployment needs.

Transaction-output maps are JSON objects keyed by stringified txn ids
(:func:`outputs_to_wire` / :func:`outputs_from_wire`): JSON object keys
must be strings, and Python's arbitrary-precision ints make the digest
fields round-trip exactly.
"""

from __future__ import annotations

import json
import socket
import struct
import zlib
from dataclasses import dataclass
from typing import Mapping

from ..errors import ConnectionLost, WireFormatError
from ..obs.metrics import MetricsRegistry

__all__ = [
    "Frame",
    "MAX_FRAME_BYTES",
    "MSG_CLOSE",
    "MSG_CLOSE_OK",
    "MSG_ERROR",
    "MSG_FLUSH",
    "MSG_HELLO",
    "MSG_HELLO_OK",
    "MSG_PING",
    "MSG_PONG",
    "MSG_RESOLVE",
    "MSG_RESOLVED",
    "MSG_RESULT",
    "MSG_STATUS",
    "MSG_STATUS_OK",
    "MSG_SUBMIT",
    "MSG_TICKET",
    "PROTOCOL_VERSION",
    "Transport",
    "decode_frame",
    "encode_frame",
    "message_name",
    "outputs_from_wire",
    "outputs_to_wire",
]

MAGIC = b"LNP1"
PROTOCOL_VERSION = 1
# 64 MiB: generous for command logs and output maps, small enough that a
# corrupt length prefix cannot exhaust memory.
MAX_FRAME_BYTES = 64 * 1024 * 1024

_HEADER = struct.Struct(">4sBBII")

# -- message vocabulary ------------------------------------------------------

MSG_HELLO = 1  # client → server: {client_id, protocol}
MSG_HELLO_OK = 2  # server → client: {server, protocol, digest}
MSG_SUBMIT = 3  # client → server: {op, user, program, params, timeout}
MSG_TICKET = 4  # server → client: {txn_id}
MSG_FLUSH = 5  # client → server: {op, txns, timeout}
MSG_RESULT = 6  # server → client: {txns, digest, attempts, num_txns, ...}
MSG_PING = 7  # client → server: {} (heartbeat)
MSG_PONG = 8  # server → client: {}
MSG_STATUS = 9  # client → server: {}
MSG_STATUS_OK = 10  # server → client: {digest, queued, connections, draining}
MSG_RESOLVE = 11  # client → server: {txns} (after reconnect)
MSG_RESOLVED = 12  # server → client: {txns, pending, unknown}
MSG_CLOSE = 13  # client → server: {}
MSG_CLOSE_OK = 14  # server → client: {}
MSG_ERROR = 15  # server → client: {code, message, retry_after}

_NAMES = {
    MSG_HELLO: "hello",
    MSG_HELLO_OK: "hello_ok",
    MSG_SUBMIT: "submit",
    MSG_TICKET: "ticket",
    MSG_FLUSH: "flush",
    MSG_RESULT: "result",
    MSG_PING: "ping",
    MSG_PONG: "pong",
    MSG_STATUS: "status",
    MSG_STATUS_OK: "status_ok",
    MSG_RESOLVE: "resolve",
    MSG_RESOLVED: "resolved",
    MSG_CLOSE: "close",
    MSG_CLOSE_OK: "close_ok",
    MSG_ERROR: "error",
}


def message_name(msg_type: int) -> str:
    """Human-readable name of a message type (for logs and errors)."""
    return _NAMES.get(msg_type, f"unknown({msg_type})")


@dataclass(frozen=True)
class Frame:
    """One decoded wire frame: a message type plus its JSON payload."""

    msg_type: int
    payload: dict


def encode_frame(msg_type: int, payload: Mapping | None = None) -> bytes:
    """Serialize one message into its on-wire byte representation."""
    if msg_type not in _NAMES:
        raise WireFormatError(f"unknown message type {msg_type}")
    body = json.dumps(
        dict(payload or {}), separators=(",", ":"), ensure_ascii=False
    ).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise WireFormatError(
            f"payload of {len(body)} bytes exceeds the {MAX_FRAME_BYTES}-byte "
            "frame cap"
        )
    header = _HEADER.pack(
        MAGIC, PROTOCOL_VERSION, msg_type, len(body), zlib.crc32(body) & 0xFFFFFFFF
    )
    return header + body


def decode_frame(buffer: bytes) -> tuple[Frame, int]:
    """Decode one frame from the head of *buffer*.

    Returns ``(frame, consumed_bytes)``.  Raises
    :class:`~repro.errors.WireFormatError` on bad magic, version, length,
    checksum, or payload — and :class:`~repro.errors.ConnectionLost` when
    the buffer holds only a prefix of a frame (the stream ended mid-frame).
    """
    if len(buffer) < _HEADER.size:
        raise ConnectionLost(
            f"stream ended inside a frame header ({len(buffer)} of "
            f"{_HEADER.size} bytes)"
        )
    magic, version, msg_type, length, crc = _HEADER.unpack_from(buffer)
    _validate_header(magic, version, msg_type, length)
    end = _HEADER.size + length
    if len(buffer) < end:
        raise ConnectionLost(
            f"stream ended inside a {length}-byte payload "
            f"({len(buffer) - _HEADER.size} bytes received)"
        )
    body = buffer[_HEADER.size : end]
    _validate_body(body, crc, msg_type)
    return Frame(msg_type, _parse_payload(body)), end


def _validate_header(magic: bytes, version: int, msg_type: int, length: int) -> None:
    if magic != MAGIC:
        raise WireFormatError(f"bad frame magic {magic!r} (expected {MAGIC!r})")
    if version != PROTOCOL_VERSION:
        raise WireFormatError(
            f"peer speaks protocol version {version}; this build only "
            f"understands {PROTOCOL_VERSION}"
        )
    if msg_type not in _NAMES:
        raise WireFormatError(f"unknown message type {msg_type}")
    if length > MAX_FRAME_BYTES:
        raise WireFormatError(
            f"frame claims a {length}-byte payload, over the "
            f"{MAX_FRAME_BYTES}-byte cap"
        )


def _validate_body(body: bytes, crc: int, msg_type: int) -> None:
    actual = zlib.crc32(body) & 0xFFFFFFFF
    if actual != crc:
        raise WireFormatError(
            f"payload checksum mismatch on {message_name(msg_type)} frame "
            f"(got {actual:#010x}, header says {crc:#010x})"
        )


def _parse_payload(body: bytes) -> dict:
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WireFormatError(f"frame payload is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise WireFormatError("frame payload must be a JSON object")
    return payload


# -- output-map wire shape ---------------------------------------------------


def outputs_to_wire(outputs: Mapping[int, tuple]) -> dict[str, list]:
    """``{txn_id: (value, ...)}`` → JSON-safe ``{"txn_id": [value, ...]}``."""
    return {str(txn_id): list(values) for txn_id, values in outputs.items()}


def outputs_from_wire(wire: Mapping[str, list]) -> dict[int, tuple[int, ...]]:
    """Inverse of :func:`outputs_to_wire`; rejects non-integer keys."""
    try:
        return {int(key): tuple(values) for key, values in wire.items()}
    except (TypeError, ValueError) as exc:
        raise WireFormatError(f"malformed output map on the wire: {exc}") from exc


# -- blocking socket transport ----------------------------------------------


class Transport:
    """Frame-at-a-time blocking transport over a connected socket.

    ``send``/``recv`` move whole frames; partial reads are retried until
    the frame completes or the peer disappears (:class:`ConnectionLost`).
    A ``socket.timeout`` from the underlying socket propagates unchanged —
    the server turns it into idle reaping, the client into a deadline.

    When *registry* is provided, ``net.bytes_sent`` / ``net.bytes_received``
    and per-direction frame counters are maintained, so byte-level traffic
    shows up in the standard metrics export.
    """

    def __init__(self, sock: socket.socket, registry: MetricsRegistry | None = None):
        self.sock = sock
        self.registry = registry
        self._recv_buffer = b""
        self.closed = False

    def send(self, msg_type: int, payload: Mapping | None = None) -> None:
        data = encode_frame(msg_type, payload)
        try:
            self.sock.sendall(data)
        except (BrokenPipeError, ConnectionResetError, OSError) as exc:
            self.closed = True
            raise ConnectionLost(f"send failed: {exc}") from exc
        if self.registry is not None:
            self.registry.counter("net.bytes_sent").inc(len(data))
            self.registry.counter("net.frames_sent").inc()

    def recv(self) -> Frame:
        header = self._read_exact(_HEADER.size)
        magic, version, msg_type, length, crc = _HEADER.unpack(header)
        _validate_header(magic, version, msg_type, length)
        body = self._read_exact(length)
        _validate_body(body, crc, msg_type)
        if self.registry is not None:
            self.registry.counter("net.bytes_received").inc(_HEADER.size + length)
            self.registry.counter("net.frames_received").inc()
        return Frame(msg_type, _parse_payload(body))

    def _read_exact(self, count: int) -> bytes:
        while len(self._recv_buffer) < count:
            try:
                chunk = self.sock.recv(65536)
            except (ConnectionResetError, BrokenPipeError) as exc:
                self.closed = True
                raise ConnectionLost(f"recv failed: {exc}") from exc
            if not chunk:
                self.closed = True
                raise ConnectionLost(
                    "peer closed the connection mid-frame"
                    if self._recv_buffer
                    else "peer closed the connection"
                )
            self._recv_buffer += chunk
        data, self._recv_buffer = (
            self._recv_buffer[:count],
            self._recv_buffer[count:],
        )
        return data

    def close(self) -> None:
        if not self.closed:
            self.closed = True
            try:
                self.sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
        try:
            self.sock.close()
        except OSError:
            pass
