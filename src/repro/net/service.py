"""The networked Litmus service: a socket front-end over one ``LitmusSession``.

The paper's deployment model (Sec 1, Fig 1) is a lightweight client talking
to an untrusted server over a network.  :class:`LitmusService` is that
server process: it owns a single (typically WAL-enabled)
:class:`~repro.core.session.LitmusSession` — the execute/prove/verify/
journal pipeline — and exposes it over the length-prefixed wire protocol
of :mod:`repro.net.codec`.  Robustness, not plumbing, is the point:

- **admission control** — every submit/flush is a queued work item for the
  single session worker; the queue is bounded (``queue_limit``) and an
  arrival that finds it full is *shed* with a typed
  :class:`~repro.errors.Overloaded` carrying a retry-after hint derived
  from live queue depth × a moving average of recent service times, so a
  storm degrades into polite backoff instead of collapse;
- **deadlines** — each request carries a client timeout; the service
  propagates it as an absolute deadline into
  :meth:`~repro.core.session.LitmusSession.flush`, which cancels (server
  rollback + re-queue) rather than half-commits when the deadline passes
  mid-execution.  An op that is already expired when the worker dequeues
  it is dropped without touching the session;
- **connection management** — at most ``max_connections`` concurrent
  clients (excess connects are refused with a retry-after), idle
  connections are reaped after ``idle_timeout`` seconds of silence, and
  heartbeat PING frames keep a quiet-but-alive client unreaped;
- **graceful degradation on shutdown** — ``shutdown()`` stops accepting,
  refuses new work with :class:`~repro.errors.ServiceUnavailable`, drains
  every admitted op through the worker (in-flight batches finish and ack
  through the WAL barrier), then closes the session (final fsync +
  durable checkpoint) before tearing connections down;
- **exactly-once for acknowledged work** — txn outcomes land in a bounded
  *result journal* keyed by txn id, and submits are deduplicated by a
  per-client op id, so a client that lost a response can reconnect,
  re-send, and receive the already-committed answer instead of
  double-executing it.

Every behavior is observable: ``net.connections_active``,
``net.connections_total``, ``net.connections_refused``,
``net.queue_depth``, ``net.sheds``, ``net.deadline_hits``,
``net.idle_reaped``, ``net.heartbeats``, ``net.requests``, ``net.errors``,
``net.bytes_sent`` / ``net.bytes_received`` and the
``net.op_seconds`` histogram all flow through :mod:`repro.obs` and the
standard JSONL export.

Proxy mode: pass ``channel=SimulatedChannel(...)`` and every accepted
connection is wrapped in :class:`~repro.net.channel.FaultyTransport`, so
the seeded drop/delay faults of :mod:`repro.faults` (``DropMessage``'s
wire-level cousins) apply to live traffic.  The wrapped session can carry
its own :class:`~repro.faults.FaultPlan` as always, which puts proof
corruption and prover deaths behind the same socket.
"""

from __future__ import annotations

import queue
import socket
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Iterable, Mapping

from ..core.api import DigestVector
from ..core.session import LitmusSession
from ..core.sharding import ShardedSession
from ..errors import (
    ConnectionLost,
    DeadlineExceeded,
    ReproError,
    WireFormatError,
)
from ..obs.metrics import MetricsRegistry, get_metrics
from ..sim.network import SimulatedChannel
from ..vc.program import Program
from .channel import FaultyTransport
from .codec import (
    MSG_CLOSE,
    MSG_CLOSE_OK,
    MSG_ERROR,
    MSG_FLUSH,
    MSG_HELLO,
    MSG_HELLO_OK,
    MSG_PING,
    MSG_PONG,
    MSG_RESOLVE,
    MSG_RESOLVED,
    MSG_RESULT,
    MSG_STATUS,
    MSG_STATUS_OK,
    MSG_SUBMIT,
    MSG_TICKET,
    PROTOCOL_VERSION,
    Transport,
    message_name,
    outputs_to_wire,
)

__all__ = ["LitmusService", "ServiceConfig"]


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables of the networked service (all robustness dials).

    - ``host``/``port`` — bind address; port 0 picks a free one (the real
      address lands on :attr:`LitmusService.address`);
    - ``max_connections`` — concurrent client cap; excess connects get a
      typed refusal with a retry-after hint, then the socket closes;
    - ``queue_limit`` — admission-queue bound; the overload knob;
    - ``idle_timeout`` — seconds of silence before a connection is reaped
      (heartbeats count as activity);
    - ``default_timeout`` — per-request deadline applied when the client
      does not send one;
    - ``drain_grace`` — seconds shutdown waits for connection threads to
      deliver their final replies before force-closing sockets;
    - ``journal_size`` — resolved-txn results retained for idempotent
      replay (exactly-once acks across reconnects);
    - ``op_cache_size`` — per-process dedup window for submit op ids;
    - ``retry_after_floor`` — minimum shed hint, so clients never spin;
    - ``num_shards`` — how many verified engines the wrapped session must
      have (1 = an unsharded ``LitmusSession``).  Purely a configuration
      cross-check: the session passed to the service carries the real
      shard router, and a mismatch here fails fast at construction
      instead of serving a differently partitioned keyspace than the
      operator asked for.
    """

    host: str = "127.0.0.1"
    port: int = 0
    max_connections: int = 32
    queue_limit: int = 64
    idle_timeout: float = 30.0
    default_timeout: float = 30.0
    drain_grace: float = 1.0
    journal_size: int = 4096
    op_cache_size: int = 4096
    retry_after_floor: float = 0.05
    num_shards: int = 1


class _Op:
    """One admitted unit of work, handed from a connection to the worker."""

    __slots__ = ("kind", "client_id", "payload", "deadline", "done", "reply")

    def __init__(self, kind: str, client_id: str, payload: dict, deadline: float):
        self.kind = kind
        self.client_id = client_id
        self.payload = payload
        self.deadline = deadline
        self.done = threading.Event()
        self.reply: tuple[int, dict] | None = None


_STOP = object()


class _CloseRequested(Exception):
    """Internal: the client sent MSG_CLOSE; exit the connection loop."""


class LitmusService:
    """Threaded socket server wrapping one :class:`LitmusSession`.

    *programs* registers the stored procedures clients may name in submit
    messages (merged with any the session already knows); the service
    never deserializes code from the wire — a program name that is not
    registered is a typed ``unknown_program`` error, which is both the
    security posture (clients cannot inject procedures) and the paper's
    model (client and server pre-share the stored procedures).

    ``on_op`` is an instrumentation hook called by the worker thread with
    the op kind just before executing it — tests use it to hold the worker
    and deterministically fill the admission queue; production leaves it
    ``None``.
    """

    def __init__(
        self,
        session: LitmusSession | ShardedSession,
        programs: Iterable[Program] | Mapping[str, Program] = (),
        config: ServiceConfig | None = None,
        registry: MetricsRegistry | None = None,
        channel: SimulatedChannel | None = None,
        on_op: Callable[[str], None] | None = None,
    ):
        self.session = session
        self.config = config or ServiceConfig()
        session_shards = getattr(session, "num_shards", 1)
        if self.config.num_shards != session_shards:
            raise ReproError(
                f"ServiceConfig.num_shards={self.config.num_shards} but the "
                f"wrapped session has {session_shards} shard(s)"
            )
        self.registry = registry if registry is not None else get_metrics()
        self.channel = channel
        self.on_op = on_op
        if isinstance(programs, Mapping):
            self.programs = dict(programs)
        else:
            self.programs = {program.name: program for program in programs}
        # Programs the session learned before the service wrapped it.
        self.programs.update(session._programs)
        self.address: tuple[str, int] | None = None
        self._listener: socket.socket | None = None
        self._queue: queue.Queue = queue.Queue(maxsize=self.config.queue_limit)
        self._staged: dict[str, list] = {}  # client_id -> [(txn_id, ticket)]
        self._journal: OrderedDict[int, dict] = OrderedDict()
        self._op_cache: OrderedDict[tuple[str, int], tuple[int, dict]] = OrderedDict()
        self._connections: list[tuple[threading.Thread, object]] = []
        self._conn_lock = threading.Lock()
        self._draining = threading.Event()
        self._stopped = threading.Event()
        self._shutdown_lock = threading.Lock()
        self._shutdown_done = False
        self._accept_thread: threading.Thread | None = None
        self._worker_thread: threading.Thread | None = None
        self._ema_op_seconds = 0.05  # optimistic prior; corrected by real ops

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> tuple[str, int]:
        """Bind, listen, and spawn the accept + worker threads.

        Returns the bound ``(host, port)``.  Raises ``OSError`` (e.g.
        ``EADDRINUSE``) without leaving threads behind when the bind
        fails — the caller owns reporting that cleanly.
        """
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        try:
            listener.bind((self.config.host, self.config.port))
            listener.listen(self.config.max_connections + 8)
        except OSError:
            listener.close()
            raise
        self._listener = listener
        self.address = listener.getsockname()[:2]
        self._worker_thread = threading.Thread(
            target=self._worker_loop, name="litmus-service-worker", daemon=True
        )
        self._worker_thread.start()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="litmus-service-accept", daemon=True
        )
        self._accept_thread.start()
        return self.address

    def serve_forever(self) -> None:
        """``start()`` then block until :meth:`shutdown` completes."""
        if self._listener is None:
            self.start()
        self._stopped.wait()

    def shutdown(self) -> None:
        """Gracefully drain and stop; idempotent and thread-safe.

        The shed/drain state machine: *accepting → draining → stopped*.
        Draining means the listener is closed, every new submit/flush gets
        :class:`~repro.errors.ServiceUnavailable`, and the worker finishes
        every op that was already admitted — an in-flight batch completes
        its verification round and its WAL ack.  Only then is the session
        closed (flushing the WAL's last sync window and final checkpoint)
        and the connections torn down.
        """
        with self._shutdown_lock:
            if self._shutdown_done:
                return
            self._shutdown_done = True
        self._draining.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)
        if self._worker_thread is not None:
            # The sentinel queues *behind* every admitted op: drain, then stop.
            self._queue.put(_STOP)
            self._worker_thread.join()
        # Durability epilogue: the WAL's batch-policy sync window is flushed
        # and the segment closed before any connection is dropped.
        self.session.close()
        # Give connection threads a grace window to deliver final replies,
        # then force-close whatever is still blocked in recv().
        deadline = time.monotonic() + self.config.drain_grace
        with self._conn_lock:
            connections = list(self._connections)
        for thread, _transport in connections:
            thread.join(timeout=max(0.0, deadline - time.monotonic()))
        for _thread, transport in connections:
            transport.close()
        for thread, _transport in connections:
            thread.join(timeout=1.0)
        self._stopped.set()

    @property
    def draining(self) -> bool:
        return self._draining.is_set()

    # -- accept / connection threads ---------------------------------------------

    def _accept_loop(self) -> None:
        while not self._draining.is_set():
            try:
                sock, _addr = self._listener.accept()
            except OSError:
                break  # listener closed by shutdown()
            if self._draining.is_set():
                sock.close()
                break
            transport = self._wrap(sock)
            with self._conn_lock:
                self._connections = [
                    (thread, trans)
                    for thread, trans in self._connections
                    if thread.is_alive()
                ]
                active = len(self._connections)
                if active >= self.config.max_connections:
                    refused = True
                else:
                    refused = False
                    thread = threading.Thread(
                        target=self._serve_connection,
                        args=(transport,),
                        name="litmus-service-conn",
                        daemon=True,
                    )
                    self._connections.append((thread, transport))
            if refused:
                self.registry.counter("net.connections_refused").inc()
                self._send_quietly(
                    transport,
                    *self._error(
                        "overloaded",
                        f"connection limit of {self.config.max_connections} "
                        "reached",
                        retry_after=self._retry_after_hint(),
                    ),
                )
                transport.close()
            else:
                thread.start()

    def _wrap(self, sock: socket.socket):
        transport = Transport(sock, registry=self.registry)
        if self.channel is not None:
            return FaultyTransport(transport, self.channel)
        return transport

    def _serve_connection(self, transport) -> None:
        self.registry.counter("net.connections_total").inc()
        self.registry.gauge("net.connections_active").add(1)
        client_id: str | None = None
        sock = transport.sock if isinstance(transport, Transport) else transport.transport.sock
        sock.settimeout(self.config.idle_timeout)
        try:
            while True:
                try:
                    frame = transport.recv()
                except TimeoutError:
                    self.registry.counter("net.idle_reaped").inc()
                    break
                except (ConnectionLost, WireFormatError):
                    break
                try:
                    client_id = self._handle_frame(transport, frame, client_id)
                except _CloseRequested:
                    break
                except ConnectionLost:
                    break
                if self._draining.is_set():
                    # The reply (if any) is out; finish the conversation.
                    break
        finally:
            transport.close()
            self.registry.gauge("net.connections_active").add(-1)

    def _handle_frame(self, transport, frame, client_id: str | None) -> str | None:
        """Dispatch one frame; returns the (possibly updated) client id."""
        self.registry.counter("net.requests").inc()
        kind = frame.msg_type
        if kind == MSG_HELLO:
            client_id = str(frame.payload.get("client_id", ""))
            if frame.payload.get("protocol") != PROTOCOL_VERSION:
                transport.send(
                    *self._error(
                        "bad_request",
                        f"unsupported protocol {frame.payload.get('protocol')!r}",
                    )
                )
                return client_id
            transport.send(
                MSG_HELLO_OK,
                {
                    "server": "litmus",
                    "protocol": PROTOCOL_VERSION,
                    "digest": int(self.session.digest),
                    "digest_vector": self._digest_wire(),
                },
            )
            return client_id
        if kind == MSG_PING:
            self.registry.counter("net.heartbeats").inc()
            transport.send(MSG_PONG, {})
            return client_id
        if kind == MSG_STATUS:
            transport.send(MSG_STATUS_OK, self._status())
            return client_id
        if kind == MSG_CLOSE:
            self._send_quietly(transport, MSG_CLOSE_OK, {})
            raise _CloseRequested()
        if kind == MSG_RESOLVE:
            transport.send(MSG_RESOLVED, self._resolve(client_id, frame.payload))
            return client_id
        if kind in (MSG_SUBMIT, MSG_FLUSH):
            if client_id is None:
                transport.send(
                    *self._error("bad_request", "hello must precede work messages")
                )
                return client_id
            reply = self._admit(
                "submit" if kind == MSG_SUBMIT else "flush", client_id, frame.payload
            )
            transport.send(*reply)
            return client_id
        transport.send(
            *self._error("bad_request", f"unexpected {message_name(kind)} frame")
        )
        return client_id

    def _admit(self, kind: str, client_id: str, payload: dict) -> tuple[int, dict]:
        """Admission control: queue the op or shed it, then await the worker."""
        if self._draining.is_set():
            return self._error(
                "unavailable",
                "service is draining for shutdown and refuses new work",
                retry_after=1.0,
            )
        timeout = payload.get("timeout")
        if not isinstance(timeout, (int, float)) or timeout <= 0:
            timeout = self.config.default_timeout
        op = _Op(kind, client_id, payload, time.monotonic() + float(timeout))
        try:
            self._queue.put_nowait(op)
        except queue.Full:
            self.registry.counter("net.sheds").inc()
            hint = self._retry_after_hint()
            return self._error(
                "overloaded",
                f"admission queue is full ({self.config.queue_limit} deep); "
                f"retry in {hint:.3f}s",
                retry_after=hint,
            )
        self.registry.gauge("net.queue_depth").set(self._queue.qsize())
        op.done.wait()
        return op.reply

    # -- the single session worker -------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            op = self._queue.get()
            if op is _STOP:
                break
            self.registry.gauge("net.queue_depth").set(self._queue.qsize())
            start = time.monotonic()
            try:
                if self.on_op is not None:
                    self.on_op(op.kind)
                reply = self._execute_op(op)
            except ReproError as exc:
                self.registry.counter("net.errors").inc()
                reply = self._error("internal", f"{type(exc).__name__}: {exc}")
            except Exception as exc:  # noqa: BLE001 — worker must never die
                self.registry.counter("net.errors").inc()
                reply = self._error("internal", f"{type(exc).__name__}: {exc}")
            finally:
                elapsed = time.monotonic() - start
                self._ema_op_seconds = 0.8 * self._ema_op_seconds + 0.2 * elapsed
                self.registry.histogram("net.op_seconds").observe(elapsed)
            op.reply = reply
            op.done.set()

    def _execute_op(self, op: _Op) -> tuple[int, dict]:
        if time.monotonic() >= op.deadline:
            # Expired while queued: shed without touching the session — the
            # client gave up before we could even start.
            self.registry.counter("net.deadline_hits").inc()
            return self._error(
                "deadline", "request deadline expired while queued"
            )
        if op.kind == "submit":
            return self._execute_submit(op)
        return self._execute_flush(op)

    def _execute_submit(self, op: _Op) -> tuple[int, dict]:
        cache_key = self._cache_key(op)
        if cache_key is not None and cache_key in self._op_cache:
            self.registry.counter("net.op_replays").inc()
            return self._op_cache[cache_key]
        payload = op.payload
        name = payload.get("program")
        program = self.programs.get(name)
        if program is None:
            return self._error(
                "unknown_program",
                f"stored procedure {name!r} is not registered on this server",
            )
        params = payload.get("params")
        user = payload.get("user")
        if (
            not isinstance(user, str)
            or not isinstance(params, dict)
            or not all(
                isinstance(k, str) and isinstance(v, int) and not isinstance(v, bool)
                for k, v in params.items()
            )
        ):
            return self._error("bad_request", "malformed submit payload")
        # Never let the session auto-flush underneath us — an un-journaled
        # flush would resolve tickets invisibly.  Flush journal-aware first.
        if self.session.queued + 1 >= self.session.max_batch:
            self._flush_session(op.deadline)
        try:
            ticket = self.session.submit(user, program, **params)
        except ReproError as exc:
            return self._error("bad_request", str(exc))
        self._staged.setdefault(op.client_id, []).append((ticket.txn_id, ticket))
        reply = (MSG_TICKET, {"txn_id": ticket.txn_id})
        self._remember(cache_key, reply)
        return reply

    def _execute_flush(self, op: _Op) -> tuple[int, dict]:
        ids = op.payload.get("txns", [])
        if not isinstance(ids, list) or not all(isinstance(i, int) for i in ids):
            return self._error("bad_request", "flush txn list must be integers")
        batch = {"accepted": True, "reason": "", "attempts": 0, "num_txns": 0}
        if self._staged.get(op.client_id):
            # This client has staged work: drive one real verification
            # round over everything staged (all clients' work batches
            # together, exactly like the in-process session).
            try:
                result = self._flush_session(op.deadline)
            except DeadlineExceeded as exc:
                self.registry.counter("net.deadline_hits").inc()
                return self._error("deadline", str(exc))
            batch = {
                "accepted": result.accepted,
                "reason": result.reason,
                "attempts": result.attempts,
                "num_txns": result.num_txns,
            }
        known = {
            str(txn_id): self._journal[txn_id]
            for txn_id in ids
            if txn_id in self._journal
        }
        staged_ids = {
            txn_id for txn_id, _t in self._staged.get(op.client_id, [])
        }
        unknown = [
            txn_id
            for txn_id in ids
            if txn_id not in self._journal and txn_id not in staged_ids
        ]
        reply = (
            MSG_RESULT,
            {
                "txns": known,
                "unknown": unknown,
                "digest": int(self.session.digest),
                "digest_vector": self._digest_wire(),
                **batch,
            },
        )
        return reply

    def _flush_session(self, deadline: float | None):
        """One journal-aware verification round over everything staged.

        Every staged ticket — this client's and everyone else's — resolves
        here, and each outcome is journaled by txn id *before* the reply
        escapes, so a lost response is replayable forever (well, for
        ``journal_size`` resolutions).  A :class:`DeadlineExceeded` from
        the session means the round was cancelled and re-queued: staging
        stays intact and nothing is journaled.
        """
        result = self.session.flush(deadline=deadline)
        digest = int(self.session.digest)
        for client, items in self._staged.items():
            for txn_id, ticket in items:
                accepted = bool(ticket.resolved and ticket._accepted)
                self._journal[txn_id] = {
                    "accepted": accepted,
                    "outputs": list(ticket._outputs) if accepted else [],
                    "reason": ticket._reason,
                    "digest": digest,
                }
        self._staged.clear()
        while len(self._journal) > self.config.journal_size:
            self._journal.popitem(last=False)
        return result

    def _resolve(self, client_id: str | None, payload: dict) -> dict:
        """Reconnect support: report what happened to a set of txn ids."""
        ids = payload.get("txns", [])
        if not isinstance(ids, list) or not all(isinstance(i, int) for i in ids):
            return {"txns": {}, "pending": [], "unknown": ids}
        staged_ids = {
            txn_id
            for items in self._staged.values()
            for txn_id, _t in items
        }
        known = {
            str(txn_id): self._journal[txn_id]
            for txn_id in ids
            if txn_id in self._journal
        }
        pending = [t for t in ids if t in staged_ids and str(t) not in known]
        unknown = [t for t in ids if str(t) not in known and t not in pending]
        return {"txns": known, "pending": pending, "unknown": unknown}

    # -- helpers -----------------------------------------------------------------

    def _cache_key(self, op: _Op) -> tuple[str, int] | None:
        op_id = op.payload.get("op")
        if isinstance(op_id, int):
            return (op.client_id, op_id)
        return None

    def _remember(self, cache_key, reply) -> None:
        if cache_key is None:
            return
        self._op_cache[cache_key] = reply
        while len(self._op_cache) > self.config.op_cache_size:
            self._op_cache.popitem(last=False)

    def _retry_after_hint(self) -> float:
        """How long a shed client should wait: depth × recent service time."""
        depth = self._queue.qsize() + 1
        return max(self.config.retry_after_floor, depth * self._ema_op_seconds)

    def _status(self) -> dict:
        with self._conn_lock:
            connections = sum(
                1 for thread, _t in self._connections if thread.is_alive()
            )
        return {
            "digest": int(self.session.digest),
            "digest_vector": self._digest_wire(),
            "shards": getattr(self.session, "num_shards", 1),
            "queued": self._queue.qsize(),
            "staged": sum(len(items) for items in self._staged.values()),
            "connections": connections,
            "draining": self._draining.is_set(),
            "batches_verified": self.session.batches_verified,
        }

    def _digest_wire(self) -> dict:
        """The versioned per-shard digest payload field (LNP1 additive)."""
        return DigestVector.coerce(self.session.digest).to_wire()

    def _error(
        self, code: str, message: str, retry_after: float | None = None
    ) -> tuple[int, dict]:
        payload = {"code": code, "message": message}
        if retry_after is not None:
            payload["retry_after"] = retry_after
        return (MSG_ERROR, payload)

    def _send_quietly(self, transport, msg_type: int, payload: dict) -> None:
        try:
            transport.send(msg_type, payload)
        except ReproError:
            pass
