"""The network boundary: Litmus as a service (DESIGN.md §12).

This package lifts the in-process :class:`~repro.core.session.LitmusSession`
onto a socket without moving the trust boundary:

- :mod:`repro.net.codec` — the length-prefixed, versioned, checksummed
  wire format and the blocking frame :class:`~repro.net.codec.Transport`;
- :mod:`repro.net.service` — :class:`LitmusService`, the threaded server
  with bounded admission, load shedding, deadline propagation, idle
  reaping, heartbeats, an idempotency journal, and graceful draining
  shutdown;
- :mod:`repro.net.client` — :class:`RemoteSession`, the client mirroring
  the ``LitmusSession`` API that absorbs overload, deadlines, and lost
  connections through :class:`~repro.core.session.RetryPolicy`;
- :mod:`repro.net.channel` — :class:`FaultyTransport`, proxy mode routing
  live connections through :class:`~repro.sim.network.SimulatedChannel`
  for seeded wire-fault injection.
"""

from .channel import FaultyTransport
from .client import RemoteSession
from .codec import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    Frame,
    Transport,
    decode_frame,
    encode_frame,
    message_name,
)
from .service import LitmusService, ServiceConfig

__all__ = [
    "FaultyTransport",
    "Frame",
    "LitmusService",
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "RemoteSession",
    "ServiceConfig",
    "Transport",
    "decode_frame",
    "encode_frame",
    "message_name",
]
