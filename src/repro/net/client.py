"""``RemoteSession``: the :class:`LitmusSession` surface over a socket.

The remote client mirrors the in-process facade — ``submit`` returns a
:class:`~repro.core.session.UserTicket`, ``flush`` returns a
:class:`~repro.core.session.BatchResult`, ``digest`` is the same
:class:`~repro.core.api.DigestVector` (per-shard components against a
sharded service, length 1 otherwise), ``queued`` / ``last_result`` behave
identically — so application code moves between the embedded, networked
and sharded deployments by swapping the constructor: all three satisfy
:class:`~repro.core.api.VerifiedSession`.

What the wire adds is failure, and the client owns absorbing it:

- **overload** — a shed (:class:`~repro.errors.Overloaded`) carries the
  server's retry-after hint; with a
  :class:`~repro.core.session.RetryPolicy` the client waits
  ``max(hint, backoff)`` (seeded jitter intact) and re-sends.  Without a
  policy the typed error propagates to the caller;
- **deadlines** — ``flush(timeout=...)`` / ``submit`` deadlines ride the
  request so the *server* cancels (rollback + re-queue) instead of
  half-committing, while the client arms its socket with the remaining
  budget and raises :class:`~repro.errors.DeadlineExceeded` the moment it
  expires locally;
- **lost connections and lost responses** — every submit carries a
  client-unique op id (deduplicated server-side) and every flush carries
  the client's outstanding txn ids (resolved from the server's result
  journal), so a reconnect-and-resend is *idempotent*: work the server
  already committed is acknowledged from the journal, never re-executed.
  Only when the server itself restarted and genuinely never saw a txn
  (``unknown`` in the result) does the client re-submit it from its local
  pending copy — acked work is exactly-once, unacked work at-least-once;
- **heartbeats** — :meth:`ping` keeps an idle connection unreaped and
  measures round-trip time; :meth:`status` exposes the server's load
  (queue depth, connections, draining) for polite clients.

The trust boundary does not move: the service wraps a *verifying*
session, so every result this client receives was already checked
against the digest chain server-side (DESIGN.md §12 discusses why the
remote link is an availability boundary, not a verification one).
"""

from __future__ import annotations

import random
import socket
import time
import uuid
from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Mapping

from ..core.api import DigestVector
from ..core.session import BatchResult, RetryPolicy, UserTicket
from ..errors import (
    ConnectionLost,
    DeadlineExceeded,
    MessageDropped,
    NetworkError,
    Overloaded,
    RemoteError,
    ReproError,
    ServiceUnavailable,
    WireFormatError,
)
from ..obs.metrics import MetricsRegistry, get_metrics
from ..sim.network import SimulatedChannel
from ..vc.program import Program
from .channel import FaultyTransport
from .codec import (
    MSG_CLOSE,
    MSG_CLOSE_OK,
    MSG_ERROR,
    MSG_FLUSH,
    MSG_HELLO,
    MSG_HELLO_OK,
    MSG_PING,
    MSG_PONG,
    MSG_RESOLVE,
    MSG_RESOLVED,
    MSG_RESULT,
    MSG_STATUS,
    MSG_STATUS_OK,
    MSG_SUBMIT,
    MSG_TICKET,
    PROTOCOL_VERSION,
    Transport,
    message_name,
)

__all__ = ["RemoteSession"]


@dataclass
class _PendingCall:
    """One submitted-or-pending stored-procedure call, client-side copy.

    The local copy is the resubmission source when a restarted server
    reports the txn id as unknown; *submit_op* is the idempotency key a
    retried submit reuses so the server's op cache can dedup it.
    """

    user: str
    program: str
    params: dict[str, int]
    ticket: UserTicket
    submit_op: int
    txn_id: int | None = None


def _raise_for_error(payload: Mapping) -> None:
    """Map a wire-level ERROR payload onto the typed exception hierarchy."""
    code = str(payload.get("code", "internal"))
    message = str(payload.get("message", "remote error"))
    retry_after = payload.get("retry_after")
    if not isinstance(retry_after, (int, float)):
        retry_after = 0.0
    if code == "overloaded":
        raise Overloaded(message, retry_after=float(retry_after))
    if code == "unavailable":
        raise ServiceUnavailable(message, retry_after=float(retry_after) or 1.0)
    if code == "deadline":
        raise DeadlineExceeded(message)
    raise RemoteError(message, code=code)


class RemoteSession:
    """A networked Litmus client speaking the :mod:`repro.net.codec` protocol.

    Construct with a host/port (see :meth:`connect` for the
    ``"host:port"`` shorthand).  *retry_policy* governs how overload
    sheds, dropped messages, and lost connections are absorbed; without
    one every network failure is single-shot and propagates typed.
    *channel* optionally routes the live socket through a
    :class:`~repro.sim.network.SimulatedChannel` (proxy mode) so seeded
    drops and delays exercise the retry machinery on real connections.
    """

    def __init__(
        self,
        host: str,
        port: int,
        client_id: str | None = None,
        retry_policy: RetryPolicy | None = None,
        max_batch: int = 1024,
        default_timeout: float | None = None,
        io_timeout: float = 30.0,
        connect_timeout: float = 5.0,
        registry: MetricsRegistry | None = None,
        channel: SimulatedChannel | None = None,
        rng: random.Random | None = None,
    ):
        if max_batch < 1:
            raise ReproError("batch capacity must be positive")
        self.address = (host, port)
        self.client_id = client_id or f"client-{uuid.uuid4().hex[:12]}"
        self.retry_policy = retry_policy
        self.max_batch = max_batch
        self.default_timeout = default_timeout
        self.io_timeout = io_timeout
        self.connect_timeout = connect_timeout
        self.registry = registry if registry is not None else get_metrics()
        self.channel = channel
        self.rng = rng
        # The latest server-verified digest this client observed; None
        # until the first HELLO_OK arrives.
        self.digest: DigestVector | None = None
        self.last_result: BatchResult | None = None
        self.reconnects = 0
        self._transport = None
        self._op_seq = 0
        # Calls submitted locally but not yet ticketed by the server (fresh
        # submits retrying, or resubmissions after a server restart) ...
        self._unsent: list[_PendingCall] = []
        # ... and calls the server ticketed but has not resolved yet.
        self._outstanding: dict[int, _PendingCall] = {}
        # Eager connect, under the retry policy: a lossy channel can drop
        # the hello itself, and that must be as absorbable as any later loss.
        self._with_retries(self._ensure_connected, None)

    @classmethod
    def connect(cls, address: str, **kwargs) -> "RemoteSession":
        """``RemoteSession.connect("127.0.0.1:7433", retry_policy=...)``."""
        host, _, port = address.rpartition(":")
        if not host or not port.isdigit():
            raise ReproError(
                f"address {address!r} is not of the form host:port"
            )
        return cls(host, int(port), **kwargs)

    # -- the LitmusSession surface -------------------------------------------------

    @property
    def queued(self) -> int:
        """Unresolved calls this client is carrying (mirrors the session)."""
        return len(self._unsent) + len(self._outstanding)

    def submit(self, user: str, program: Program | str, **params: int) -> UserTicket:
        """Enqueue one stored-procedure call; returns its ticket.

        The server assigns the transaction id, so the ticket's ``txn_id``
        is only final once the submit round-trip succeeds (and may be
        *re*-assigned if a server restart forces a resubmission — the
        ticket object itself stays valid throughout).
        """
        name = program.name if isinstance(program, Program) else str(program)
        call = _PendingCall(
            user=user,
            program=name,
            params=dict(params),
            ticket=UserTicket(user=user, txn_id=-1),
            submit_op=self._next_op(),
        )
        deadline = self._deadline_from(self.default_timeout)
        self._with_retries(lambda: self._submit_call(call, deadline), deadline)
        if self.queued >= self.max_batch:
            self.flush()
        return call.ticket

    def flush(self, timeout: float | None = None) -> BatchResult:
        """Resolve every outstanding call; mirrors ``LitmusSession.flush``.

        Empty queue: the documented no-op, :meth:`BatchResult.empty`,
        without a round-trip.  *timeout* (seconds) arms both ends: the
        server cancels its round when the budget runs out, the client
        raises :class:`~repro.errors.DeadlineExceeded` locally — either
        way nothing is half-acknowledged and a later flush retries.
        """
        if not self.queued:
            return BatchResult.empty()
        calls = list(self._unsent) + list(self._outstanding.values())
        deadline = self._deadline_from(
            timeout if timeout is not None else self.default_timeout
        )
        attempts = self._with_retries(lambda: self._drive_flush(deadline), deadline)
        return self._assemble_result(calls, attempts)

    def ping(self) -> float:
        """Heartbeat round-trip; returns the RTT in seconds."""
        self._ensure_connected()
        start = time.monotonic()
        frame = self._roundtrip(MSG_PING, {}, MSG_PONG, None)
        del frame
        return time.monotonic() - start

    def status(self) -> dict:
        """The server's load snapshot (queue depth, connections, draining)."""
        self._ensure_connected()
        return self._roundtrip(MSG_STATUS, {}, MSG_STATUS_OK, None).payload

    def recover(self, timeout: float | None = None) -> int:
        """Reconnect and resolve outstanding work from the server journal.

        The networked counterpart of ``LitmusSession.recover``: after a
        suspected server restart (or any wedged connection) this drops the
        socket, reconnects under the retry policy, and asks the server's
        result journal about every outstanding txn id via ``RESOLVE``.
        Journaled outcomes resolve their tickets exactly as a flush would;
        ids the server genuinely never saw are recycled into the unsent
        queue for the next :meth:`flush` (at-least-once for unacked work,
        exactly-once for acked).  Returns how many calls were resolved
        from the journal.
        """
        deadline = self._deadline_from(
            timeout if timeout is not None else self.default_timeout
        )
        self._drop_connection()
        resolved = 0

        def _round() -> None:
            nonlocal resolved
            self._ensure_connected()
            if not self._outstanding:
                return
            frame = self._roundtrip(
                MSG_RESOLVE,
                {
                    "txns": sorted(self._outstanding),
                    "timeout": self._remaining(deadline),
                },
                MSG_RESOLVED,
                deadline,
            )
            payload = frame.payload
            entries = payload.get("txns", {})
            if not isinstance(entries, dict):
                raise WireFormatError("resolved frame txns must be an object")
            for key, entry in entries.items():
                try:
                    txn_id = int(key)
                except (TypeError, ValueError) as exc:
                    raise WireFormatError(
                        f"non-integer txn id {key!r} in resolved frame"
                    ) from exc
                call = self._outstanding.pop(txn_id, None)
                if call is None:
                    continue
                call.ticket._resolve(
                    bool(entry.get("accepted")),
                    tuple(entry.get("outputs") or ()),
                    str(entry.get("reason", "")),
                )
                resolved += 1
            for txn_id in payload.get("unknown", []):
                call = self._outstanding.pop(txn_id, None)
                if call is None:
                    continue
                self.registry.counter("net.client_resubmits").inc()
                call.txn_id = None
                call.submit_op = self._next_op()
                self._unsent.append(call)

        self._with_retries(_round, deadline)
        return resolved

    def close(self) -> None:
        """Polite teardown: CLOSE/CLOSE_OK when possible, then disconnect."""
        transport = self._transport
        self._transport = None
        if transport is None:
            return
        try:
            transport.send(MSG_CLOSE, {})
            frame = transport.recv()
            if frame.msg_type not in (MSG_CLOSE_OK, MSG_ERROR):
                raise WireFormatError(
                    f"unexpected {message_name(frame.msg_type)} reply to close"
                )
        except (NetworkError, MessageDropped, TimeoutError, OSError):
            pass
        finally:
            transport.close()

    def __enter__(self) -> "RemoteSession":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # -- wire rounds ---------------------------------------------------------------

    def _submit_call(self, call: _PendingCall, deadline: float | None) -> None:
        self._ensure_connected()
        frame = self._roundtrip(
            MSG_SUBMIT,
            {
                "op": call.submit_op,
                "user": call.user,
                "program": call.program,
                "params": call.params,
                "timeout": self._remaining(deadline),
            },
            MSG_TICKET,
            deadline,
        )
        txn_id = frame.payload.get("txn_id")
        if not isinstance(txn_id, int):
            raise WireFormatError("ticket frame carries no integer txn_id")
        call.txn_id = txn_id
        call.ticket.txn_id = txn_id
        if call in self._unsent:
            self._unsent.remove(call)
        self._outstanding[txn_id] = call

    def _drive_flush(self, deadline: float | None) -> None:
        """One retryable unit: submit stragglers, flush, absorb unknowns.

        Re-derives everything it needs from ``_unsent``/``_outstanding``,
        so a connection lost anywhere inside is safely re-entered by the
        retry wrapper — already-ticketed work dedups via txn ids, already-
        executed work resolves from the server's journal.
        """
        self._ensure_connected()
        while self._unsent or self._outstanding:
            for call in list(self._unsent):
                self._submit_call(call, deadline)
            if not self._outstanding:
                break
            frame = self._roundtrip(
                MSG_FLUSH,
                {
                    "op": self._next_op(),
                    "txns": sorted(self._outstanding),
                    "timeout": self._remaining(deadline),
                },
                MSG_RESULT,
                deadline,
            )
            payload = frame.payload
            self._update_digest(payload)
            entries = payload.get("txns", {})
            if not isinstance(entries, dict):
                raise WireFormatError("result frame txns must be an object")
            for key, entry in entries.items():
                try:
                    txn_id = int(key)
                except (TypeError, ValueError) as exc:
                    raise WireFormatError(
                        f"non-integer txn id {key!r} in result"
                    ) from exc
                call = self._outstanding.pop(txn_id, None)
                if call is None:
                    continue
                accepted = bool(entry.get("accepted"))
                outputs = tuple(entry.get("outputs") or ())
                call.ticket._resolve(
                    accepted, outputs, str(entry.get("reason", ""))
                )
            # Unknown ids mean the server restarted and never saw them:
            # recycle the local copies through the submit path with fresh
            # idempotency keys (the old server's op cache is gone anyway).
            for txn_id in payload.get("unknown", []):
                call = self._outstanding.pop(txn_id, None)
                if call is None:
                    continue
                self.registry.counter("net.client_resubmits").inc()
                call.txn_id = None
                call.submit_op = self._next_op()
                self._unsent.append(call)

    def _roundtrip(
        self,
        msg_type: int,
        payload: dict,
        expected: int,
        deadline: float | None,
    ):
        """Send one frame, await its reply, map errors onto exceptions."""
        transport = self._transport
        self._arm_timeout(deadline)
        transport.send(msg_type, payload)
        try:
            frame = transport.recv()
        except TimeoutError:
            if deadline is not None and time.monotonic() >= deadline:
                # Drop the socket: a late reply arriving after we gave up
                # would desynchronize the next request/reply pairing.
                self._drop_connection()
                self.registry.counter("net.client_deadline_hits").inc()
                raise DeadlineExceeded(
                    f"no reply to {message_name(msg_type)} within the deadline"
                ) from None
            # An io_timeout with no user deadline is a stuck peer: surface
            # it as a lost connection so the retry machinery reconnects.
            self._drop_connection()
            raise ConnectionLost(
                f"no reply to {message_name(msg_type)} within {self.io_timeout}s"
            ) from None
        if frame.msg_type == MSG_ERROR:
            _raise_for_error(frame.payload)
        if frame.msg_type != expected:
            raise WireFormatError(
                f"expected {message_name(expected)}, received "
                f"{message_name(frame.msg_type)}"
            )
        return frame

    # -- connection management -----------------------------------------------------

    def _ensure_connected(self) -> None:
        if self._transport is not None and not self._transport.closed:
            return
        if self._transport is not None:
            self.reconnects += 1
            self.registry.counter("net.client_reconnects").inc()
        try:
            sock = socket.create_connection(
                self.address, timeout=self.connect_timeout
            )
        except OSError as exc:
            raise ConnectionLost(
                f"cannot reach {self.address[0]}:{self.address[1]}: {exc}"
            ) from exc
        sock.settimeout(self.io_timeout)
        transport = Transport(sock, registry=self.registry)
        if self.channel is not None:
            transport = FaultyTransport(transport, self.channel)
        self._transport = transport
        try:
            frame = self._roundtrip(
                MSG_HELLO,
                {"client_id": self.client_id, "protocol": PROTOCOL_VERSION},
                MSG_HELLO_OK,
                None,
            )
        except BaseException:
            self._drop_connection()
            raise
        self._update_digest(frame.payload)

    def _update_digest(self, payload: Mapping) -> None:
        """Prefer the versioned per-shard field; fall back to the scalar."""
        vector = payload.get("digest_vector")
        if isinstance(vector, dict):
            try:
                self.digest = DigestVector.from_wire(vector)
                return
            except (ValueError, TypeError):
                pass  # unknown future version: the scalar still works
        digest = payload.get("digest")
        if isinstance(digest, int):
            self.digest = DigestVector.single(digest)

    def _drop_connection(self) -> None:
        transport, self._transport = self._transport, None
        if transport is not None:
            transport.close()

    def _arm_timeout(self, deadline: float | None) -> None:
        # io_timeout always bounds a single wait — even under a longer
        # user deadline — so a lost reply is detected and retried early
        # instead of silently eating the whole budget.
        sock = (
            self._transport.sock
            if isinstance(self._transport, Transport)
            else self._transport.transport.sock
        )
        remaining = self._remaining(deadline)
        if remaining is None:
            sock.settimeout(self.io_timeout)
        else:
            sock.settimeout(max(min(remaining, self.io_timeout), 0.001))

    # -- retry machinery -----------------------------------------------------------

    def _with_retries(self, fn, deadline: float | None) -> int:
        """Run *fn* under the retry policy; returns the attempt count.

        Overload sheds wait ``max(server hint, backoff)``; lost
        connections and simulated drops reconnect and re-enter (idempotent
        by op ids and the server journal).  Deadline and protocol errors
        are never retried — they are answers, not noise.  Exhausting the
        policy re-raises the last failure, typed.
        """
        policy = self.retry_policy or RetryPolicy(max_attempts=1)
        attempt = 0
        while True:
            attempt += 1
            self._check_deadline(deadline)
            hint: float | None = None
            try:
                fn()
                return attempt
            except (Overloaded, ServiceUnavailable) as exc:
                self.registry.counter("net.client_sheds_seen").inc()
                hint = exc.retry_after
                failure = exc
            except (ConnectionLost, MessageDropped) as exc:
                self._drop_connection()
                failure = exc
            if attempt >= policy.max_attempts:
                raise failure
            delay = policy.delay(attempt, rng=self.rng, retry_after=hint)
            if deadline is not None:
                budget = deadline - time.monotonic()
                if budget <= 0:
                    self._check_deadline(deadline)
                delay = min(delay, max(budget, 0.0))
            if delay > 0:
                policy.sleep(delay)

    def _check_deadline(self, deadline: float | None) -> None:
        if deadline is not None and time.monotonic() >= deadline:
            self.registry.counter("net.client_deadline_hits").inc()
            raise DeadlineExceeded(
                "client-side deadline expired; unresolved work stays queued "
                "for the next flush"
            )

    def _deadline_from(self, timeout: float | None) -> float | None:
        if timeout is None:
            return None
        return time.monotonic() + timeout

    def _remaining(self, deadline: float | None) -> float | None:
        if deadline is None:
            return None
        return max(deadline - time.monotonic(), 0.0)

    def _next_op(self) -> int:
        self._op_seq += 1
        return self._op_seq

    # -- result assembly -----------------------------------------------------------

    def _assemble_result(self, calls: list[_PendingCall], attempts: int) -> BatchResult:
        resolved = [call for call in calls if call.ticket.resolved]
        outputs: dict[int, tuple[int, ...]] = {}
        user_outputs: dict[str, list[tuple[int, ...]]] = {}
        accepted = bool(resolved)
        reason = ""
        for call in resolved:
            ticket = call.ticket
            if ticket._accepted:
                outputs[ticket.txn_id] = ticket._outputs
                user_outputs.setdefault(call.user, []).append(ticket._outputs)
            else:
                accepted = False
                if not reason:
                    reason = ticket._reason
        result = BatchResult(
            accepted=accepted,
            reason=reason,
            num_txns=len(resolved),
            attempts=attempts,
            outputs=MappingProxyType(outputs),
            user_outputs=MappingProxyType(
                {user: tuple(values) for user, values in user_outputs.items()}
            ),
            tickets=tuple(call.ticket for call in resolved),
            timing=None,
            metrics=MappingProxyType(self.registry.snapshot()),
        )
        self.last_result = result
        return result
