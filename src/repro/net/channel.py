"""Proxy mode: route the live transport through a simulated channel.

The in-process robustness layer injects message faults through
:class:`repro.sim.network.SimulatedChannel`; :class:`FaultyTransport` lifts
the same seeded drop/delay stream onto *real* socket connections, so the
fault vocabulary of :mod:`repro.faults` applies to the networked
deployment without new adversary code:

- a **dropped send** never reaches the wire — the frame is swallowed
  before ``sendall`` and :class:`~repro.errors.MessageDropped` is raised
  to the local caller (exactly what a lost packet looks like to the peer,
  who simply never hears anything);
- a **dropped recv** discards a frame that did arrive — the bytes are
  consumed off the socket and thrown away, modeling loss on the return
  path;
- a **delay** spends real or virtual time through the channel's
  :class:`~repro.sim.clock.Clock` before the frame proceeds, so a
  :class:`~repro.sim.clock.SystemClock` makes live connections genuinely
  slow while a :class:`~repro.sim.clock.ManualClock` keeps tests instant.

Both ends can be wrapped: the client (``RemoteSession(channel=...)``)
models a lossy last mile, the server (``LitmusService(channel=...)``)
models loss in front of every connection.  Either way the retry/resolve
machinery must absorb the losses — that is the point.
"""

from __future__ import annotations

from ..errors import MessageDropped
from ..sim.network import SimulatedChannel
from .codec import Frame, Transport, encode_frame, message_name

__all__ = ["FaultyTransport"]


class FaultyTransport:
    """A :class:`~repro.net.codec.Transport` filtered through a
    :class:`~repro.sim.network.SimulatedChannel`.

    Presents the same ``send``/``recv``/``close`` surface, so the service
    and the client use it interchangeably with the plain transport.
    Separate channels may be supplied per direction; a single *channel*
    serves both (one seeded stream across the conversation, matching how
    :class:`~repro.faults.NetworkFault` accounts the in-process pipeline).
    """

    def __init__(
        self,
        transport: Transport,
        channel: SimulatedChannel,
        recv_channel: SimulatedChannel | None = None,
    ):
        self.transport = transport
        self.send_channel = channel
        self.recv_channel = recv_channel if recv_channel is not None else channel

    @property
    def closed(self) -> bool:
        return self.transport.closed

    @property
    def registry(self):
        return self.transport.registry

    def send(self, msg_type: int, payload=None) -> None:
        # Size the delivery by the real frame so per-byte cost models see
        # the true payload, then drop *before* any bytes hit the socket.
        frame_bytes = len(encode_frame(msg_type, payload))
        self.send_channel.deliver(
            frame_bytes, label=f"send {message_name(msg_type)}"
        )
        self.transport.send(msg_type, payload)

    def recv(self) -> Frame:
        while True:
            frame = self.transport.recv()
            try:
                self.recv_channel.deliver(
                    0, label=f"recv {message_name(frame.msg_type)}"
                )
            except MessageDropped:
                # The bytes arrived but the simulated return path lost
                # them; keep reading — from the caller's perspective the
                # response simply never comes (until a timeout fires).
                continue
            return frame

    def close(self) -> None:
        self.transport.close()
