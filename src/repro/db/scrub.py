"""Scrub & repair: proactive integrity checking of a durability directory.

The WAL stack already *survives* damage lazily — recovery truncates torn
tails, checkpoint loading falls back past rotted files — but lazy survival
finds rot only when a restart happens to read the bytes.  The scrubber
finds it early, while redundancy still exists:

- **checkpoints** — every primary/mirror pair is re-validated end to end
  (format tag, SHA-256 checksum, internal digest consistency).  A rotted
  primary is repaired from its mirror (and vice versa) with the atomic
  temp-fsync-rename dance; when *both* copies of a checkpoint are bad the
  pair is quarantined (renamed ``*.quarantined``) so loaders fall back to
  an older anchor instead of tripping over it;
- **WAL segments** — every sealed segment's CRC framing is re-verified.
  Segment damage is *reported, never repaired* here: truncation decisions
  need the cross-segment sequence chain, which is recovery's job
  (:func:`~repro.db.wal.segments.scan_wal`);
- **intent journal** — the cross-shard journal's framing is re-verified,
  again report-only.

Sharded layouts are walked automatically: a directory containing
``shard-NN`` subdirectories is scrubbed shard by shard plus the parent's
intent journal.

Two entry points: :func:`scrub_directory` (one pass; the ``--scrub`` CLI)
and :class:`BackgroundScrubber` (a daemon thread a
:class:`~repro.db.wal.manager.DurabilityManager` runs when
``DurabilityConfig.scrub_interval`` is set).  The background pass skips
the active segment and the newest checkpoint pair — both may be mid-write
— and shrugs off files that vanish mid-scan (checkpoint GC races).

Metrics: ``scrub.runs``, ``scrub.files_scanned``, ``scrub.records_verified``,
``scrub.damage_found``, ``scrub.repairs``, ``scrub.quarantined``,
``scrub.errors``; plus ``storage.mirror_repairs`` when a checkpoint
primary is rebuilt from its mirror.
"""

from __future__ import annotations

import os
import re
import threading
from dataclasses import dataclass, field
from time import perf_counter

from ..obs.metrics import MetricsRegistry, get_metrics
from .fsio import OS_FILESYSTEM, FileSystem
from .wal.checkpoints import (
    _LOAD_FAILURES,
    _load_one,
    _write_atomic,
    list_checkpoints,
    mirror_path,
)
from .wal.intents import INTENT_JOURNAL_NAME, IntentJournal
from .wal.records import STATUS_CLEAN
from .wal.segments import list_segments, segment_records

__all__ = [
    "BackgroundScrubber",
    "ScrubFinding",
    "ScrubReport",
    "scrub_directory",
]

_SHARD_DIR_RE = re.compile(r"^shard-(\d{2})$")

QUARANTINE_SUFFIX = ".quarantined"


@dataclass(frozen=True)
class ScrubFinding:
    """One damaged artifact and what the scrubber did about it.

    ``action`` is ``"repaired"`` (rebuilt from the healthy twin),
    ``"quarantined"`` (both copies bad; renamed aside), or ``"reported"``
    (left in place — segment/journal damage belongs to recovery).
    """

    path: str
    kind: str  # "checkpoint" | "mirror" | "segment" | "intents"
    problem: str
    action: str


@dataclass
class ScrubReport:
    """What one scrub pass verified, found, and fixed."""

    directories: tuple[str, ...] = ()
    files_scanned: int = 0
    checkpoints_verified: int = 0
    records_verified: int = 0  # WAL + intent records whose CRCs re-checked
    findings: list[ScrubFinding] = field(default_factory=list)
    repaired: int = 0
    quarantined: int = 0
    duration_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        """True iff no damage remains in place (reported-only findings)."""
        return not any(f.action == "reported" for f in self.findings)

    def summary(self) -> str:
        state = "clean" if not self.findings else (
            "healed" if self.ok else "DAMAGED"
        )
        return (
            f"scrub [{state}]: {self.files_scanned} file(s), "
            f"{self.checkpoints_verified} checkpoint(s), "
            f"{self.records_verified} record(s) verified; "
            f"{len(self.findings)} finding(s), {self.repaired} repaired, "
            f"{self.quarantined} quarantined"
        )


def _quarantine(fs: FileSystem, path: str) -> None:
    fs.replace(path, path + QUARANTINE_SUFFIX)


def _scrub_checkpoints(
    directory: str,
    fs: FileSystem,
    registry: MetricsRegistry,
    report: ScrubReport,
    repair: bool,
    skip_newest: bool,
) -> None:
    primaries = list_checkpoints(directory, fs)
    if skip_newest:
        primaries = primaries[1:]
    for primary in primaries:
        mirror = mirror_path(primary)
        problems: dict[str, str] = {}
        valid_twin: str | None = None
        for path, kind in ((primary, "checkpoint"), (mirror, "mirror")):
            try:
                _load_one(path, fs)
            except FileNotFoundError:
                if kind == "checkpoint":
                    problems[path] = "vanished mid-scan (GC race)"
                    break
                problems[path] = "mirror missing"
                continue
            except _LOAD_FAILURES as exc:
                problems[path] = str(exc)
                continue
            report.files_scanned += 1
            if valid_twin is None:
                valid_twin = path
            if kind == "checkpoint":
                report.checkpoints_verified += 1
        if not problems:
            continue
        if "GC race" in next(iter(problems.values()), ""):
            continue  # the whole pair was retired under us; nothing to do
        if valid_twin is not None:
            # One healthy copy survives: rebuild its damaged twin from it.
            for path, problem in problems.items():
                kind = "mirror" if path == mirror else "checkpoint"
                action = "reported"
                if repair:
                    try:
                        _write_atomic(
                            fs, directory, path, fs.read_bytes(valid_twin), True
                        )
                        action = "repaired"
                        report.repaired += 1
                        registry.counter("scrub.repairs").inc()
                        if kind == "checkpoint":
                            registry.counter("storage.mirror_repairs").inc()
                    except OSError:
                        action = "reported"
                report.findings.append(
                    ScrubFinding(path=path, kind=kind, problem=problem, action=action)
                )
        else:
            # Both copies bad: move the pair aside so loaders fall back to
            # an older anchor instead of re-parsing known-bad bytes.
            for path, problem in problems.items():
                kind = "mirror" if path == mirror else "checkpoint"
                action = "reported"
                if repair and "missing" not in problem:
                    try:
                        _quarantine(fs, path)
                        action = "quarantined"
                        report.quarantined += 1
                        registry.counter("scrub.quarantined").inc()
                    except OSError:
                        action = "reported"
                if "missing" in problem and repair:
                    continue  # nothing on disk to quarantine
                report.findings.append(
                    ScrubFinding(path=path, kind=kind, problem=problem, action=action)
                )


def _scrub_segments(
    directory: str,
    fs: FileSystem,
    registry: MetricsRegistry,
    report: ScrubReport,
    skip_paths: frozenset,
) -> None:
    for path in list_segments(directory, fs):
        if path in skip_paths:
            continue
        try:
            records, intact, status = segment_records(path, fs)
            size = fs.getsize(path)
        except FileNotFoundError:
            continue  # retired by a checkpoint mid-scan
        report.files_scanned += 1
        if status == STATUS_CLEAN and intact == size:
            report.records_verified += len(records)
            continue
        report.findings.append(
            ScrubFinding(
                path=path,
                kind="segment",
                problem=f"{status} at byte {intact} (size {size}); "
                "recovery will truncate",
                action="reported",
            )
        )


def _scrub_intents(
    path: str,
    fs: FileSystem,
    registry: MetricsRegistry,
    report: ScrubReport,
) -> None:
    if not fs.exists(path):
        return
    records, scan = IntentJournal.scan(path, repair=False, fs=fs)
    report.files_scanned += 1
    if scan.status == STATUS_CLEAN:
        report.records_verified += scan.records
        return
    report.findings.append(
        ScrubFinding(
            path=path,
            kind="intents",
            problem=f"{scan.status} tail ({scan.truncated_bytes} byte(s)); "
            "recovery will truncate",
            action="reported",
        )
    )


def scrub_directory(
    directory: str,
    *,
    repair: bool = True,
    fs: FileSystem | None = None,
    registry: MetricsRegistry | None = None,
    skip_paths: frozenset | set | tuple = (),
    skip_newest_checkpoint: bool = False,
) -> ScrubReport:
    """One full scrub pass over *directory* (sharded layouts included).

    With ``repair=True`` (the default) rotted checkpoints are rebuilt from
    their mirrors and doubly-rotted pairs quarantined; ``repair=False`` is
    a pure audit.  *skip_paths* names files to leave alone (a live WAL's
    active segment); *skip_newest_checkpoint* additionally skips the
    newest primary/mirror pair per directory — the background scrubber
    sets both, an offline ``--scrub`` neither.
    """
    fs = fs if fs is not None else OS_FILESYSTEM
    registry = registry if registry is not None else get_metrics()
    skip = frozenset(skip_paths)
    start = perf_counter()
    report = ScrubReport()
    shard_dirs = []
    try:
        for name in sorted(fs.listdir(directory)):
            full = os.path.join(directory, name)
            if _SHARD_DIR_RE.match(name) and os.path.isdir(full):
                shard_dirs.append(full)
    except FileNotFoundError:
        raise
    targets = [directory] + shard_dirs
    report.directories = tuple(targets)
    for target in targets:
        _scrub_checkpoints(
            target, fs, registry, report, repair, skip_newest_checkpoint
        )
        _scrub_segments(target, fs, registry, report, skip)
    intents = os.path.join(directory, INTENT_JOURNAL_NAME)
    if intents not in skip:
        _scrub_intents(intents, fs, registry, report)
    report.duration_seconds = perf_counter() - start
    registry.counter("scrub.runs").inc()
    registry.counter("scrub.files_scanned").inc(report.files_scanned)
    registry.counter("scrub.records_verified").inc(report.records_verified)
    if report.findings:
        registry.counter("scrub.damage_found").inc(len(report.findings))
    return report


class BackgroundScrubber:
    """A daemon thread that scrubs a live session's directory on a cadence.

    Owned by :class:`~repro.db.wal.manager.DurabilityManager` when
    ``DurabilityConfig.scrub_interval > 0``.  Each pass skips whatever
    *skip_fn* returns at that moment (the active segment) plus the newest
    checkpoint pair, so it never fights the writer; everything it finds
    lands on :attr:`last_report` and the ``scrub.*`` counters.  A pass
    that blows up is counted (``scrub.errors``) and the loop continues —
    a scrubber must never take the database down.
    """

    def __init__(
        self,
        directory: str,
        interval: float,
        *,
        fs: FileSystem | None = None,
        registry: MetricsRegistry | None = None,
        skip_fn=None,
        repair: bool = True,
    ):
        self.directory = directory
        self.interval = interval
        self.fs = fs if fs is not None else OS_FILESYSTEM
        self.registry = registry if registry is not None else get_metrics()
        self.skip_fn = skip_fn if skip_fn is not None else (lambda: ())
        self.repair = repair
        self.last_report: ScrubReport | None = None
        self.passes = 0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def start(self) -> None:
        if self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self._run, name="litmus-scrubber", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def scrub_now(self) -> ScrubReport:
        """One synchronous pass (also what the loop calls)."""
        report = scrub_directory(
            self.directory,
            repair=self.repair,
            fs=self.fs,
            registry=self.registry,
            skip_paths=frozenset(self.skip_fn()),
            skip_newest_checkpoint=True,
        )
        self.last_report = report
        self.passes += 1
        return report

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                self.scrub_now()
            except Exception:
                self.registry.counter("scrub.errors").inc()
