"""Append-only WAL segments: rotation, fsync policy, and crash-safe scans.

A durability directory holds numbered segment files (``wal-00000001.seg``,
...), each starting with the 4-byte magic ``LWS1`` followed by framed
records (:mod:`repro.db.wal.records`).  :class:`WriteAheadLog` appends;
:func:`scan_wal` reads everything intact back and *repairs* the tail —
truncating a torn or corrupt suffix in place instead of raising, which is
what lets ``LitmusSession.recover`` absorb a crash mid-write.

fsync policy (the durability/throughput dial):

- ``"always"`` — ``fsync`` after every append; an acknowledged batch is on
  the platter before ``flush()`` returns (the zero-loss setting);
- ``"batch"``  — ``fsync`` every ``sync_every`` appends and on rotation /
  checkpoint / close; bounds loss to the last sync window;
- ``"never"``  — only ``flush()`` to the OS; durability is whatever the
  page cache survives.  Fastest, and the right setting when a checkpoint
  or an outer store already provides durability.

Metrics: ``wal.records``, ``wal.bytes``, ``wal.fsyncs``, ``wal.rotations``
(counters) on every writer; ``wal.torn_tail_truncated`` when a scan had to
repair a tail.
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass, field

from ...errors import WalError
from ...obs.metrics import MetricsRegistry, get_metrics
from .records import (
    STATUS_CLEAN,
    WalRecord,
    decode_records,
    encode_record,
)

__all__ = [
    "SEGMENT_MAGIC",
    "WalScanReport",
    "WriteAheadLog",
    "list_segments",
    "scan_wal",
    "segment_records",
]

SEGMENT_MAGIC = b"LWS1"  # Litmus WAL Segment v1
_SEGMENT_RE = re.compile(r"^wal-(\d{8})\.seg$")

FSYNC_POLICIES = ("always", "batch", "never")


def _segment_name(index: int) -> str:
    return f"wal-{index:08d}.seg"


def list_segments(directory: str) -> list[str]:
    """Absolute paths of every segment file, in index order."""
    try:
        names = os.listdir(directory)
    except FileNotFoundError:
        return []
    found = []
    for name in names:
        match = _SEGMENT_RE.match(name)
        if match:
            found.append((int(match.group(1)), os.path.join(directory, name)))
    return [path for _index, path in sorted(found)]


def _fsync_directory(directory: str) -> None:
    """Make a rename/create/unlink in *directory* itself durable (POSIX)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # platforms without directory fds
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


class WriteAheadLog:
    """Appender over a directory of rotated, CRC-framed segment files."""

    def __init__(
        self,
        directory: str,
        fsync: str = "always",
        segment_max_bytes: int = 1 << 20,
        sync_every: int = 8,
        registry: MetricsRegistry | None = None,
    ):
        if fsync not in FSYNC_POLICIES:
            raise WalError(f"unknown fsync policy {fsync!r} (want {FSYNC_POLICIES})")
        if segment_max_bytes < len(SEGMENT_MAGIC) + 16:
            raise WalError("segment_max_bytes is too small to hold a record")
        if sync_every < 1:
            raise WalError("sync_every must be positive")
        self.directory = directory
        self.fsync = fsync
        self.segment_max_bytes = segment_max_bytes
        self.sync_every = sync_every
        self.registry = registry if registry is not None else get_metrics()
        os.makedirs(directory, exist_ok=True)
        existing = list_segments(directory)
        # Never append to a pre-existing segment: its tail may be torn from
        # a previous crash.  A fresh segment keeps old bytes immutable and
        # lets scan_wal repair them independently.
        self._index = (
            int(_SEGMENT_RE.match(os.path.basename(existing[-1])).group(1)) + 1
            if existing
            else 1
        )
        self._file = None
        self._size = 0
        self._unsynced = 0
        self._open_segment()

    # -- appending ---------------------------------------------------------------

    def append(self, seq: int, digest: int, command_log: bytes) -> None:
        """Frame and append one verified batch; durable per the policy."""
        record = encode_record(seq, digest, command_log)
        if (
            self._size + len(record) > self.segment_max_bytes
            and self._size > len(SEGMENT_MAGIC)
        ):
            self.rotate()
        self._file.write(record)
        self._file.flush()
        self._size += len(record)
        self.registry.counter("wal.records").inc()
        self.registry.counter("wal.bytes").inc(len(record))
        if self.fsync == "always":
            self._fsync_file()
        elif self.fsync == "batch":
            self._unsynced += 1
            if self._unsynced >= self.sync_every:
                self.sync()

    def sync(self) -> None:
        """Force everything appended so far onto stable storage."""
        if self._file is not None and self.fsync != "never":
            self._fsync_file()

    def rotate(self) -> None:
        """Seal the active segment and start the next one."""
        self._close_segment()
        self._index += 1
        self._open_segment()
        self.registry.counter("wal.rotations").inc()

    def reset(self) -> None:
        """Start a fresh segment and delete every older one.

        Called right after a checkpoint rename is durable: every record so
        far is covered by the checkpoint, so the old segments are dead
        weight.  Crash-ordering note — the checkpoint *must* be renamed
        (and the rename fsynced) before this runs; a crash in between just
        leaves stale segments whose records recovery skips by sequence
        number.
        """
        current = os.path.join(self.directory, _segment_name(self._index))
        self.rotate()
        for path in list_segments(self.directory):
            if path != os.path.join(self.directory, _segment_name(self._index)):
                os.unlink(path)
        if self.fsync != "never":
            _fsync_directory(self.directory)
        # The pre-reset segment must be gone; guard against name races.
        if os.path.exists(current):  # pragma: no cover - defensive
            raise WalError(f"failed to retire WAL segment {current}")

    def close(self) -> None:
        self._close_segment()

    # -- internals ---------------------------------------------------------------

    @property
    def active_segment(self) -> str:
        return os.path.join(self.directory, _segment_name(self._index))

    def _open_segment(self) -> None:
        path = self.active_segment
        self._file = open(path, "xb")
        self._file.write(SEGMENT_MAGIC)
        self._file.flush()
        self._size = len(SEGMENT_MAGIC)
        self._unsynced = 0
        if self.fsync != "never":
            self._fsync_file()
            _fsync_directory(self.directory)

    def _close_segment(self) -> None:
        if self._file is None:
            return
        self.sync()
        self._file.close()
        self._file = None

    def _fsync_file(self) -> None:
        os.fsync(self._file.fileno())
        self._unsynced = 0
        self.registry.counter("wal.fsyncs").inc()


@dataclass
class WalScanReport:
    """What a recovery scan found (and repaired) in a durability directory."""

    segments: int = 0
    records: int = 0
    status: str = STATUS_CLEAN  # worst status seen: clean | torn | corrupt
    truncations: int = 0  # torn/corrupt tails truncated away
    truncated_bytes: int = 0
    dropped_segments: int = 0  # whole segments discarded past the damage
    details: list[str] = field(default_factory=list)


def segment_records(path: str) -> tuple[list[WalRecord], int, str]:
    """Decode one segment file: ``(records, intact_bytes, status)``.

    A missing or mangled magic marks the whole file corrupt at offset 0.
    """
    with open(path, "rb") as handle:
        data = handle.read()
    if data[: len(SEGMENT_MAGIC)] != SEGMENT_MAGIC:
        return [], 0, "corrupt"
    return decode_records(data, offset=len(SEGMENT_MAGIC))


def scan_wal(
    directory: str,
    registry: MetricsRegistry | None = None,
    repair: bool = True,
) -> tuple[list[WalRecord], WalScanReport]:
    """Read every intact record back, repairing tail damage in place.

    Walks segments in index order, enforcing that batch sequence numbers
    increase by exactly one across the whole log.  The first torn or
    corrupt record ends the scan: with ``repair=True`` (the recovery
    default) the damaged suffix is physically truncated away and any later
    segment files are deleted — they are unreachable past a broken chain —
    so the next writer starts from a self-consistent directory.  Nothing
    here raises on bad bytes; damage becomes a smaller log plus a loud
    :class:`WalScanReport`, never an exception escaping recovery.
    """
    registry = registry if registry is not None else get_metrics()
    report = WalScanReport()
    records: list[WalRecord] = []
    segments = list_segments(directory)
    report.segments = len(segments)
    prev_seq: int | None = None
    for position, path in enumerate(segments):
        segment_recs, intact, status = segment_records(path)
        kept: list[WalRecord] = []
        for record in segment_recs:
            if prev_seq is not None and record.seq != prev_seq + 1:
                # A gap framing cannot see — e.g. bit rot inside a length
                # field that happened to re-frame cleanly.  Trust ends at
                # the last contiguous record.
                status = "corrupt"
                intact = record.offset
                break
            kept.append(record)
            prev_seq = record.seq
        records.extend(kept)
        if status == STATUS_CLEAN:
            continue
        # Damage: truncate this file at the last intact byte and drop every
        # later segment — records past a broken chain are unreplayable.
        report.status = status
        size = os.path.getsize(path)
        report.truncations += 1
        report.truncated_bytes += size - intact
        report.details.append(
            f"{os.path.basename(path)}: {status} tail truncated at byte "
            f"{intact} (was {size})"
        )
        if repair:
            if intact == 0:
                os.unlink(path)
            else:
                with open(path, "r+b") as handle:
                    handle.truncate(intact)
        for later in segments[position + 1 :]:
            report.dropped_segments += 1
            report.details.append(
                f"{os.path.basename(later)}: unreachable past the damage"
            )
            if repair:
                os.unlink(later)
        if repair:
            _fsync_directory(directory)
        registry.counter("wal.torn_tail_truncated").inc()
        break
    report.records = len(records)
    return records, report
