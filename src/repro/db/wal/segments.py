"""Append-only WAL segments: rotation, fsync policy, and crash-safe scans.

A durability directory holds numbered segment files (``wal-00000001.seg``,
...), each starting with the 4-byte magic ``LWS1`` followed by framed
records (:mod:`repro.db.wal.records`).  :class:`WriteAheadLog` appends;
:func:`scan_wal` reads everything intact back and *repairs* the tail —
truncating a torn or corrupt suffix in place instead of raising, which is
what lets ``LitmusSession.recover`` absorb a crash mid-write.

All I/O goes through a :class:`~repro.db.fsio.FileSystem`, so a seeded
:class:`~repro.db.fsio.FaultyFileSystem` can make the disk itself
misbehave.  The failure semantics are fsyncgate-correct:

- a failed **write** never acknowledged anything, so the record is
  re-attempted once, whole, in a freshly rotated segment (the torn bytes
  in the abandoned segment are repaired by the next scan).  If the rescue
  rotation also fails the log raises :class:`~repro.errors.DurabilityError`
  — ENOSPC is "rotate or fail", never "pretend";
- a failed **fsync** permanently poisons the log: the kernel may have
  dropped the dirty pages and cleared the error, so retrying the fsync
  and trusting its success would acknowledge bytes that are gone.  The
  in-flight append raises :class:`~repro.errors.DurabilityError` (before
  any ticket resolves — see ``LitmusSession._finish_accepted``) and every
  later append re-raises it.  Recovery treats the never-synced tail as
  untrusted: it is torn/corrupt to the scanner and truncated away.

fsync policy (the durability/throughput dial):

- ``"always"`` — ``fsync`` after every append; an acknowledged batch is on
  the platter before ``flush()`` returns (the zero-loss setting);
- ``"batch"``  — ``fsync`` every ``sync_every`` appends and on rotation /
  checkpoint / close; bounds loss to the last sync window;
- ``"never"``  — only ``flush()`` to the OS; durability is whatever the
  page cache survives.  Fastest, and the right setting when a checkpoint
  or an outer store already provides durability.

Metrics: ``wal.records``, ``wal.bytes``, ``wal.fsyncs``, ``wal.rotations``
(counters) on every writer; ``wal.torn_tail_truncated`` when a scan had to
repair a tail; ``storage.write_errors`` / ``storage.rescue_rotations`` /
``storage.fsync_failures`` when the disk misbehaved underneath.
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass, field

from ...errors import DurabilityError, WalError
from ...obs.metrics import MetricsRegistry, get_metrics
from ..fsio import OS_FILESYSTEM, FileSystem
from .records import (
    STATUS_CLEAN,
    WalRecord,
    decode_records,
    encode_record,
)

__all__ = [
    "SEGMENT_MAGIC",
    "WalScanReport",
    "WriteAheadLog",
    "list_segments",
    "scan_wal",
    "segment_records",
]

SEGMENT_MAGIC = b"LWS1"  # Litmus WAL Segment v1
_SEGMENT_RE = re.compile(r"^wal-(\d{8})\.seg$")

FSYNC_POLICIES = ("always", "batch", "never")

_STATUS_RANK = {STATUS_CLEAN: 0, "torn": 1, "corrupt": 2}


def _segment_name(index: int) -> str:
    return f"wal-{index:08d}.seg"


def list_segments(directory: str, fs: FileSystem | None = None) -> list[str]:
    """Absolute paths of every segment file, in index order."""
    fs = fs if fs is not None else OS_FILESYSTEM
    try:
        names = fs.listdir(directory)
    except FileNotFoundError:
        return []
    found = []
    for name in names:
        match = _SEGMENT_RE.match(name)
        if match:
            found.append((int(match.group(1)), os.path.join(directory, name)))
    return [path for _index, path in sorted(found)]


def _fsync_directory(directory: str, fs: FileSystem | None = None) -> None:
    """Make a rename/create/unlink in *directory* itself durable (POSIX)."""
    (fs if fs is not None else OS_FILESYSTEM).fsync_dir(directory)


class WriteAheadLog:
    """Appender over a directory of rotated, CRC-framed segment files."""

    def __init__(
        self,
        directory: str,
        fsync: str = "always",
        segment_max_bytes: int = 1 << 20,
        sync_every: int = 8,
        registry: MetricsRegistry | None = None,
        fs: FileSystem | None = None,
    ):
        if fsync not in FSYNC_POLICIES:
            raise WalError(f"unknown fsync policy {fsync!r} (want {FSYNC_POLICIES})")
        if segment_max_bytes < len(SEGMENT_MAGIC) + 16:
            raise WalError("segment_max_bytes is too small to hold a record")
        if sync_every < 1:
            raise WalError("sync_every must be positive")
        self.directory = directory
        self.fsync = fsync
        self.segment_max_bytes = segment_max_bytes
        self.sync_every = sync_every
        self.registry = registry if registry is not None else get_metrics()
        self.fs = fs if fs is not None else OS_FILESYSTEM
        self.fs.makedirs(directory)
        existing = list_segments(directory, self.fs)
        # Never append to a pre-existing segment: its tail may be torn from
        # a previous crash.  A fresh segment keeps old bytes immutable and
        # lets scan_wal repair them independently.
        self._index = (
            int(_SEGMENT_RE.match(os.path.basename(existing[-1])).group(1)) + 1
            if existing
            else 1
        )
        self._file = None
        self._size = 0
        self._unsynced = 0
        self._poisoned: DurabilityError | None = None
        self._open_segment()

    # -- appending ---------------------------------------------------------------

    def append(self, seq: int, digest: int, command_log: bytes) -> None:
        """Frame and append one verified batch; durable per the policy.

        Raises :class:`~repro.errors.DurabilityError` when the disk could
        not honestly take the record — and never acknowledges via a lying
        fsync (see the module docstring for the exact failure semantics).
        """
        self._check_poisoned()
        record = encode_record(seq, digest, command_log)
        try:
            if (
                self._size + len(record) > self.segment_max_bytes
                and self._size > len(SEGMENT_MAGIC)
            ):
                self.rotate()
            self._file.write(record)
            self._file.flush()
        except OSError as exc:
            # The write failed (EIO / ENOSPC / short write).  Nothing was
            # acknowledged, so retrying the whole record in a fresh segment
            # is honest; the abandoned segment's torn tail is repaired by
            # the next scan.  Only if the rescue rotation fails too does
            # the log give up.
            self.registry.counter("storage.write_errors").inc()
            self._rescue_rotate(record, exc)
        self._size += len(record)
        self.registry.counter("wal.records").inc()
        self.registry.counter("wal.bytes").inc(len(record))
        if self.fsync == "always":
            self._fsync_file()
        elif self.fsync == "batch":
            self._unsynced += 1
            if self._unsynced >= self.sync_every:
                self.sync()

    def sync(self) -> None:
        """Force everything appended so far onto stable storage."""
        self._check_poisoned()
        if self._file is not None and self.fsync != "never":
            self._fsync_file()

    def rotate(self) -> None:
        """Seal the active segment and start the next one."""
        self._close_segment()
        self._index += 1
        self._open_segment()
        self.registry.counter("wal.rotations").inc()

    def reset(self) -> None:
        """Start a fresh segment and delete every older one.

        Called right after a checkpoint rename is durable: every record so
        far is covered by the checkpoint, so the old segments are dead
        weight.  Crash-ordering note — the checkpoint *must* be renamed
        (and the rename fsynced) before this runs; a crash in between just
        leaves stale segments whose records recovery skips by sequence
        number.
        """
        current = os.path.join(self.directory, _segment_name(self._index))
        self.rotate()
        for path in list_segments(self.directory, self.fs):
            if path != os.path.join(self.directory, _segment_name(self._index)):
                self.fs.unlink(path)
        if self.fsync != "never":
            _fsync_directory(self.directory, self.fs)
        # The pre-reset segment must be gone; guard against name races.
        if self.fs.exists(current):  # pragma: no cover - defensive
            raise WalError(f"failed to retire WAL segment {current}")

    def close(self) -> None:
        if self._poisoned is not None:
            self._abandon_segment()
            return
        self._close_segment()

    # -- internals ---------------------------------------------------------------

    @property
    def active_segment(self) -> str:
        return os.path.join(self.directory, _segment_name(self._index))

    @property
    def poisoned(self) -> bool:
        """True once a failed fsync (or failed rescue) killed this log."""
        return self._poisoned is not None

    def _check_poisoned(self) -> None:
        if self._poisoned is not None:
            raise DurabilityError(
                f"WAL is poisoned by an earlier durability failure: "
                f"{self._poisoned}",
                op=self._poisoned.op,
                path=self._poisoned.path,
            )

    def _poison(self, error: DurabilityError) -> None:
        self._poisoned = error
        self._abandon_segment()

    def _abandon_segment(self) -> None:
        """Drop the handle without trusting it (no fsync, errors ignored)."""
        if self._file is None:
            return
        try:
            self._file.close()
        except OSError:  # pragma: no cover - close errors are moot here
            pass
        self._file = None

    def _rescue_rotate(self, record: bytes, cause: OSError) -> None:
        """Re-attempt a failed append, whole, in a fresh segment."""
        self._abandon_segment()
        self._index += 1
        try:
            self._open_segment()
            self._file.write(record)
            self._file.flush()
        except OSError as exc:
            error = DurabilityError(
                f"WAL append failed ({cause}) and the rescue rotation "
                f"failed too ({exc}); no segment can take the record",
                op="write",
                path=self.active_segment,
            )
            self._poison(error)
            raise error from exc
        # The rescue segment starts fresh: its magic + this record are the
        # only unsynced bytes; _size is re-based by _open_segment.
        self._size = len(SEGMENT_MAGIC)
        self.registry.counter("storage.rescue_rotations").inc()
        self.registry.counter("wal.rotations").inc()

    def _open_segment(self) -> None:
        path = self.active_segment
        self._file = self.fs.open(path, "xb")
        self._file.write(SEGMENT_MAGIC)
        self._file.flush()
        self._size = len(SEGMENT_MAGIC)
        self._unsynced = 0
        if self.fsync != "never":
            self._fsync_file()
            _fsync_directory(self.directory, self.fs)

    def _close_segment(self) -> None:
        if self._file is None:
            return
        self.sync()
        self._file.close()
        self._file = None

    def _fsync_file(self) -> None:
        try:
            self._file.fsync()
        except OSError as exc:
            # fsyncgate: the kernel may have dropped the dirty pages and
            # cleared the error — a second fsync would "succeed" without
            # the bytes ever reaching the platter.  Poison the log; the
            # unsynced tail is untrusted and recovery truncates it.
            self.registry.counter("storage.fsync_failures").inc()
            error = DurabilityError(
                f"fsync failed on {self._file.path}: {exc}; the segment is "
                "poisoned and its unsynced tail must not be trusted",
                op="fsync",
                path=self._file.path,
            )
            self._poison(error)
            raise error from exc
        self._unsynced = 0
        self.registry.counter("wal.fsyncs").inc()


@dataclass
class WalScanReport:
    """What a recovery scan found (and repaired) in a durability directory."""

    segments: int = 0
    records: int = 0
    status: str = STATUS_CLEAN  # worst status seen: clean | torn | corrupt
    truncations: int = 0  # torn/corrupt tails truncated away
    truncated_bytes: int = 0
    dropped_segments: int = 0  # whole segments discarded past the damage
    resumed_segments: int = 0  # segments kept past damage (chain resumed)
    details: list[str] = field(default_factory=list)


def segment_records(
    path: str, fs: FileSystem | None = None
) -> tuple[list[WalRecord], int, str]:
    """Decode one segment file: ``(records, intact_bytes, status)``.

    A missing or mangled magic marks the whole file corrupt at offset 0.
    """
    fs = fs if fs is not None else OS_FILESYSTEM
    data = fs.read_bytes(path)
    if data[: len(SEGMENT_MAGIC)] != SEGMENT_MAGIC:
        return [], 0, "corrupt"
    return decode_records(data, offset=len(SEGMENT_MAGIC))


def scan_wal(
    directory: str,
    registry: MetricsRegistry | None = None,
    repair: bool = True,
    fs: FileSystem | None = None,
) -> tuple[list[WalRecord], WalScanReport]:
    """Read every intact record back, repairing tail damage in place.

    Walks segments in index order, enforcing that batch sequence numbers
    increase by exactly one across the whole log.  A torn or corrupt
    record ends that segment: with ``repair=True`` (the recovery default)
    the damaged suffix is physically truncated away.  A *later* segment is
    kept only if its first record resumes the sequence chain exactly where
    the damage cut it — the shape a rescue rotation leaves behind (the
    failed record re-written whole in the next segment), where every
    surviving byte is still CRC-checked and seq-contiguous.  Any other
    later segment is unreachable past a broken chain and is deleted.
    Nothing here raises on bad bytes; damage becomes a smaller log plus a
    loud :class:`WalScanReport`, never an exception escaping recovery.
    """
    registry = registry if registry is not None else get_metrics()
    fs = fs if fs is not None else OS_FILESYSTEM
    report = WalScanReport()
    records: list[WalRecord] = []
    segments = list_segments(directory, fs)
    report.segments = len(segments)
    prev_seq: int | None = None
    damaged = False
    repaired_any = False
    for path in segments:
        segment_recs, intact, status = segment_records(path, fs)
        if damaged:
            first = segment_recs[0].seq if segment_recs else None
            if first is None or (prev_seq is not None and first != prev_seq + 1):
                report.dropped_segments += 1
                report.details.append(
                    f"{os.path.basename(path)}: unreachable past the damage"
                )
                if repair:
                    fs.unlink(path)
                    repaired_any = True
                continue
            report.resumed_segments += 1
            report.details.append(
                f"{os.path.basename(path)}: chain resumes at seq {first} "
                "past the damage (rescue rotation)"
            )
            damaged = False
        kept: list[WalRecord] = []
        for record in segment_recs:
            if prev_seq is not None and record.seq != prev_seq + 1:
                # A gap framing cannot see — e.g. bit rot inside a length
                # field that happened to re-frame cleanly.  Trust ends at
                # the last contiguous record.
                status = "corrupt"
                intact = record.offset
                break
            kept.append(record)
            prev_seq = record.seq
        records.extend(kept)
        if status == STATUS_CLEAN:
            continue
        # Damage: truncate this file at the last intact byte.  Whether any
        # later segment survives is decided above, by chain resumption.
        if _STATUS_RANK[status] > _STATUS_RANK[report.status]:
            report.status = status
        size = fs.getsize(path)
        report.truncations += 1
        report.truncated_bytes += size - intact
        report.details.append(
            f"{os.path.basename(path)}: {status} tail truncated at byte "
            f"{intact} (was {size})"
        )
        if repair:
            if intact == 0:
                fs.unlink(path)
            else:
                fs.truncate(path, intact)
            repaired_any = True
        registry.counter("wal.torn_tail_truncated").inc()
        damaged = True
    if repair and repaired_any:
        _fsync_directory(directory, fs)
    report.records = len(records)
    return records, report
