"""Atomic checkpoint files: the WAL's replay anchor.

A checkpoint journals everything a restarted deployment needs to resume
without replaying history from genesis:

- the KVStore snapshot (``rows``),
- the authenticated-dictionary provider state (store, exponent product,
  digest) — journaled so a checkpoint is a *complete* server image and so
  its self-consistency can be validated on load,
- the client's verified digest and its hash-chained :class:`DigestLog`,
- the deployment's :class:`~repro.core.config.LitmusConfig`, RSA group
  parameters, durability settings, and the next transaction id.

Write protocol (the atomicity story): serialize to ``<name>.tmp`` in the
same directory, ``fsync`` the temp file, then ``os.replace`` onto the
final name and ``fsync`` the directory.  POSIX rename atomicity means a
reader sees either the whole new checkpoint or none of it — a crash
between the two steps leaves a ``.tmp`` file that loaders ignore and the
next writer garbage-collects.  A SHA-256 checksum over the canonical body
catches bit rot that rename atomicity cannot.

Loading walks candidates newest-first and returns the first one that
validates, so one rotted checkpoint degrades recovery to the previous
checkpoint plus more WAL replay instead of failing it.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
from dataclasses import dataclass
from typing import Callable, Mapping

from ...errors import CheckpointError, ReproError
from ...serialization import encode
from .segments import _fsync_directory

__all__ = [
    "Checkpoint",
    "checkpoint_path",
    "list_checkpoints",
    "load_latest_checkpoint",
    "write_checkpoint",
]

_FORMAT = "litmus-wal-checkpoint-v1"
_CHECKPOINT_RE = re.compile(r"^checkpoint-(\d{16})\.ckpt$")


@dataclass(frozen=True)
class Checkpoint:
    """One decoded checkpoint (see module docstring for field meanings)."""

    seq: int  # last batch sequence number the checkpoint covers
    digest: int  # client-verified digest at that point
    rows: dict  # KVStore contents, tuple keys
    provider_store: dict  # AD contents, tuple keys
    provider_product: int  # AD exponent product S
    provider_digest: int  # AD digest (must equal `digest`)
    next_txn_id: int
    config: dict  # LitmusConfig fields
    group_modulus: int
    group_generator: int
    durability: dict  # DurabilityConfig fields minus the directory
    digest_log_json: str  # DigestLog.to_json payload
    path: str = ""

    @property
    def provider_state(self) -> tuple[dict, int, int]:
        """The tuple :meth:`MemoryIntegrityProvider.restore` accepts."""
        return dict(self.provider_store), self.provider_product, self.provider_digest


def checkpoint_path(directory: str, seq: int) -> str:
    return os.path.join(directory, f"checkpoint-{seq:016d}.ckpt")


def list_checkpoints(directory: str) -> list[str]:
    """Checkpoint files (no temps), newest sequence first."""
    try:
        names = os.listdir(directory)
    except FileNotFoundError:
        return []
    found = []
    for name in names:
        match = _CHECKPOINT_RE.match(name)
        if match:
            found.append((int(match.group(1)), os.path.join(directory, name)))
    return [path for _seq, path in sorted(found, reverse=True)]


def _encode_key(key: tuple) -> list:
    for part in key:
        if not isinstance(part, (int, str)) or isinstance(part, bool):
            raise ReproError(
                f"checkpoints support int/str key parts, got {part!r}"
            )
    return list(key)


def _encode_rows(rows: Mapping[tuple, int]) -> list:
    return [
        [_encode_key(key), value]
        for key, value in sorted(rows.items(), key=lambda item: encode(item[0]))
    ]


def _decode_rows(raw: list) -> dict:
    return {tuple(key): value for key, value in raw}


def _canonical(body: dict) -> bytes:
    return json.dumps(body, sort_keys=True, separators=(",", ":")).encode()


def write_checkpoint(
    directory: str,
    *,
    seq: int,
    digest: int,
    rows: Mapping[tuple, int],
    provider_state: tuple[dict, int, int],
    next_txn_id: int,
    config: Mapping[str, object],
    group_modulus: int,
    group_generator: int,
    durability: Mapping[str, object],
    digest_log_json: str,
    fsync: bool = True,
    on_stage: Callable[[str], None] | None = None,
    keep: int = 2,
) -> str:
    """Write one checkpoint atomically; returns the final path.

    *on_stage* is the durability fault hook: it fires with
    ``"after-checkpoint-temp"`` once the temp file is durable (before the
    rename) and ``"after-checkpoint"`` once the rename is — the two
    crash points the recovery story must survive.
    """
    provider_store, provider_product, provider_digest = provider_state
    body = {
        "format": _FORMAT,
        "seq": seq,
        "digest": hex(digest),
        "rows": _encode_rows(rows),
        "provider": {
            "rows": _encode_rows(provider_store),
            "product": hex(provider_product),
            "digest": hex(provider_digest),
        },
        "next_txn_id": next_txn_id,
        "config": dict(config),
        "group": {"modulus": hex(group_modulus), "generator": hex(group_generator)},
        "durability": dict(durability),
        "digest_log": json.loads(digest_log_json),
    }
    body["checksum"] = hashlib.sha256(_canonical(body)).hexdigest()
    final = checkpoint_path(directory, seq)
    temp = final + ".tmp"
    with open(temp, "w", encoding="utf-8") as handle:
        json.dump(body, handle)
        handle.flush()
        if fsync:
            os.fsync(handle.fileno())
    if on_stage is not None:
        on_stage("after-checkpoint-temp")
    os.replace(temp, final)
    if fsync:
        _fsync_directory(directory)
    if on_stage is not None:
        on_stage("after-checkpoint")
    # Garbage-collect: stale temps from old crashes and checkpoints beyond
    # the retention window (the newest `keep` stay as rot fallbacks).
    for name in os.listdir(directory):
        if name.endswith(".ckpt.tmp") and os.path.join(directory, name) != temp:
            os.unlink(os.path.join(directory, name))
    for old in list_checkpoints(directory)[max(keep, 1) :]:
        os.unlink(old)
    return final


def _load_one(path: str) -> Checkpoint:
    with open(path, "r", encoding="utf-8") as handle:
        raw = json.load(handle)
    if not isinstance(raw, dict) or raw.get("format") != _FORMAT:
        raise CheckpointError(f"{path}: not a Litmus WAL checkpoint")
    body = dict(raw)
    recorded = body.pop("checksum", None)
    actual = hashlib.sha256(_canonical(body)).hexdigest()
    if recorded != actual:
        raise CheckpointError(f"{path}: checksum mismatch (bit rot or tampering)")
    provider = raw["provider"]
    checkpoint = Checkpoint(
        seq=raw["seq"],
        digest=int(raw["digest"], 16),
        rows=_decode_rows(raw["rows"]),
        provider_store=_decode_rows(provider["rows"]),
        provider_product=int(provider["product"], 16),
        provider_digest=int(provider["digest"], 16),
        next_txn_id=raw["next_txn_id"],
        config=dict(raw["config"]),
        group_modulus=int(raw["group"]["modulus"], 16),
        group_generator=int(raw["group"]["generator"], 16),
        durability=dict(raw["durability"]),
        digest_log_json=json.dumps(raw["digest_log"]),
        path=path,
    )
    if checkpoint.provider_digest != checkpoint.digest:
        raise CheckpointError(
            f"{path}: journaled provider digest disagrees with the verified "
            "digest — the checkpoint is internally inconsistent"
        )
    return checkpoint


def load_latest_checkpoint(directory: str) -> Checkpoint:
    """The newest checkpoint that validates; raises :class:`CheckpointError`.

    Invalid candidates (truncated JSON, checksum mismatch, foreign format)
    are skipped in favour of older ones — recovery then simply replays
    more WAL.  Only when *no* candidate validates does this raise.
    """
    failures: list[str] = []
    for path in list_checkpoints(directory):
        try:
            return _load_one(path)
        except (CheckpointError, OSError, ValueError, KeyError, TypeError) as exc:
            failures.append(f"{os.path.basename(path)}: {exc}")
    detail = "; ".join(failures) if failures else "no checkpoint files present"
    raise CheckpointError(
        f"no valid checkpoint in {directory!r} ({detail})"
    )
