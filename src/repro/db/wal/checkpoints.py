"""Atomic checkpoint files: the WAL's replay anchor.

A checkpoint journals everything a restarted deployment needs to resume
without replaying history from genesis:

- the KVStore snapshot (``rows``),
- the authenticated-dictionary provider state (store, exponent product,
  digest) — journaled so a checkpoint is a *complete* server image and so
  its self-consistency can be validated on load,
- the client's verified digest and its hash-chained :class:`DigestLog`,
- the deployment's :class:`~repro.core.config.LitmusConfig`, RSA group
  parameters, durability settings, and the next transaction id.

Write protocol (the atomicity story): serialize to ``<name>.tmp`` in the
same directory, ``fsync`` the temp file, then rename atomically onto the
final name and ``fsync`` the directory.  POSIX rename atomicity means a
reader sees either the whole new checkpoint or none of it — a crash
between the two steps leaves a ``.tmp`` file that loaders ignore and the
next writer garbage-collects.  A SHA-256 checksum over the canonical body
catches bit rot that rename atomicity cannot.

Every checkpoint also gets a **mirror** (``<name>.ckpt.mirror``), written
atomically right after the primary with the same temp-fsync-rename
protocol.  The mirror is byte-identical redundancy against at-rest rot:
loading falls back primary → mirror → older checkpoint, and the scrubber
(:mod:`repro.db.scrub`) repairs a rotted primary from its mirror (or
vice versa).  A mirror write failure is degraded redundancy, not a
durability failure — it is counted (``storage.mirror_write_failures``)
and survived, because the fsynced primary already anchors recovery.

Loading walks candidates newest-first and returns the first one that
validates; :func:`select_checkpoint` additionally reports *which* file
was loaded and which candidates were rejected and why, so recovery can
surface the fallback decision instead of taking it silently.

All I/O goes through a :class:`~repro.db.fsio.FileSystem` so the disk
fault injectors reach checkpoints too.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
from dataclasses import dataclass
from typing import Callable, Mapping

from ...errors import CheckpointError, ReproError
from ...obs.metrics import MetricsRegistry, get_metrics
from ...serialization import encode
from ..fsio import OS_FILESYSTEM, FileSystem
from .segments import _fsync_directory

__all__ = [
    "Checkpoint",
    "CheckpointSelection",
    "checkpoint_path",
    "list_checkpoints",
    "load_latest_checkpoint",
    "mirror_path",
    "select_checkpoint",
    "write_checkpoint",
]

_FORMAT = "litmus-wal-checkpoint-v1"
_CHECKPOINT_RE = re.compile(r"^checkpoint-(\d{16})\.ckpt$")
MIRROR_SUFFIX = ".mirror"


@dataclass(frozen=True)
class Checkpoint:
    """One decoded checkpoint (see module docstring for field meanings)."""

    seq: int  # last batch sequence number the checkpoint covers
    digest: int  # client-verified digest at that point
    rows: dict  # KVStore contents, tuple keys
    provider_store: dict  # AD contents, tuple keys
    provider_product: int  # AD exponent product S
    provider_digest: int  # AD digest (must equal `digest`)
    next_txn_id: int
    config: dict  # LitmusConfig fields
    group_modulus: int
    group_generator: int
    durability: dict  # DurabilityConfig fields minus the directory
    digest_log_json: str  # DigestLog.to_json payload
    path: str = ""

    @property
    def provider_state(self) -> tuple[dict, int, int]:
        """The tuple :meth:`MemoryIntegrityProvider.restore` accepts."""
        return dict(self.provider_store), self.provider_product, self.provider_digest


@dataclass(frozen=True)
class CheckpointSelection:
    """Which checkpoint recovery anchored on, and what it passed over.

    - ``checkpoint`` — the validated winner;
    - ``loaded_path`` — the actual file read (a ``.ckpt`` primary, or its
      ``.ckpt.mirror`` when the primary was damaged);
    - ``used_mirror`` — True iff the winner came from a mirror;
    - ``rejected`` — every candidate file that failed validation before
      the winner, newest-first, as ``"name: reason"`` strings.  Empty on
      the happy path (the newest primary validated).
    """

    checkpoint: Checkpoint
    loaded_path: str
    used_mirror: bool
    rejected: tuple[str, ...]


def checkpoint_path(directory: str, seq: int) -> str:
    return os.path.join(directory, f"checkpoint-{seq:016d}.ckpt")


def mirror_path(primary: str) -> str:
    """The mirror twin of a checkpoint primary path."""
    return primary + MIRROR_SUFFIX


def list_checkpoints(directory: str, fs: FileSystem | None = None) -> list[str]:
    """Checkpoint files (no temps, no mirrors), newest sequence first."""
    fs = fs if fs is not None else OS_FILESYSTEM
    try:
        names = fs.listdir(directory)
    except FileNotFoundError:
        return []
    found = []
    for name in names:
        match = _CHECKPOINT_RE.match(name)
        if match:
            found.append((int(match.group(1)), os.path.join(directory, name)))
    return [path for _seq, path in sorted(found, reverse=True)]


def _encode_key(key: tuple) -> list:
    for part in key:
        if not isinstance(part, (int, str)) or isinstance(part, bool):
            raise ReproError(
                f"checkpoints support int/str key parts, got {part!r}"
            )
    return list(key)


def _encode_rows(rows: Mapping[tuple, int]) -> list:
    return [
        [_encode_key(key), value]
        for key, value in sorted(rows.items(), key=lambda item: encode(item[0]))
    ]


def _decode_rows(raw: list) -> dict:
    return {tuple(key): value for key, value in raw}


def _canonical(body: dict) -> bytes:
    return json.dumps(body, sort_keys=True, separators=(",", ":")).encode()


def _write_atomic(
    fs: FileSystem, directory: str, final: str, data: bytes, fsync: bool
) -> None:
    """temp → fsync → rename → fsync-dir; the one true publication dance."""
    temp = final + ".tmp"
    with fs.open(temp, "wb") as handle:
        handle.write(data)
        handle.flush()
        if fsync:
            handle.fsync()
    fs.replace(temp, final)
    if fsync:
        _fsync_directory(directory, fs)


def write_checkpoint(
    directory: str,
    *,
    seq: int,
    digest: int,
    rows: Mapping[tuple, int],
    provider_state: tuple[dict, int, int],
    next_txn_id: int,
    config: Mapping[str, object],
    group_modulus: int,
    group_generator: int,
    durability: Mapping[str, object],
    digest_log_json: str,
    fsync: bool = True,
    on_stage: Callable[[str], None] | None = None,
    keep: int = 2,
    fs: FileSystem | None = None,
    registry: MetricsRegistry | None = None,
) -> str:
    """Write one checkpoint (and its mirror) atomically; returns the path.

    *on_stage* is the durability fault hook: it fires with
    ``"after-checkpoint-temp"`` once the temp file is durable (before the
    rename) and ``"after-checkpoint"`` once the rename is — the two
    crash points the recovery story must survive.
    """
    fs = fs if fs is not None else OS_FILESYSTEM
    registry = registry if registry is not None else get_metrics()
    provider_store, provider_product, provider_digest = provider_state
    body = {
        "format": _FORMAT,
        "seq": seq,
        "digest": hex(digest),
        "rows": _encode_rows(rows),
        "provider": {
            "rows": _encode_rows(provider_store),
            "product": hex(provider_product),
            "digest": hex(provider_digest),
        },
        "next_txn_id": next_txn_id,
        "config": dict(config),
        "group": {"modulus": hex(group_modulus), "generator": hex(group_generator)},
        "durability": dict(durability),
        "digest_log": json.loads(digest_log_json),
    }
    body["checksum"] = hashlib.sha256(_canonical(body)).hexdigest()
    data = json.dumps(body).encode("utf-8")
    final = checkpoint_path(directory, seq)
    temp = final + ".tmp"
    with fs.open(temp, "wb") as handle:
        handle.write(data)
        handle.flush()
        if fsync:
            handle.fsync()
    if on_stage is not None:
        on_stage("after-checkpoint-temp")
    fs.replace(temp, final)
    if fsync:
        _fsync_directory(directory, fs)
    if on_stage is not None:
        on_stage("after-checkpoint")
    # The mirror: byte-identical redundancy against at-rest rot, published
    # with the same atomic dance.  Failure here is degraded redundancy,
    # never a durability failure — the fsynced primary already anchors
    # recovery — so it is counted and survived, not raised.
    mirror = mirror_path(final)
    try:
        _write_atomic(fs, directory, mirror, data, fsync)
        registry.counter("storage.mirror_writes").inc()
    except OSError:
        registry.counter("storage.mirror_write_failures").inc()
        try:
            if fs.exists(mirror + ".tmp"):
                fs.unlink(mirror + ".tmp")
        except OSError:  # pragma: no cover - best-effort cleanup
            pass
    # Garbage-collect: stale temps from old crashes, checkpoints beyond
    # the retention window (the newest `keep` stay as rot fallbacks), and
    # mirrors whose primary is gone.
    for name in fs.listdir(directory):
        path = os.path.join(directory, name)
        if name.endswith((".ckpt.tmp", MIRROR_SUFFIX + ".tmp")) and path != temp:
            fs.unlink(path)
    keepers = list_checkpoints(directory, fs)[: max(keep, 1)]
    for old in list_checkpoints(directory, fs)[max(keep, 1) :]:
        fs.unlink(old)
        if fs.exists(mirror_path(old)):
            fs.unlink(mirror_path(old))
    for name in fs.listdir(directory):
        if name.endswith(".ckpt" + MIRROR_SUFFIX):
            path = os.path.join(directory, name)
            if path[: -len(MIRROR_SUFFIX)] not in keepers and not fs.exists(
                path[: -len(MIRROR_SUFFIX)]
            ):
                fs.unlink(path)
    return final


def _load_one(path: str, fs: FileSystem | None = None) -> Checkpoint:
    fs = fs if fs is not None else OS_FILESYSTEM
    raw = json.loads(fs.read_bytes(path).decode("utf-8"))
    if not isinstance(raw, dict) or raw.get("format") != _FORMAT:
        raise CheckpointError(f"{path}: not a Litmus WAL checkpoint")
    body = dict(raw)
    recorded = body.pop("checksum", None)
    actual = hashlib.sha256(_canonical(body)).hexdigest()
    if recorded != actual:
        raise CheckpointError(f"{path}: checksum mismatch (bit rot or tampering)")
    provider = raw["provider"]
    checkpoint = Checkpoint(
        seq=raw["seq"],
        digest=int(raw["digest"], 16),
        rows=_decode_rows(raw["rows"]),
        provider_store=_decode_rows(provider["rows"]),
        provider_product=int(provider["product"], 16),
        provider_digest=int(provider["digest"], 16),
        next_txn_id=raw["next_txn_id"],
        config=dict(raw["config"]),
        group_modulus=int(raw["group"]["modulus"], 16),
        group_generator=int(raw["group"]["generator"], 16),
        durability=dict(raw["durability"]),
        digest_log_json=json.dumps(raw["digest_log"]),
        path=path,
    )
    if checkpoint.provider_digest != checkpoint.digest:
        raise CheckpointError(
            f"{path}: journaled provider digest disagrees with the verified "
            "digest — the checkpoint is internally inconsistent"
        )
    return checkpoint


_LOAD_FAILURES = (CheckpointError, OSError, ValueError, KeyError, TypeError)


def select_checkpoint(
    directory: str, fs: FileSystem | None = None
) -> CheckpointSelection:
    """The newest checkpoint that validates, with the fallback trail.

    Candidates are walked newest-first; for each, the primary is tried
    before its mirror.  Invalid candidates (truncated JSON, checksum
    mismatch, foreign format) are collected into ``rejected`` rather than
    silently skipped.  Raises :class:`~repro.errors.CheckpointError` only
    when *nothing* — no primary, no mirror — validates.
    """
    fs = fs if fs is not None else OS_FILESYSTEM
    failures: list[str] = []
    for path in list_checkpoints(directory, fs):
        try:
            return CheckpointSelection(
                checkpoint=_load_one(path, fs),
                loaded_path=path,
                used_mirror=False,
                rejected=tuple(failures),
            )
        except _LOAD_FAILURES as exc:
            failures.append(f"{os.path.basename(path)}: {exc}")
        mirror = mirror_path(path)
        if fs.exists(mirror):
            try:
                return CheckpointSelection(
                    checkpoint=_load_one(mirror, fs),
                    loaded_path=mirror,
                    used_mirror=True,
                    rejected=tuple(failures),
                )
            except _LOAD_FAILURES as exc:
                failures.append(f"{os.path.basename(mirror)}: {exc}")
    detail = "; ".join(failures) if failures else "no checkpoint files present"
    raise CheckpointError(f"no valid checkpoint in {directory!r} ({detail})")


def load_latest_checkpoint(
    directory: str, fs: FileSystem | None = None
) -> Checkpoint:
    """The newest checkpoint that validates; raises :class:`CheckpointError`.

    Thin wrapper over :func:`select_checkpoint` for callers that do not
    need the fallback trail.
    """
    return select_checkpoint(directory, fs=fs).checkpoint
