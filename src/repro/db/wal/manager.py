"""The durability manager: what a session holds when persistence is on.

Owns the :class:`WriteAheadLog` and the checkpoint writer for one
durability directory, and threads the crash-point fault hook
(``FaultPlan.on_durability``) through every stage so the fault-injection
layer can kill the "process" at the exact boundaries that matter:

==========================  ================================================
stage                       meaning
==========================  ================================================
``before-log``              batch verified, nothing durable yet
``after-log``               record durable, acknowledgement not yet sent
``after-checkpoint-temp``   temp checkpoint durable, rename pending
``after-checkpoint``        rename durable, old segments not yet retired
==========================  ================================================

All file I/O flows through a :class:`~repro.db.fsio.FileSystem`; when a
fault plan is attached the manager wraps it in a
:class:`~repro.db.fsio.FaultyFileSystem` tagged with its shard, so the
plan's disk injectors (:mod:`repro.faults.disk`) reach exactly this
engine's writes, fsyncs, and renames.

Also the keeper of the acknowledged-batch invariant: ``log_batch`` runs
*before* ``flush()`` returns its accepted :class:`BatchResult`, so under
``fsync="always"`` an acknowledged batch is always recoverable — and when
the disk refuses (a failed fsync, an unrescuable write) the typed
:class:`~repro.errors.DurabilityError` escapes *before* any ticket
resolves.

When ``DurabilityConfig.scrub_interval > 0`` the manager also runs a
:class:`~repro.db.scrub.BackgroundScrubber` over its directory for the
lifetime of the log (see :mod:`repro.db.scrub`).
"""

from __future__ import annotations

import os

from ...obs.metrics import MetricsRegistry, get_metrics
from ..fsio import OS_FILESYSTEM, FaultyFileSystem, FileSystem
from .checkpoints import list_checkpoints, write_checkpoint
from .config import DurabilityConfig
from .segments import WriteAheadLog, list_segments

__all__ = ["DurabilityManager"]


class DurabilityManager:
    """One session's handle on its durability directory."""

    def __init__(
        self,
        config: DurabilityConfig,
        registry: MetricsRegistry | None = None,
        fault_plan=None,
        shard: int | None = None,
        fs: FileSystem | None = None,
    ):
        self.config = config
        self.registry = registry if registry is not None else get_metrics()
        self.fault_plan = fault_plan
        # Which shard of a sharded session this directory belongs to
        # (None = unsharded); forwarded to every durability fault hook so
        # CrashPoint(shard=...) and the disk injectors can target a single
        # engine.
        self.shard = shard
        base = fs if fs is not None else OS_FILESYSTEM
        self.fs: FileSystem = (
            FaultyFileSystem(fault_plan, base, shard=shard)
            if fault_plan is not None
            else base
        )
        self.fs.makedirs(config.directory)
        self.wal: WriteAheadLog | None = None
        self.scrubber = None
        self.last_seq = 0

    # -- lifecycle ---------------------------------------------------------------

    def has_existing_state(self) -> bool:
        """True when the directory already holds checkpoints or segments."""
        return bool(
            list_checkpoints(self.config.directory, self.fs)
            or list_segments(self.config.directory, self.fs)
        )

    def start(self, last_seq: int = 0) -> None:
        """Open the log for appending, continuing after *last_seq*.

        Stale ``.tmp`` checkpoint/mirror leftovers from an earlier crash
        are garbage-collected here; real checkpoints and segments are
        never touched (recovery owns those).
        """
        for name in self.fs.listdir(self.config.directory):
            if name.endswith((".ckpt.tmp", ".mirror.tmp")):
                self.fs.unlink(os.path.join(self.config.directory, name))
        self.last_seq = last_seq
        self.wal = WriteAheadLog(
            self.config.directory,
            fsync=self.config.fsync,
            segment_max_bytes=self.config.segment_max_bytes,
            sync_every=self.config.sync_every,
            registry=self.registry,
            fs=self.fs,
        )
        if self.config.scrub_interval > 0:
            from ..scrub import BackgroundScrubber

            self.scrubber = BackgroundScrubber(
                self.config.directory,
                self.config.scrub_interval,
                fs=self.fs,
                registry=self.registry,
                skip_fn=lambda: (
                    {self.wal.active_segment} if self.wal is not None else set()
                ),
            )
            self.scrubber.start()

    def close(self) -> None:
        if self.scrubber is not None:
            self.scrubber.stop()
            self.scrubber = None
        if self.wal is not None:
            self.wal.close()
            self.wal = None

    # -- the two durable writes --------------------------------------------------

    def log_batch(self, seq: int, digest: int, command_log: bytes) -> None:
        """Journal one verified batch; returns only once it is as durable
        as the fsync policy promises (the pre-acknowledgement barrier).
        Raises :class:`~repro.errors.DurabilityError` when the disk could
        not honestly take it — before any acknowledgement escapes."""
        self._stage("before-log")
        self.wal.append(seq, digest, command_log)
        self.last_seq = seq
        self._stage("after-log")

    def checkpoint(
        self,
        *,
        seq: int,
        digest: int,
        rows,
        provider_state,
        next_txn_id: int,
        config,
        group_modulus: int,
        group_generator: int,
        digest_log_json: str,
    ) -> str:
        """Write an atomic checkpoint, then retire the covered segments."""
        path = write_checkpoint(
            self.config.directory,
            seq=seq,
            digest=digest,
            rows=rows,
            provider_state=provider_state,
            next_txn_id=next_txn_id,
            config=config,
            group_modulus=group_modulus,
            group_generator=group_generator,
            durability=self.config.settings(),
            digest_log_json=digest_log_json,
            fsync=self.config.fsync != "never",
            on_stage=self._stage,
            keep=self.config.checkpoint_keep,
            fs=self.fs,
            registry=self.registry,
        )
        # Only after the rename is durable may the WAL shrink: a crash
        # before this line leaves both the checkpoint and the old segments,
        # and recovery skips the doubly-covered records by sequence number.
        self.wal.reset()
        self.registry.counter("wal.checkpoints").inc()
        return path

    # -- fault hook --------------------------------------------------------------

    def _stage(self, name: str) -> None:
        if self.fault_plan is not None:
            self.fault_plan.on_durability(name, shard=self.shard)
