"""The durability manager: what a session holds when persistence is on.

Owns the :class:`WriteAheadLog` and the checkpoint writer for one
durability directory, and threads the crash-point fault hook
(``FaultPlan.on_durability``) through every stage so the fault-injection
layer can kill the "process" at the exact boundaries that matter:

==========================  ================================================
stage                       meaning
==========================  ================================================
``before-log``              batch verified, nothing durable yet
``after-log``               record durable, acknowledgement not yet sent
``after-checkpoint-temp``   temp checkpoint durable, rename pending
``after-checkpoint``        rename durable, old segments not yet retired
==========================  ================================================

Also the keeper of the acknowledged-batch invariant: ``log_batch`` runs
*before* ``flush()`` returns its accepted :class:`BatchResult`, so under
``fsync="always"`` an acknowledged batch is always recoverable.
"""

from __future__ import annotations

import os

from ...obs.metrics import MetricsRegistry, get_metrics
from .checkpoints import list_checkpoints, write_checkpoint
from .config import DurabilityConfig
from .segments import WriteAheadLog, list_segments

__all__ = ["DurabilityManager"]


class DurabilityManager:
    """One session's handle on its durability directory."""

    def __init__(
        self,
        config: DurabilityConfig,
        registry: MetricsRegistry | None = None,
        fault_plan=None,
        shard: int | None = None,
    ):
        self.config = config
        self.registry = registry if registry is not None else get_metrics()
        self.fault_plan = fault_plan
        # Which shard of a sharded session this directory belongs to
        # (None = unsharded); forwarded to every durability fault hook so
        # CrashPoint(shard=...) can target a single engine.
        self.shard = shard
        os.makedirs(config.directory, exist_ok=True)
        self.wal: WriteAheadLog | None = None
        self.last_seq = 0

    # -- lifecycle ---------------------------------------------------------------

    def has_existing_state(self) -> bool:
        """True when the directory already holds checkpoints or segments."""
        return bool(
            list_checkpoints(self.config.directory)
            or list_segments(self.config.directory)
        )

    def start(self, last_seq: int = 0) -> None:
        """Open the log for appending, continuing after *last_seq*.

        Stale ``.tmp`` checkpoint leftovers from an earlier crash are
        garbage-collected here; real checkpoints and segments are never
        touched (recovery owns those).
        """
        for name in os.listdir(self.config.directory):
            if name.endswith(".ckpt.tmp"):
                os.unlink(os.path.join(self.config.directory, name))
        self.last_seq = last_seq
        self.wal = WriteAheadLog(
            self.config.directory,
            fsync=self.config.fsync,
            segment_max_bytes=self.config.segment_max_bytes,
            sync_every=self.config.sync_every,
            registry=self.registry,
        )

    def close(self) -> None:
        if self.wal is not None:
            self.wal.close()
            self.wal = None

    # -- the two durable writes --------------------------------------------------

    def log_batch(self, seq: int, digest: int, command_log: bytes) -> None:
        """Journal one verified batch; returns only once it is as durable
        as the fsync policy promises (the pre-acknowledgement barrier)."""
        self._stage("before-log")
        self.wal.append(seq, digest, command_log)
        self.last_seq = seq
        self._stage("after-log")

    def checkpoint(
        self,
        *,
        seq: int,
        digest: int,
        rows,
        provider_state,
        next_txn_id: int,
        config,
        group_modulus: int,
        group_generator: int,
        digest_log_json: str,
    ) -> str:
        """Write an atomic checkpoint, then retire the covered segments."""
        path = write_checkpoint(
            self.config.directory,
            seq=seq,
            digest=digest,
            rows=rows,
            provider_state=provider_state,
            next_txn_id=next_txn_id,
            config=config,
            group_modulus=group_modulus,
            group_generator=group_generator,
            durability=self.config.settings(),
            digest_log_json=digest_log_json,
            fsync=self.config.fsync != "never",
            on_stage=self._stage,
            keep=self.config.checkpoint_keep,
        )
        # Only after the rename is durable may the WAL shrink: a crash
        # before this line leaves both the checkpoint and the old segments,
        # and recovery skips the doubly-covered records by sequence number.
        self.wal.reset()
        self.registry.counter("wal.checkpoints").inc()
        return path

    # -- fault hook --------------------------------------------------------------

    def _stage(self, name: str) -> None:
        if self.fault_plan is not None:
            self.fault_plan.on_durability(name, shard=self.shard)
