"""Durability configuration: one frozen knob-set for the crash-safety layer."""

from __future__ import annotations

from dataclasses import dataclass

from ...errors import WalError
from .segments import FSYNC_POLICIES

__all__ = ["DurabilityConfig"]


@dataclass(frozen=True)
class DurabilityConfig:
    """How (and where) a :class:`~repro.core.session.LitmusSession` persists.

    - ``directory`` — the durability directory: WAL segments plus
      checkpoint files.  One directory == one logical database;
    - ``fsync`` — ``"always"`` (fsync before every acknowledgement; the
      zero-acknowledged-loss setting), ``"batch"`` (fsync every
      ``sync_every`` records and at rotation/checkpoint/close), or
      ``"never"`` (OS page cache only);
    - ``segment_max_bytes`` — rotate the active segment beyond this size;
    - ``sync_every`` — the ``"batch"`` policy's sync window, in records;
    - ``checkpoint_keep`` — how many old checkpoints to retain as bit-rot
      fallbacks (the newest is always kept);
    - ``scrub_interval`` — seconds between background scrub passes over
      the directory (``0.0``, the default, disables the scrubber).  The
      scrubber verifies checkpoint checksums and sealed-segment CRCs while
      the session runs and repairs rotted checkpoints from their mirrors;
      see :mod:`repro.db.scrub`.
    """

    directory: str
    fsync: str = "always"
    segment_max_bytes: int = 1 << 20
    sync_every: int = 8
    checkpoint_keep: int = 2
    scrub_interval: float = 0.0

    def __post_init__(self):
        if not self.directory:
            raise WalError("durability needs a directory")
        if self.fsync not in FSYNC_POLICIES:
            raise WalError(
                f"unknown fsync policy {self.fsync!r} (want one of {FSYNC_POLICIES})"
            )
        if self.segment_max_bytes < 64:
            raise WalError("segment_max_bytes must be at least 64 bytes")
        if self.sync_every < 1 or self.checkpoint_keep < 1:
            raise WalError("sync_every and checkpoint_keep must be positive")
        if self.scrub_interval < 0:
            raise WalError("scrub_interval must be non-negative")

    def settings(self) -> dict:
        """The journal-able fields (everything but the directory), for
        embedding in a checkpoint so ``recover`` can reuse the policy."""
        return {
            "fsync": self.fsync,
            "segment_max_bytes": self.segment_max_bytes,
            "sync_every": self.sync_every,
            "checkpoint_keep": self.checkpoint_keep,
            "scrub_interval": self.scrub_interval,
        }
