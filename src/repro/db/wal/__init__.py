"""Crash-safe durability: on-disk WAL of verified command logs + checkpoints.

The paper's command-logging observation (Section 4: traces "as small as a
few bytes indicating the transaction order and their inputs") made durable.
Before this package, every recovery primitive — the server's rollback
snapshots, the session's ``resync()`` replay, the client's digest log —
lived in process memory and evaporated on exit; the D in "verifiable ACID"
was untested.  This package is the missing persistence spine:

- :mod:`~repro.db.wal.records` — CRC32-framed, length-prefixed records,
  each journaling one *client-verified* batch as ``(sequence, verified
  digest, LCL1 command log)``;
- :mod:`~repro.db.wal.segments` — append-only segment files with rotation,
  a three-way fsync policy (``always`` / ``batch`` / ``never``), and a
  scan/repair reader that truncates torn or rotted tails instead of
  crashing;
- :mod:`~repro.db.wal.checkpoints` — atomic (temp-file-then-rename)
  checkpoint files carrying the KVStore snapshot, the authenticated
  -dictionary provider state, the client digest and its hash-chained log;
- :mod:`~repro.db.wal.config` / :mod:`~repro.db.wal.manager` — the
  :class:`DurabilityConfig` knob-set and the :class:`DurabilityManager` a
  :class:`~repro.core.session.LitmusSession` drives.

The consumer-facing entry points are ``LitmusSession.create(...,
durability=DurabilityConfig(dir))`` — after which ``flush()`` only
acknowledges a batch once its record is durable — and
``LitmusSession.recover(dir, programs)``, which loads the newest valid
checkpoint, replays the WAL past it, and cross-checks the rebuilt
authenticated-dictionary digest against the journaled client digest
(:class:`~repro.errors.ServerDesyncError` on mismatch).
"""

from .checkpoints import (
    Checkpoint,
    CheckpointSelection,
    checkpoint_path,
    list_checkpoints,
    load_latest_checkpoint,
    mirror_path,
    select_checkpoint,
    write_checkpoint,
)
from .config import DurabilityConfig
from .intents import (
    INTENT_JOURNAL_NAME,
    IntentJournal,
    IntentRecord,
    IntentScanReport,
    IntentTxn,
)
from .manager import DurabilityManager
from .records import (
    WalRecord,
    decode_frames,
    decode_records,
    encode_frame,
    encode_record,
)
from .segments import (
    SEGMENT_MAGIC,
    WalScanReport,
    WriteAheadLog,
    list_segments,
    scan_wal,
    segment_records,
)

__all__ = [
    "Checkpoint",
    "CheckpointSelection",
    "DurabilityConfig",
    "DurabilityManager",
    "INTENT_JOURNAL_NAME",
    "IntentJournal",
    "IntentRecord",
    "IntentScanReport",
    "IntentTxn",
    "SEGMENT_MAGIC",
    "WalRecord",
    "WalScanReport",
    "WriteAheadLog",
    "checkpoint_path",
    "decode_frames",
    "decode_records",
    "encode_frame",
    "encode_record",
    "list_checkpoints",
    "list_segments",
    "load_latest_checkpoint",
    "mirror_path",
    "scan_wal",
    "select_checkpoint",
    "segment_records",
    "write_checkpoint",
]
