"""WAL record framing: CRC32-framed, length-prefixed batch records.

One record journals one *client-verified* batch.  On the wire (well, on the
platter) a record is::

    +----------------+----------------+---------------------------------+
    | length  (u32)  | crc32   (u32)  | payload (length bytes)          |
    +----------------+----------------+---------------------------------+

    payload := seq (u64) | digest_len (u16) | digest bytes | LCL1 log

- ``length`` frames the payload so records can be walked without parsing
  their contents;
- ``crc32`` (over the whole payload) catches bit rot — a record whose CRC
  does not match is *corrupt*, a record whose bytes run out before
  ``length`` is satisfied is *torn* (the classic crash-mid-write tail);
- ``seq`` is the batch sequence number (monotonically increasing by one),
  which recovery uses to skip checkpoint-covered records and to detect
  gaps that framing alone cannot see;
- ``digest`` is the client-verified database digest *after* the batch —
  journaling it per record is what lets restart recovery cross-check the
  rebuilt authenticated-dictionary digest against a value the client
  actually accepted, record by record;
- the remainder of the payload is the batch itself in the ``LCL1`` command
  -log codec (:mod:`repro.db.commandlog`), reused verbatim as the replay
  input.

:func:`decode_records` never raises on bad bytes: it returns everything
decodable plus a status (``"clean"`` / ``"torn"`` / ``"corrupt"``) and the
byte offset up to which the segment is intact, so the caller can truncate
the damage away instead of crashing — the recovery contract.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass

__all__ = ["WalRecord", "decode_records", "encode_record"]

_HEADER = struct.Struct(">II")  # payload length, crc32(payload)
_PAYLOAD_PREFIX = struct.Struct(">QH")  # batch seq, digest byte length

# Upper bound on a single record's payload; a length field beyond this is
# treated as corruption rather than an instruction to wait for 4 GiB of
# payload that will never come.
MAX_RECORD_BYTES = 1 << 30

STATUS_CLEAN = "clean"
STATUS_TORN = "torn"
STATUS_CORRUPT = "corrupt"


@dataclass(frozen=True)
class WalRecord:
    """One decoded record: sequence, post-batch digest, command-log bytes."""

    seq: int
    digest: int
    command_log: bytes  # the LCL1-encoded batch, ready for decode_batch()
    offset: int  # byte offset of the record inside its segment
    size: int  # total framed size (header + payload)

    @property
    def end_offset(self) -> int:
        return self.offset + self.size


def encode_record(seq: int, digest: int, command_log: bytes) -> bytes:
    """Frame one verified batch as a durable record."""
    digest_bytes = digest.to_bytes((digest.bit_length() + 7) // 8 or 1, "big")
    payload = (
        _PAYLOAD_PREFIX.pack(seq, len(digest_bytes)) + digest_bytes + command_log
    )
    return _HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def decode_records(
    data: bytes, offset: int = 0
) -> tuple[list[WalRecord], int, str]:
    """Walk *data* from *offset*; return ``(records, intact_bytes, status)``.

    ``intact_bytes`` is the offset up to which the segment is undamaged —
    truncating the file there removes exactly the torn or corrupt suffix.
    ``status`` is ``"clean"`` (ran off the end exactly), ``"torn"`` (a
    partial record at the tail — the expected shape after a crash mid
    ``write``), or ``"corrupt"`` (CRC or framing violation — bit rot or a
    mangled header).
    """
    records: list[WalRecord] = []
    while True:
        remaining = len(data) - offset
        if remaining == 0:
            return records, offset, STATUS_CLEAN
        if remaining < _HEADER.size:
            return records, offset, STATUS_TORN
        length, crc = _HEADER.unpack_from(data, offset)
        if length > MAX_RECORD_BYTES:
            return records, offset, STATUS_CORRUPT
        if remaining < _HEADER.size + length:
            return records, offset, STATUS_TORN
        payload = data[offset + _HEADER.size : offset + _HEADER.size + length]
        if zlib.crc32(payload) != crc:
            return records, offset, STATUS_CORRUPT
        if length < _PAYLOAD_PREFIX.size:
            return records, offset, STATUS_CORRUPT
        seq, digest_len = _PAYLOAD_PREFIX.unpack_from(payload, 0)
        body = payload[_PAYLOAD_PREFIX.size :]
        if len(body) < digest_len:
            return records, offset, STATUS_CORRUPT
        records.append(
            WalRecord(
                seq=seq,
                digest=int.from_bytes(body[:digest_len], "big"),
                command_log=bytes(body[digest_len:]),
                offset=offset,
                size=_HEADER.size + length,
            )
        )
        offset += _HEADER.size + length
