"""WAL record framing: CRC32-framed, length-prefixed batch records.

One record journals one *client-verified* batch.  On the wire (well, on the
platter) a record is::

    +----------------+----------------+---------------------------------+
    | length  (u32)  | crc32   (u32)  | payload (length bytes)          |
    +----------------+----------------+---------------------------------+

    payload := seq (u64) | version (u8) | versioned body

    version 1 body := digest_len (u16) | digest bytes | LCL1 log
    version 2 body := shard_count (u16)
                      | shard_count x (digest_len (u16) | digest bytes)
                      | LCL1 log

- ``length`` frames the payload so records can be walked without parsing
  their contents;
- ``crc32`` (over the whole payload) catches bit rot — a record whose CRC
  does not match is *corrupt*, a record whose bytes run out before
  ``length`` is satisfied is *torn* (the classic crash-mid-write tail);
- ``seq`` is the batch sequence number (monotonically increasing by one),
  which recovery uses to skip checkpoint-covered records and to detect
  gaps that framing alone cannot see;
- ``version`` selects the digest encoding: version 1 journals a single
  scalar digest (the unsharded case, and what each shard of a sharded
  session writes to its own WAL); version 2 journals a
  :class:`~repro.core.api.DigestVector` as an explicit list of per-shard
  digests.  Unknown versions are *corrupt*, not guessed at;
- the digest is the client-verified database digest *after* the batch —
  journaling it per record is what lets restart recovery cross-check the
  rebuilt authenticated-dictionary digest against a value the client
  actually accepted, record by record;
- the remainder of the payload is the batch itself in the ``LCL1`` command
  -log codec (:mod:`repro.db.commandlog`), reused verbatim as the replay
  input.

:func:`decode_records` never raises on bad bytes: it returns everything
decodable plus a status (``"clean"`` / ``"torn"`` / ``"corrupt"``) and the
byte offset up to which the segment is intact, so the caller can truncate
the damage away instead of crashing — the recovery contract.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass, field

__all__ = [
    "WalRecord",
    "decode_frames",
    "decode_records",
    "encode_frame",
    "encode_record",
]

_HEADER = struct.Struct(">II")  # payload length, crc32(payload)
_PAYLOAD_PREFIX = struct.Struct(">QB")  # batch seq, record version
_U16 = struct.Struct(">H")

RECORD_VERSION_SCALAR = 1
RECORD_VERSION_VECTOR = 2

# Upper bound on a single record's payload; a length field beyond this is
# treated as corruption rather than an instruction to wait for 4 GiB of
# payload that will never come.
MAX_RECORD_BYTES = 1 << 30

STATUS_CLEAN = "clean"
STATUS_TORN = "torn"
STATUS_CORRUPT = "corrupt"


@dataclass(frozen=True)
class WalRecord:
    """One decoded record: sequence, post-batch digest(s), command log.

    ``digest`` is the combined scalar (identical to the historical field);
    ``digest_vector`` carries the per-shard components — length 1 for a
    version-1 record, one entry per shard for version 2.
    """

    seq: int
    digest: int
    command_log: bytes  # the LCL1-encoded batch, ready for decode_batch()
    offset: int  # byte offset of the record inside its segment
    size: int  # total framed size (header + payload)
    digest_vector: tuple[int, ...] = field(default=())
    version: int = RECORD_VERSION_SCALAR

    def __post_init__(self):
        if not self.digest_vector:
            object.__setattr__(self, "digest_vector", (self.digest,))

    @property
    def end_offset(self) -> int:
        return self.offset + self.size


def _digest_bytes(digest: int) -> bytes:
    return digest.to_bytes((digest.bit_length() + 7) // 8 or 1, "big")


def encode_frame(payload: bytes) -> bytes:
    """CRC32-frame one opaque payload (the shared on-disk framing).

    Used for WAL batch records and reused verbatim by the cross-shard
    intent journal (:mod:`repro.db.wal.intents`) so both artifacts share
    one torn/corrupt-tail detection story.
    """
    return _HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def decode_frames(
    data: bytes, offset: int = 0
) -> tuple[list[tuple[int, bytes]], int, str]:
    """Walk CRC frames; return ``([(offset, payload), ...], intact, status)``.

    The payload-agnostic half of :func:`decode_records`: framing and CRC
    are checked here, payload interpretation is the caller's job.  Never
    raises on bad bytes — damage ends the walk with ``"torn"`` (bytes ran
    out mid-frame) or ``"corrupt"`` (CRC/length violation) and ``intact``
    marks the byte up to which the data is undamaged.
    """
    frames: list[tuple[int, bytes]] = []
    while True:
        remaining = len(data) - offset
        if remaining == 0:
            return frames, offset, STATUS_CLEAN
        if remaining < _HEADER.size:
            return frames, offset, STATUS_TORN
        length, crc = _HEADER.unpack_from(data, offset)
        if length > MAX_RECORD_BYTES:
            return frames, offset, STATUS_CORRUPT
        if remaining < _HEADER.size + length:
            return frames, offset, STATUS_TORN
        payload = data[offset + _HEADER.size : offset + _HEADER.size + length]
        if zlib.crc32(payload) != crc:
            return frames, offset, STATUS_CORRUPT
        frames.append((offset, bytes(payload)))
        offset += _HEADER.size + length


def encode_record(seq: int, digest, command_log: bytes) -> bytes:
    """Frame one verified batch as a durable record.

    *digest* may be a plain int (or a length-1 ``DigestVector``), encoded
    as a version-1 scalar record, or a multi-shard ``DigestVector`` /
    sequence of ints, encoded as a version-2 vector record.
    """
    shards = _shards_of(digest)
    if len(shards) == 1:
        blob = _digest_bytes(shards[0])
        body = _U16.pack(len(blob)) + blob
        version = RECORD_VERSION_SCALAR
    else:
        parts = [_U16.pack(len(shards))]
        for shard_digest in shards:
            blob = _digest_bytes(shard_digest)
            parts.append(_U16.pack(len(blob)) + blob)
        body = b"".join(parts)
        version = RECORD_VERSION_VECTOR
    payload = _PAYLOAD_PREFIX.pack(seq, version) + body + command_log
    return encode_frame(payload)


def _shards_of(digest) -> tuple[int, ...]:
    shards = getattr(digest, "shards", None)
    if shards is not None:
        return tuple(int(s) for s in shards)
    if isinstance(digest, int):
        return (int(digest),)
    return tuple(int(s) for s in digest)


def decode_records(
    data: bytes, offset: int = 0
) -> tuple[list[WalRecord], int, str]:
    """Walk *data* from *offset*; return ``(records, intact_bytes, status)``.

    ``intact_bytes`` is the offset up to which the segment is undamaged —
    truncating the file there removes exactly the torn or corrupt suffix.
    ``status`` is ``"clean"`` (ran off the end exactly), ``"torn"`` (a
    partial record at the tail — the expected shape after a crash mid
    ``write``), or ``"corrupt"`` (CRC or framing violation — bit rot, a
    mangled header, or an unknown record version).
    """
    records: list[WalRecord] = []
    frames, intact, status = decode_frames(data, offset)
    for frame_offset, payload in frames:
        record = _decode_payload(
            payload, frame_offset, _HEADER.size + len(payload)
        )
        if record is None:
            return records, frame_offset, STATUS_CORRUPT
        records.append(record)
    return records, intact, status


def _decode_payload(payload: bytes, offset: int, size: int) -> WalRecord | None:
    """Decode one CRC-validated payload; None on structural corruption."""
    if len(payload) < _PAYLOAD_PREFIX.size:
        return None
    seq, version = _PAYLOAD_PREFIX.unpack_from(payload, 0)
    pos = _PAYLOAD_PREFIX.size
    if version == RECORD_VERSION_SCALAR:
        if len(payload) < pos + _U16.size:
            return None
        (digest_len,) = _U16.unpack_from(payload, pos)
        pos += _U16.size
        if len(payload) < pos + digest_len:
            return None
        digest = int.from_bytes(payload[pos : pos + digest_len], "big")
        pos += digest_len
        shards = (digest,)
    elif version == RECORD_VERSION_VECTOR:
        if len(payload) < pos + _U16.size:
            return None
        (count,) = _U16.unpack_from(payload, pos)
        pos += _U16.size
        if count == 0:
            return None
        parts = []
        for _ in range(count):
            if len(payload) < pos + _U16.size:
                return None
            (digest_len,) = _U16.unpack_from(payload, pos)
            pos += _U16.size
            if len(payload) < pos + digest_len:
                return None
            parts.append(int.from_bytes(payload[pos : pos + digest_len], "big"))
            pos += digest_len
        shards = tuple(parts)
        # The combined scalar of a multi-shard record matches
        # DigestVector's fold, computed lazily to avoid a core import here.
        from ...core.api import DigestVector

        digest = int(DigestVector(shards))
    else:
        return None
    return WalRecord(
        seq=seq,
        digest=digest,
        command_log=bytes(payload[pos:]),
        offset=offset,
        size=size,
        digest_vector=shards,
        version=version,
    )
